#ifndef DDPKIT_CLUSTER_MODEL_SPECS_H_
#define DDPKIT_CLUSTER_MODEL_SPECS_H_

#include <string>
#include <vector>

#include "core/bucketing.h"
#include "nn/module.h"

namespace ddpkit::cluster {

/// Parameter-shape inventory of a model, in registration (forward) order —
/// everything the cluster simulator needs: DDP's bucketing, communication
/// volume and readiness timeline depend only on the parameter size
/// sequence, which these specs reproduce exactly for the paper's models.
struct ModelSpec {
  std::string name;
  std::vector<core::ParamMeta> params;

  int64_t TotalNumel() const;
  size_t TotalBytes() const;
  size_t NumParams() const { return params.size(); }
};

/// ResNet-18: basic blocks [2,2,2,2]; ~11.69M parameters.
ModelSpec ResNet18Spec();
/// ResNet-34: basic blocks [3,4,6,3]; ~21.80M parameters.
ModelSpec ResNet34Spec();
/// ResNet-50 (He et al.): bottleneck blocks [3,4,6,3]; ~25.56M parameters.
ModelSpec ResNet50Spec();
/// ResNet-152: bottleneck blocks [3,8,36,3]; ~60.19M parameters (the model
/// measured in Fig 2(c)/(d)).
ModelSpec ResNet152Spec();
/// BERT-Base (Devlin et al.): 12 layers, hidden 768; ~109.5M parameters —
/// "15X more parameters than ResNet50" (§5.2).
ModelSpec BertBaseSpec();
/// GPT-2 small: 12 layers, hidden 768, vocab 50257; ~124.4M parameters.
/// Not evaluated in the paper; included for sweeps beyond its model set.
ModelSpec Gpt2SmallSpec();

/// Shape inventory extracted from a live module (for cross-checking the
/// simulator against the runnable stack).
ModelSpec SpecFromModule(const std::string& name, const nn::Module& module);

}  // namespace ddpkit::cluster

#endif  // DDPKIT_CLUSTER_MODEL_SPECS_H_
