#include "cluster/cluster_sim.h"

#include <algorithm>

#include "common/check.h"

namespace ddpkit::cluster {

ClusterSim::ClusterSim(ModelSpec spec, ClusterConfig config)
    : spec_(std::move(spec)),
      config_(config),
      compute_(config.compute),
      straggler_(config.straggler) {
  DDPKIT_CHECK_GT(config_.world, 0);
  DDPKIT_CHECK_GE(config_.round_robin_groups, 1);
  DDPKIT_CHECK_GE(config_.skip_sync_every, 1);

  switch (config_.backend) {
    case sim::Backend::kNccl:
      cost_model_ = std::make_unique<sim::NcclCostModel>(
          config_.topology,
          config_.nccl_options.value_or(sim::NcclCostModel::Options()));
      break;
    case sim::Backend::kGloo:
      cost_model_ = std::make_unique<sim::GlooCostModel>(
          config_.topology,
          config_.gloo_options.value_or(sim::GlooCostModel::Options()));
      break;
    case sim::Backend::kMpi:
      cost_model_ = std::make_unique<sim::MpiCostModel>(config_.topology);
      break;
  }

  // Exactly the production bucketing code path (core/bucketing.cc).
  assignment_ = core::AssignBuckets(spec_.params, config_.bucket_cap_bytes,
                                    config_.first_bucket_cap_bytes);
  bucket_bytes_.reserve(assignment_.buckets.size());
  for (const auto& bucket : assignment_.buckets) {
    bucket_bytes_.push_back(core::BucketBytes(spec_.params, bucket));
  }

  backward_numels_.reserve(spec_.params.size());
  for (size_t i = spec_.params.size(); i-- > 0;) {
    backward_numels_.push_back(spec_.params[i].numel);
  }
}

double ClusterSim::SimulateIteration(bool synced, Rng* rng,
                                     IterationBreakdown* accumulate) {
  const int64_t total_numel = spec_.TotalNumel();
  const int64_t num_params = static_cast<int64_t>(spec_.params.size());

  // Straggler skew: a synchronized collective effectively starts at the
  // slowest rank's arrival, so the representative rank's compute stretches
  // by the max skew across the world.
  const double skew = synced && config_.world > 1
                          ? straggler_.SampleMaxOverWorld(rng, config_.world)
                          : straggler_.Sample(rng);

  const double forward =
      compute_.ForwardSeconds(total_numel, num_params) * skew;

  // Backward readiness timeline (reverse registration order).
  std::vector<double> ready = compute_.GradReadyTimes(backward_numels_, rng);
  for (double& t : ready) t *= skew;
  const double compute_end = ready.empty() ? 0.0 : ready.back();

  double backward_end = compute_end;
  double comm_busy = 0.0;

  if (synced && config_.world > 1) {
    const size_t num_buckets = assignment_.buckets.size();
    // Bucket b's gradients are a contiguous run of the backward timeline:
    // bucket 0 takes the first slots, etc. (reverse-parameter packing).
    std::vector<double> bucket_ready(num_buckets, 0.0);
    {
      size_t cursor = 0;
      for (size_t b = 0; b < num_buckets; ++b) {
        cursor += assignment_.buckets[b].size();
        DDPKIT_CHECK_LE(cursor, ready.size());
        bucket_ready[b] = ready[cursor - 1];
      }
    }

    const int k = config_.round_robin_groups;
    std::vector<double> queue_tail(static_cast<size_t>(k), 0.0);
    double last_done = 0.0;
    double prev_launch = 0.0;
    for (size_t b = 0; b < num_buckets; ++b) {
      // In-order launch rule; without overlap every launch waits for the
      // full backward compute.
      double launch = config_.overlap ? bucket_ready[b] : compute_end;
      launch = std::max(launch, prev_launch);
      prev_launch = launch;

      const size_t q = b % static_cast<size_t>(k);
      const double start = std::max(launch, queue_tail[q]);
      const size_t bytes = static_cast<size_t>(
          static_cast<double>(bucket_bytes_[b]) * config_.comm_bytes_scale);
      const double duration =
          cost_model_->AllReduceSeconds(bytes, config_.world, k);
      queue_tail[q] = start + duration;
      comm_busy += duration;
      last_done = std::max(last_done, queue_tail[q]);
    }

    if (config_.find_unused_parameters) {
      // The extra uint8 bitmap AllReduce, launched after all buckets.
      const double launch =
          config_.overlap ? std::max(compute_end, prev_launch) : compute_end;
      const size_t q = num_buckets % static_cast<size_t>(k);
      const double start = std::max(launch, queue_tail[q]);
      const double duration = cost_model_->AllReduceSeconds(
          static_cast<size_t>(num_params), config_.world, k);
      queue_tail[q] = start + duration;
      comm_busy += duration;
      last_done = std::max(last_done, queue_tail[q]);
    }

    backward_end = std::max(compute_end, last_done);
  }

  const double optimizer = compute_.OptimizerSeconds(total_numel) * skew;
  const double total = forward + backward_end + optimizer;

  if (accumulate != nullptr) {
    accumulate->forward += forward;
    accumulate->backward_compute += compute_end;
    accumulate->backward_comm_exposed += backward_end - compute_end;
    accumulate->optimizer += optimizer;
    accumulate->total += total;
    accumulate->comm_busy += comm_busy;
  }
  return total;
}

SimResult ClusterSim::Run(int iterations) {
  DDPKIT_CHECK_GT(iterations, 0);
  Rng rng(config_.seed);

  SimResult result;
  result.num_buckets = assignment_.buckets.size();
  result.iteration_latencies.reserve(static_cast<size_t>(iterations));

  IterationBreakdown sum;
  int synced_count = 0;
  for (int it = 0; it < iterations; ++it) {
    // Iteration n-1, 2n-1, ... are the synced ones within each no_sync
    // window of length n.
    const bool synced = ((it + 1) % config_.skip_sync_every) == 0;
    IterationBreakdown* acc = synced ? &sum : nullptr;
    double latency = SimulateIteration(synced, &rng, acc);
    if (synced) ++synced_count;
    if (config_.hiccup_every > 0 && it > 0 &&
        it % config_.hiccup_every == 0) {
      latency += config_.hiccup_seconds;
    }
    result.iteration_latencies.push_back(latency);
  }

  if (synced_count > 0) {
    const double inv = 1.0 / synced_count;
    result.mean_breakdown.forward = sum.forward * inv;
    result.mean_breakdown.backward_compute = sum.backward_compute * inv;
    result.mean_breakdown.backward_comm_exposed =
        sum.backward_comm_exposed * inv;
    result.mean_breakdown.optimizer = sum.optimizer * inv;
    result.mean_breakdown.total = sum.total * inv;
    result.mean_breakdown.comm_busy = sum.comm_busy * inv;
  }
  return result;
}

double ClusterSim::SplitAllReduceSeconds(size_t total_bytes,
                                         size_t per_op_bytes) const {
  DDPKIT_CHECK_GT(per_op_bytes, 0u);
  // Async launches back-to-back on one queue, then block on all of them —
  // the microbenchmark protocol of Fig 2(a)/(b). On a serialized queue the
  // total is the sum of op durations.
  double total = 0.0;
  size_t remaining = total_bytes;
  while (remaining > 0) {
    const size_t chunk = std::min(per_op_bytes, remaining);
    total += cost_model_->AllReduceSeconds(chunk, config_.world, 1);
    remaining -= chunk;
  }
  return total;
}

}  // namespace ddpkit::cluster
