#include "cluster/model_specs.h"

namespace ddpkit::cluster {

namespace {

void AddParam(ModelSpec* spec, int64_t numel) {
  spec->params.push_back(
      core::ParamMeta{numel, static_cast<size_t>(numel) * 4, 0});
}

/// conv weight (no bias, per torchvision ResNet) + batch-norm gamma/beta.
void AddConvBn(ModelSpec* spec, int64_t in_c, int64_t out_c, int64_t k) {
  AddParam(spec, out_c * in_c * k * k);
  AddParam(spec, out_c);  // bn weight
  AddParam(spec, out_c);  // bn bias
}

/// One torchvision bottleneck block: 1x1 reduce, 3x3, 1x1 expand (x4), each
/// followed by batch norm; optional 1x1+bn downsample on the skip path.
void AddBottleneck(ModelSpec* spec, int64_t in_c, int64_t mid_c,
                   bool downsample) {
  const int64_t out_c = mid_c * 4;
  AddConvBn(spec, in_c, mid_c, 1);
  AddConvBn(spec, mid_c, mid_c, 3);
  AddConvBn(spec, mid_c, out_c, 1);
  if (downsample) AddConvBn(spec, in_c, out_c, 1);
}

/// One torchvision basic block (ResNet-18/34): two 3x3 convs with batch
/// norm; optional 1x1+bn downsample on the skip path.
void AddBasicBlock(ModelSpec* spec, int64_t in_c, int64_t out_c,
                   bool downsample) {
  AddConvBn(spec, in_c, out_c, 3);
  AddConvBn(spec, out_c, out_c, 3);
  if (downsample) AddConvBn(spec, in_c, out_c, 1);
}

ModelSpec BasicResNetSpec(const std::string& name, const int blocks[4]) {
  ModelSpec spec;
  spec.name = name;
  AddConvBn(&spec, 3, 64, 7);  // stem
  int64_t in_c = 64;
  const int64_t widths[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < blocks[stage]; ++b) {
      // Stage 0 keeps the stem width, so its first block needs no
      // downsample projection (torchvision layout).
      const bool downsample = (b == 0 && stage > 0);
      AddBasicBlock(&spec, in_c, widths[stage], downsample);
      in_c = widths[stage];
    }
  }
  AddParam(&spec, 512 * 1000);  // fc weight
  AddParam(&spec, 1000);        // fc bias
  return spec;
}

ModelSpec ResNetSpec(const std::string& name, const int blocks[4]) {
  ModelSpec spec;
  spec.name = name;
  AddConvBn(&spec, 3, 64, 7);  // stem
  int64_t in_c = 64;
  const int64_t mids[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < blocks[stage]; ++b) {
      const bool downsample = (b == 0);
      AddBottleneck(&spec, in_c, mids[stage], downsample);
      in_c = mids[stage] * 4;
    }
  }
  AddParam(&spec, 2048 * 1000);  // fc weight
  AddParam(&spec, 1000);         // fc bias
  return spec;
}

void AddLinear(ModelSpec* spec, int64_t in, int64_t out) {
  AddParam(spec, out * in);
  AddParam(spec, out);
}

void AddLayerNorm(ModelSpec* spec, int64_t dim) {
  AddParam(spec, dim);
  AddParam(spec, dim);
}

}  // namespace

int64_t ModelSpec::TotalNumel() const {
  int64_t total = 0;
  for (const auto& p : params) total += p.numel;
  return total;
}

size_t ModelSpec::TotalBytes() const {
  size_t total = 0;
  for (const auto& p : params) total += p.bytes;
  return total;
}

ModelSpec ResNet18Spec() {
  const int blocks[4] = {2, 2, 2, 2};
  return BasicResNetSpec("resnet18", blocks);
}

ModelSpec ResNet34Spec() {
  const int blocks[4] = {3, 4, 6, 3};
  return BasicResNetSpec("resnet34", blocks);
}

ModelSpec ResNet50Spec() {
  const int blocks[4] = {3, 4, 6, 3};
  return ResNetSpec("resnet50", blocks);
}

ModelSpec ResNet152Spec() {
  const int blocks[4] = {3, 8, 36, 3};
  return ResNetSpec("resnet152", blocks);
}

ModelSpec BertBaseSpec() {
  constexpr int64_t kHidden = 768;
  constexpr int64_t kIntermediate = 3072;
  constexpr int64_t kVocab = 30522;
  constexpr int64_t kMaxPos = 512;
  constexpr int64_t kLayers = 12;

  ModelSpec spec;
  spec.name = "bert_base";
  AddParam(&spec, kVocab * kHidden);   // word embeddings
  AddParam(&spec, kMaxPos * kHidden);  // position embeddings
  AddParam(&spec, 2 * kHidden);        // token-type embeddings
  AddLayerNorm(&spec, kHidden);        // embedding layer norm
  for (int64_t l = 0; l < kLayers; ++l) {
    AddLinear(&spec, kHidden, kHidden);  // query
    AddLinear(&spec, kHidden, kHidden);  // key
    AddLinear(&spec, kHidden, kHidden);  // value
    AddLinear(&spec, kHidden, kHidden);  // attention output
    AddLayerNorm(&spec, kHidden);
    AddLinear(&spec, kHidden, kIntermediate);  // intermediate
    AddLinear(&spec, kIntermediate, kHidden);  // output
    AddLayerNorm(&spec, kHidden);
  }
  AddLinear(&spec, kHidden, kHidden);  // pooler
  return spec;
}

ModelSpec Gpt2SmallSpec() {
  constexpr int64_t kHidden = 768;
  constexpr int64_t kVocab = 50257;
  constexpr int64_t kMaxPos = 1024;
  constexpr int64_t kLayers = 12;

  ModelSpec spec;
  spec.name = "gpt2_small";
  AddParam(&spec, kVocab * kHidden);   // token embeddings (tied with head)
  AddParam(&spec, kMaxPos * kHidden);  // position embeddings
  for (int64_t l = 0; l < kLayers; ++l) {
    AddLayerNorm(&spec, kHidden);
    AddLinear(&spec, kHidden, 3 * kHidden);  // fused qkv
    AddLinear(&spec, kHidden, kHidden);      // attention projection
    AddLayerNorm(&spec, kHidden);
    AddLinear(&spec, kHidden, 4 * kHidden);  // mlp up
    AddLinear(&spec, 4 * kHidden, kHidden);  // mlp down
  }
  AddLayerNorm(&spec, kHidden);  // final layer norm
  return spec;
}

ModelSpec SpecFromModule(const std::string& name, const nn::Module& module) {
  ModelSpec spec;
  spec.name = name;
  for (const Tensor& p : module.parameters()) {
    spec.params.push_back(
        core::ParamMeta{p.numel(), p.nbytes(), p.device_id()});
  }
  return spec;
}

}  // namespace ddpkit::cluster
