#ifndef DDPKIT_CLUSTER_CLUSTER_SIM_H_
#define DDPKIT_CLUSTER_CLUSTER_SIM_H_

#include <memory>
#include <optional>
#include <vector>

#include "cluster/model_specs.h"
#include "common/stats.h"
#include "core/bucketing.h"
#include "sim/comm_cost_model.h"
#include "sim/compute_cost_model.h"
#include "sim/jitter.h"
#include "sim/topology.h"

namespace ddpkit::cluster {

/// One DDP training configuration at cluster scale.
struct ClusterConfig {
  int world = 1;
  sim::Backend backend = sim::Backend::kNccl;
  sim::Topology topology = sim::Topology();

  size_t bucket_cap_bytes = 25u << 20;
  size_t first_bucket_cap_bytes = 0;
  /// When false, all communication waits for the end of the backward
  /// compute — the naive/parameter-averaging structure of §2.2/§3.2.1 and
  /// the "non-overlap" bars of Fig 6.
  bool overlap = true;
  /// Gradient synchronization every n-th iteration (no_sync, Fig 10).
  int skip_sync_every = 1;
  /// Round-robin process-group count (Fig 12).
  int round_robin_groups = 1;
  /// Adds the extra uint8 bitmap AllReduce per synced iteration (§3.2.3).
  bool find_unused_parameters = false;
  /// Scales communicated bytes (gradient-compression ablation, §6.2.3).
  double comm_bytes_scale = 1.0;

  sim::ComputeCostModel::Options compute = sim::ComputeCostModel::V100Profile();
  sim::StragglerModel::Options straggler;
  std::optional<sim::NcclCostModel::Options> nccl_options;
  std::optional<sim::GlooCostModel::Options> gloo_options;

  /// Every `hiccup_every` iterations add `hiccup_seconds` (the Fig 7/8
  /// outliers: "delay spikes at 100 iteration boundaries caused by DDP
  /// instance re-construction and input data regeneration").
  int hiccup_every = 0;
  double hiccup_seconds = 0.0;

  uint64_t seed = 42;
};

/// Averaged per-iteration latency decomposition (Fig 6's stacks).
struct IterationBreakdown {
  double forward = 0.0;
  double backward_compute = 0.0;
  /// Communication time NOT hidden behind backward compute.
  double backward_comm_exposed = 0.0;
  double optimizer = 0.0;
  double total = 0.0;
  /// Raw communication busy time (hidden + exposed).
  double comm_busy = 0.0;
};

struct SimResult {
  std::vector<double> iteration_latencies;  // seconds, one per iteration
  IterationBreakdown mean_breakdown;        // over synced iterations
  size_t num_buckets = 0;
  Summary LatencySummary() const { return Summarize(iteration_latencies); }
};

/// Discrete-event per-iteration latency simulator for DDP at arbitrary
/// world sizes. Substitutes for the paper's 32-GPU cluster and 256-GPU
/// shared entitlement. Reuses the production bucket-assignment code
/// (core/bucketing.h) and the same comm/compute cost models as the
/// thread-backed stack; ranks are symmetric, so one representative rank's
/// timeline is simulated with straggler skew sampled across the world.
///
/// Event model per synced iteration:
///   1. gradients become ready along the compute model's backward timeline
///      (reverse registration order, per-op jitter);
///   2. a bucket is ready when its last gradient is; buckets launch
///      strictly in order (§3.2.3);
///   3. each launch queues on one of `round_robin_groups` serialized comm
///      queues; the cost model prices each AllReduce with bandwidth shared
///      across concurrently-configured groups;
///   4. backward ends at max(compute end, last AllReduce completion);
///      without overlap, launches are all held to the compute end.
class ClusterSim {
 public:
  ClusterSim(ModelSpec spec, ClusterConfig config);

  /// Simulates `iterations` training iterations.
  SimResult Run(int iterations);

  /// Cost of all-reducing `total_bytes` split into `per_op_bytes` chunks
  /// queued back-to-back (the Fig 2(a)/(b) microbenchmark).
  double SplitAllReduceSeconds(size_t total_bytes, size_t per_op_bytes) const;

  const core::BucketAssignment& assignment() const { return assignment_; }
  const sim::CommCostModel& cost_model() const { return *cost_model_; }

 private:
  /// One iteration; returns its latency and accumulates breakdown terms.
  double SimulateIteration(bool synced, Rng* rng,
                           IterationBreakdown* accumulate);

  ModelSpec spec_;
  ClusterConfig config_;
  std::unique_ptr<sim::CommCostModel> cost_model_;
  sim::ComputeCostModel compute_;
  sim::StragglerModel straggler_;
  core::BucketAssignment assignment_;
  std::vector<size_t> bucket_bytes_;
  std::vector<int64_t> backward_numels_;  // per-param, backward order
};

}  // namespace ddpkit::cluster

#endif  // DDPKIT_CLUSTER_CLUSTER_SIM_H_
