#include "sim/collective_algo.h"

namespace ddpkit::sim {

const char* CollectiveAlgorithmName(CollectiveAlgorithm algorithm) {
  switch (algorithm) {
    case CollectiveAlgorithm::kNaive:
      return "naive";
    case CollectiveAlgorithm::kRing:
      return "ring";
    case CollectiveAlgorithm::kTree:
      return "tree";
    case CollectiveAlgorithm::kRingChunked:
      return "ring_chunked";
    case CollectiveAlgorithm::kHalvingDoubling:
      return "halving_doubling";
    case CollectiveAlgorithm::kHierarchical:
      return "hierarchical";
    case CollectiveAlgorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

CollectiveAlgorithm SelectAllReduceAlgorithm(size_t bytes, int world,
                                             const Topology& topology) {
  if (world <= 2) {
    // With 0 or 1 peers there is nothing to pipeline and no step count to
    // shrink; the naive order is also the cheapest data plane.
    return CollectiveAlgorithm::kNaive;
  }
  if (bytes < kSmallAllReduceBytes) {
    // Latency regime (Fig 2a left side): 2*ceil(log2 w) steps beat the
    // ring's 2*(w-1) long before bandwidth matters.
    return CollectiveAlgorithm::kHalvingDoubling;
  }
  if (!topology.SingleHost(world)) {
    // Bandwidth regime across hosts: only 2*(hosts-1)/hosts of the bytes
    // should ever touch the NIC; reduce inside each host first.
    return CollectiveAlgorithm::kHierarchical;
  }
  // Bandwidth regime inside one host: pipelined chunks keep the bottleneck
  // NVLink busy through the whole collective.
  return CollectiveAlgorithm::kRingChunked;
}

CollectiveAlgorithm ResolveAllReduceAlgorithm(CollectiveAlgorithm algorithm,
                                              size_t bytes, int world,
                                              const Topology& topology) {
  if (algorithm != CollectiveAlgorithm::kAuto) return algorithm;
  return SelectAllReduceAlgorithm(bytes, world, topology);
}

}  // namespace ddpkit::sim
