#include "sim/comm_cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ddpkit::sim {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kNccl:
      return "nccl";
    case Backend::kGloo:
      return "gloo";
    case Backend::kMpi:
      return "mpi";
  }
  return "?";
}

// ---- NcclCostModel ----------------------------------------------------------

NcclCostModel::NcclCostModel(const Topology& topology)
    : NcclCostModel(topology, Options()) {}

NcclCostModel::NcclCostModel(const Topology& topology, const Options& options)
    : topology_(topology), options_(options) {}

double NcclCostModel::EffectiveBandwidth(int world,
                                         int concurrent_groups) const {
  double link = topology_.RingBandwidth(world);
  if (options_.degraded_above_world > 0 &&
      world > options_.degraded_above_world) {
    link *= options_.degraded_net_factor;
  }
  const double fraction = topology_.SingleHost(world)
                              ? options_.per_group_bw_fraction_intra
                              : options_.per_group_bw_fraction;
  const double per_group_cap = fraction * link;
  const double fair_share =
      link / static_cast<double>(std::max(1, concurrent_groups));
  return std::min(per_group_cap, fair_share);
}

double NcclCostModel::AllReduceSeconds(size_t bytes, int world,
                                       int concurrent_groups) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = 2.0 * (world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(world, concurrent_groups);
  const double traffic =
      2.0 * (world - 1) / static_cast<double>(world) *
      static_cast<double>(bytes);
  return options_.base_latency + steps * alpha + traffic / bandwidth;
}

double NcclCostModel::BroadcastSeconds(size_t bytes, int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  // Pipelined tree broadcast: the payload streams through the tree, so the
  // transfer time is paid once plus a per-level latency.
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(world, 1);
  return options_.base_latency + depth * alpha +
         static_cast<double>(bytes) / bandwidth;
}

double NcclCostModel::AllGatherSeconds(size_t per_rank_bytes,
                                       int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = static_cast<double>(world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(world, 1);
  return options_.base_latency + steps * alpha +
         steps * static_cast<double>(per_rank_bytes) / bandwidth;
}

double NcclCostModel::BarrierSeconds(int world) const {
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  return options_.base_latency +
         2.0 * depth *
             (topology_.RingHopLatency(world) + options_.step_overhead);
}

// ---- GlooCostModel -------------------------------------------------------------

GlooCostModel::GlooCostModel(const Topology& topology)
    : GlooCostModel(topology, Options()) {}

GlooCostModel::GlooCostModel(const Topology& topology, const Options& options)
    : topology_(topology), options_(options) {}

double GlooCostModel::EffectiveBandwidth(size_t message_bytes, int world,
                                         int concurrent_groups) const {
  double bw = std::min(options_.max_bandwidth,
                       topology_.RingBandwidth(world));
  if (message_bytes > options_.large_message_bytes) {
    const double octaves =
        std::log2(static_cast<double>(message_bytes) /
                  static_cast<double>(options_.large_message_bytes)) /
        3.0;  // log base 8
    bw *= std::pow(options_.large_message_factor, 1.0 + octaves);
  }
  bw /= 1.0 + options_.world_penalty * static_cast<double>(world);
  // Gloo is CPU-bound, so concurrent groups contend for cores as well as
  // links; a mild penalty keeps rr>1 a modest win (Fig 12(b)).
  if (concurrent_groups > 1) {
    bw /= 1.0 + 0.1 * static_cast<double>(concurrent_groups - 1);
  }
  return bw;
}

double GlooCostModel::AllReduceSeconds(size_t bytes, int world,
                                       int concurrent_groups) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = 2.0 * (world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth =
      EffectiveBandwidth(std::max<size_t>(bytes, 1), world,
                         concurrent_groups);
  const double traffic = 2.0 * (world - 1) / static_cast<double>(world) *
                         static_cast<double>(bytes);
  return options_.base_latency + steps * alpha + traffic / bandwidth;
}

double GlooCostModel::BroadcastSeconds(size_t bytes, int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  // Pipelined chunked broadcast, as above.
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(bytes, world, 1);
  return options_.base_latency + depth * alpha +
         static_cast<double>(bytes) / bandwidth;
}

double GlooCostModel::AllGatherSeconds(size_t per_rank_bytes,
                                       int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = static_cast<double>(world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(per_rank_bytes, world, 1);
  return options_.base_latency + steps * alpha +
         steps * static_cast<double>(per_rank_bytes) / bandwidth;
}

double GlooCostModel::BarrierSeconds(int world) const {
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  return options_.base_latency +
         2.0 * depth *
             (topology_.RingHopLatency(world) + options_.step_overhead);
}

// ---- MpiCostModel ----------------------------------------------------------------

MpiCostModel::MpiCostModel(const Topology& topology)
    : MpiCostModel(topology, Options()) {}

MpiCostModel::MpiCostModel(const Topology& topology, const Options& options)
    : topology_(topology), options_(options) {}

double MpiCostModel::EffectiveBandwidth(int world,
                                        int concurrent_groups) const {
  const double link =
      std::min(options_.max_bandwidth, topology_.RingBandwidth(world));
  return link / static_cast<double>(std::max(1, concurrent_groups));
}

double MpiCostModel::AllReduceSeconds(size_t bytes, int world,
                                      int concurrent_groups) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = 2.0 * (world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double traffic = 2.0 * (world - 1) / static_cast<double>(world) *
                         static_cast<double>(bytes);
  return options_.base_latency + steps * alpha +
         traffic / EffectiveBandwidth(world, concurrent_groups);
}

double MpiCostModel::BroadcastSeconds(size_t bytes, int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  return options_.base_latency + depth * alpha +
         static_cast<double>(bytes) / EffectiveBandwidth(world, 1);
}

double MpiCostModel::AllGatherSeconds(size_t per_rank_bytes,
                                      int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = static_cast<double>(world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  return options_.base_latency + steps * alpha +
         steps * static_cast<double>(per_rank_bytes) /
             EffectiveBandwidth(world, 1);
}

double MpiCostModel::BarrierSeconds(int world) const {
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  return options_.base_latency +
         2.0 * depth *
             (topology_.RingHopLatency(world) + options_.step_overhead);
}

// ---- Factory ----------------------------------------------------------------------

std::unique_ptr<CommCostModel> MakeCostModel(Backend backend,
                                             const Topology& topology) {
  switch (backend) {
    case Backend::kNccl:
      return std::make_unique<NcclCostModel>(topology);
    case Backend::kGloo:
      return std::make_unique<GlooCostModel>(topology);
    case Backend::kMpi:
      return std::make_unique<MpiCostModel>(topology);
  }
  DDPKIT_CHECK(false) << "bad backend";
  return nullptr;
}

}  // namespace ddpkit::sim
