#include "sim/comm_cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ddpkit::sim {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kNccl:
      return "nccl";
    case Backend::kGloo:
      return "gloo";
    case Backend::kMpi:
      return "mpi";
  }
  return "?";
}

// ---- Shared algorithm-aware pricing -----------------------------------------

double CommCostModel::AllReduceSeconds(size_t bytes, int world,
                                       int concurrent_groups,
                                       CollectiveAlgorithm algorithm) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const Topology& topo = topology();
  const CollectiveAlgorithm algo =
      ResolveAllReduceAlgorithm(algorithm, bytes, world, topo);
  const double fbytes = static_cast<double>(bytes);
  const double ring_traffic =
      2.0 * (world - 1) / static_cast<double>(world) * fbytes;
  const AlgoModelParams p = AlgoParams(bytes, world, concurrent_groups);
  switch (algo) {
    case CollectiveAlgorithm::kRing:
    case CollectiveAlgorithm::kTree:
      // The legacy per-backend ring model, unchanged: existing virtual-time
      // traces and the cluster sweeps keep their exact numbers.
      return AllReduceSeconds(bytes, world, concurrent_groups);
    case CollectiveAlgorithm::kNaive: {
      // Gather everything through the root's link, reduce, broadcast back:
      // (world-1)+1 message volumes through one link instead of the ring's
      // balanced 2*(world-1)/world.
      const double traffic = static_cast<double>(world) * fbytes;
      return p.base_latency + 2.0 * p.step_latency +
             traffic / p.ring_bandwidth;
    }
    case CollectiveAlgorithm::kRingChunked: {
      // Same balanced traffic as the ring, a few extra fill steps while the
      // pipeline primes, and the pipelined sustained bandwidth.
      const double steps =
          2.0 * (world - 1) + static_cast<double>(kRingChunksPerRank - 1);
      return p.base_latency + steps * p.step_latency +
             ring_traffic / p.chunked_bandwidth;
    }
    case CollectiveAlgorithm::kHalvingDoubling: {
      int pof2 = 1;
      while (pof2 * 2 <= world) pof2 *= 2;
      const double depth = std::ceil(std::log2(static_cast<double>(world)));
      double seconds = p.base_latency + 2.0 * depth * p.step_latency +
                       ring_traffic / p.ring_bandwidth;
      if (pof2 != world) {
        // Fold/unfold for the ranks beyond the leading power of two: one
        // extra full-vector exchange on each side.
        seconds += 2.0 * p.step_latency + 2.0 * fbytes / p.ring_bandwidth;
      }
      return seconds;
    }
    case CollectiveAlgorithm::kHierarchical: {
      const int per_host = std::min(world, topo.gpus_per_host());
      const int hosts = (world + topo.gpus_per_host() - 1) /
                        topo.gpus_per_host();
      const double intra_depth =
          std::ceil(std::log2(static_cast<double>(std::max(2, per_host))));
      // Intra-host reduce to the leader, then the mirror-image broadcast.
      double seconds = p.base_latency +
                       2.0 * (intra_depth * p.intra_step_latency +
                              fbytes / p.intra_bandwidth);
      if (hosts > 1) {
        // Leader ring across hosts: the only NIC-tier traffic.
        const double leader_traffic =
            2.0 * (hosts - 1) / static_cast<double>(hosts) * fbytes;
        seconds += 2.0 * (hosts - 1) * p.net_step_latency +
                   leader_traffic / p.net_bandwidth;
      }
      return seconds;
    }
    case CollectiveAlgorithm::kAuto:
      break;  // resolved above
  }
  DDPKIT_CHECK(false) << "bad algorithm";
  return 0.0;
}

// ---- NcclCostModel ----------------------------------------------------------

NcclCostModel::NcclCostModel(const Topology& topology)
    : NcclCostModel(topology, Options()) {}

NcclCostModel::NcclCostModel(const Topology& topology, const Options& options)
    : topology_(topology), options_(options) {}

double NcclCostModel::EffectiveBandwidth(int world,
                                         int concurrent_groups) const {
  double link = topology_.RingBandwidth(world);
  if (options_.degraded_above_world > 0 &&
      world > options_.degraded_above_world) {
    link *= options_.degraded_net_factor;
  }
  const double fraction = topology_.SingleHost(world)
                              ? options_.per_group_bw_fraction_intra
                              : options_.per_group_bw_fraction;
  const double per_group_cap = fraction * link;
  const double fair_share =
      link / static_cast<double>(std::max(1, concurrent_groups));
  return std::min(per_group_cap, fair_share);
}

double NcclCostModel::AllReduceSeconds(size_t bytes, int world,
                                       int concurrent_groups) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = 2.0 * (world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(world, concurrent_groups);
  const double traffic =
      2.0 * (world - 1) / static_cast<double>(world) *
      static_cast<double>(bytes);
  return options_.base_latency + steps * alpha + traffic / bandwidth;
}

double NcclCostModel::BroadcastSeconds(size_t bytes, int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  // Pipelined tree broadcast: the payload streams through the tree, so the
  // transfer time is paid once plus a per-level latency.
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(world, 1);
  return options_.base_latency + depth * alpha +
         static_cast<double>(bytes) / bandwidth;
}

double NcclCostModel::AllGatherSeconds(size_t per_rank_bytes,
                                       int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = static_cast<double>(world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(world, 1);
  return options_.base_latency + steps * alpha +
         steps * static_cast<double>(per_rank_bytes) / bandwidth;
}

double NcclCostModel::BarrierSeconds(int world) const {
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  return options_.base_latency +
         2.0 * depth *
             (topology_.RingHopLatency(world) + options_.step_overhead);
}

CommCostModel::AlgoModelParams NcclCostModel::AlgoParams(
    size_t /*bytes*/, int world, int concurrent_groups) const {
  AlgoModelParams p;
  p.base_latency = options_.base_latency;
  p.step_latency = topology_.RingHopLatency(world) + options_.step_overhead;
  p.ring_bandwidth = EffectiveBandwidth(world, concurrent_groups);

  const double groups = static_cast<double>(std::max(1, concurrent_groups));
  double link = topology_.RingBandwidth(world);
  if (options_.degraded_above_world > 0 &&
      world > options_.degraded_above_world) {
    link *= options_.degraded_net_factor;
  }
  const double chunked_fraction = topology_.SingleHost(world)
                                      ? options_.chunked_bw_fraction_intra
                                      : options_.chunked_bw_fraction;
  p.chunked_bandwidth = std::min(chunked_fraction * link, link / groups);

  const int per_host = std::min(world, topology_.gpus_per_host());
  const double intra_link = topology_.RingBandwidth(per_host);
  p.intra_bandwidth = std::min(
      options_.chunked_bw_fraction_intra * intra_link, intra_link / groups);
  p.intra_step_latency =
      topology_.RingHopLatency(per_host) + options_.step_overhead;

  double net_link = topology_.Bandwidth(LinkType::kNet);
  if (options_.degraded_above_world > 0 &&
      world > options_.degraded_above_world) {
    net_link *= options_.degraded_net_factor;
  }
  p.net_bandwidth =
      std::min(options_.chunked_bw_fraction * net_link, net_link / groups);
  p.net_step_latency =
      topology_.Latency(LinkType::kNet) + options_.step_overhead;
  return p;
}

// ---- GlooCostModel -------------------------------------------------------------

GlooCostModel::GlooCostModel(const Topology& topology)
    : GlooCostModel(topology, Options()) {}

GlooCostModel::GlooCostModel(const Topology& topology, const Options& options)
    : topology_(topology), options_(options) {}

double GlooCostModel::EffectiveBandwidth(size_t message_bytes, int world,
                                         int concurrent_groups) const {
  double bw = std::min(options_.max_bandwidth,
                       topology_.RingBandwidth(world));
  if (message_bytes > options_.large_message_bytes) {
    const double octaves =
        std::log2(static_cast<double>(message_bytes) /
                  static_cast<double>(options_.large_message_bytes)) /
        3.0;  // log base 8
    bw *= std::pow(options_.large_message_factor, 1.0 + octaves);
  }
  bw /= 1.0 + options_.world_penalty * static_cast<double>(world);
  // Gloo is CPU-bound, so concurrent groups contend for cores as well as
  // links; a mild penalty keeps rr>1 a modest win (Fig 12(b)).
  if (concurrent_groups > 1) {
    bw /= 1.0 + 0.1 * static_cast<double>(concurrent_groups - 1);
  }
  return bw;
}

double GlooCostModel::AllReduceSeconds(size_t bytes, int world,
                                       int concurrent_groups) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = 2.0 * (world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth =
      EffectiveBandwidth(std::max<size_t>(bytes, 1), world,
                         concurrent_groups);
  const double traffic = 2.0 * (world - 1) / static_cast<double>(world) *
                         static_cast<double>(bytes);
  return options_.base_latency + steps * alpha + traffic / bandwidth;
}

double GlooCostModel::BroadcastSeconds(size_t bytes, int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  // Pipelined chunked broadcast, as above.
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(bytes, world, 1);
  return options_.base_latency + depth * alpha +
         static_cast<double>(bytes) / bandwidth;
}

double GlooCostModel::AllGatherSeconds(size_t per_rank_bytes,
                                       int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = static_cast<double>(world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double bandwidth = EffectiveBandwidth(per_rank_bytes, world, 1);
  return options_.base_latency + steps * alpha +
         steps * static_cast<double>(per_rank_bytes) / bandwidth;
}

double GlooCostModel::BarrierSeconds(int world) const {
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  return options_.base_latency +
         2.0 * depth *
             (topology_.RingHopLatency(world) + options_.step_overhead);
}

CommCostModel::AlgoModelParams GlooCostModel::AlgoParams(
    size_t bytes, int world, int concurrent_groups) const {
  AlgoModelParams p;
  p.base_latency = options_.base_latency;
  p.step_latency = topology_.RingHopLatency(world) + options_.step_overhead;
  p.ring_bandwidth =
      EffectiveBandwidth(std::max<size_t>(bytes, 1), world, concurrent_groups);
  p.chunked_bandwidth = p.ring_bandwidth * options_.chunked_pipeline_gain;
  const int per_host = std::min(world, topology_.gpus_per_host());
  p.intra_bandwidth = EffectiveBandwidth(std::max<size_t>(bytes, 1), per_host,
                                         concurrent_groups);
  p.intra_step_latency =
      topology_.RingHopLatency(per_host) + options_.step_overhead;
  // The CPU/TCP path is the cap whether or not the hop crosses a NIC.
  p.net_bandwidth = p.ring_bandwidth;
  p.net_step_latency =
      topology_.Latency(LinkType::kNet) + options_.step_overhead;
  return p;
}

// ---- MpiCostModel ----------------------------------------------------------------

MpiCostModel::MpiCostModel(const Topology& topology)
    : MpiCostModel(topology, Options()) {}

MpiCostModel::MpiCostModel(const Topology& topology, const Options& options)
    : topology_(topology), options_(options) {}

double MpiCostModel::EffectiveBandwidth(int world,
                                        int concurrent_groups) const {
  const double link =
      std::min(options_.max_bandwidth, topology_.RingBandwidth(world));
  return link / static_cast<double>(std::max(1, concurrent_groups));
}

double MpiCostModel::AllReduceSeconds(size_t bytes, int world,
                                      int concurrent_groups) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = 2.0 * (world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  const double traffic = 2.0 * (world - 1) / static_cast<double>(world) *
                         static_cast<double>(bytes);
  return options_.base_latency + steps * alpha +
         traffic / EffectiveBandwidth(world, concurrent_groups);
}

double MpiCostModel::BroadcastSeconds(size_t bytes, int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  return options_.base_latency + depth * alpha +
         static_cast<double>(bytes) / EffectiveBandwidth(world, 1);
}

double MpiCostModel::AllGatherSeconds(size_t per_rank_bytes,
                                      int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  const double steps = static_cast<double>(world - 1);
  const double alpha =
      topology_.RingHopLatency(world) + options_.step_overhead;
  return options_.base_latency + steps * alpha +
         steps * static_cast<double>(per_rank_bytes) /
             EffectiveBandwidth(world, 1);
}

double MpiCostModel::BarrierSeconds(int world) const {
  if (world == 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(world)));
  return options_.base_latency +
         2.0 * depth *
             (topology_.RingHopLatency(world) + options_.step_overhead);
}

CommCostModel::AlgoModelParams MpiCostModel::AlgoParams(
    size_t /*bytes*/, int world, int concurrent_groups) const {
  AlgoModelParams p;
  const double groups = static_cast<double>(std::max(1, concurrent_groups));
  p.base_latency = options_.base_latency;
  p.step_latency = topology_.RingHopLatency(world) + options_.step_overhead;
  p.ring_bandwidth = EffectiveBandwidth(world, concurrent_groups);
  p.chunked_bandwidth = p.ring_bandwidth * options_.chunked_pipeline_gain;
  const int per_host = std::min(world, topology_.gpus_per_host());
  p.intra_bandwidth =
      std::min(options_.max_bandwidth, topology_.RingBandwidth(per_host)) /
      groups;
  p.intra_step_latency =
      topology_.RingHopLatency(per_host) + options_.step_overhead;
  p.net_bandwidth =
      std::min(options_.max_bandwidth, topology_.Bandwidth(LinkType::kNet)) /
      groups;
  p.net_step_latency =
      topology_.Latency(LinkType::kNet) + options_.step_overhead;
  return p;
}

// ---- Factory ----------------------------------------------------------------------

std::unique_ptr<CommCostModel> MakeCostModel(Backend backend,
                                             const Topology& topology) {
  switch (backend) {
    case Backend::kNccl:
      return std::make_unique<NcclCostModel>(topology);
    case Backend::kGloo:
      return std::make_unique<GlooCostModel>(topology);
    case Backend::kMpi:
      return std::make_unique<MpiCostModel>(topology);
  }
  DDPKIT_CHECK(false) << "bad backend";
  return nullptr;
}

}  // namespace ddpkit::sim
