#ifndef DDPKIT_SIM_VIRTUAL_CLOCK_H_
#define DDPKIT_SIM_VIRTUAL_CLOCK_H_

#include <algorithm>

namespace ddpkit::sim {

/// Per-rank virtual time, in seconds. Real wall-clock time on this host is
/// irrelevant to reported latencies: compute and communication cost models
/// advance these clocks, standing in for the paper's V100s and NICs.
class VirtualClock {
 public:
  double Now() const { return now_; }

  /// Advances by a non-negative duration.
  void Advance(double seconds) {
    if (seconds > 0) now_ += seconds;
  }

  /// Moves forward to `t` if `t` is in the future (never backwards — used
  /// when waiting on an async Work whose completion may already have
  /// passed).
  void AdvanceTo(double t) { now_ = std::max(now_, t); }

  void Reset(double t = 0.0) { now_ = t; }

 private:
  double now_ = 0.0;
};

}  // namespace ddpkit::sim

#endif  // DDPKIT_SIM_VIRTUAL_CLOCK_H_
