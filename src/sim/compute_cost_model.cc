#include "sim/compute_cost_model.h"

#include "common/check.h"

namespace ddpkit::sim {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kGpu:
      return "gpu";
    case DeviceKind::kCpu:
      return "cpu";
  }
  return "?";
}

ComputeCostModel::Options ComputeCostModel::GpuProfile() {
  Options o;
  o.kind = DeviceKind::kGpu;
  // 60.2M-element backward ~= 250 ms (Fig 2(c), Quadro GP100):
  // 60.2e6 * 3.8 ns + ~465 ops * 25 us ~= 229 ms + 12 ms.
  o.backward_ns_per_element = 3.8;
  o.per_op_overhead = 25e-6;
  return o;
}

ComputeCostModel::Options ComputeCostModel::CpuProfile() {
  Options o;
  o.kind = DeviceKind::kCpu;
  // 60.2M-element backward ~= 6 s (Fig 2(d)).
  o.backward_ns_per_element = 97.0;
  o.per_op_overhead = 40e-6;
  o.optimizer_ns_per_element = 8.0;
  return o;
}

ComputeCostModel::Options ComputeCostModel::V100Profile() {
  Options o;
  o.kind = DeviceKind::kGpu;
  // V100s in the 32-GPU cluster are ~1.7x faster than the GP100 of Fig 2;
  // ResNet50 backward ~= 64 ms, putting the 1-GPU iteration near the
  // ~0.11 s floor of Fig 9(a).
  o.backward_ns_per_element = 2.3;
  o.per_op_overhead = 18e-6;
  return o;
}

ComputeCostModel::ComputeCostModel() : ComputeCostModel(Options()) {}

ComputeCostModel::ComputeCostModel(const Options& options)
    : options_(options) {}

double ComputeCostModel::OpSeconds(int64_t numel, Rng* rng) const {
  double t = options_.per_op_overhead +
             static_cast<double>(numel) * options_.backward_ns_per_element *
                 1e-9;
  if (rng != nullptr && options_.op_jitter_sigma > 0.0) {
    t *= rng->LogNormal(0.0, options_.op_jitter_sigma);
  }
  return t;
}

double ComputeCostModel::ForwardSeconds(int64_t total_numel,
                                        int64_t num_ops) const {
  return options_.forward_fraction *
         BackwardSeconds(total_numel, num_ops);
}

double ComputeCostModel::BackwardSeconds(int64_t total_numel,
                                         int64_t num_ops) const {
  return static_cast<double>(num_ops) * options_.per_op_overhead +
         static_cast<double>(total_numel) *
             options_.backward_ns_per_element * 1e-9;
}

double ComputeCostModel::OptimizerSeconds(int64_t total_numel) const {
  return static_cast<double>(total_numel) *
         options_.optimizer_ns_per_element * 1e-9;
}

std::vector<double> ComputeCostModel::GradReadyTimes(
    const std::vector<int64_t>& numels_backward_order, Rng* rng) const {
  std::vector<double> ready;
  ready.reserve(numels_backward_order.size());
  double t = 0.0;
  for (int64_t numel : numels_backward_order) {
    DDPKIT_CHECK_GE(numel, 0);
    t += OpSeconds(numel, rng);
    ready.push_back(t);
  }
  return ready;
}

}  // namespace ddpkit::sim
