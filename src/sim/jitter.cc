#include "sim/jitter.h"

// StragglerModel is header-only; this translation unit anchors the library.
