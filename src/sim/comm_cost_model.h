#ifndef DDPKIT_SIM_COMM_COST_MODEL_H_
#define DDPKIT_SIM_COMM_COST_MODEL_H_

#include <cstddef>
#include <memory>

#include "sim/collective_algo.h"
#include "sim/topology.h"

namespace ddpkit::sim {

/// Communication backend flavors. The paper evaluates NCCL and Gloo and
/// supports MPI through the same ProcessGroup API (§3.3); all three are
/// modeled here.
enum class Backend { kNccl, kGloo, kMpi };
const char* BackendName(Backend backend);

/// Analytical latency model for collective operations, standing in for the
/// real NCCL/Gloo libraries (which need GPUs/NICs we don't have). The model
/// is alpha-beta: `steps * alpha + traffic / effective_bandwidth`, with the
/// ring topology's bottleneck link setting the bandwidth. Fig 2(a)/(b)
/// shapes (latency-dominated at small tensors, bandwidth-dominated at
/// large) emerge directly.
class CommCostModel {
 public:
  virtual ~CommCostModel() = default;

  /// Ring all-reduce of `bytes` over `world` ranks. `concurrent_groups` is
  /// the number of process groups concurrently sharing the links (the
  /// round-robin configuration of §5.4): a single group may not be able to
  /// saturate a link (per_group_bw_fraction), while k groups split it.
  virtual double AllReduceSeconds(size_t bytes, int world,
                                  int concurrent_groups = 1) const = 0;

  /// Algorithm-aware all-reduce pricing, shared across backends. kRing and
  /// kTree map to the legacy ring model above (so existing virtual-time
  /// traces are unchanged); kAuto resolves via SelectAllReduceAlgorithm
  /// against this model's topology — the same resolution ProcessGroupSim's
  /// data plane performs, so modeled time and data movement always agree.
  /// kRingChunked prices the pipelined ring (higher sustained link
  /// saturation, a few extra fill steps), kHalvingDoubling trades bandwidth
  /// for 2*ceil(log2 w) latency steps, and kHierarchical pays NVLink-tier
  /// cost intra-host and NIC-tier cost only for the leader ring.
  double AllReduceSeconds(size_t bytes, int world, int concurrent_groups,
                          CollectiveAlgorithm algorithm) const;

  /// Binary-tree broadcast of `bytes` from one root.
  virtual double BroadcastSeconds(size_t bytes, int world) const = 0;

  /// Ring all-gather where each rank contributes `per_rank_bytes`.
  virtual double AllGatherSeconds(size_t per_rank_bytes, int world) const = 0;

  virtual double BarrierSeconds(int world) const = 0;

  virtual Backend backend() const = 0;
  virtual const Topology& topology() const = 0;

 protected:
  /// Per-backend knobs the shared algorithm-zoo formulas consume.
  /// `ring_bandwidth` must equal what the backend's legacy ring model uses
  /// for the same (bytes, world, groups); `chunked_bandwidth` is the higher
  /// sustained rate a pipelined chunked ring achieves on the same links;
  /// the intra/net tier fields price kHierarchical's two levels.
  struct AlgoModelParams {
    double base_latency = 0.0;
    double step_latency = 0.0;       // per ring hop, protocol included
    double ring_bandwidth = 0.0;     // legacy single-group effective bw
    double chunked_bandwidth = 0.0;  // pipelined-chunked saturated bw
    double intra_bandwidth = 0.0;    // intra-host tier (kHierarchical)
    double intra_step_latency = 0.0;
    double net_bandwidth = 0.0;      // inter-host tier (kHierarchical)
    double net_step_latency = 0.0;
  };
  virtual AlgoModelParams AlgoParams(size_t bytes, int world,
                                     int concurrent_groups) const = 0;
};

/// NCCL-like: microsecond launch overhead, low per-hop latency, high
/// bandwidth on NVLink; one group alone achieves only a fraction of the
/// link (motivating round-robin groups, Fig 12).
class NcclCostModel : public CommCostModel {
 public:
  struct Options {
    /// Fixed kernel-launch / enqueue overhead per collective.
    double base_latency = 12e-6;
    /// Extra per-ring-step protocol overhead on top of link latency.
    double step_overhead = 1.5e-6;
    /// Fraction of the bottleneck link one process group can drive when the
    /// ring stays on NVLink inside one host.
    double per_group_bw_fraction_intra = 0.6;
    /// Fraction of the NIC one process group can drive across hosts. Tuned
    /// so ResNet50's gradient all-reduce at 32 GPUs takes about as long as
    /// its backward compute — the regime where the paper reports overlap is
    /// most effective (§5.1) — and so a single group leaves NIC headroom
    /// for round-robin siblings (§5.4).
    double per_group_bw_fraction = 0.2;
    /// When positive, worlds larger than this see their network bandwidth
    /// scaled by `degraded_net_factor` — modeling the paper's slow/congested
    /// shared-entitlement links beyond 128 GPUs (§5.3).
    int degraded_above_world = 0;
    double degraded_net_factor = 0.5;
    /// Sustained fraction of the bottleneck link a *pipelined chunked* ring
    /// achieves (vs the per_group fractions above): with several chunks in
    /// flight per rank the reduce of chunk k overlaps the transfer of chunk
    /// k-1, so a single group keeps the wire nearly saturated.
    double chunked_bw_fraction_intra = 0.95;
    double chunked_bw_fraction = 0.3;
  };

  explicit NcclCostModel(const Topology& topology);
  NcclCostModel(const Topology& topology, const Options& options);

  double AllReduceSeconds(size_t bytes, int world,
                          int concurrent_groups) const override;
  double BroadcastSeconds(size_t bytes, int world) const override;
  double AllGatherSeconds(size_t per_rank_bytes, int world) const override;
  double BarrierSeconds(int world) const override;
  Backend backend() const override { return Backend::kNccl; }
  const Topology& topology() const override { return topology_; }

 protected:
  AlgoModelParams AlgoParams(size_t bytes, int world,
                             int concurrent_groups) const override;

 private:
  double EffectiveBandwidth(int world, int concurrent_groups) const;

  Topology topology_;
  Options options_;
};

/// Gloo-like: CPU tensors over TCP — two orders of magnitude higher
/// per-step latency, ~1 GB/s-class bandwidth that saturates near 512 KB
/// messages and degrades mildly for very large messages and very large
/// worlds (matching Fig 2(b) and Fig 9(b)/(d)).
class GlooCostModel : public CommCostModel {
 public:
  struct Options {
    double base_latency = 60e-6;
    double step_overhead = 35e-6;
    /// Peak achievable bandwidth (already below any link limit: Gloo is
    /// CPU-bound).
    double max_bandwidth = 3.0e9;
    /// Bandwidth saturates at this message size and then *declines*
    /// gradually (CPU copy pressure grows with buffer size): effective
    /// bandwidth is scaled by large_message_factor^(1 + log8(bytes /
    /// large_message_bytes)) beyond the threshold. This yields the
    /// Fig 2(b) plateau past ~500K parameters and the Fig 7(b)/8(b)
    /// preference for ~5 MB buckets — "larger bucket sizes beyond 512KB
    /// with Gloo would only mean longer waiting time" (§5.2).
    size_t large_message_bytes = 1 << 20;
    double large_message_factor = 0.8;
    /// Per-rank bandwidth degradation: bw /= (1 + world_penalty * world).
    double world_penalty = 0.006;
    /// Gloo is CPU-bound, so chunk pipelining only overlaps the copy with
    /// the send — a modest sustained-bandwidth gain, not link saturation.
    double chunked_pipeline_gain = 1.25;
  };

  explicit GlooCostModel(const Topology& topology);
  GlooCostModel(const Topology& topology, const Options& options);

  double AllReduceSeconds(size_t bytes, int world,
                          int concurrent_groups) const override;
  double BroadcastSeconds(size_t bytes, int world) const override;
  double AllGatherSeconds(size_t per_rank_bytes, int world) const override;
  double BarrierSeconds(int world) const override;
  Backend backend() const override { return Backend::kGloo; }
  const Topology& topology() const override { return topology_; }

 protected:
  AlgoModelParams AlgoParams(size_t bytes, int world,
                             int concurrent_groups) const override;

 private:
  double EffectiveBandwidth(size_t message_bytes, int world,
                            int concurrent_groups) const;

  Topology topology_;
  Options options_;
};

/// MPI-like: host-staged buffers over the fabric. Latency between NCCL and
/// Gloo (optimized progress engine, but kernels cannot write the NIC
/// directly), bandwidth limited by the host staging copy.
class MpiCostModel : public CommCostModel {
 public:
  struct Options {
    double base_latency = 25e-6;
    double step_overhead = 8e-6;
    /// Host-staging ceiling on achievable bandwidth.
    double max_bandwidth = 2.0e9;
    /// Chunk pipelining overlaps the host staging copy with the fabric
    /// transfer; bounded well below NCCL-style link saturation.
    double chunked_pipeline_gain = 1.2;
  };

  explicit MpiCostModel(const Topology& topology);
  MpiCostModel(const Topology& topology, const Options& options);

  double AllReduceSeconds(size_t bytes, int world,
                          int concurrent_groups) const override;
  double BroadcastSeconds(size_t bytes, int world) const override;
  double AllGatherSeconds(size_t per_rank_bytes, int world) const override;
  double BarrierSeconds(int world) const override;
  Backend backend() const override { return Backend::kMpi; }
  const Topology& topology() const override { return topology_; }

 protected:
  AlgoModelParams AlgoParams(size_t bytes, int world,
                             int concurrent_groups) const override;

 private:
  double EffectiveBandwidth(int world, int concurrent_groups) const;

  Topology topology_;
  Options options_;
};

/// Factory keyed by backend flavor.
std::unique_ptr<CommCostModel> MakeCostModel(Backend backend,
                                             const Topology& topology);

}  // namespace ddpkit::sim

#endif  // DDPKIT_SIM_COMM_COST_MODEL_H_
