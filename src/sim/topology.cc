#include "sim/topology.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace ddpkit::sim {

namespace {

// DGX-1V hybrid cube-mesh: entry [i][j] is 2 for a double NVLink lane,
// 1 for a single lane, 0 for no direct NVLink (PCIe/host path). This is the
// matrix the paper's Fig 5 depicts.
constexpr int kCubeMesh[8][8] = {
    // 0  1  2  3  4  5  6  7
    {9, 1, 1, 2, 2, 0, 0, 0},  // 0
    {1, 9, 2, 1, 0, 2, 0, 0},  // 1
    {1, 2, 9, 2, 0, 0, 1, 0},  // 2
    {2, 1, 2, 9, 0, 0, 0, 1},  // 3
    {2, 0, 0, 0, 9, 1, 1, 2},  // 4
    {0, 2, 0, 0, 1, 9, 2, 1},  // 5
    {0, 0, 1, 0, 1, 2, 9, 2},  // 6
    {0, 0, 0, 1, 2, 1, 2, 9},  // 7
};

}  // namespace

const char* LinkTypeName(LinkType type) {
  switch (type) {
    case LinkType::kSelf:
      return "X";
    case LinkType::kNv2:
      return "NV2";
    case LinkType::kNv1:
      return "NV1";
    case LinkType::kNode:
      return "NODE";
    case LinkType::kNet:
      return "NET";
  }
  return "?";
}

Topology::Topology() : Topology(Options()) {}

Topology::Topology(const Options& options) : options_(options) {
  DDPKIT_CHECK_GT(options_.gpus_per_host, 0);
}

LinkType Topology::IntraHostLink(int local_a, int local_b) const {
  if (local_a == local_b) return LinkType::kSelf;
  if (local_a < 8 && local_b < 8) {
    switch (kCubeMesh[local_a][local_b]) {
      case 2:
        return LinkType::kNv2;
      case 1:
        return LinkType::kNv1;
      default:
        return LinkType::kNode;
    }
  }
  return LinkType::kNode;
}

LinkType Topology::Link(int rank_a, int rank_b) const {
  DDPKIT_CHECK(rank_a >= 0 && rank_b >= 0);
  if (rank_a == rank_b) return LinkType::kSelf;
  const int host_a = rank_a / options_.gpus_per_host;
  const int host_b = rank_b / options_.gpus_per_host;
  if (host_a != host_b) return LinkType::kNet;
  return IntraHostLink(rank_a % options_.gpus_per_host,
                       rank_b % options_.gpus_per_host);
}

double Topology::Bandwidth(LinkType type) const {
  switch (type) {
    case LinkType::kSelf:
      return 1e12;  // on-device copy, effectively free at our scale
    case LinkType::kNv2:
      return options_.nv2_bandwidth;
    case LinkType::kNv1:
      return options_.nv1_bandwidth;
    case LinkType::kNode:
      return options_.node_bandwidth;
    case LinkType::kNet:
      return options_.net_bandwidth;
  }
  return 0.0;
}

double Topology::Latency(LinkType type) const {
  switch (type) {
    case LinkType::kSelf:
      return 0.0;
    case LinkType::kNv2:
    case LinkType::kNv1:
      return options_.nvlink_latency;
    case LinkType::kNode:
      return options_.node_latency;
    case LinkType::kNet:
      return options_.net_latency;
  }
  return 0.0;
}

double Topology::RingBandwidth(int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 1e12;
  if (SingleHost(world)) {
    // NCCL builds rings along NVLink connectivity; the hybrid cube-mesh
    // admits an all-NVLink Hamiltonian ring (e.g. 0-1-2-6-4-5-7-3-0), whose
    // bottleneck is a single-lane NV1 hop.
    return options_.nv1_bandwidth;
  }
  // A multi-host ring must cross the NIC, which bottlenecks every step of
  // the pipelined ring.
  return options_.net_bandwidth;
}

double Topology::RingHopLatency(int world) const {
  DDPKIT_CHECK_GT(world, 0);
  if (world == 1) return 0.0;
  return SingleHost(world) ? options_.nvlink_latency : options_.net_latency;
}

bool Topology::SingleHost(int world) const {
  return world <= options_.gpus_per_host;
}

std::string Topology::MatrixString() const {
  std::ostringstream os;
  const int n = std::min(options_.gpus_per_host, 8);
  os << "      ";
  for (int j = 0; j < n; ++j) os << "GPU" << j << "  ";
  os << "\n";
  for (int i = 0; i < n; ++i) {
    os << "GPU" << i << "  ";
    for (int j = 0; j < n; ++j) {
      std::string cell = LinkTypeName(IntraHostLink(i, j));
      cell.resize(5, ' ');
      os << cell << " ";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ddpkit::sim
