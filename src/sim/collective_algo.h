#ifndef DDPKIT_SIM_COLLECTIVE_ALGO_H_
#define DDPKIT_SIM_COLLECTIVE_ALGO_H_

#include <cstddef>

#include "sim/topology.h"

namespace ddpkit::sim {

/// All-reduce algorithm zoo. Lives in the sim layer (below comm) so both
/// the analytical cost models and the ProcessGroupSim data plane key off
/// one enum; `comm::Algorithm` is an alias of this type.
///
/// Every variant is deterministic: it declares a canonical per-element
/// combine order that depends only on (world, numel, op), never on thread
/// count or arrival timing. Float results may differ *between* variants
/// (summation order differs, and float addition is not associative), but a
/// given variant is bit-exact across runs, pool sizes, and SIMD levels.
enum class CollectiveAlgorithm {
  /// Rank 0 accumulates contributions in ascending rank order, then
  /// broadcasts. The reference order for the property tests.
  kNaive,
  /// Classic two-phase ring: world chunks, chunk c reduced in ring order
  /// starting at rank (c+1) % world. One chunk per rank per step.
  kRing,
  /// Recursive doubling over rank spans; O(log w) steps.
  kTree,
  /// Ring with chunks_per_rank * world chunks pipelined through the ring so
  /// the reduce of chunk k overlaps the transfer of chunk k-1 (after
  /// fbcollective's allreduce_ring_chunked). Same per-chunk combine order
  /// as kRing; only the chunking granularity differs.
  kRingChunked,
  /// Recursive halving (reduce-scatter) + recursive doubling (all-gather);
  /// 2*ceil(log2 w) steps. Non-power-of-two worlds fold the extra ranks
  /// into the leading power of two first and fan back out at the end.
  kHalvingDoubling,
  /// Two-level: intra-node reduce to each node leader, ring all-reduce
  /// across leaders, intra-node broadcast. Keyed off the topology's
  /// host boundaries (NV2/NODE tiers inside a host, NET between hosts).
  kHierarchical,
  /// Defer to SelectAllReduceAlgorithm at call time (message size x world
  /// size x topology).
  kAuto,
};

const char* CollectiveAlgorithmName(CollectiveAlgorithm algorithm);

/// Message-size x world-size x topology auto-selector, honored by both the
/// cost models (when asked to price kAuto) and ProcessGroupSim's data
/// plane. Deterministic; dispatch rules are documented in DESIGN.md §10:
///   - world <= 2: kNaive (nothing to pipeline)
///   - small messages (< 256 KB): kHalvingDoubling (fewest latency steps)
///   - multi-host worlds: kHierarchical (keeps most traffic off the NIC)
///   - large single-host messages: kRingChunked (pipelining saturates the
///     bottleneck link)
CollectiveAlgorithm SelectAllReduceAlgorithm(size_t bytes, int world,
                                             const Topology& topology);

/// Resolves kAuto via the selector; returns other values unchanged.
CollectiveAlgorithm ResolveAllReduceAlgorithm(CollectiveAlgorithm algorithm,
                                              size_t bytes, int world,
                                              const Topology& topology);

/// Messages below this many bytes are latency-bound: step count, not
/// bandwidth, dominates, so the selector prefers halving-doubling.
inline constexpr size_t kSmallAllReduceBytes = 256 * 1024;

/// Pipelining depth of kRingChunked: total chunks = world * this.
inline constexpr int kRingChunksPerRank = 4;

}  // namespace ddpkit::sim

#endif  // DDPKIT_SIM_COLLECTIVE_ALGO_H_
