#ifndef DDPKIT_SIM_TOPOLOGY_H_
#define DDPKIT_SIM_TOPOLOGY_H_

#include <string>

namespace ddpkit::sim {

/// Pairwise GPU link classes, as printed by `nvidia-smi topo -m` and shown
/// in the paper's Fig 5.
enum class LinkType {
  kSelf,  // same device
  kNv2,   // double NVLink lane
  kNv1,   // single NVLink lane
  kNode,  // same host, traversing PCIe/host bridges
  kNet,   // different hosts, traversing the NIC
};

const char* LinkTypeName(LinkType type);

/// Models the paper's testbed: servers with 8 NVLink-connected V100s in a
/// hybrid cube-mesh (Fig 5), joined by a Mellanox 100 Gb/s NIC per host.
class Topology {
 public:
  struct Options {
    int gpus_per_host = 8;
    // Unidirectional effective bandwidths, bytes/second.
    double nv2_bandwidth = 50e9;
    double nv1_bandwidth = 25e9;
    double node_bandwidth = 10e9;  // PCIe/QPI path
    double net_bandwidth = 12.5e9;  // 100 Gb/s NIC
    // Per-hop latencies, seconds.
    double nvlink_latency = 2e-6;
    double node_latency = 5e-6;
    double net_latency = 15e-6;
  };

  Topology();
  explicit Topology(const Options& options);

  /// Link class between two global ranks (ranks are laid out host-major:
  /// ranks [0, gpus_per_host) share host 0, etc.).
  LinkType Link(int rank_a, int rank_b) const;

  double Bandwidth(LinkType type) const;
  double Latency(LinkType type) const;

  /// Bottleneck bandwidth and worst-hop latency along the natural ring
  /// 0 -> 1 -> ... -> world-1 -> 0, which is what ring all-reduce traverses.
  double RingBandwidth(int world) const;
  double RingHopLatency(int world) const;

  /// True if all `world` ranks fit on one host (no NIC hop), the regime the
  /// paper recommends staying in when possible (§6.1).
  bool SingleHost(int world) const;

  int gpus_per_host() const { return options_.gpus_per_host; }
  const Options& options() const { return options_; }

  /// Renders the 8x8 intra-host connection matrix (the content of Fig 5).
  std::string MatrixString() const;

 private:
  /// Intra-host link class between local device indices (hybrid cube-mesh).
  LinkType IntraHostLink(int local_a, int local_b) const;

  Options options_;
};

}  // namespace ddpkit::sim

#endif  // DDPKIT_SIM_TOPOLOGY_H_
