#ifndef DDPKIT_SIM_JITTER_H_
#define DDPKIT_SIM_JITTER_H_

#include "common/rng.h"

namespace ddpkit::sim {

/// Straggler model: per-rank, per-iteration multiplicative skew on compute
/// time, log-normal so the tail is one-sided (a rank can be late, never
/// early). The paper attributes the wider box-whisker spread at 32 GPUs
/// (Fig 8) and shared-entitlement variance (§5) to exactly this effect —
/// a synchronized collective waits for the slowest participant.
class StragglerModel {
 public:
  struct Options {
    /// Sigma of the log-normal skew factor. 0 disables jitter.
    double sigma = 0.04;
    /// Additional fixed probability of a "hiccup" iteration (the delay
    /// spikes at 100-iteration boundaries in Fig 7).
    double hiccup_probability = 0.0;
    double hiccup_factor = 1.5;
    /// Fault-injection extension: probability that a rank-collective
    /// suffers a hard stall — a seconds-scale pause (page fault storm,
    /// checkpoint write, preemption on shared entitlements, §5) rather
    /// than the multiplicative skew above. Sampled by SampleStallSeconds
    /// and consumed by comm::FaultPlan::AddRandomStalls.
    double stall_probability = 0.0;
    double stall_min_seconds = 0.5;
    double stall_max_seconds = 5.0;
  };

  StragglerModel() : options_(Options()) {}
  explicit StragglerModel(const Options& options) : options_(options) {}

  /// Multiplicative skew for one rank-iteration, >= ~1.
  double Sample(Rng* rng) const {
    double f = options_.sigma > 0.0 ? rng->LogNormal(0.0, options_.sigma)
                                    : 1.0;
    if (options_.hiccup_probability > 0.0 &&
        rng->Uniform() < options_.hiccup_probability) {
      f *= options_.hiccup_factor;
    }
    return f;
  }

  /// Seconds of hard stall for one rank-collective; 0.0 unless the stall
  /// lottery (stall_probability) hits. Uniform in [stall_min_seconds,
  /// stall_max_seconds) when it does.
  double SampleStallSeconds(Rng* rng) const {
    if (options_.stall_probability <= 0.0 ||
        rng->Uniform() >= options_.stall_probability) {
      return 0.0;
    }
    return rng->Uniform(options_.stall_min_seconds,
                        options_.stall_max_seconds);
  }

  /// The expected maximum skew across `world` independent ranks grows with
  /// world size; a synchronized all-reduce starts at that maximum. This
  /// samples max over `world` draws.
  double SampleMaxOverWorld(Rng* rng, int world) const {
    double mx = 1.0;
    for (int i = 0; i < world; ++i) {
      const double f = Sample(rng);
      if (f > mx) mx = f;
    }
    return mx;
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace ddpkit::sim

#endif  // DDPKIT_SIM_JITTER_H_
