#ifndef DDPKIT_SIM_COMPUTE_COST_MODEL_H_
#define DDPKIT_SIM_COMPUTE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ddpkit::sim {

/// Device classes from the paper's Fig 2(c)/(d) measurements.
enum class DeviceKind { kGpu, kCpu };
const char* DeviceKindName(DeviceKind kind);

/// Analytical compute-time model: an operation over `numel` parameter
/// elements costs `per_op_overhead + numel * ns_per_element`. Calibrated so
/// a 60M-parameter ResNet152 backward takes ~250 ms on the "GPU" profile
/// and ~6 s on the "CPU" profile, reproducing Fig 2(c)/(d).
class ComputeCostModel {
 public:
  struct Options {
    DeviceKind kind = DeviceKind::kGpu;
    /// Backward-pass throughput.
    double backward_ns_per_element = 3.8;
    /// Per-layer fixed overhead (kernel launches, bookkeeping), seconds.
    double per_op_overhead = 25e-6;
    /// Forward cost as a fraction of backward cost.
    double forward_fraction = 0.5;
    /// Optimizer-step throughput.
    double optimizer_ns_per_element = 0.8;
    /// Multiplicative log-normal per-op noise (sigma); 0 disables.
    double op_jitter_sigma = 0.05;
  };

  /// Profile factories matching the paper's two measurement devices.
  static Options GpuProfile();
  static Options CpuProfile();
  /// Faster profile for the V100 cluster of §5 (Fig 2 used older GP100s).
  static Options V100Profile();

  ComputeCostModel();
  explicit ComputeCostModel(const Options& options);

  double ForwardSeconds(int64_t total_numel, int64_t num_ops) const;
  double BackwardSeconds(int64_t total_numel, int64_t num_ops) const;
  double OptimizerSeconds(int64_t total_numel) const;

  /// The gradient-readiness timeline: given per-parameter element counts in
  /// *backward execution order* (reverse of forward registration), returns
  /// the virtual time at which each gradient becomes ready, measured from
  /// the start of the backward pass. With a non-null rng, per-op jitter is
  /// applied — producing the "measured range" band of Fig 2(c)/(d).
  std::vector<double> GradReadyTimes(
      const std::vector<int64_t>& numels_backward_order, Rng* rng) const;

  const Options& options() const { return options_; }

 private:
  double OpSeconds(int64_t numel, Rng* rng) const;

  Options options_;
};

}  // namespace ddpkit::sim

#endif  // DDPKIT_SIM_COMPUTE_COST_MODEL_H_
