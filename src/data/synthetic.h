#ifndef DDPKIT_DATA_SYNTHETIC_H_
#define DDPKIT_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace ddpkit::data {

/// A minibatch of examples.
struct Batch {
  Tensor inputs;
  Tensor targets;
};

/// Deterministic synthetic linear-regression task: y = x W* + eps. Useful
/// for exact-equivalence tests and the quickstart example (the paper's §3.1
/// toy uses random inputs with an MSE criterion).
class SyntheticRegression {
 public:
  SyntheticRegression(int64_t num_examples, int64_t in_dim, int64_t out_dim,
                      uint64_t seed);

  /// Batch assembled from example indices (inputs [n, in], targets [n, out]).
  Batch Get(const std::vector<int64_t>& indices) const;

  int64_t size() const { return num_examples_; }

 private:
  int64_t num_examples_;
  int64_t in_dim_;
  int64_t out_dim_;
  Tensor inputs_;   // [N, in]
  Tensor targets_;  // [N, out]
};

/// MNIST stand-in (the real dataset is not available offline): ten Gaussian
/// class prototypes over 28x28 images; each example is its class prototype
/// plus noise. Enough signal for the Fig 11 convergence-comparison
/// experiments, whose point is relative behaviour across no_sync cadences,
/// not absolute accuracy.
class SyntheticMnist {
 public:
  SyntheticMnist(int64_t num_examples, uint64_t seed,
                 double noise_stddev = 0.7);

  /// inputs [n, 1, 28, 28] float32, targets [n] int64.
  Batch Get(const std::vector<int64_t>& indices) const;

  int64_t size() const { return num_examples_; }
  int64_t num_classes() const { return 10; }

 private:
  int64_t num_examples_;
  double noise_stddev_;
  uint64_t seed_;
  Tensor prototypes_;  // [10, 28*28]
  std::vector<int64_t> labels_;
};

/// Synthetic token-classification task for the transformer models: random
/// token sequences labeled by the vocabulary band of their maximum token
/// (learnable, but requires attending across all positions).
class SyntheticTokens {
 public:
  SyntheticTokens(int64_t num_examples, int64_t seq_len, int64_t vocab_size,
                  int64_t num_classes, uint64_t seed);

  /// inputs [n, seq_len] int64, targets [n] int64.
  Batch Get(const std::vector<int64_t>& indices) const;

  int64_t size() const { return num_examples_; }

 private:
  int64_t num_examples_;
  int64_t seq_len_;
  int64_t num_classes_;
  Tensor tokens_;  // [N, seq_len] int64
  std::vector<int64_t> labels_;
};

}  // namespace ddpkit::data

#endif  // DDPKIT_DATA_SYNTHETIC_H_
