#ifndef DDPKIT_DATA_DISTRIBUTED_SAMPLER_H_
#define DDPKIT_DATA_DISTRIBUTED_SAMPLER_H_

#include <cstdint>
#include <vector>

namespace ddpkit::data {

/// Partitions a dataset across ranks, PyTorch DistributedSampler-style:
/// every epoch gets a deterministic seed-driven shuffle (identical on all
/// ranks), the index list is padded to a multiple of world size, and rank r
/// takes every world-th element. The union of all ranks' batch slices for a
/// step is exactly the global batch — the property that makes DDP's
/// averaged gradient equal the local-training gradient over that batch.
class DistributedSampler {
 public:
  DistributedSampler(int64_t dataset_size, int world, int rank,
                     uint64_t seed = 0, bool shuffle = true);

  /// This rank's example indices for `epoch`.
  std::vector<int64_t> EpochIndices(int64_t epoch) const;

  /// Number of examples per rank per epoch (padded).
  int64_t samples_per_rank() const;

 private:
  int64_t dataset_size_;
  int world_;
  int rank_;
  uint64_t seed_;
  bool shuffle_;
};

}  // namespace ddpkit::data

#endif  // DDPKIT_DATA_DISTRIBUTED_SAMPLER_H_
