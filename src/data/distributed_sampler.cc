#include "data/distributed_sampler.h"

#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace ddpkit::data {

DistributedSampler::DistributedSampler(int64_t dataset_size, int world,
                                       int rank, uint64_t seed, bool shuffle)
    : dataset_size_(dataset_size),
      world_(world),
      rank_(rank),
      seed_(seed),
      shuffle_(shuffle) {
  DDPKIT_CHECK_GT(dataset_size, 0);
  DDPKIT_CHECK_GT(world, 0);
  DDPKIT_CHECK(rank >= 0 && rank < world);
}

int64_t DistributedSampler::samples_per_rank() const {
  return (dataset_size_ + world_ - 1) / world_;
}

std::vector<int64_t> DistributedSampler::EpochIndices(int64_t epoch) const {
  std::vector<int64_t> all(static_cast<size_t>(dataset_size_));
  std::iota(all.begin(), all.end(), 0);
  if (shuffle_) {
    // Same seed on all ranks => same permutation on all ranks.
    Rng rng(seed_ * 1000003ULL + static_cast<uint64_t>(epoch));
    for (size_t i = all.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(rng.UniformInt(i));
      std::swap(all[i - 1], all[j]);
    }
  }
  // Pad by wrapping so every rank sees the same count.
  const int64_t per_rank = samples_per_rank();
  const int64_t padded = per_rank * world_;
  std::vector<int64_t> mine;
  mine.reserve(static_cast<size_t>(per_rank));
  for (int64_t i = rank_; i < padded; i += world_) {
    mine.push_back(all[static_cast<size_t>(i % dataset_size_)]);
  }
  return mine;
}

}  // namespace ddpkit::data
