#include "data/synthetic.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::data {

// ---- SyntheticRegression -----------------------------------------------------

SyntheticRegression::SyntheticRegression(int64_t num_examples, int64_t in_dim,
                                         int64_t out_dim, uint64_t seed)
    : num_examples_(num_examples), in_dim_(in_dim), out_dim_(out_dim) {
  Rng rng(seed);
  inputs_ = Tensor::Randn({num_examples, in_dim}, &rng);
  Tensor w_star = Tensor::Randn({in_dim, out_dim}, &rng);
  targets_ = kernels::MatMul(inputs_, w_star);
  Tensor noise = Tensor::Randn({num_examples, out_dim}, &rng);
  kernels::Axpy(0.01, noise, &targets_);
}

Batch SyntheticRegression::Get(const std::vector<int64_t>& indices) const {
  const int64_t n = static_cast<int64_t>(indices.size());
  Batch batch;
  batch.inputs = Tensor::Empty({n, in_dim_});
  batch.targets = Tensor::Empty({n, out_dim_});
  for (int64_t i = 0; i < n; ++i) {
    DDPKIT_CHECK(indices[i] >= 0 && indices[i] < num_examples_);
    batch.inputs.Narrow(0, i, 1).CopyFrom(inputs_.Narrow(0, indices[i], 1));
    batch.targets.Narrow(0, i, 1).CopyFrom(targets_.Narrow(0, indices[i], 1));
  }
  return batch;
}

// ---- SyntheticMnist -----------------------------------------------------------

SyntheticMnist::SyntheticMnist(int64_t num_examples, uint64_t seed,
                               double noise_stddev)
    : num_examples_(num_examples), noise_stddev_(noise_stddev), seed_(seed) {
  Rng rng(seed);
  prototypes_ = Tensor::Randn({10, 28 * 28}, &rng);
  labels_.resize(static_cast<size_t>(num_examples));
  for (int64_t i = 0; i < num_examples; ++i) {
    labels_[static_cast<size_t>(i)] =
        static_cast<int64_t>(rng.UniformInt(10));
  }
}

Batch SyntheticMnist::Get(const std::vector<int64_t>& indices) const {
  const int64_t n = static_cast<int64_t>(indices.size());
  Batch batch;
  batch.inputs = Tensor::Empty({n, 1, 28, 28});
  std::vector<int64_t> target_values;
  target_values.reserve(static_cast<size_t>(n));
  float* out = batch.inputs.data<float>();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t idx = indices[static_cast<size_t>(i)];
    DDPKIT_CHECK(idx >= 0 && idx < num_examples_);
    const int64_t label = labels_[static_cast<size_t>(idx)];
    target_values.push_back(label);
    // Noise is a pure function of (seed, example index) so every rank sees
    // identical examples for identical indices.
    Rng example_rng(seed_ * 7919ULL + static_cast<uint64_t>(idx) + 1);
    const float* proto = prototypes_.data<float>() + label * 28 * 28;
    float* dst = out + i * 28 * 28;
    for (int64_t j = 0; j < 28 * 28; ++j) {
      dst[j] = proto[j] + static_cast<float>(
                              example_rng.Normal(0.0, noise_stddev_));
    }
  }
  batch.targets = Tensor::FromVectorInt64(target_values, {n});
  return batch;
}

// ---- SyntheticTokens ------------------------------------------------------------

SyntheticTokens::SyntheticTokens(int64_t num_examples, int64_t seq_len,
                                 int64_t vocab_size, int64_t num_classes,
                                 uint64_t seed)
    : num_examples_(num_examples),
      seq_len_(seq_len),
      num_classes_(num_classes) {
  Rng rng(seed);
  std::vector<int64_t> tokens(
      static_cast<size_t>(num_examples * seq_len));
  labels_.resize(static_cast<size_t>(num_examples));
  for (int64_t i = 0; i < num_examples; ++i) {
    for (int64_t j = 0; j < seq_len; ++j) {
      const int64_t tok = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(vocab_size)));
      tokens[static_cast<size_t>(i * seq_len + j)] = tok;
    }
    // Label = which vocabulary band the maximum token falls into: a
    // deterministic function of the sequence that genuinely requires
    // attending across positions, yet is learnable by a small model.
    int64_t max_tok = 0;
    for (int64_t j = 0; j < seq_len; ++j) {
      max_tok = std::max(max_tok,
                         tokens[static_cast<size_t>(i * seq_len + j)]);
    }
    labels_[static_cast<size_t>(i)] = max_tok * num_classes / vocab_size;
  }
  tokens_ = Tensor::FromVectorInt64(tokens, {num_examples, seq_len});
}

Batch SyntheticTokens::Get(const std::vector<int64_t>& indices) const {
  const int64_t n = static_cast<int64_t>(indices.size());
  Batch batch;
  batch.inputs = Tensor::Empty({n, seq_len_}, DType::kInt64);
  std::vector<int64_t> target_values;
  target_values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t idx = indices[static_cast<size_t>(i)];
    DDPKIT_CHECK(idx >= 0 && idx < num_examples_);
    batch.inputs.Narrow(0, i, 1).CopyFrom(tokens_.Narrow(0, idx, 1));
    target_values.push_back(labels_[static_cast<size_t>(idx)]);
  }
  batch.targets = Tensor::FromVectorInt64(target_values, {n});
  return batch;
}

}  // namespace ddpkit::data
