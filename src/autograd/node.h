#ifndef DDPKIT_AUTOGRAD_NODE_H_
#define DDPKIT_AUTOGRAD_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ddpkit::autograd {

class Node;

/// A directed edge in the backward graph: gradient flowing out of a node is
/// routed to `node`, arriving at that node's `input_index`-th input slot
/// (the producing tensor's output number in the forward pass).
struct Edge {
  std::shared_ptr<Node> node;
  int input_index = 0;

  bool valid() const { return node != nullptr; }
};

/// A backward-graph node: the gradient function for one forward operation.
/// PyTorch calls these `Function`s; DDP's whole interception strategy hangs
/// on two properties reproduced here: (1) the graph is rebuilt dynamically
/// on every forward pass, and (2) leaf tensors get a stable GradAccumulator
/// node that accepts post-hooks.
class Node {
 public:
  Node();
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Consumes gradients w.r.t. this op's forward outputs and produces
  /// gradients w.r.t. its forward inputs (parallel to next_edges()).
  /// An undefined tensor in either direction means "no gradient".
  virtual std::vector<Tensor> Apply(std::vector<Tensor> grad_outputs) = 0;

  virtual std::string name() const = 0;

  const std::vector<Edge>& next_edges() const { return next_edges_; }
  void set_next_edges(std::vector<Edge> edges) {
    next_edges_ = std::move(edges);
  }

  /// Number of gradient slots this node receives (one per forward output).
  int num_inputs() const { return num_inputs_; }
  void set_num_inputs(int n) { num_inputs_ = n; }

  /// Gradient accumulators (leaf terminals) report true: the engine pops
  /// them ahead of interior nodes so DDP's hooks fire as soon as each
  /// gradient is available mid-backward (PyTorch gives AccumulateGrad
  /// maximum sequence priority for the same reason).
  virtual bool is_accumulator() const { return false; }

  /// Monotonically increasing creation counter; later forward ops get
  /// higher numbers. The engine pops ready nodes in descending sequence
  /// order so the backward pass mirrors the reverse of the forward pass —
  /// which is what makes the paper's "reverse order of model.parameters()"
  /// bucketing heuristic effective.
  uint64_t sequence_nr() const { return sequence_nr_; }

 private:
  std::vector<Edge> next_edges_;
  int num_inputs_ = 1;
  uint64_t sequence_nr_;
};

/// Concrete autograd metadata attached to tensors that participate in the
/// graph (see AutogradMetaBase in tensor/tensor.h).
struct AutogradMeta : public AutogradMetaBase {
  /// The gradient function that produced this tensor (non-leaf only).
  std::shared_ptr<Node> grad_fn;
  /// Which output of grad_fn this tensor is.
  int output_nr = 0;
  /// Stable per-leaf gradient accumulator (leaf only, created lazily).
  std::shared_ptr<Node> grad_accumulator;
};

/// Returns the tensor's AutogradMeta, creating it if absent.
AutogradMeta* GetOrCreateMeta(const Tensor& t);
/// Returns the meta if present, else nullptr.
AutogradMeta* MaybeMeta(const Tensor& t);

/// True if the tensor is a graph leaf (requires grad but has no grad_fn).
bool IsLeaf(const Tensor& t);

/// The edge gradient should follow out of tensor `t`: its accumulator edge
/// for leaves, its grad_fn edge for interior tensors, or an invalid edge if
/// `t` does not require grad.
Edge GradEdge(const Tensor& t);

/// Marks `out` as produced by `node` (output_nr = index among outputs).
void SetHistory(Tensor* out, std::shared_ptr<Node> node, int output_nr = 0);

}  // namespace ddpkit::autograd

#endif  // DDPKIT_AUTOGRAD_NODE_H_
