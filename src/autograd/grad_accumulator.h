#ifndef DDPKIT_AUTOGRAD_GRAD_ACCUMULATOR_H_
#define DDPKIT_AUTOGRAD_GRAD_ACCUMULATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/node.h"
#include "tensor/tensor.h"

namespace ddpkit::autograd {

/// Terminal backward-graph node for a leaf tensor (a parameter). When the
/// engine delivers a gradient here it is accumulated into `param.grad`, and
/// then every registered post-hook fires.
///
/// This is the exact interception point the paper describes (§3.2.3,
/// §4.2 "Autograd Hook"): DDP installs one post-hook per parameter at
/// construction time; the hook is invoked by the engine when that
/// parameter's gradient is ready, which lets DDP count down per-bucket
/// pending gradients and launch AllReduce mid-backward.
class GradAccumulator : public Node {
 public:
  /// `param` is held by impl pointer so the accumulator does not keep the
  /// tensor's autograd meta alive in a reference cycle.
  explicit GradAccumulator(const Tensor& param);

  std::vector<Tensor> Apply(std::vector<Tensor> grad_outputs) override;
  std::string name() const override { return "GradAccumulator"; }
  bool is_accumulator() const override { return true; }

  /// Registers a post-hook. Hooks fire after the gradient has been added to
  /// param.grad, in registration order. Returns the hook's id.
  using PostHook = std::function<void(const Tensor& param)>;
  int AddPostHook(PostHook hook);

  /// The parameter this accumulator belongs to.
  Tensor param() const;

 private:
  std::weak_ptr<internal::TensorImpl> param_impl_;
  std::vector<PostHook> post_hooks_;
};

/// Returns (creating on first use) the stable GradAccumulator for a leaf
/// tensor. Precondition: t.requires_grad() and t is a leaf.
std::shared_ptr<GradAccumulator> GetGradAccumulator(const Tensor& t);

}  // namespace ddpkit::autograd

#endif  // DDPKIT_AUTOGRAD_GRAD_ACCUMULATOR_H_
