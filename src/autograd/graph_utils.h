#ifndef DDPKIT_AUTOGRAD_GRAPH_UTILS_H_
#define DDPKIT_AUTOGRAD_GRAPH_UTILS_H_

#include <unordered_set>
#include <vector>

#include "tensor/tensor.h"

namespace ddpkit::autograd {

/// Traverses the autograd graph from the given forward outputs and returns
/// the identity keys (Tensor::id()) of every *leaf parameter* whose
/// GradAccumulator is reachable — i.e. every parameter that will receive a
/// gradient in the next backward pass.
///
/// This is the mechanism behind DDP's unused-parameter handling (paper
/// §3.2.3 / Algorithm 1 line 10): parameters NOT in this set are marked
/// ready proactively so skipped sub-graphs cannot hang the bucket logic.
std::unordered_set<const void*> FindReachableParams(
    const std::vector<Tensor>& outputs);

}  // namespace ddpkit::autograd

#endif  // DDPKIT_AUTOGRAD_GRAPH_UTILS_H_
