#include "autograd/grad_accumulator.h"

namespace ddpkit::autograd {

GradAccumulator::GradAccumulator(const Tensor& param)
    : param_impl_(GetTensorImpl(param)) {}

Tensor GradAccumulator::param() const {
  auto impl = param_impl_.lock();
  DDPKIT_CHECK(impl != nullptr) << "parameter outlived by its accumulator";
  return MakeTensorFromImpl(impl);
}

std::vector<Tensor> GradAccumulator::Apply(std::vector<Tensor> grad_outputs) {
  DDPKIT_CHECK_EQ(grad_outputs.size(), 1u);
  Tensor p = param();
  if (grad_outputs[0].defined()) {
    Tensor g = grad_outputs[0].is_contiguous() ? grad_outputs[0]
                                               : grad_outputs[0].Contiguous();
    p.AccumulateGrad(g.Reshape(p.shape()));
  }
  for (const auto& hook : post_hooks_) hook(p);
  return {};
}

int GradAccumulator::AddPostHook(PostHook hook) {
  post_hooks_.push_back(std::move(hook));
  return static_cast<int>(post_hooks_.size()) - 1;
}

std::shared_ptr<GradAccumulator> GetGradAccumulator(const Tensor& t) {
  DDPKIT_CHECK(t.requires_grad());
  AutogradMeta* meta = GetOrCreateMeta(t);
  DDPKIT_CHECK(meta->grad_fn == nullptr)
      << "GetGradAccumulator called on a non-leaf tensor";
  if (!meta->grad_accumulator) {
    meta->grad_accumulator = std::make_shared<GradAccumulator>(t);
  }
  return std::static_pointer_cast<GradAccumulator>(meta->grad_accumulator);
}

}  // namespace ddpkit::autograd
