#include "autograd/node.h"

#include <atomic>

#include "autograd/grad_accumulator.h"

namespace ddpkit::autograd {

namespace {
std::atomic<uint64_t> g_sequence_counter{0};
}  // namespace

Node::Node() : sequence_nr_(g_sequence_counter.fetch_add(1)) {}

AutogradMeta* GetOrCreateMeta(const Tensor& t) {
  auto meta = t.autograd_meta();
  if (!meta) {
    meta = std::make_shared<AutogradMeta>();
    const_cast<Tensor&>(t).set_autograd_meta(meta);
  }
  return static_cast<AutogradMeta*>(meta.get());
}

AutogradMeta* MaybeMeta(const Tensor& t) {
  auto meta = t.autograd_meta();
  return meta ? static_cast<AutogradMeta*>(meta.get()) : nullptr;
}

bool IsLeaf(const Tensor& t) {
  if (!t.requires_grad()) return false;
  AutogradMeta* meta = MaybeMeta(t);
  return meta == nullptr || meta->grad_fn == nullptr;
}

Edge GradEdge(const Tensor& t) {
  if (!t.defined() || !t.requires_grad()) return Edge{};
  AutogradMeta* meta = MaybeMeta(t);
  if (meta != nullptr && meta->grad_fn != nullptr) {
    return Edge{meta->grad_fn, meta->output_nr};
  }
  return Edge{GetGradAccumulator(t), 0};
}

void SetHistory(Tensor* out, std::shared_ptr<Node> node, int output_nr) {
  DDPKIT_CHECK(out != nullptr && out->defined());
  AutogradMeta* meta = GetOrCreateMeta(*out);
  meta->grad_fn = std::move(node);
  meta->output_nr = output_nr;
  out->set_requires_grad(true);
}

}  // namespace ddpkit::autograd
