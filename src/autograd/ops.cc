#include "autograd/ops.h"

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "autograd/engine.h"
#include "autograd/node.h"

namespace ddpkit::ops {

namespace {

using autograd::Edge;
using autograd::GradEdge;
using autograd::GradModeEnabled;
using autograd::Node;
using autograd::SetHistory;

/// Generic backward node whose gradient function is a captured lambda.
/// Keeps op definitions compact; saved tensors live in the closure.
class LambdaNode : public Node {
 public:
  using Fn = std::function<std::vector<Tensor>(std::vector<Tensor>)>;
  LambdaNode(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::vector<Tensor> Apply(std::vector<Tensor> grad_outputs) override {
    autograd::NoGradGuard guard;
    return fn_(std::move(grad_outputs));
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

bool AnyRequiresGrad(std::initializer_list<const Tensor*> inputs) {
  if (!GradModeEnabled()) return false;
  for (const Tensor* t : inputs) {
    if (t->defined() && t->requires_grad()) return true;
  }
  return false;
}

/// Attaches a LambdaNode producing gradients for `inputs` (in order).
void Record(Tensor* out, const char* name,
            std::initializer_list<const Tensor*> inputs, LambdaNode::Fn fn) {
  auto node = std::make_shared<LambdaNode>(name, std::move(fn));
  std::vector<Edge> edges;
  edges.reserve(inputs.size());
  for (const Tensor* t : inputs) edges.push_back(GradEdge(*t));
  node->set_next_edges(std::move(edges));
  SetHistory(out, std::move(node));
}

Tensor FirstGrad(std::vector<Tensor>& grads) {
  DDPKIT_CHECK(!grads.empty() && grads[0].defined());
  return grads[0].Contiguous();
}

}  // namespace

// ---- Elementwise -------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = kernels::Add(a, b);
  if (AnyRequiresGrad({&a, &b})) {
    Record(&out, "AddBackward", {&a, &b}, [](std::vector<Tensor> grads) {
      Tensor g = FirstGrad(grads);
      return std::vector<Tensor>{g, g};
    });
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = kernels::Sub(a, b);
  if (AnyRequiresGrad({&a, &b})) {
    Record(&out, "SubBackward", {&a, &b}, [](std::vector<Tensor> grads) {
      Tensor g = FirstGrad(grads);
      return std::vector<Tensor>{g, kernels::Neg(g)};
    });
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = kernels::Mul(a, b);
  if (AnyRequiresGrad({&a, &b})) {
    Tensor sa = a, sb = b;
    Record(&out, "MulBackward", {&a, &b}, [sa, sb](std::vector<Tensor> grads) {
      Tensor g = FirstGrad(grads);
      return std::vector<Tensor>{kernels::Mul(g, sb), kernels::Mul(g, sa)};
    });
  }
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  Tensor out = kernels::Div(a, b);
  if (AnyRequiresGrad({&a, &b})) {
    Tensor sa = a, sb = b;
    Record(&out, "DivBackward", {&a, &b}, [sa, sb](std::vector<Tensor> grads) {
      Tensor g = FirstGrad(grads);
      // d(a/b)/da = 1/b ; d(a/b)/db = -a/b^2.
      Tensor grad_a = kernels::Div(g, sb);
      Tensor grad_b =
          kernels::Neg(kernels::Div(kernels::Mul(g, sa),
                                    kernels::Mul(sb, sb)));
      return std::vector<Tensor>{grad_a, grad_b};
    });
  }
  return out;
}

Tensor Scale(const Tensor& a, double s) {
  Tensor out = kernels::Scale(a, s);
  if (AnyRequiresGrad({&a})) {
    Record(&out, "ScaleBackward", {&a}, [s](std::vector<Tensor> grads) {
      return std::vector<Tensor>{kernels::Scale(FirstGrad(grads), s)};
    });
  }
  return out;
}

Tensor Exp(const Tensor& a) {
  Tensor out = kernels::Exp(a);
  if (AnyRequiresGrad({&a})) {
    Tensor sout = out;
    Record(&out, "ExpBackward", {&a}, [sout](std::vector<Tensor> grads) {
      return std::vector<Tensor>{kernels::Mul(FirstGrad(grads), sout)};
    });
  }
  return out;
}

Tensor Log(const Tensor& a) {
  Tensor out = kernels::Log(a);
  if (AnyRequiresGrad({&a})) {
    Tensor sa = a;
    Record(&out, "LogBackward", {&a}, [sa](std::vector<Tensor> grads) {
      return std::vector<Tensor>{kernels::Div(FirstGrad(grads), sa)};
    });
  }
  return out;
}

Tensor Sqrt(const Tensor& a) {
  Tensor out = kernels::Sqrt(a);
  if (AnyRequiresGrad({&a})) {
    Tensor sout = out;
    Record(&out, "SqrtBackward", {&a}, [sout](std::vector<Tensor> grads) {
      // d sqrt(a)/da = 1 / (2 sqrt(a)).
      return std::vector<Tensor>{
          kernels::Div(FirstGrad(grads), kernels::Scale(sout, 2.0))};
    });
  }
  return out;
}

Tensor Dropout(const Tensor& a, double p, Rng* rng) {
  DDPKIT_CHECK(p >= 0.0 && p < 1.0);
  if (p == 0.0) return a;
  DDPKIT_CHECK(rng != nullptr);
  // Build the inverted-dropout mask, then apply it as an elementwise
  // multiply (whose backward reuses the mask).
  Tensor mask = Tensor::Empty(a.shape(), DType::kFloat32, a.device_id());
  {
    float* pm = mask.data<float>();
    const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
    const int64_t n = mask.numel();
    for (int64_t i = 0; i < n; ++i) {
      pm[i] = rng->Uniform() < p ? 0.0f : keep_scale;
    }
  }
  return Mul(a, mask);
}

// ---- Activations ---------------------------------------------------------------

Tensor Relu(const Tensor& a) {
  Tensor out = kernels::Relu(a);
  if (AnyRequiresGrad({&a})) {
    Tensor saved = a;
    Record(&out, "ReluBackward", {&a}, [saved](std::vector<Tensor> grads) {
      return std::vector<Tensor>{
          kernels::ReluBackward(FirstGrad(grads), saved)};
    });
  }
  return out;
}

Tensor Gelu(const Tensor& a) {
  Tensor out = kernels::Gelu(a);
  if (AnyRequiresGrad({&a})) {
    Tensor saved = a;
    Record(&out, "GeluBackward", {&a}, [saved](std::vector<Tensor> grads) {
      return std::vector<Tensor>{
          kernels::GeluBackward(FirstGrad(grads), saved)};
    });
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = kernels::Sigmoid(a);
  if (AnyRequiresGrad({&a})) {
    Tensor sout = out;
    Record(&out, "SigmoidBackward", {&a}, [sout](std::vector<Tensor> grads) {
      // d sigma/dx = sigma (1 - sigma).
      Tensor g = FirstGrad(grads);
      Tensor one_minus = kernels::AddScalar(kernels::Neg(sout), 1.0);
      return std::vector<Tensor>{
          kernels::Mul(g, kernels::Mul(sout, one_minus))};
    });
  }
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out = kernels::Tanh(a);
  if (AnyRequiresGrad({&a})) {
    Tensor sout = out;
    Record(&out, "TanhBackward", {&a}, [sout](std::vector<Tensor> grads) {
      // d tanh/dx = 1 - tanh^2.
      Tensor g = FirstGrad(grads);
      Tensor one_minus_sq =
          kernels::AddScalar(kernels::Neg(kernels::Mul(sout, sout)), 1.0);
      return std::vector<Tensor>{kernels::Mul(g, one_minus_sq)};
    });
  }
  return out;
}

// ---- Linear algebra ---------------------------------------------------------------

Tensor Linear(const Tensor& input, const Tensor& weight, const Tensor& bias) {
  DDPKIT_CHECK_EQ(input.dim(), 2);
  DDPKIT_CHECK_EQ(weight.dim(), 2);
  Tensor out = kernels::MatMulTransB(input, weight);
  if (bias.defined()) out = kernels::AddRowBroadcast(out, bias);
  if (AnyRequiresGrad({&input, &weight, &bias})) {
    Tensor sin = input, sw = weight;
    const bool has_bias = bias.defined();
    Record(&out, "LinearBackward", {&input, &weight, &bias},
           [sin, sw, has_bias](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             Tensor grad_input = kernels::MatMul(g, sw);
             Tensor grad_weight = kernels::MatMulTransA(g, sin);
             Tensor grad_bias = has_bias ? kernels::SumRows(g) : Tensor();
             return std::vector<Tensor>{grad_input, grad_weight, grad_bias};
           });
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out = kernels::MatMul(a, b);
  if (AnyRequiresGrad({&a, &b})) {
    Tensor sa = a, sb = b;
    Record(&out, "MatMulBackward", {&a, &b},
           [sa, sb](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             return std::vector<Tensor>{kernels::MatMulTransB(g, sb),
                                        kernels::MatMulTransA(sa, g)};
           });
  }
  return out;
}

// ---- Shape -----------------------------------------------------------------------

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  Tensor contiguous = a.Contiguous();
  Tensor out = contiguous.Reshape(shape);
  if (AnyRequiresGrad({&a})) {
    std::vector<int64_t> original = a.shape();
    Record(&out, "ReshapeBackward", {&a},
           [original](std::vector<Tensor> grads) {
             return std::vector<Tensor>{FirstGrad(grads).Reshape(original)};
           });
  }
  return out;
}

Tensor TileRows(const Tensor& a, int64_t repeats) {
  DDPKIT_CHECK_EQ(a.dim(), 2);
  DDPKIT_CHECK_GT(repeats, 0);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Empty({repeats * m, n}, DType::kFloat32,
                             a.device_id());
  Tensor src = a.Contiguous();
  for (int64_t r = 0; r < repeats; ++r) {
    out.Narrow(0, r * m, m).CopyFrom(src);
  }
  if (AnyRequiresGrad({&a})) {
    Record(&out, "TileRowsBackward", {&a},
           [m, n, repeats](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             Tensor grad_a = Tensor::Zeros({m, n});
             for (int64_t r = 0; r < repeats; ++r) {
               Tensor tile = g.Narrow(0, r * m, m);
               kernels::AddInPlace(&grad_a, tile);
             }
             return std::vector<Tensor>{grad_a};
           });
  }
  return out;
}

namespace {

/// Copies columns [src_start, src_start+len) of every row of `src` into
/// columns [dst_start, ...) of `dst`. Rows = numel / last-dim.
void CopyColumns(const Tensor& src, int64_t src_start, Tensor* dst,
                 int64_t dst_start, int64_t len) {
  const int64_t src_width = src.size(src.dim() - 1);
  const int64_t dst_width = dst->size(dst->dim() - 1);
  const int64_t rows = src.numel() / src_width;
  DDPKIT_CHECK_EQ(dst->numel() / dst_width, rows);
  const float* ps = src.data<float>();
  float* pd = dst->data<float>();
  for (int64_t r = 0; r < rows; ++r) {
    std::memcpy(pd + r * dst_width + dst_start,
                ps + r * src_width + src_start,
                static_cast<size_t>(len) * sizeof(float));
  }
}

}  // namespace

Tensor SliceLastDim(const Tensor& a, int64_t start, int64_t len) {
  DDPKIT_CHECK_GE(a.dim(), 1);
  const int64_t width = a.size(a.dim() - 1);
  DDPKIT_CHECK(start >= 0 && len > 0 && start + len <= width);
  std::vector<int64_t> out_shape = a.shape();
  out_shape.back() = len;
  Tensor out = Tensor::Empty(out_shape, DType::kFloat32, a.device_id());
  Tensor src = a.Contiguous();
  CopyColumns(src, start, &out, 0, len);
  if (AnyRequiresGrad({&a})) {
    std::vector<int64_t> in_shape = a.shape();
    Record(&out, "SliceLastDimBackward", {&a},
           [in_shape, start, len](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             Tensor grad_in = Tensor::Zeros(in_shape);
             CopyColumns(g, 0, &grad_in, start, len);
             return std::vector<Tensor>{grad_in};
           });
  }
  return out;
}

Tensor ConcatLastDim(const std::vector<Tensor>& parts) {
  DDPKIT_CHECK(!parts.empty());
  int64_t total_width = 0;
  for (const Tensor& p : parts) {
    DDPKIT_CHECK(p.defined());
    total_width += p.size(p.dim() - 1);
  }
  std::vector<int64_t> out_shape = parts[0].shape();
  out_shape.back() = total_width;
  Tensor out = Tensor::Empty(out_shape, DType::kFloat32,
                             parts[0].device_id());
  std::vector<int64_t> widths;
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const int64_t w = p.size(p.dim() - 1);
    CopyColumns(p.Contiguous(), 0, &out, offset, w);
    widths.push_back(w);
    offset += w;
  }
  bool any_grad = false;
  for (const Tensor& p : parts) {
    if (p.requires_grad()) any_grad = true;
  }
  if (GradModeEnabled() && any_grad) {
    auto node = std::make_shared<LambdaNode>(
        "ConcatLastDimBackward", [widths](std::vector<Tensor> grads) {
          Tensor g = FirstGrad(grads);
          std::vector<Tensor> out_grads;
          int64_t off = 0;
          for (int64_t w : widths) {
            std::vector<int64_t> part_shape = g.shape();
            part_shape.back() = w;
            Tensor part = Tensor::Empty(part_shape);
            CopyColumns(g, off, &part, 0, w);
            out_grads.push_back(part);
            off += w;
          }
          return out_grads;
        });
    std::vector<Edge> edges;
    for (const Tensor& p : parts) edges.push_back(GradEdge(p));
    node->set_next_edges(std::move(edges));
    SetHistory(&out, std::move(node));
  }
  return out;
}

// ---- Convolution / pooling -----------------------------------------------------------

namespace {

void AddChannelBiasInPlace(Tensor* out, const Tensor& bias) {
  const int64_t n = out->size(0), c = out->size(1),
                hw = out->size(2) * out->size(3);
  float* po = out->data<float>();
  const float* pb = bias.data<float>();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float b = pb[ch];
      float* base = po + (i * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) base[j] += b;
    }
  }
}

Tensor ChannelBiasGrad(const Tensor& grad_out) {
  const int64_t n = grad_out.size(0), c = grad_out.size(1),
                hw = grad_out.size(2) * grad_out.size(3);
  Tensor grad_bias = Tensor::Zeros({c}, DType::kFloat32, grad_out.device_id());
  const float* pg = grad_out.data<float>();
  float* pb = grad_bias.data<float>();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* base = pg + (i * c + ch) * hw;
      float acc = 0.0f;
      for (int64_t j = 0; j < hw; ++j) acc += base[j];
      pb[ch] += acc;
    }
  }
  return grad_bias;
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding) {
  kernels::Conv2dArgs args{stride, padding};
  Tensor out = kernels::Conv2d(input, weight, args);
  if (bias.defined()) AddChannelBiasInPlace(&out, bias);
  if (AnyRequiresGrad({&input, &weight, &bias})) {
    Tensor sin = input, sw = weight;
    const bool has_bias = bias.defined();
    std::vector<int64_t> in_shape = input.shape();
    std::vector<int64_t> w_shape = weight.shape();
    Record(&out, "Conv2dBackward", {&input, &weight, &bias},
           [sin, sw, has_bias, in_shape, w_shape,
            args](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             Tensor grad_input =
                 kernels::Conv2dBackwardInput(g, sw, in_shape, args);
             Tensor grad_weight =
                 kernels::Conv2dBackwardWeight(g, sin, w_shape, args);
             Tensor grad_bias = has_bias ? ChannelBiasGrad(g) : Tensor();
             return std::vector<Tensor>{grad_input, grad_weight, grad_bias};
           });
  }
  return out;
}

Tensor AvgPool2x2(const Tensor& input) {
  Tensor out = kernels::AvgPool2x2(input);
  if (AnyRequiresGrad({&input})) {
    std::vector<int64_t> in_shape = input.shape();
    Record(&out, "AvgPool2x2Backward", {&input},
           [in_shape](std::vector<Tensor> grads) {
             return std::vector<Tensor>{
                 kernels::AvgPool2x2Backward(FirstGrad(grads), in_shape)};
           });
  }
  return out;
}

Tensor MaxPool2x2(const Tensor& input) {
  Tensor argmax;
  Tensor out = kernels::MaxPool2x2(input, &argmax);
  if (AnyRequiresGrad({&input})) {
    std::vector<int64_t> in_shape = input.shape();
    Record(&out, "MaxPool2x2Backward", {&input},
           [argmax, in_shape](std::vector<Tensor> grads) {
             return std::vector<Tensor>{kernels::MaxPool2x2Backward(
                 FirstGrad(grads), argmax, in_shape)};
           });
  }
  return out;
}

Tensor GlobalAvgPool(const Tensor& input) {
  Tensor out = kernels::GlobalAvgPool(input);
  if (AnyRequiresGrad({&input})) {
    std::vector<int64_t> in_shape = input.shape();
    Record(&out, "GlobalAvgPoolBackward", {&input},
           [in_shape](std::vector<Tensor> grads) {
             return std::vector<Tensor>{
                 kernels::GlobalAvgPoolBackward(FirstGrad(grads), in_shape)};
           });
  }
  return out;
}

// ---- Normalization --------------------------------------------------------------------

BatchNormResult BatchNorm2d(const Tensor& input, const Tensor& gamma,
                            const Tensor& beta, double eps) {
  DDPKIT_CHECK_EQ(input.dim(), 4);
  const int64_t n = input.size(0), c = input.size(1),
                hw = input.size(2) * input.size(3);
  const int64_t m = n * hw;  // samples per channel

  Tensor mean = Tensor::Zeros({c});
  Tensor var = Tensor::Zeros({c});
  Tensor invstd = Tensor::Zeros({c});
  Tensor xhat = Tensor::Empty(input.shape());
  Tensor out = Tensor::Empty(input.shape());

  const float* pi = input.data<float>();
  float* pmean = mean.data<float>();
  float* pvar = var.data<float>();
  float* pinv = invstd.data<float>();
  float* pxhat = xhat.data<float>();
  float* pout = out.data<float>();
  const float* pg = gamma.data<float>();
  const float* pb = beta.data<float>();

  for (int64_t ch = 0; ch < c; ++ch) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* base = pi + (i * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) acc += base[j];
    }
    const double mu = acc / static_cast<double>(m);
    double sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* base = pi + (i * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) {
        const double d = base[j] - mu;
        sq += d * d;
      }
    }
    const double v = sq / static_cast<double>(m);
    const double is = 1.0 / std::sqrt(v + eps);
    pmean[ch] = static_cast<float>(mu);
    pvar[ch] = static_cast<float>(v);
    pinv[ch] = static_cast<float>(is);
    for (int64_t i = 0; i < n; ++i) {
      const float* base = pi + (i * c + ch) * hw;
      float* xbase = pxhat + (i * c + ch) * hw;
      float* obase = pout + (i * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) {
        const float xh = static_cast<float>((base[j] - mu) * is);
        xbase[j] = xh;
        obase[j] = pg[ch] * xh + pb[ch];
      }
    }
  }

  if (AnyRequiresGrad({&input, &gamma, &beta})) {
    Tensor sgamma = gamma, sxhat = xhat, sinvstd = invstd;
    const int64_t sn = n, sc = c, shw = hw;
    Record(&out, "BatchNorm2dBackward", {&input, &gamma, &beta},
           [sgamma, sxhat, sinvstd, sn, sc, shw](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             const int64_t m = sn * shw;
             Tensor grad_input = Tensor::Empty(g.shape());
             Tensor grad_gamma = Tensor::Zeros({sc});
             Tensor grad_beta = Tensor::Zeros({sc});
             const float* pgo = g.data<float>();
             const float* pxh = sxhat.data<float>();
             const float* pis = sinvstd.data<float>();
             const float* pgam = sgamma.data<float>();
             float* pgi = grad_input.data<float>();
             float* pgg = grad_gamma.data<float>();
             float* pgb = grad_beta.data<float>();
             for (int64_t ch = 0; ch < sc; ++ch) {
               double sum_go = 0.0, sum_go_xhat = 0.0;
               for (int64_t i = 0; i < sn; ++i) {
                 const float* gb = pgo + (i * sc + ch) * shw;
                 const float* xb = pxh + (i * sc + ch) * shw;
                 for (int64_t j = 0; j < shw; ++j) {
                   sum_go += gb[j];
                   sum_go_xhat += static_cast<double>(gb[j]) * xb[j];
                 }
               }
               pgg[ch] = static_cast<float>(sum_go_xhat);
               pgb[ch] = static_cast<float>(sum_go);
               const double scale =
                   static_cast<double>(pgam[ch]) * pis[ch] / m;
               for (int64_t i = 0; i < sn; ++i) {
                 const float* gb = pgo + (i * sc + ch) * shw;
                 const float* xb = pxh + (i * sc + ch) * shw;
                 float* ib = pgi + (i * sc + ch) * shw;
                 for (int64_t j = 0; j < shw; ++j) {
                   ib[j] = static_cast<float>(
                       scale * (m * static_cast<double>(gb[j]) - sum_go -
                                static_cast<double>(xb[j]) * sum_go_xhat));
                 }
               }
             }
             return std::vector<Tensor>{grad_input, grad_gamma, grad_beta};
           });
  }

  return BatchNormResult{out, mean, var};
}

Tensor BatchNorm2dInference(const Tensor& input, const Tensor& gamma,
                            const Tensor& beta, const Tensor& running_mean,
                            const Tensor& running_var, double eps) {
  DDPKIT_CHECK_EQ(input.dim(), 4);
  const int64_t n = input.size(0), c = input.size(1),
                hw = input.size(2) * input.size(3);
  Tensor out = Tensor::Empty(input.shape());
  const float* pi = input.data<float>();
  float* po = out.data<float>();
  const float* pg = gamma.data<float>();
  const float* pb = beta.data<float>();
  const float* pm = running_mean.data<float>();
  const float* pv = running_var.data<float>();
  for (int64_t ch = 0; ch < c; ++ch) {
    const float is = 1.0f / std::sqrt(pv[ch] + static_cast<float>(eps));
    for (int64_t i = 0; i < n; ++i) {
      const float* base = pi + (i * c + ch) * hw;
      float* obase = po + (i * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) {
        obase[j] = pg[ch] * (base[j] - pm[ch]) * is + pb[ch];
      }
    }
  }
  // Inference-mode normalization still propagates gradients to gamma/beta
  // and the input, treating the running statistics as constants.
  if (AnyRequiresGrad({&input, &gamma, &beta})) {
    Tensor sgamma = gamma, smean = running_mean, svar = running_var,
           sinput = input;
    const int64_t sn = n, sc = c, shw = hw;
    Record(&out, "BatchNorm2dInferenceBackward", {&input, &gamma, &beta},
           [sgamma, smean, svar, sinput, sn, sc, shw,
            eps](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             Tensor grad_input = Tensor::Empty(g.shape());
             Tensor grad_gamma = Tensor::Zeros({sc});
             Tensor grad_beta = Tensor::Zeros({sc});
             const float* pgo = g.data<float>();
             const float* pin = sinput.data<float>();
             const float* pgam = sgamma.data<float>();
             const float* pm = smean.data<float>();
             const float* pv = svar.data<float>();
             float* pgi = grad_input.data<float>();
             float* pgg = grad_gamma.data<float>();
             float* pgb = grad_beta.data<float>();
             for (int64_t ch = 0; ch < sc; ++ch) {
               const float is =
                   1.0f / std::sqrt(pv[ch] + static_cast<float>(eps));
               double sum_go = 0.0, sum_go_xhat = 0.0;
               for (int64_t i = 0; i < sn; ++i) {
                 const float* gb = pgo + (i * sc + ch) * shw;
                 const float* ib = pin + (i * sc + ch) * shw;
                 float* gib = pgi + (i * sc + ch) * shw;
                 for (int64_t j = 0; j < shw; ++j) {
                   const float xh = (ib[j] - pm[ch]) * is;
                   sum_go += gb[j];
                   sum_go_xhat += static_cast<double>(gb[j]) * xh;
                   gib[j] = gb[j] * pgam[ch] * is;
                 }
               }
               pgg[ch] = static_cast<float>(sum_go_xhat);
               pgb[ch] = static_cast<float>(sum_go);
             }
             return std::vector<Tensor>{grad_input, grad_gamma, grad_beta};
           });
  }
  return out;
}

Tensor LayerNorm(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                 double eps) {
  Tensor x = input.Contiguous();
  const int64_t d = x.size(x.dim() - 1);
  const int64_t rows = x.numel() / d;
  DDPKIT_CHECK_EQ(gamma.numel(), d);
  DDPKIT_CHECK_EQ(beta.numel(), d);

  Tensor out = Tensor::Empty(x.shape());
  Tensor xhat = Tensor::Empty(x.shape());
  Tensor invstd = Tensor::Empty({rows});

  const float* pi = x.data<float>();
  const float* pg = gamma.data<float>();
  const float* pb = beta.data<float>();
  float* po = out.data<float>();
  float* pxh = xhat.data<float>();
  float* pis = invstd.data<float>();

  for (int64_t r = 0; r < rows; ++r) {
    const float* row = pi + r * d;
    double acc = 0.0;
    for (int64_t j = 0; j < d; ++j) acc += row[j];
    const double mu = acc / d;
    double sq = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double dv = row[j] - mu;
      sq += dv * dv;
    }
    const double is = 1.0 / std::sqrt(sq / d + eps);
    pis[r] = static_cast<float>(is);
    float* orow = po + r * d;
    float* xrow = pxh + r * d;
    for (int64_t j = 0; j < d; ++j) {
      const float xh = static_cast<float>((row[j] - mu) * is);
      xrow[j] = xh;
      orow[j] = pg[j] * xh + pb[j];
    }
  }

  if (AnyRequiresGrad({&input, &gamma, &beta})) {
    Tensor sgamma = gamma, sxhat = xhat, sinvstd = invstd;
    const int64_t sd = d, srows = rows;
    Record(&out, "LayerNormBackward", {&input, &gamma, &beta},
           [sgamma, sxhat, sinvstd, sd, srows](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             Tensor grad_input = Tensor::Empty(g.shape());
             Tensor grad_gamma = Tensor::Zeros({sd});
             Tensor grad_beta = Tensor::Zeros({sd});
             const float* pgo = g.data<float>();
             const float* pxh = sxhat.data<float>();
             const float* pis = sinvstd.data<float>();
             const float* pgam = sgamma.data<float>();
             float* pgi = grad_input.data<float>();
             float* pgg = grad_gamma.data<float>();
             float* pgb = grad_beta.data<float>();
             for (int64_t r = 0; r < srows; ++r) {
               const float* grow = pgo + r * sd;
               const float* xrow = pxh + r * sd;
               float* irow = pgi + r * sd;
               double sum_gy = 0.0, sum_gy_xhat = 0.0;
               for (int64_t j = 0; j < sd; ++j) {
                 const double gy = static_cast<double>(grow[j]) * pgam[j];
                 sum_gy += gy;
                 sum_gy_xhat += gy * xrow[j];
                 pgg[j] += grow[j] * xrow[j];
                 pgb[j] += grow[j];
               }
               const double is = pis[r];
               for (int64_t j = 0; j < sd; ++j) {
                 const double gy = static_cast<double>(grow[j]) * pgam[j];
                 irow[j] = static_cast<float>(
                     is * (gy - sum_gy / sd - xrow[j] * sum_gy_xhat / sd));
               }
             }
             return std::vector<Tensor>{grad_input, grad_gamma, grad_beta};
           });
  }
  return out;
}

// ---- Embedding / attention ---------------------------------------------------------------

Tensor Embedding(const Tensor& indices, const Tensor& table) {
  Tensor out = kernels::EmbeddingLookup(indices, table);
  if (AnyRequiresGrad({&table})) {
    Tensor sidx = indices;
    std::vector<int64_t> tshape = table.shape();
    // The indices input takes no gradient; only the table edge is live.
    auto node = std::make_shared<LambdaNode>(
        "EmbeddingBackward", [sidx, tshape](std::vector<Tensor> grads) {
          Tensor g = FirstGrad(grads);
          return std::vector<Tensor>{
              kernels::EmbeddingBackward(g, sidx, tshape)};
        });
    node->set_next_edges({GradEdge(table)});
    SetHistory(&out, std::move(node));
  }
  return out;
}

Tensor Softmax(const Tensor& a) {
  Tensor out = kernels::Softmax(a);
  if (AnyRequiresGrad({&a})) {
    Tensor sout = out;
    Record(&out, "SoftmaxBackward", {&a}, [sout](std::vector<Tensor> grads) {
      Tensor g = FirstGrad(grads);
      const int64_t m = g.size(0), n = g.size(1);
      Tensor grad_in = Tensor::Empty(g.shape());
      const float* pg = g.data<float>();
      const float* py = sout.data<float>();
      float* pi = grad_in.data<float>();
      for (int64_t i = 0; i < m; ++i) {
        const float* grow = pg + i * n;
        const float* yrow = py + i * n;
        float* irow = pi + i * n;
        double dot = 0.0;
        for (int64_t j = 0; j < n; ++j) {
          dot += static_cast<double>(grow[j]) * yrow[j];
        }
        for (int64_t j = 0; j < n; ++j) {
          irow[j] = static_cast<float>(
              yrow[j] * (grow[j] - dot));
        }
      }
      return std::vector<Tensor>{grad_in};
    });
  }
  return out;
}

Tensor Attention(const Tensor& q, const Tensor& k, const Tensor& v) {
  DDPKIT_CHECK_EQ(q.dim(), 3);
  DDPKIT_CHECK(q.shape() == k.shape() && q.shape() == v.shape());
  const int64_t batch = q.size(0), seq = q.size(1), dim = q.size(2);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));

  Tensor out = Tensor::Empty(q.shape());
  Tensor probs = Tensor::Empty({batch, seq, seq});

  for (int64_t b = 0; b < batch; ++b) {
    Tensor qb = q.Narrow(0, b, 1).Reshape({seq, dim});
    Tensor kb = k.Narrow(0, b, 1).Reshape({seq, dim});
    Tensor vb = v.Narrow(0, b, 1).Reshape({seq, dim});
    Tensor scores = kernels::Scale(kernels::MatMulTransB(qb, kb), scale);
    Tensor p = kernels::Softmax(scores);
    Tensor ob = kernels::MatMul(p, vb);
    probs.Narrow(0, b, 1).Reshape({seq, seq}).CopyFrom(p);
    out.Narrow(0, b, 1).Reshape({seq, dim}).CopyFrom(ob);
  }

  if (AnyRequiresGrad({&q, &k, &v})) {
    Tensor sq = q, sk = k, sv = v, sp = probs;
    Record(&out, "AttentionBackward", {&q, &k, &v},
           [sq, sk, sv, sp, batch, seq, dim,
            scale](std::vector<Tensor> grads) {
             Tensor g = FirstGrad(grads);
             Tensor gq = Tensor::Empty(sq.shape());
             Tensor gk = Tensor::Empty(sk.shape());
             Tensor gv = Tensor::Empty(sv.shape());
             for (int64_t b = 0; b < batch; ++b) {
               Tensor gb = g.Narrow(0, b, 1).Reshape({seq, dim});
               Tensor qb = sq.Narrow(0, b, 1).Reshape({seq, dim});
               Tensor kb = sk.Narrow(0, b, 1).Reshape({seq, dim});
               Tensor vb = sv.Narrow(0, b, 1).Reshape({seq, dim});
               Tensor pb = sp.Narrow(0, b, 1).Reshape({seq, seq});
               // dV = P^T dO
               Tensor gvb = kernels::MatMulTransA(pb, gb);
               // dP = dO V^T
               Tensor gpb = kernels::MatMulTransB(gb, vb);
               // dA = P * (dP - rowsum(dP * P))  (softmax backward), then
               // scale.
               Tensor gab = Tensor::Empty({seq, seq});
               {
                 const float* pp = pb.data<float>();
                 const float* pgp = gpb.data<float>();
                 float* pga = gab.data<float>();
                 for (int64_t i = 0; i < seq; ++i) {
                   double dot = 0.0;
                   for (int64_t j = 0; j < seq; ++j) {
                     dot += static_cast<double>(pgp[i * seq + j]) *
                            pp[i * seq + j];
                   }
                   for (int64_t j = 0; j < seq; ++j) {
                     pga[i * seq + j] = static_cast<float>(
                         pp[i * seq + j] *
                         (pgp[i * seq + j] - dot) * scale);
                   }
                 }
               }
               // dQ = dA K ; dK = dA^T Q
               Tensor gqb = kernels::MatMul(gab, kb);
               Tensor gkb = kernels::MatMulTransA(gab, qb);
               gq.Narrow(0, b, 1).Reshape({seq, dim}).CopyFrom(gqb);
               gk.Narrow(0, b, 1).Reshape({seq, dim}).CopyFrom(gkb);
               gv.Narrow(0, b, 1).Reshape({seq, dim}).CopyFrom(gvb);
             }
             return std::vector<Tensor>{gq, gk, gv};
           });
  }
  return out;
}

// ---- Reductions / losses -----------------------------------------------------------------

Tensor SumAll(const Tensor& a) {
  Tensor out = kernels::SumAll(a);
  if (AnyRequiresGrad({&a})) {
    std::vector<int64_t> shape = a.shape();
    Record(&out, "SumAllBackward", {&a}, [shape](std::vector<Tensor> grads) {
      const double g = FirstGrad(grads).Item();
      return std::vector<Tensor>{Tensor::Full(shape, g)};
    });
  }
  return out;
}

Tensor MeanAll(const Tensor& a) {
  Tensor out = kernels::MeanAll(a);
  if (AnyRequiresGrad({&a})) {
    std::vector<int64_t> shape = a.shape();
    const double inv = 1.0 / static_cast<double>(a.numel());
    Record(&out, "MeanAllBackward", {&a},
           [shape, inv](std::vector<Tensor> grads) {
             const double g = FirstGrad(grads).Item() * inv;
             return std::vector<Tensor>{Tensor::Full(shape, g)};
           });
  }
  return out;
}

Tensor MSELoss(const Tensor& prediction, const Tensor& target) {
  DDPKIT_CHECK_EQ(prediction.numel(), target.numel());
  Tensor diff = kernels::Sub(prediction, target);
  Tensor out = kernels::MeanAll(kernels::Mul(diff, diff));
  if (AnyRequiresGrad({&prediction})) {
    Tensor sdiff = diff;
    const double inv = 2.0 / static_cast<double>(prediction.numel());
    Record(&out, "MSELossBackward", {&prediction},
           [sdiff, inv](std::vector<Tensor> grads) {
             const double g = FirstGrad(grads).Item();
             return std::vector<Tensor>{kernels::Scale(sdiff, g * inv)};
           });
  }
  return out;
}

Tensor CrossEntropyLoss(const Tensor& logits, const Tensor& targets) {
  DDPKIT_CHECK_EQ(logits.dim(), 2);
  DDPKIT_CHECK(targets.dtype() == DType::kInt64);
  const int64_t m = logits.size(0), n = logits.size(1);
  DDPKIT_CHECK_EQ(targets.numel(), m);

  Tensor log_probs = kernels::LogSoftmax(logits);
  const int64_t* pt = targets.data<int64_t>();
  const float* plp = log_probs.data<float>();
  double loss = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    DDPKIT_CHECK(pt[i] >= 0 && pt[i] < n);
    loss -= plp[i * n + pt[i]];
  }
  loss /= static_cast<double>(m);
  Tensor out = Tensor::Full({1}, loss);

  if (AnyRequiresGrad({&logits})) {
    Tensor slp = log_probs, st = targets;
    Record(&out, "CrossEntropyLossBackward", {&logits},
           [slp, st, m, n](std::vector<Tensor> grads) {
             const double g = FirstGrad(grads).Item() / m;
             Tensor grad_logits = Tensor::Empty({m, n});
             const float* plp = slp.data<float>();
             const int64_t* pt = st.data<int64_t>();
             float* pg = grad_logits.data<float>();
             for (int64_t i = 0; i < m; ++i) {
               for (int64_t j = 0; j < n; ++j) {
                 double p = std::exp(plp[i * n + j]);
                 if (j == pt[i]) p -= 1.0;
                 pg[i * n + j] = static_cast<float>(p * g);
               }
             }
             return std::vector<Tensor>{grad_logits};
           });
  }
  return out;
}

}  // namespace ddpkit::ops
