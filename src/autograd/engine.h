#ifndef DDPKIT_AUTOGRAD_ENGINE_H_
#define DDPKIT_AUTOGRAD_ENGINE_H_

#include "tensor/tensor.h"

namespace ddpkit::autograd {

/// Runs backpropagation from `root`, accumulating gradients into every
/// reachable leaf tensor's `.grad` and firing GradAccumulator post-hooks as
/// gradients become ready.
///
/// `grad_output` defaults to ones (so a scalar loss needs no argument).
/// The graph is not freed: calling Backward twice re-walks it and
/// accumulates again (PyTorch's retain_graph=true semantics).
///
/// Nodes are executed in descending sequence-number order among ready
/// nodes, so gradients are produced approximately in the reverse of the
/// forward-execution order — the property DDP's reverse-order bucketing
/// relies on (paper §3.2.3).
void Backward(const Tensor& root, Tensor grad_output = Tensor());

/// Thread-local gradient mode. When disabled, differentiable ops behave as
/// pure kernels and record no graph (used by optimizers, buffer updates and
/// DDP's internal copies).
bool GradModeEnabled();
void SetGradModeEnabled(bool enabled);

/// RAII guard disabling grad mode in a scope.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradModeEnabled()) { SetGradModeEnabled(false); }
  ~NoGradGuard() { SetGradModeEnabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace ddpkit::autograd

#endif  // DDPKIT_AUTOGRAD_ENGINE_H_
