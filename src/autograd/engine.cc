#include "autograd/engine.h"

#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "autograd/node.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::autograd {

namespace {

thread_local bool t_grad_mode = true;

struct ReadyEntry {
  Node* node;
  uint64_t sequence_nr;  // UINT64_MAX for accumulators (run first)
  uint64_t push_order;   // FIFO tie-break for deterministic execution
};

struct ReadyOrder {
  // Max-heap on sequence number: later-created (deeper) nodes first,
  // approximating reverse-forward execution order. Gradient accumulators
  // get maximum priority so parameter hooks fire as soon as each gradient
  // is produced. Ties break FIFO so execution is deterministic across
  // ranks.
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    if (a.sequence_nr != b.sequence_nr) {
      return a.sequence_nr < b.sequence_nr;
    }
    return a.push_order > b.push_order;
  }
};

}  // namespace

bool GradModeEnabled() { return t_grad_mode; }
void SetGradModeEnabled(bool enabled) { t_grad_mode = enabled; }

void Backward(const Tensor& root, Tensor grad_output) {
  DDPKIT_CHECK(root.defined());
  DDPKIT_CHECK(root.requires_grad())
      << "Backward called on a tensor that does not require grad";

  Edge root_edge = GradEdge(root);
  DDPKIT_CHECK(root_edge.valid());

  if (!grad_output.defined()) {
    grad_output = Tensor::Ones(root.shape(), DType::kFloat32,
                               root.device_id());
  }
  DDPKIT_CHECK_EQ(grad_output.numel(), root.numel());

  // Keep all reachable nodes alive for the duration of the pass.
  std::vector<std::shared_ptr<Node>> keep_alive;

  // Phase 1: discovery — count, for every node, how many in-graph edges
  // point at it. A node may run only when all its gradient contributions
  // have arrived.
  std::unordered_map<Node*, int> dependencies;
  {
    std::unordered_set<Node*> seen;
    std::vector<Node*> stack;
    seen.insert(root_edge.node.get());
    keep_alive.push_back(root_edge.node);
    stack.push_back(root_edge.node.get());
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      for (const Edge& edge : node->next_edges()) {
        if (!edge.valid()) continue;
        dependencies[edge.node.get()] += 1;
        if (seen.insert(edge.node.get()).second) {
          keep_alive.push_back(edge.node);
          stack.push_back(edge.node.get());
        }
      }
    }
  }

  // Phase 2: execution.
  std::unordered_map<Node*, std::vector<Tensor>> input_buffers;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyOrder> ready;
  uint64_t push_counter = 0;

  auto deliver = [&](const Edge& edge, const Tensor& grad) {
    Node* target = edge.node.get();
    auto& buffer = input_buffers[target];
    if (buffer.empty()) {
      buffer.resize(static_cast<size_t>(target->num_inputs()));
    }
    DDPKIT_CHECK_LT(edge.input_index, target->num_inputs());
    Tensor& slot = buffer[static_cast<size_t>(edge.input_index)];
    if (grad.defined()) {
      if (!slot.defined()) {
        slot = grad;
      } else {
        // Fan-in: a forward tensor used by several consumers receives the
        // sum of their gradient contributions.
        Tensor summed = slot.Clone();
        kernels::AddInPlace(&summed, grad);
        slot = summed;
      }
    }
    int& deps = dependencies[target];
    DDPKIT_CHECK_GT(deps, 0);
    if (--deps == 0) {
      const uint64_t seq = target->is_accumulator()
                               ? std::numeric_limits<uint64_t>::max()
                               : target->sequence_nr();
      ready.push(ReadyEntry{target, seq, push_counter++});
    }
  };

  // Seed the root. Its dependency count is whatever discovery found from
  // other graph paths (normally zero), plus this initial delivery.
  dependencies[root_edge.node.get()] += 1;
  deliver(root_edge, grad_output);

  while (!ready.empty()) {
    Node* node = ready.top().node;
    ready.pop();

    std::vector<Tensor> grads;
    auto it = input_buffers.find(node);
    if (it != input_buffers.end()) {
      grads = std::move(it->second);
      input_buffers.erase(it);
    } else {
      grads.resize(static_cast<size_t>(node->num_inputs()));
    }

    std::vector<Tensor> grad_inputs = node->Apply(std::move(grads));
    const auto& edges = node->next_edges();
    DDPKIT_CHECK_LE(grad_inputs.size(), edges.size());
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!edges[i].valid()) continue;
      Tensor g = i < grad_inputs.size() ? grad_inputs[i] : Tensor();
      deliver(edges[i], g);
    }
  }
}

}  // namespace ddpkit::autograd
