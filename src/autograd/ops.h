#ifndef DDPKIT_AUTOGRAD_OPS_H_
#define DDPKIT_AUTOGRAD_OPS_H_

#include <vector>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::ops {

/// Differentiable operations. Each runs the forward kernel and, when grad
/// mode is on and an input requires grad, records a backward node into the
/// dynamic autograd graph (rebuilt every forward pass, as in PyTorch — this
/// dynamism is what creates the paper's Fig 3 ordering/skipping hazards).

// ---- Elementwise -----------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, double s);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);

/// Inverted dropout: with probability p an element is zeroed, survivors
/// are scaled by 1/(1-p). `rng` drives the mask; identical seeds across
/// ranks give identical masks (the coordination DDP needs for any
/// stochastic regularizer). No-op when p == 0.
Tensor Dropout(const Tensor& a, double p, Rng* rng);

// ---- Activations ------------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor Gelu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

// ---- Linear algebra -----------------------------------------------------------

/// out[m, n] = a[m, n_in] @ weight^T[n_in, n] + bias[n]; bias optional.
Tensor Linear(const Tensor& input, const Tensor& weight, const Tensor& bias);
/// Plain 2-D matmul.
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---- Shape ----------------------------------------------------------------------

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);

/// Stacks `repeats` copies of a [m, n] tensor into [repeats*m, n]; the
/// backward pass sums the tiles. Used to broadcast positional embeddings
/// across a batch.
Tensor TileRows(const Tensor& a, int64_t repeats);

/// Slice along the LAST dimension: [..., D] -> [..., len] taking columns
/// [start, start+len). Used to split attention heads.
Tensor SliceLastDim(const Tensor& a, int64_t start, int64_t len);

/// Concatenation along the LAST dimension (inverse of SliceLastDim).
Tensor ConcatLastDim(const std::vector<Tensor>& parts);

// ---- Convolution / pooling ---------------------------------------------------------

/// input [N,Cin,H,W], weight [Cout,Cin,kH,kW], optional bias [Cout].
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding);
Tensor AvgPool2x2(const Tensor& input);
Tensor MaxPool2x2(const Tensor& input);
/// [N,C,H,W] -> [N,C].
Tensor GlobalAvgPool(const Tensor& input);

// ---- Normalization ------------------------------------------------------------------

/// Training-mode batch norm over N,H,W per channel; returns the normalized
/// output and exposes the batch statistics so the module can maintain
/// running buffers. gamma/beta are [C].
struct BatchNormResult {
  Tensor output;
  Tensor batch_mean;  // [C], detached
  Tensor batch_var;   // [C], biased variance, detached
};
BatchNormResult BatchNorm2d(const Tensor& input, const Tensor& gamma,
                            const Tensor& beta, double eps);
/// Inference-mode batch norm using provided running statistics (no graph
/// recorded through the statistics).
Tensor BatchNorm2dInference(const Tensor& input, const Tensor& gamma,
                            const Tensor& beta, const Tensor& running_mean,
                            const Tensor& running_var, double eps);

/// Layer norm over the last dimension of [*, D]; gamma/beta are [D].
Tensor LayerNorm(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                 double eps);

// ---- Embedding / attention -------------------------------------------------------------

/// indices int64 [n], table [vocab, dim] -> [n, dim].
Tensor Embedding(const Tensor& indices, const Tensor& table);

/// Row-wise softmax of [m, n].
Tensor Softmax(const Tensor& a);

/// Fused single-head scaled-dot-product attention:
/// q,k,v are [B, S, D]; returns softmax(q k^T / sqrt(D)) v, shape [B, S, D].
Tensor Attention(const Tensor& q, const Tensor& k, const Tensor& v);

// ---- Reductions / losses ----------------------------------------------------------------

Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);

/// Mean-squared-error loss between prediction and target (target has no
/// gradient), returns scalar [1].
Tensor MSELoss(const Tensor& prediction, const Tensor& target);

/// Cross-entropy over logits [m, n] with int64 class targets [m]; mean
/// reduction, returns scalar [1].
Tensor CrossEntropyLoss(const Tensor& logits, const Tensor& targets);

}  // namespace ddpkit::ops

#endif  // DDPKIT_AUTOGRAD_OPS_H_
