#include "autograd/graph_utils.h"

#include <vector>

#include "autograd/grad_accumulator.h"
#include "autograd/node.h"

namespace ddpkit::autograd {

std::unordered_set<const void*> FindReachableParams(
    const std::vector<Tensor>& outputs) {
  std::unordered_set<const void*> result;
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack;

  for (const Tensor& out : outputs) {
    if (!out.defined() || !out.requires_grad()) continue;
    Edge edge = GradEdge(out);
    if (edge.valid() && seen.insert(edge.node.get()).second) {
      stack.push_back(edge.node.get());
    }
  }

  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    if (auto* acc = dynamic_cast<GradAccumulator*>(node)) {
      result.insert(acc->param().id());
      continue;
    }
    for (const Edge& edge : node->next_edges()) {
      if (edge.valid() && seen.insert(edge.node.get()).second) {
        stack.push_back(edge.node.get());
      }
    }
  }
  return result;
}

}  // namespace ddpkit::autograd
