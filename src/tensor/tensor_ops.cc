#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/parallel.h"
#include "common/vec.h"

namespace ddpkit::kernels {

namespace {

void CheckFloatContiguous(const Tensor& t, const char* what) {
  DDPKIT_CHECK(t.defined()) << what << " undefined";
  DDPKIT_CHECK(t.dtype() == DType::kFloat32) << what << " must be float32";
  DDPKIT_CHECK(t.is_contiguous()) << what << " must be contiguous";
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  DDPKIT_CHECK(a.shape() == b.shape())
      << "shape mismatch: " << a.ShapeString() << " vs " << b.ShapeString()
      << " (elementwise kernels do not broadcast)";
}

/// Scalar fallback for kernels with no vec.h mapping: transcendentals
/// (exp/log/tanh and friends) stay scalar by design — libm gives no
/// cross-width bit-exactness guarantee, so vectorizing them would break
/// the SIMD layer's contract (common/vec.h).
template <typename F>
Tensor Unary(const Tensor& a, F f) {
  CheckFloatContiguous(a, "input");
  Tensor out = Tensor::Empty(a.shape(), DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, a.numel(), kParallelGrain, [&](int64_t b, int64_t e) {
    // ddplint: allow(raw-elementwise-loop) transcendental fallback; libm
    // has no cross-width bit-exactness, so these stay scalar by contract
    for (int64_t i = b; i < e; ++i) po[i] = f(pa[i]);
  });
  return out;
}

template <typename F>
Tensor Binary(const Tensor& a, const Tensor& b, F f) {
  CheckFloatContiguous(a, "lhs");
  CheckFloatContiguous(b, "rhs");
  CheckSameShape(a, b);
  Tensor out = Tensor::Empty(a.shape(), DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, a.numel(), kParallelGrain, [&](int64_t lo, int64_t hi) {
    // ddplint: allow(raw-elementwise-loop) transcendental fallback; libm
    // has no cross-width bit-exactness, so these stay scalar by contract
    for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
  });
  return out;
}

/// SIMD-path helpers: the batch fn receives whole [lo, hi) spans and is
/// expected to forward to a vec.h entry point.
template <typename BatchFn>
Tensor UnaryBatch(const Tensor& a, BatchFn fn) {
  CheckFloatContiguous(a, "input");
  Tensor out = Tensor::Empty(a.shape(), DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, a.numel(), kParallelGrain, [&](int64_t b, int64_t e) {
    fn(pa + b, po + b, e - b);
  });
  return out;
}

template <typename BatchFn>
Tensor BinaryBatch(const Tensor& a, const Tensor& b, BatchFn fn) {
  CheckFloatContiguous(a, "lhs");
  CheckFloatContiguous(b, "rhs");
  CheckSameShape(a, b);
  Tensor out = Tensor::Empty(a.shape(), DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, a.numel(), kParallelGrain, [&](int64_t lo, int64_t hi) {
    fn(pa + lo, pb + lo, po + lo, hi - lo);
  });
  return out;
}

}  // namespace

// ---- Elementwise ------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBatch(a, b, [](const float* x, const float* y, float* d,
                              int64_t n) { vec::Add(x, y, d, n); });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBatch(a, b, [](const float* x, const float* y, float* d,
                              int64_t n) { vec::Sub(x, y, d, n); });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBatch(a, b, [](const float* x, const float* y, float* d,
                              int64_t n) { vec::Mul(x, y, d, n); });
}

Tensor Scale(const Tensor& a, double s) {
  const float fs = static_cast<float>(s);
  return UnaryBatch(a, [fs](const float* x, float* d, int64_t n) {
    vec::Scale(x, fs, d, n);
  });
}

Tensor AddScalar(const Tensor& a, double s) {
  const float fs = static_cast<float>(s);
  return UnaryBatch(a, [fs](const float* x, float* d, int64_t n) {
    vec::AddScalar(x, fs, d, n);
  });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBatch(a, b, [](const float* x, const float* y, float* d,
                              int64_t n) { vec::Div(x, y, d, n); });
}

Tensor Neg(const Tensor& a) {
  return UnaryBatch(
      a, [](const float* x, float* d, int64_t n) { vec::Neg(x, d, n); });
}

Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}

Tensor Sqrt(const Tensor& a) {
  // sqrtps is correctly rounded per IEEE-754, so unlike the transcendentals
  // this one is safe to vectorize without breaking bit-exactness.
  return UnaryBatch(
      a, [](const float* x, float* d, int64_t n) { vec::Sqrt(x, d, n); });
}

void Axpy(double alpha, const Tensor& x, Tensor* y) {
  DDPKIT_CHECK(y != nullptr);
  CheckFloatContiguous(x, "x");
  CheckFloatContiguous(*y, "y");
  CheckSameShape(x, *y);
  const float a = static_cast<float>(alpha);
  const float* px = x.data<float>();
  float* py = y->data<float>();
  ParallelFor(0, x.numel(), kParallelGrain, [&](int64_t lo, int64_t hi) {
    vec::Axpy(a, px + lo, py + lo, hi - lo);
  });
}

void ScaleInPlace(Tensor* y, double s) {
  DDPKIT_CHECK(y != nullptr);
  CheckFloatContiguous(*y, "y");
  const float fs = static_cast<float>(s);
  float* py = y->data<float>();
  ParallelFor(0, y->numel(), kParallelGrain, [&](int64_t lo, int64_t hi) {
    vec::ScaleInPlace(py + lo, fs, hi - lo);
  });
}

void AddInPlace(Tensor* dst, const Tensor& src) { Axpy(1.0, src, dst); }

// ---- Activations -------------------------------------------------------------

Tensor Relu(const Tensor& a) {
  return UnaryBatch(
      a, [](const float* x, float* d, int64_t n) { vec::Relu(x, d, n); });
}

Tensor ReluBackward(const Tensor& grad_out, const Tensor& input) {
  return BinaryBatch(grad_out, input,
                     [](const float* g, const float* x, float* d, int64_t n) {
                       vec::ReluBackward(g, x, d, n);
                     });
}

namespace {
// tanh-approximation GELU, matching BERT.
inline float GeluScalar(float x) {
  const float k = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = k * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}
inline float GeluGradScalar(float x) {
  const float k = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float inner = k * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * k * (1.0f + 3.0f * 0.044715f * x * x);
}
}  // namespace

Tensor Gelu(const Tensor& a) { return Unary(a, GeluScalar); }

Tensor GeluBackward(const Tensor& grad_out, const Tensor& input) {
  return Binary(grad_out, input,
                [](float g, float x) { return g * GeluGradScalar(x); });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}

// ---- Linear algebra -------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CheckFloatContiguous(a, "a");
  CheckFloatContiguous(b, "b");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  DDPKIT_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  DDPKIT_CHECK_EQ(k, b.size(0));
  // Empty + per-row zeroing inside the kernel: one pass over the output
  // instead of a full memset followed by the accumulation pass.
  Tensor out = Tensor::Empty({m, n}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, m, GrainFromCost(k * n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      float* orow = po + i * n;
      std::fill(orow, orow + n, 0.0f);
      const float* arow = pa + i * k;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        // vec::Axpy is explicit mul-then-add at every dispatch level, the
        // same rounding as the scalar `orow[j] += av * brow[j]` it replaces.
        vec::Axpy(av, pb + p * n, orow, n);
      }
    }
  });
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  CheckFloatContiguous(a, "a");
  CheckFloatContiguous(b, "b");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  DDPKIT_CHECK_EQ(b.dim(), 2);
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  DDPKIT_CHECK_EQ(k, b.size(0));
  Tensor out = Tensor::Empty({m, n}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.data<float>();
  // i-outer so each output row has exactly one writer; the seed's k-outer
  // loop would race when rows are split across threads. Per-element
  // accumulation order (ascending p) is unchanged, so results stay
  // bit-exact with the serial version.
  ParallelFor(0, m, GrainFromCost(k * n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      float* orow = po + i * n;
      std::fill(orow, orow + n, 0.0f);
      for (int64_t p = 0; p < k; ++p) {
        const float av = pa[p * m + i];
        if (av == 0.0f) continue;
        vec::Axpy(av, pb + p * n, orow, n);
      }
    }
  });
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  CheckFloatContiguous(a, "a");
  CheckFloatContiguous(b, "b");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  DDPKIT_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  DDPKIT_CHECK_EQ(k, b.size(1));
  Tensor out = Tensor::Empty({m, n}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, m, GrainFromCost(k * n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      const float* arow = pa + i * k;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        // ddplint: allow(raw-elementwise-loop) horizontal dot product; the
        // vec layer offers no reductions (lane order would change rounding)
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        po[i * n + j] = acc;
      }
    }
  });
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  CheckFloatContiguous(a, "a");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Empty({n, m}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, m, GrainFromCost(n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
    }
  });
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  CheckFloatContiguous(a, "a");
  CheckFloatContiguous(bias, "bias");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  DDPKIT_CHECK_EQ(bias.numel(), a.size(1));
  const int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Empty({m, n}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  const float* pbias = bias.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, m, GrainFromCost(n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      vec::Add(pa + i * n, pbias, po + i * n, n);
    }
  });
  return out;
}

Tensor SumRows(const Tensor& a) {
  CheckFloatContiguous(a, "a");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Empty({n}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  float* po = out.data<float>();
  // Column-partitioned: each output element is owned by one thread and
  // accumulates rows in ascending order, exactly as the serial loop does.
  ParallelFor(0, n, GrainFromCost(m), [&](int64_t jb, int64_t je) {
    std::fill(po + jb, po + je, 0.0f);
    for (int64_t i = 0; i < m; ++i) {
      vec::AccumulateAdd(po + jb, pa + i * n + jb, je - jb);
    }
  });
  return out;
}

// ---- Convolution ----------------------------------------------------------------

namespace {

int64_t ConvOutSize(int64_t in, int64_t kernel, int64_t stride,
                    int64_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight,
              const Conv2dArgs& args) {
  CheckFloatContiguous(input, "input");
  CheckFloatContiguous(weight, "weight");
  DDPKIT_CHECK_EQ(input.dim(), 4);
  DDPKIT_CHECK_EQ(weight.dim(), 4);
  const int64_t batch = input.size(0), cin = input.size(1), h = input.size(2),
                w = input.size(3);
  const int64_t cout = weight.size(0), kh = weight.size(2),
                kw = weight.size(3);
  DDPKIT_CHECK_EQ(cin, weight.size(1));
  const int64_t oh = ConvOutSize(h, kh, args.stride, args.padding);
  const int64_t ow = ConvOutSize(w, kw, args.stride, args.padding);
  DDPKIT_CHECK(oh > 0 && ow > 0);
  Tensor out =
      Tensor::Empty({batch, cout, oh, ow}, DType::kFloat32, input.device_id());
  const float* pi = input.data<float>();
  const float* pw = weight.data<float>();
  float* po = out.data<float>();
  // One work item per output scanline (n, oc, y); every output element is
  // written by exactly one thread.
  ParallelFor(0, batch * cout * oh, GrainFromCost(ow * cin * kh * kw),
              [&](int64_t rb, int64_t re) {
    for (int64_t row = rb; row < re; ++row) {
      const int64_t y = row % oh;
      const int64_t oc = (row / oh) % cout;
      const int64_t n = row / (oh * cout);
      for (int64_t x = 0; x < ow; ++x) {
        float acc = 0.0f;
        for (int64_t ic = 0; ic < cin; ++ic) {
          for (int64_t ky = 0; ky < kh; ++ky) {
            const int64_t iy = y * args.stride - args.padding + ky;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kx = 0; kx < kw; ++kx) {
              const int64_t ix = x * args.stride - args.padding + kx;
              if (ix < 0 || ix >= w) continue;
              acc += pi[((n * cin + ic) * h + iy) * w + ix] *
                     pw[((oc * cin + ic) * kh + ky) * kw + kx];
            }
          }
        }
        po[((n * cout + oc) * oh + y) * ow + x] = acc;
      }
    }
  });
  return out;
}

Tensor Conv2dBackwardInput(const Tensor& grad_out, const Tensor& weight,
                           const std::vector<int64_t>& input_shape,
                           const Conv2dArgs& args) {
  CheckFloatContiguous(grad_out, "grad_out");
  CheckFloatContiguous(weight, "weight");
  const int64_t batch = input_shape[0], cin = input_shape[1],
                h = input_shape[2], w = input_shape[3];
  const int64_t cout = weight.size(0), kh = weight.size(2),
                kw = weight.size(3);
  const int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor grad_in =
      Tensor::Zeros(input_shape, DType::kFloat32, grad_out.device_id());
  const float* pg = grad_out.data<float>();
  const float* pw = weight.data<float>();
  float* pi = grad_in.data<float>();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < cout; ++oc) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          const float g = pg[((n * cout + oc) * oh + y) * ow + x];
          if (g == 0.0f) continue;
          for (int64_t ic = 0; ic < cin; ++ic) {
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = y * args.stride - args.padding + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = x * args.stride - args.padding + kx;
                if (ix < 0 || ix >= w) continue;
                pi[((n * cin + ic) * h + iy) * w + ix] +=
                    g * pw[((oc * cin + ic) * kh + ky) * kw + kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor Conv2dBackwardWeight(const Tensor& grad_out, const Tensor& input,
                            const std::vector<int64_t>& weight_shape,
                            const Conv2dArgs& args) {
  CheckFloatContiguous(grad_out, "grad_out");
  CheckFloatContiguous(input, "input");
  const int64_t batch = input.size(0), cin = input.size(1), h = input.size(2),
                w = input.size(3);
  const int64_t cout = weight_shape[0], kh = weight_shape[2],
                kw = weight_shape[3];
  const int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor grad_w =
      Tensor::Zeros(weight_shape, DType::kFloat32, input.device_id());
  const float* pg = grad_out.data<float>();
  const float* pi = input.data<float>();
  float* pw = grad_w.data<float>();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < cout; ++oc) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          const float g = pg[((n * cout + oc) * oh + y) * ow + x];
          if (g == 0.0f) continue;
          for (int64_t ic = 0; ic < cin; ++ic) {
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = y * args.stride - args.padding + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = x * args.stride - args.padding + kx;
                if (ix < 0 || ix >= w) continue;
                pw[((oc * cin + ic) * kh + ky) * kw + kx] +=
                    g * pi[((n * cin + ic) * h + iy) * w + ix];
              }
            }
          }
        }
      }
    }
  }
  return grad_w;
}

Tensor MaxPool2x2(const Tensor& input, Tensor* argmax) {
  CheckFloatContiguous(input, "input");
  DDPKIT_CHECK(argmax != nullptr);
  DDPKIT_CHECK_EQ(input.dim(), 4);
  const int64_t batch = input.size(0), c = input.size(1), h = input.size(2),
                w = input.size(3);
  DDPKIT_CHECK(h % 2 == 0 && w % 2 == 0);
  const int64_t oh = h / 2, ow = w / 2;
  Tensor out =
      Tensor::Empty({batch, c, oh, ow}, DType::kFloat32, input.device_id());
  *argmax = Tensor::Empty({batch, c, oh, ow}, DType::kInt64,
                          input.device_id());
  const float* pi = input.data<float>();
  float* po = out.data<float>();
  int64_t* pa = argmax->data<int64_t>();
  ParallelFor(0, batch * c * oh, GrainFromCost(ow * 4),
              [&](int64_t rb, int64_t re) {
    for (int64_t row = rb; row < re; ++row) {
      const int64_t y = row % oh;
      const int64_t nc = row / oh;  // flattened (n, ch)
      for (int64_t x = 0; x < ow; ++x) {
        const int64_t base = (nc * h + 2 * y) * w + 2 * x;
        const int64_t candidates[4] = {base, base + 1, base + w,
                                       base + w + 1};
        int64_t best = candidates[0];
        for (int k = 1; k < 4; ++k) {
          if (pi[candidates[k]] > pi[best]) best = candidates[k];
        }
        const int64_t out_idx = (nc * oh + y) * ow + x;
        // ddplint: allow(raw-elementwise-loop) per-window argmax gather
        po[out_idx] = pi[best];
        pa[out_idx] = best;
      }
    }
  });
  return out;
}

Tensor MaxPool2x2Backward(const Tensor& grad_out, const Tensor& argmax,
                          const std::vector<int64_t>& input_shape) {
  CheckFloatContiguous(grad_out, "grad_out");
  DDPKIT_CHECK(argmax.dtype() == DType::kInt64);
  DDPKIT_CHECK_EQ(argmax.numel(), grad_out.numel());
  Tensor grad_in =
      Tensor::Zeros(input_shape, DType::kFloat32, grad_out.device_id());
  const float* pg = grad_out.data<float>();
  const int64_t* pa = argmax.data<int64_t>();
  float* pi = grad_in.data<float>();
  const int64_t n = grad_out.numel();
  const int64_t in_numel = grad_in.numel();
  for (int64_t i = 0; i < n; ++i) {
    DDPKIT_CHECK(pa[i] >= 0 && pa[i] < in_numel);
    pi[pa[i]] += pg[i];
  }
  return grad_in;
}

Tensor AvgPool2x2(const Tensor& input) {
  CheckFloatContiguous(input, "input");
  DDPKIT_CHECK_EQ(input.dim(), 4);
  const int64_t batch = input.size(0), c = input.size(1), h = input.size(2),
                w = input.size(3);
  DDPKIT_CHECK(h % 2 == 0 && w % 2 == 0);
  const int64_t oh = h / 2, ow = w / 2;
  Tensor out =
      Tensor::Empty({batch, c, oh, ow}, DType::kFloat32, input.device_id());
  const float* pi = input.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, batch * c * oh, GrainFromCost(ow * 4),
              [&](int64_t rb, int64_t re) {
    for (int64_t row = rb; row < re; ++row) {
      const int64_t y = row % oh;
      const int64_t nc = row / oh;
      for (int64_t x = 0; x < ow; ++x) {
        const int64_t base = (nc * h + 2 * y) * w + 2 * x;
        po[(nc * oh + y) * ow + x] =
            0.25f * (pi[base] + pi[base + 1] + pi[base + w] +
                     pi[base + w + 1]);
      }
    }
  });
  return out;
}

Tensor AvgPool2x2Backward(const Tensor& grad_out,
                          const std::vector<int64_t>& input_shape) {
  CheckFloatContiguous(grad_out, "grad_out");
  const int64_t batch = input_shape[0], c = input_shape[1],
                h = input_shape[2], w = input_shape[3];
  const int64_t oh = h / 2, ow = w / 2;
  Tensor grad_in =
      Tensor::Zeros(input_shape, DType::kFloat32, grad_out.device_id());
  const float* pg = grad_out.data<float>();
  float* pi = grad_in.data<float>();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          const float g = 0.25f * pg[((n * c + ch) * oh + y) * ow + x];
          const int64_t base = ((n * c + ch) * h + 2 * y) * w + 2 * x;
          pi[base] += g;
          pi[base + 1] += g;
          pi[base + w] += g;
          pi[base + w + 1] += g;
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool(const Tensor& input) {
  CheckFloatContiguous(input, "input");
  DDPKIT_CHECK_EQ(input.dim(), 4);
  const int64_t batch = input.size(0), c = input.size(1), h = input.size(2),
                w = input.size(3);
  Tensor out = Tensor::Empty({batch, c}, DType::kFloat32, input.device_id());
  const float* pi = input.data<float>();
  float* po = out.data<float>();
  const float inv = 1.0f / static_cast<float>(h * w);
  ParallelFor(0, batch * c, GrainFromCost(h * w),
              [&](int64_t cb, int64_t ce) {
    for (int64_t nc = cb; nc < ce; ++nc) {
      float acc = 0.0f;
      const float* base = pi + nc * h * w;
      for (int64_t i = 0; i < h * w; ++i) acc += base[i];
      po[nc] = acc * inv;
    }
  });
  return out;
}

Tensor GlobalAvgPoolBackward(const Tensor& grad_out,
                             const std::vector<int64_t>& input_shape) {
  CheckFloatContiguous(grad_out, "grad_out");
  const int64_t batch = input_shape[0], c = input_shape[1],
                h = input_shape[2], w = input_shape[3];
  Tensor grad_in =
      Tensor::Empty(input_shape, DType::kFloat32, grad_out.device_id());
  const float* pg = grad_out.data<float>();
  float* pi = grad_in.data<float>();
  const float inv = 1.0f / static_cast<float>(h * w);
  ParallelFor(0, batch * c, GrainFromCost(h * w),
              [&](int64_t cb, int64_t ce) {
    for (int64_t nc = cb; nc < ce; ++nc) {
      const float g = pg[nc] * inv;
      float* base = pi + nc * h * w;
      for (int64_t i = 0; i < h * w; ++i) base[i] = g;
    }
  });
  return grad_in;
}

// ---- Reductions & softmax ----------------------------------------------------------

Tensor SumAll(const Tensor& a) {
  CheckFloatContiguous(a, "a");
  const float* pa = a.data<float>();
  // Chunked double-precision partial sums combined in chunk-index order:
  // the summation order depends only on numel and the grain, never on the
  // thread count.
  const double acc = ParallelReduce(
      0, a.numel(), kParallelGrain, 0.0,
      [&](int64_t b, int64_t e) {
        double s = 0.0;
        for (int64_t i = b; i < e; ++i) s += pa[i];
        return s;
      },
      [](double x, double y) { return x + y; });
  Tensor out = Tensor::Empty({1}, DType::kFloat32, a.device_id());
  out.data<float>()[0] = static_cast<float>(acc);
  return out;
}

Tensor MeanAll(const Tensor& a) {
  Tensor s = SumAll(a);
  s.data<float>()[0] /= static_cast<float>(a.numel());
  return s;
}

Tensor Softmax(const Tensor& a) {
  CheckFloatContiguous(a, "a");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Empty({m, n}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, m, GrainFromCost(4 * n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      const float* row = pa + i * n;
      float* orow = po + i * n;
      float mx = row[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        // ddplint: allow(raw-elementwise-loop) fused exp + horizontal sum;
        // transcendentals stay scalar per the vec.h bit-exactness contract
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      const float inv = 1.0f / denom;
      vec::ScaleInPlace(orow, inv, n);
    }
  });
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  CheckFloatContiguous(a, "a");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Empty({m, n}, DType::kFloat32, a.device_id());
  const float* pa = a.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, m, GrainFromCost(4 * n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      const float* row = pa + i * n;
      float* orow = po + i * n;
      float mx = row[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < n; ++j) denom += std::exp(row[j] - mx);
      const float log_denom = std::log(denom) + mx;
      // x - c and x + (-c) round identically in IEEE arithmetic.
      vec::AddScalar(row, -log_denom, orow, n);
    }
  });
  return out;
}

Tensor ArgMaxRows(const Tensor& a) {
  CheckFloatContiguous(a, "a");
  DDPKIT_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::Empty({m}, DType::kInt64, a.device_id());
  const float* pa = a.data<float>();
  int64_t* po = out.data<int64_t>();
  ParallelFor(0, m, GrainFromCost(n), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      const float* row = pa + i * n;
      int64_t best = 0;
      for (int64_t j = 1; j < n; ++j) {
        if (row[j] > row[best]) best = j;
      }
      po[i] = best;
    }
  });
  return out;
}

// ---- Embedding ----------------------------------------------------------------------

Tensor EmbeddingLookup(const Tensor& indices, const Tensor& table) {
  DDPKIT_CHECK(indices.dtype() == DType::kInt64);
  CheckFloatContiguous(table, "table");
  DDPKIT_CHECK_EQ(table.dim(), 2);
  const int64_t n = indices.numel();
  const int64_t vocab = table.size(0), dim = table.size(1);
  Tensor out = Tensor::Empty({n, dim}, DType::kFloat32, table.device_id());
  const int64_t* pidx = indices.data<int64_t>();
  const float* pt = table.data<float>();
  float* po = out.data<float>();
  ParallelFor(0, n, GrainFromCost(dim), [&](int64_t rb, int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      DDPKIT_CHECK(pidx[i] >= 0 && pidx[i] < vocab);
      std::memcpy(po + i * dim, pt + pidx[i] * dim,
                  static_cast<size_t>(dim) * sizeof(float));
    }
  });
  return out;
}

Tensor EmbeddingBackward(const Tensor& grad_out, const Tensor& indices,
                         const std::vector<int64_t>& table_shape) {
  CheckFloatContiguous(grad_out, "grad_out");
  DDPKIT_CHECK(indices.dtype() == DType::kInt64);
  const int64_t n = indices.numel();
  const int64_t dim = table_shape[1];
  Tensor grad_table =
      Tensor::Zeros(table_shape, DType::kFloat32, grad_out.device_id());
  const int64_t* pidx = indices.data<int64_t>();
  const float* pg = grad_out.data<float>();
  float* pt = grad_table.data<float>();
  for (int64_t i = 0; i < n; ++i) {
    float* row = pt + pidx[i] * dim;
    vec::AccumulateAdd(row, pg + i * dim, dim);
  }
  return grad_table;
}

// ---- Comparisons ----------------------------------------------------------------------

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  DDPKIT_CHECK_EQ(a.numel(), b.numel());
  // max is order-insensitive, but the chunked combine keeps the pattern
  // consistent with SumAll.
  return ParallelReduce(
      0, a.numel(), kParallelGrain, 0.0,
      [&](int64_t lo, int64_t hi) {
        double mx = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          mx = std::max(mx, std::abs(a.FlatAt(i) - b.FlatAt(i)));
        }
        return mx;
      },
      [](double x, double y) { return std::max(x, y); });
}

bool AllClose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.numel() != b.numel()) return false;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    const double x = a.FlatAt(i), y = b.FlatAt(i);
    if (std::abs(x - y) > atol + rtol * std::abs(y)) return false;
  }
  return true;
}

}  // namespace ddpkit::kernels
