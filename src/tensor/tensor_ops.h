#ifndef DDPKIT_TENSOR_TENSOR_OPS_H_
#define DDPKIT_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ddpkit::kernels {

/// Raw float32 compute kernels with no autograd involvement. The autograd
/// layer (autograd/ops.h) wraps these into differentiable operations.
/// All kernels require contiguous float32 inputs unless noted.

// ---- Elementwise ---------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, double s);
Tensor AddScalar(const Tensor& a, double s);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);

/// In-place y += alpha * x (BLAS axpy). Shapes must match in numel.
void Axpy(double alpha, const Tensor& x, Tensor* y);
/// In-place y *= s.
void ScaleInPlace(Tensor* y, double s);
/// In-place elementwise sum into `dst`: dst += src.
void AddInPlace(Tensor* dst, const Tensor& src);

// ---- Activations ----------------------------------------------------------

Tensor Relu(const Tensor& a);
/// dL/dx = dL/dy where x > 0 else 0.
Tensor ReluBackward(const Tensor& grad_out, const Tensor& input);
Tensor Gelu(const Tensor& a);
Tensor GeluBackward(const Tensor& grad_out, const Tensor& input);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

// ---- Linear algebra ---------------------------------------------------------

/// C[m,n] = A[m,k] @ B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C[m,n] = A^T[m,k] @ B[k,n] where A is [k,m].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] @ B^T[k,n] where B is [n,k].
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
Tensor Transpose2D(const Tensor& a);

/// out[i, j] = a[i, j] + bias[j] for a [m, n] and bias [n].
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);
/// Column-sum of a [m, n] matrix -> [n]. (Bias gradient.)
Tensor SumRows(const Tensor& a);

// ---- Convolution (NCHW) ------------------------------------------------------

struct Conv2dArgs {
  int64_t stride = 1;
  int64_t padding = 0;
};

/// input [N, Cin, H, W], weight [Cout, Cin, kH, kW] -> [N, Cout, H', W'].
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Conv2dArgs& args);
Tensor Conv2dBackwardInput(const Tensor& grad_out, const Tensor& weight,
                           const std::vector<int64_t>& input_shape,
                           const Conv2dArgs& args);
Tensor Conv2dBackwardWeight(const Tensor& grad_out, const Tensor& input,
                            const std::vector<int64_t>& weight_shape,
                            const Conv2dArgs& args);

/// 2x2 max pooling with stride 2. `argmax` (out) receives the flat input
/// offset of each selected element, for the backward pass.
Tensor MaxPool2x2(const Tensor& input, Tensor* argmax);
/// Scatters grad_out back to the positions recorded in `argmax`.
Tensor MaxPool2x2Backward(const Tensor& grad_out, const Tensor& argmax,
                          const std::vector<int64_t>& input_shape);

/// 2x2 average pooling with stride 2 (used by the tiny ResNet).
Tensor AvgPool2x2(const Tensor& input);
Tensor AvgPool2x2Backward(const Tensor& grad_out,
                          const std::vector<int64_t>& input_shape);
/// Global average pool over H,W: [N, C, H, W] -> [N, C].
Tensor GlobalAvgPool(const Tensor& input);
Tensor GlobalAvgPoolBackward(const Tensor& grad_out,
                             const std::vector<int64_t>& input_shape);

// ---- Reductions & softmax -----------------------------------------------------

Tensor SumAll(const Tensor& a);   // -> scalar [1]
Tensor MeanAll(const Tensor& a);  // -> scalar [1]
/// Row-wise softmax of [m, n].
Tensor Softmax(const Tensor& a);
/// Row-wise log-softmax of [m, n].
Tensor LogSoftmax(const Tensor& a);
/// Row-wise argmax of [m, n] -> int64 [m].
Tensor ArgMaxRows(const Tensor& a);

// ---- Embedding ------------------------------------------------------------------

/// indices int64 [n], table [vocab, dim] -> [n, dim].
Tensor EmbeddingLookup(const Tensor& indices, const Tensor& table);
/// Scatter-add of grad_out rows into a zero table gradient.
Tensor EmbeddingBackward(const Tensor& grad_out, const Tensor& indices,
                         const std::vector<int64_t>& table_shape);

// ---- Comparisons -----------------------------------------------------------------

/// Max absolute elementwise difference (for tests).
double MaxAbsDiff(const Tensor& a, const Tensor& b);
/// True if all |a-b| <= atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-7);

}  // namespace ddpkit::kernels

#endif  // DDPKIT_TENSOR_TENSOR_OPS_H_
