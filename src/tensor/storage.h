#ifndef DDPKIT_TENSOR_STORAGE_H_
#define DDPKIT_TENSOR_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace ddpkit {

/// Reference-counted flat byte buffer backing one or more tensor views.
/// `device_id` is the *simulated* device the buffer notionally lives on
/// (all memory is host RAM; the id drives bucket/parameter affinity checks,
/// mirroring the paper's "buckets are created on the same device as the
/// parameters").
class Storage {
 public:
  /// Allocates `nbytes` of zero-initialized memory.
  Storage(size_t nbytes, int device_id);

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  uint8_t* data() { return data_.get(); }
  const uint8_t* data() const { return data_.get(); }
  size_t nbytes() const { return nbytes_; }
  int device_id() const { return device_id_; }

 private:
  std::unique_ptr<uint8_t[]> data_;
  size_t nbytes_;
  int device_id_;
};

}  // namespace ddpkit

#endif  // DDPKIT_TENSOR_STORAGE_H_
