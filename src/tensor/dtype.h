#ifndef DDPKIT_TENSOR_DTYPE_H_
#define DDPKIT_TENSOR_DTYPE_H_

#include <cstddef>
#include <cstdint>

namespace ddpkit {

/// Element types supported by ddpkit tensors. kFloat32 is the workhorse;
/// kUInt8 backs the unused-parameter bitmaps (paper §3.2.3), kFloat16 the
/// compression extension (§6.2.3), kInt64 class labels.
enum class DType : uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
  kInt64 = 2,
  kUInt8 = 3,
  kFloat16 = 4,
};

constexpr size_t ItemSize(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return 4;
    case DType::kFloat64:
      return 8;
    case DType::kInt64:
      return 8;
    case DType::kUInt8:
      return 1;
    case DType::kFloat16:
      return 2;
  }
  return 0;
}

constexpr const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kFloat64:
      return "float64";
    case DType::kInt64:
      return "int64";
    case DType::kUInt8:
      return "uint8";
    case DType::kFloat16:
      return "float16";
  }
  return "unknown";
}

/// Minimal IEEE 754 half-float conversions for the gradient-compression
/// extension. Round-to-nearest-even on encode.
uint16_t Float32ToHalfBits(float value);
float HalfBitsToFloat32(uint16_t bits);

/// bfloat16 conversions: the top 16 bits of the fp32 representation,
/// round-to-nearest-even on encode. Same exponent range as fp32.
uint16_t Float32ToBf16Bits(float value);
float Bf16BitsToFloat32(uint16_t bits);

}  // namespace ddpkit

#endif  // DDPKIT_TENSOR_DTYPE_H_
