#ifndef DDPKIT_TENSOR_TENSOR_H_
#define DDPKIT_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/dtype.h"
#include "tensor/storage.h"

namespace ddpkit {

/// Abstract hook that lets the autograd library attach graph metadata
/// (grad_fn, gradient accumulator) to a tensor without a dependency cycle
/// between the tensor and autograd libraries.
class AutogradMetaBase {
 public:
  virtual ~AutogradMetaBase() = default;
};

namespace internal {

/// Shared tensor state. Tensor handles that alias the same TensorImpl see
/// each other's in-place modifications, matching PyTorch semantics (a
/// parameter tensor and the copies of it held by DDP are the same object).
struct TensorImpl {
  std::shared_ptr<Storage> storage;
  size_t byte_offset = 0;
  std::vector<int64_t> shape;
  std::vector<int64_t> strides;  // in elements
  DType dtype = DType::kFloat32;
  bool requires_grad = false;
  std::shared_ptr<TensorImpl> grad;  // lazily allocated
  std::shared_ptr<AutogradMetaBase> autograd_meta;
};

}  // namespace internal

/// An n-dimensional array handle. Copying a Tensor is cheap and aliasing:
/// both handles refer to the same data, gradient and autograd state. Use
/// Clone() for a deep copy.
class Tensor {
 public:
  /// An undefined tensor (no storage). defined() returns false.
  Tensor() = default;

  // ---- Factories -------------------------------------------------------

  static Tensor Empty(std::vector<int64_t> shape, DType dtype = DType::kFloat32,
                      int device_id = 0);
  static Tensor Zeros(std::vector<int64_t> shape, DType dtype = DType::kFloat32,
                      int device_id = 0);
  static Tensor Full(std::vector<int64_t> shape, double value,
                     DType dtype = DType::kFloat32, int device_id = 0);
  static Tensor Ones(std::vector<int64_t> shape, DType dtype = DType::kFloat32,
                     int device_id = 0);
  /// Standard-normal initialization (float32).
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng, int device_id = 0);
  /// Uniform in [lo, hi) (float32).
  static Tensor Rand(std::vector<int64_t> shape, Rng* rng, double lo = 0.0,
                     double hi = 1.0, int device_id = 0);
  static Tensor FromVector(const std::vector<float>& values,
                           std::vector<int64_t> shape, int device_id = 0);
  static Tensor FromVectorInt64(const std::vector<int64_t>& values,
                                std::vector<int64_t> shape, int device_id = 0);

  // ---- Introspection ---------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  const std::vector<int64_t>& strides() const;
  int64_t dim() const;
  int64_t size(int64_t d) const;
  int64_t numel() const;
  DType dtype() const;
  int device_id() const;
  size_t nbytes() const { return static_cast<size_t>(numel()) * ItemSize(dtype()); }
  bool is_contiguous() const;
  std::string ShapeString() const;

  /// Identity: two handles alias the same underlying impl.
  bool is_same(const Tensor& other) const { return impl_ == other.impl_; }
  /// Stable identity key for use in maps.
  const void* id() const { return impl_.get(); }

  // ---- Data access -----------------------------------------------------

  /// Typed pointer to the first element of this view. T must match dtype.
  template <typename T>
  T* data() {
    return reinterpret_cast<T*>(impl().storage->data() + impl().byte_offset);
  }
  template <typename T>
  const T* data() const {
    return reinterpret_cast<const T*>(impl().storage->data() +
                                      impl().byte_offset);
  }

  /// Element accessor by multi-dimensional index (float32/float64 as double).
  double At(const std::vector<int64_t>& index) const;
  void Set(const std::vector<int64_t>& index, double value);
  /// Scalar extraction. Precondition: numel() == 1.
  double Item() const;

  /// Flat element accessor honoring strides (works on non-contiguous views).
  double FlatAt(int64_t i) const;
  void FlatSet(int64_t i, double value);

  // ---- Shape manipulation ----------------------------------------------

  /// Contiguous-only reshape; returns a view sharing storage.
  Tensor Reshape(std::vector<int64_t> new_shape) const;
  Tensor Flatten() const;
  /// Narrowed view along `d`: elements [start, start+length). Shares storage.
  /// This is the primitive DDP's bucket views are built from (Algorithm 1,
  /// line 15).
  Tensor Narrow(int64_t d, int64_t start, int64_t length) const;
  /// Index along dim 0, removing it. Shares storage (contiguous-only).
  Tensor Select(int64_t index) const;

  // ---- Mutation / conversion -------------------------------------------

  Tensor Clone() const;
  /// Copies elementwise from `src` (same numel; dtype must match).
  void CopyFrom(const Tensor& src);
  void Fill(double value);
  void Zero() { Fill(0.0); }
  Tensor Cast(DType dtype) const;
  Tensor Contiguous() const;

  // ---- Autograd hooks (state only; semantics live in autograd/) ---------

  bool requires_grad() const;
  void set_requires_grad(bool value);
  /// The accumulated gradient, or an undefined tensor if none.
  Tensor grad() const;
  void set_grad(const Tensor& g);
  /// Adds `g` into grad, allocating it (zeros) on first use.
  void AccumulateGrad(const Tensor& g);
  void ZeroGrad();

  std::shared_ptr<AutogradMetaBase> autograd_meta() const;
  void set_autograd_meta(std::shared_ptr<AutogradMetaBase> meta);

 private:
  friend Tensor MakeTensorFromImpl(std::shared_ptr<internal::TensorImpl>);
  friend std::shared_ptr<internal::TensorImpl> GetTensorImpl(const Tensor&);

  internal::TensorImpl& impl() {
    DDPKIT_CHECK(impl_ != nullptr) << "undefined tensor";
    return *impl_;
  }
  const internal::TensorImpl& impl() const {
    DDPKIT_CHECK(impl_ != nullptr) << "undefined tensor";
    return *impl_;
  }

  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Internal helpers used by the autograd engine (not for general use).
Tensor MakeTensorFromImpl(std::shared_ptr<internal::TensorImpl> impl);
std::shared_ptr<internal::TensorImpl> GetTensorImpl(const Tensor& t);

/// Number of elements implied by `shape`.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// Row-major (C-order) strides for `shape`.
std::vector<int64_t> ContiguousStrides(const std::vector<int64_t>& shape);

}  // namespace ddpkit

#endif  // DDPKIT_TENSOR_TENSOR_H_
