#include "tensor/storage.h"

#include <cstring>

namespace ddpkit {

Storage::Storage(size_t nbytes, int device_id)
    : data_(new uint8_t[nbytes > 0 ? nbytes : 1]),
      nbytes_(nbytes),
      device_id_(device_id) {
  std::memset(data_.get(), 0, nbytes_ > 0 ? nbytes_ : 1);
}

}  // namespace ddpkit
