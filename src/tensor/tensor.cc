#include "tensor/tensor.h"

#include <cstring>
#include <numeric>
#include <sstream>

#include "common/vec.h"

namespace ddpkit {

namespace {

using internal::TensorImpl;

std::shared_ptr<TensorImpl> NewImpl(std::vector<int64_t> shape, DType dtype,
                                    int device_id) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->strides = ContiguousStrides(impl->shape);
  impl->dtype = dtype;
  const size_t nbytes =
      static_cast<size_t>(ShapeNumel(impl->shape)) * ItemSize(dtype);
  impl->storage = std::make_shared<Storage>(nbytes, device_id);
  return impl;
}

}  // namespace

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DDPKIT_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::vector<int64_t> ContiguousStrides(const std::vector<int64_t>& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t acc = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

Tensor MakeTensorFromImpl(std::shared_ptr<TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

std::shared_ptr<TensorImpl> GetTensorImpl(const Tensor& t) { return t.impl_; }

// ---- Factories -----------------------------------------------------------

Tensor Tensor::Empty(std::vector<int64_t> shape, DType dtype, int device_id) {
  return MakeTensorFromImpl(NewImpl(std::move(shape), dtype, device_id));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, DType dtype, int device_id) {
  // Storage is zero-initialized by construction.
  return Empty(std::move(shape), dtype, device_id);
}

Tensor Tensor::Full(std::vector<int64_t> shape, double value, DType dtype,
                    int device_id) {
  Tensor t = Empty(std::move(shape), dtype, device_id);
  t.Fill(value);
  return t;
}

Tensor Tensor::Ones(std::vector<int64_t> shape, DType dtype, int device_id) {
  return Full(std::move(shape), 1.0, dtype, device_id);
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, int device_id) {
  DDPKIT_CHECK(rng != nullptr);
  Tensor t = Empty(std::move(shape), DType::kFloat32, device_id);
  float* p = t.data<float>();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(rng->Normal());
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng* rng, double lo, double hi,
                    int device_id) {
  DDPKIT_CHECK(rng != nullptr);
  Tensor t = Empty(std::move(shape), DType::kFloat32, device_id);
  float* p = t.data<float>();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values,
                          std::vector<int64_t> shape, int device_id) {
  DDPKIT_CHECK_EQ(static_cast<int64_t>(values.size()), ShapeNumel(shape));
  Tensor t = Empty(std::move(shape), DType::kFloat32, device_id);
  std::memcpy(t.data<float>(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::FromVectorInt64(const std::vector<int64_t>& values,
                               std::vector<int64_t> shape, int device_id) {
  DDPKIT_CHECK_EQ(static_cast<int64_t>(values.size()), ShapeNumel(shape));
  Tensor t = Empty(std::move(shape), DType::kInt64, device_id);
  std::memcpy(t.data<int64_t>(), values.data(),
              values.size() * sizeof(int64_t));
  return t;
}

// ---- Introspection --------------------------------------------------------

const std::vector<int64_t>& Tensor::shape() const { return impl().shape; }
const std::vector<int64_t>& Tensor::strides() const { return impl().strides; }
int64_t Tensor::dim() const { return static_cast<int64_t>(impl().shape.size()); }

int64_t Tensor::size(int64_t d) const {
  DDPKIT_CHECK(d >= 0 && d < dim());
  return impl().shape[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const { return ShapeNumel(impl().shape); }
DType Tensor::dtype() const { return impl().dtype; }
int Tensor::device_id() const { return impl().storage->device_id(); }

bool Tensor::is_contiguous() const {
  return impl().strides == ContiguousStrides(impl().shape);
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < impl().shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << impl().shape[i];
  }
  os << "]";
  return os.str();
}

// ---- Element access --------------------------------------------------------

namespace {

int64_t LinearOffset(const TensorImpl& impl,
                     const std::vector<int64_t>& index) {
  DDPKIT_CHECK_EQ(index.size(), impl.shape.size());
  int64_t off = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    DDPKIT_CHECK(index[i] >= 0 && index[i] < impl.shape[i])
        << "index " << index[i] << " out of range for dim " << i;
    off += index[i] * impl.strides[i];
  }
  return off;
}

double LoadElement(const TensorImpl& impl, int64_t element_offset) {
  const uint8_t* base =
      impl.storage->data() + impl.byte_offset +
      static_cast<size_t>(element_offset) * ItemSize(impl.dtype);
  switch (impl.dtype) {
    case DType::kFloat32:
      return *reinterpret_cast<const float*>(base);
    case DType::kFloat64:
      return *reinterpret_cast<const double*>(base);
    case DType::kInt64:
      return static_cast<double>(*reinterpret_cast<const int64_t*>(base));
    case DType::kUInt8:
      return static_cast<double>(*base);
    case DType::kFloat16:
      return HalfBitsToFloat32(*reinterpret_cast<const uint16_t*>(base));
  }
  DDPKIT_CHECK(false) << "bad dtype";
  return 0.0;
}

void StoreElement(TensorImpl* impl, int64_t element_offset, double value) {
  uint8_t* base = impl->storage->data() + impl->byte_offset +
                  static_cast<size_t>(element_offset) * ItemSize(impl->dtype);
  switch (impl->dtype) {
    case DType::kFloat32:
      *reinterpret_cast<float*>(base) = static_cast<float>(value);
      return;
    case DType::kFloat64:
      *reinterpret_cast<double*>(base) = value;
      return;
    case DType::kInt64:
      *reinterpret_cast<int64_t*>(base) = static_cast<int64_t>(value);
      return;
    case DType::kUInt8:
      *base = static_cast<uint8_t>(value);
      return;
    case DType::kFloat16:
      *reinterpret_cast<uint16_t*>(base) =
          Float32ToHalfBits(static_cast<float>(value));
      return;
  }
  DDPKIT_CHECK(false) << "bad dtype";
}

// Converts a flat logical index into a strided element offset.
int64_t StridedOffset(const TensorImpl& impl, int64_t flat) {
  int64_t off = 0;
  int64_t rem = flat;
  for (size_t i = 0; i < impl.shape.size(); ++i) {
    int64_t block = 1;
    for (size_t j = i + 1; j < impl.shape.size(); ++j) block *= impl.shape[j];
    const int64_t idx = rem / block;
    rem %= block;
    off += idx * impl.strides[i];
  }
  return off;
}

}  // namespace

double Tensor::At(const std::vector<int64_t>& index) const {
  return LoadElement(impl(), LinearOffset(impl(), index));
}

void Tensor::Set(const std::vector<int64_t>& index, double value) {
  StoreElement(&impl(), LinearOffset(impl(), index), value);
}

double Tensor::Item() const {
  DDPKIT_CHECK_EQ(numel(), 1);
  return LoadElement(impl(), 0);
}

double Tensor::FlatAt(int64_t i) const {
  DDPKIT_CHECK(i >= 0 && i < numel());
  if (is_contiguous()) return LoadElement(impl(), i);
  return LoadElement(impl(), StridedOffset(impl(), i));
}

void Tensor::FlatSet(int64_t i, double value) {
  DDPKIT_CHECK(i >= 0 && i < numel());
  if (is_contiguous()) {
    StoreElement(&impl(), i, value);
  } else {
    StoreElement(&impl(), StridedOffset(impl(), i), value);
  }
}

// ---- Shape manipulation -----------------------------------------------------

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  DDPKIT_CHECK(is_contiguous()) << "Reshape requires a contiguous tensor";
  DDPKIT_CHECK_EQ(ShapeNumel(new_shape), numel());
  auto view = std::make_shared<TensorImpl>(impl());
  view->shape = std::move(new_shape);
  view->strides = ContiguousStrides(view->shape);
  view->grad = nullptr;
  view->autograd_meta = nullptr;
  view->requires_grad = false;
  return MakeTensorFromImpl(std::move(view));
}

Tensor Tensor::Flatten() const { return Reshape({numel()}); }

Tensor Tensor::Narrow(int64_t d, int64_t start, int64_t length) const {
  DDPKIT_CHECK(d >= 0 && d < dim());
  DDPKIT_CHECK(start >= 0 && length >= 0 && start + length <= size(d));
  auto view = std::make_shared<TensorImpl>(impl());
  view->byte_offset +=
      static_cast<size_t>(start * impl().strides[static_cast<size_t>(d)]) *
      ItemSize(impl().dtype);
  view->shape[static_cast<size_t>(d)] = length;
  view->grad = nullptr;
  view->autograd_meta = nullptr;
  view->requires_grad = false;
  return MakeTensorFromImpl(std::move(view));
}

Tensor Tensor::Select(int64_t index) const {
  DDPKIT_CHECK_GE(dim(), 1);
  Tensor narrowed = Narrow(0, index, 1);
  std::vector<int64_t> new_shape(shape().begin() + 1, shape().end());
  auto view = GetTensorImpl(narrowed);
  view->shape = new_shape;
  view->strides = std::vector<int64_t>(impl().strides.begin() + 1,
                                       impl().strides.end());
  return MakeTensorFromImpl(std::move(view));
}

// ---- Mutation / conversion ---------------------------------------------------

Tensor Tensor::Clone() const {
  Tensor out = Empty(shape(), dtype(), device_id());
  out.CopyFrom(*this);
  return out;
}

void Tensor::CopyFrom(const Tensor& src) {
  DDPKIT_CHECK(src.defined());
  DDPKIT_CHECK_EQ(numel(), src.numel());
  DDPKIT_CHECK(dtype() == src.dtype())
      << "dtype mismatch: " << DTypeName(dtype()) << " vs "
      << DTypeName(src.dtype());
  if (is_contiguous() && src.is_contiguous()) {
    std::memcpy(data<uint8_t>(), src.data<uint8_t>(),
                static_cast<size_t>(numel()) * ItemSize(dtype()));
    return;
  }
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) FlatSet(i, src.FlatAt(i));
}

void Tensor::Fill(double value) {
  const int64_t n = numel();
  if (is_contiguous() && dtype() == DType::kFloat32) {
    float* p = data<float>();
    const float v = static_cast<float>(value);
    for (int64_t i = 0; i < n; ++i) p[i] = v;
    return;
  }
  for (int64_t i = 0; i < n; ++i) FlatSet(i, value);
}

Tensor Tensor::Cast(DType new_dtype) const {
  Tensor out = Empty(shape(), new_dtype, device_id());
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) out.FlatSet(i, FlatAt(i));
  return out;
}

Tensor Tensor::Contiguous() const {
  if (is_contiguous()) return *this;
  return Clone();
}

// ---- Autograd state ------------------------------------------------------------

bool Tensor::requires_grad() const { return impl().requires_grad; }

void Tensor::set_requires_grad(bool value) { impl().requires_grad = value; }

Tensor Tensor::grad() const {
  if (!impl().grad) return Tensor();
  return MakeTensorFromImpl(impl().grad);
}

void Tensor::set_grad(const Tensor& g) {
  impl().grad = g.defined() ? GetTensorImpl(g) : nullptr;
}

void Tensor::AccumulateGrad(const Tensor& g) {
  DDPKIT_CHECK(g.defined());
  DDPKIT_CHECK_EQ(g.numel(), numel());
  if (!impl().grad) {
    Tensor fresh = Tensor::Zeros(shape(), dtype(), device_id());
    impl().grad = GetTensorImpl(fresh);
  }
  Tensor grad_tensor = MakeTensorFromImpl(impl().grad);
  DDPKIT_CHECK(grad_tensor.is_contiguous() && g.is_contiguous());
  DDPKIT_CHECK(grad_tensor.dtype() == DType::kFloat32 &&
               g.dtype() == DType::kFloat32);
  vec::AccumulateAdd(grad_tensor.data<float>(), g.data<float>(), numel());
}

void Tensor::ZeroGrad() {
  if (impl().grad) MakeTensorFromImpl(impl().grad).Zero();
}

std::shared_ptr<AutogradMetaBase> Tensor::autograd_meta() const {
  return impl().autograd_meta;
}

void Tensor::set_autograd_meta(std::shared_ptr<AutogradMetaBase> meta) {
  impl().autograd_meta = std::move(meta);
}

// ---- Half-float helpers -----------------------------------------------------

uint16_t Float32ToHalfBits(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xff) - 127 + 15;
  uint32_t mantissa = bits & 0x7fffffu;
  if (exponent >= 31) {
    // Overflow to inf (or propagate NaN).
    const uint32_t nan_bit = (((bits >> 23) & 0xff) == 0xff && mantissa) ? 1 : 0;
    return static_cast<uint16_t>(sign | 0x7c00u | (nan_bit ? 0x200u : 0));
  }
  if (exponent <= 0) {
    if (exponent < -10) return static_cast<uint16_t>(sign);  // underflow to 0
    // Subnormal half.
    mantissa |= 0x800000u;
    const int shift = 14 - exponent;
    uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const uint32_t rem = mantissa & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1))) ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(exponent) << 10) |
                  (mantissa >> 13);
  // Round to nearest even on the 13 dropped bits.
  const uint32_t rem = mantissa & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1))) ++half;
  return static_cast<uint16_t>(half);
}

float HalfBitsToFloat32(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exponent = (h >> 10) & 0x1f;
  const uint32_t mantissa = h & 0x3ffu;
  uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3ffu) << 13);
    }
  } else if (exponent == 31) {
    bits = sign | 0x7f800000u | (mantissa << 13);  // inf / nan
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

uint16_t Float32ToBf16Bits(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  if (((bits >> 23) & 0xffu) == 0xffu && (bits & 0x7fffffu)) {
    // NaN: quieten instead of rounding (rounding could carry into inf).
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest even on the 16 dropped bits.
  const uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

float Bf16BitsToFloat32(uint16_t bf) {
  const uint32_t bits = static_cast<uint32_t>(bf) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace ddpkit
