#ifndef DDPKIT_OPTIM_SGD_H_
#define DDPKIT_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"

namespace ddpkit::optim {

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// Momentum is the ingredient that makes parameter averaging diverge from
/// gradient synchronization (paper §2.2): with per-replica momentum state
/// fed *different* gradients, replicas drift; fed the *same* averaged
/// gradients (DDP), they stay bit-identical. examples/parameter_averaging
/// demonstrates exactly this.
class Sgd : public Optimizer {
 public:
  struct Options {
    double lr = 0.01;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  Sgd(std::vector<Tensor> params, const Options& options);

  void Step() override;
  void Step(const std::vector<uint8_t>& used_mask) override;

  const Options& options() const { return options_; }
  double learning_rate() const override { return options_.lr; }
  void set_learning_rate(double lr) override { options_.lr = lr; }

  /// Momentum buffers, materialized as zeros where not yet created (a
  /// zero buffer is update-equivalent to a fresh one).
  std::vector<std::pair<std::string, Tensor>> named_state() override;

 private:
  void StepImpl(const std::vector<uint8_t>* used_mask);

  Options options_;
  std::vector<Tensor> momentum_buffers_;  // undefined until first use
};

}  // namespace ddpkit::optim

#endif  // DDPKIT_OPTIM_SGD_H_
