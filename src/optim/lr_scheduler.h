#ifndef DDPKIT_OPTIM_LR_SCHEDULER_H_
#define DDPKIT_OPTIM_LR_SCHEDULER_H_

#include <cstdint>

#include "optim/optimizer.h"

namespace ddpkit::optim {

/// Learning-rate schedule driving an Optimizer. Schedulers are pure
/// functions of the step counter, so identical schedules on every DDP rank
/// keep replicas in lockstep (the same determinism contract as the
/// optimizer itself).
class LrScheduler {
 public:
  explicit LrScheduler(Optimizer* optimizer);
  virtual ~LrScheduler() = default;

  LrScheduler(const LrScheduler&) = delete;
  LrScheduler& operator=(const LrScheduler&) = delete;

  /// Advances one step and applies the new learning rate.
  void Step();

  int64_t step_count() const { return step_count_; }
  double base_lr() const { return base_lr_; }

 protected:
  /// Learning rate to apply at `step` (1-based, called after increment).
  virtual double ComputeLr(int64_t step) const = 0;

 private:
  Optimizer* optimizer_;
  double base_lr_;
  int64_t step_count_ = 0;
};

/// Multiplies the learning rate by `gamma` every `step_size` steps.
class StepLr : public LrScheduler {
 public:
  StepLr(Optimizer* optimizer, int64_t step_size, double gamma = 0.1);

 protected:
  double ComputeLr(int64_t step) const override;

 private:
  int64_t step_size_;
  double gamma_;
};

/// Cosine annealing from the base rate down to `min_lr` over
/// `total_steps`.
class CosineLr : public LrScheduler {
 public:
  CosineLr(Optimizer* optimizer, int64_t total_steps, double min_lr = 0.0);

 protected:
  double ComputeLr(int64_t step) const override;

 private:
  int64_t total_steps_;
  double min_lr_;
};

/// Linear warmup to the base rate over `warmup_steps`, then constant —
/// the standard recipe for large-batch data-parallel training (the regime
/// the paper's no_sync experiments probe).
class WarmupLr : public LrScheduler {
 public:
  WarmupLr(Optimizer* optimizer, int64_t warmup_steps);

 protected:
  double ComputeLr(int64_t step) const override;

 private:
  int64_t warmup_steps_;
};

}  // namespace ddpkit::optim

#endif  // DDPKIT_OPTIM_LR_SCHEDULER_H_
