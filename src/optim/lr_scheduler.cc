#include "optim/lr_scheduler.h"

#include <cmath>

#include "common/check.h"

namespace ddpkit::optim {

LrScheduler::LrScheduler(Optimizer* optimizer)
    : optimizer_(optimizer),
      base_lr_(optimizer != nullptr ? optimizer->learning_rate() : 0.0) {
  DDPKIT_CHECK(optimizer != nullptr);
}

void LrScheduler::Step() {
  ++step_count_;
  optimizer_->set_learning_rate(ComputeLr(step_count_));
}

// ---- StepLr ------------------------------------------------------------------

StepLr::StepLr(Optimizer* optimizer, int64_t step_size, double gamma)
    : LrScheduler(optimizer), step_size_(step_size), gamma_(gamma) {
  DDPKIT_CHECK_GT(step_size, 0);
}

double StepLr::ComputeLr(int64_t step) const {
  const int64_t decays = step / step_size_;
  return base_lr() * std::pow(gamma_, static_cast<double>(decays));
}

// ---- CosineLr -----------------------------------------------------------------

CosineLr::CosineLr(Optimizer* optimizer, int64_t total_steps, double min_lr)
    : LrScheduler(optimizer), total_steps_(total_steps), min_lr_(min_lr) {
  DDPKIT_CHECK_GT(total_steps, 0);
}

double CosineLr::ComputeLr(int64_t step) const {
  if (step >= total_steps_) return min_lr_;
  const double progress =
      static_cast<double>(step) / static_cast<double>(total_steps_);
  return min_lr_ +
         0.5 * (base_lr() - min_lr_) * (1.0 + std::cos(M_PI * progress));
}

// ---- WarmupLr ------------------------------------------------------------------

WarmupLr::WarmupLr(Optimizer* optimizer, int64_t warmup_steps)
    : LrScheduler(optimizer), warmup_steps_(warmup_steps) {
  DDPKIT_CHECK_GT(warmup_steps, 0);
}

double WarmupLr::ComputeLr(int64_t step) const {
  if (step >= warmup_steps_) return base_lr();
  return base_lr() * static_cast<double>(step) /
         static_cast<double>(warmup_steps_);
}

}  // namespace ddpkit::optim
