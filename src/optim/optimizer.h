#ifndef DDPKIT_OPTIM_OPTIMIZER_H_
#define DDPKIT_OPTIM_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace ddpkit::optim {

/// Base optimizer over an ordered parameter list. Parameter state (momentum
/// buffers etc.) is keyed by position, so all ranks — which hold identical
/// parameter lists — evolve identical optimizer state when fed identical
/// gradients; that is the mathematical-equivalence contract of DDP (paper
/// §3).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using each parameter's current .grad.
  virtual void Step() = 0;

  /// Applies one update, skipping parameters whose mask entry is zero.
  /// Optimizers with per-parameter state (e.g. momentum) must leave that
  /// state untouched for skipped parameters — the paper's §3.2.3 regression
  /// scenario is an optimizer that cannot make this distinction.
  virtual void Step(const std::vector<uint8_t>& used_mask) = 0;

  /// Zeroes (not deallocates) all parameter gradients.
  void ZeroGrad();

  /// Learning-rate access for schedulers (see optim/lr_scheduler.h).
  virtual double learning_rate() const = 0;
  virtual void set_learning_rate(double lr) = 0;

  /// Named persistent state (momentum buffers, Adam moments, step
  /// counters), materialized on first call so it can be checkpointed
  /// before any Step() has run. The returned tensors are the authoritative
  /// state: loading values into them (nn::LoadTensorMap) resumes the
  /// optimizer exactly.
  virtual std::vector<std::pair<std::string, Tensor>> named_state() = 0;

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

}  // namespace ddpkit::optim

#endif  // DDPKIT_OPTIM_OPTIMIZER_H_
