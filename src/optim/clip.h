#ifndef DDPKIT_OPTIM_CLIP_H_
#define DDPKIT_OPTIM_CLIP_H_

#include <vector>

#include "tensor/tensor.h"

namespace ddpkit::optim {

/// Global gradient-norm clipping over a parameter list: if the L2 norm of
/// all gradients exceeds `max_norm`, every gradient is scaled by
/// max_norm/total_norm. Returns the pre-clip norm.
///
/// In DDP training this runs AFTER the backward pass (gradients are
/// already averaged and identical on every rank), so all ranks compute the
/// same norm and scale identically — no extra communication needed.
double ClipGradNorm(const std::vector<Tensor>& params, double max_norm);

/// Clamps every gradient element into [-limit, limit].
void ClipGradValue(const std::vector<Tensor>& params, double limit);

}  // namespace ddpkit::optim

#endif  // DDPKIT_OPTIM_CLIP_H_
