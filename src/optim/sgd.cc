#include "optim/sgd.h"

#include "autograd/engine.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::optim {

Sgd::Sgd(std::vector<Tensor> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  momentum_buffers_.resize(params_.size());
}

std::vector<std::pair<std::string, Tensor>> Sgd::named_state() {
  std::vector<std::pair<std::string, Tensor>> state;
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& buf = momentum_buffers_[i];
    if (!buf.defined()) {
      buf = Tensor::Zeros(params_[i].shape(), params_[i].dtype(),
                          params_[i].device_id());
    }
    state.emplace_back("momentum/" + std::to_string(i), buf);
  }
  return state;
}

void Sgd::Step() { StepImpl(nullptr); }

void Sgd::Step(const std::vector<uint8_t>& used_mask) {
  DDPKIT_CHECK_EQ(used_mask.size(), params_.size());
  StepImpl(&used_mask);
}

void Sgd::StepImpl(const std::vector<uint8_t>* used_mask) {
  autograd::NoGradGuard guard;
  for (size_t i = 0; i < params_.size(); ++i) {
    if (used_mask != nullptr && (*used_mask)[i] == 0) continue;
    Tensor p = params_[i];
    Tensor g = p.grad();
    if (!g.defined()) continue;

    Tensor update = g;
    if (options_.weight_decay != 0.0) {
      update = update.Clone();
      kernels::Axpy(options_.weight_decay, p, &update);
    }
    if (options_.momentum != 0.0) {
      Tensor& buf = momentum_buffers_[i];
      if (!buf.defined()) {
        buf = update.Clone();
      } else {
        kernels::ScaleInPlace(&buf, options_.momentum);
        kernels::AddInPlace(&buf, update);
      }
      update = buf;
    }
    kernels::Axpy(-options_.lr, update, &p);
  }
}

}  // namespace ddpkit::optim
