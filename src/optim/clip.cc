#include "optim/clip.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::optim {

double ClipGradNorm(const std::vector<Tensor>& params, double max_norm) {
  DDPKIT_CHECK_GT(max_norm, 0.0);
  double sq = 0.0;
  for (const Tensor& p : params) {
    Tensor g = p.grad();
    if (!g.defined()) continue;
    const float* data = g.data<float>();
    const int64_t n = g.numel();
    for (int64_t i = 0; i < n; ++i) {
      sq += static_cast<double>(data[i]) * data[i];
    }
  }
  const double total_norm = std::sqrt(sq);
  if (total_norm > max_norm && total_norm > 0.0) {
    const double scale = max_norm / total_norm;
    for (const Tensor& p : params) {
      Tensor g = p.grad();
      if (!g.defined()) continue;
      kernels::ScaleInPlace(&g, scale);
    }
  }
  return total_norm;
}

void ClipGradValue(const std::vector<Tensor>& params, double limit) {
  DDPKIT_CHECK_GT(limit, 0.0);
  const float lo = static_cast<float>(-limit);
  const float hi = static_cast<float>(limit);
  for (const Tensor& p : params) {
    Tensor g = p.grad();
    if (!g.defined()) continue;
    float* data = g.data<float>();
    const int64_t n = g.numel();
    for (int64_t i = 0; i < n; ++i) data[i] = std::clamp(data[i], lo, hi);
  }
}

}  // namespace ddpkit::optim
