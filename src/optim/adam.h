#ifndef DDPKIT_OPTIM_ADAM_H_
#define DDPKIT_OPTIM_ADAM_H_

#include <vector>

#include "optim/optimizer.h"

namespace ddpkit::optim {

/// Adam optimizer (Kingma & Ba). Per-parameter first/second-moment state
/// makes it sensitive to gradient-absence information: when a mask marks a
/// parameter globally unused, its moments and step count are frozen.
class Adam : public Optimizer {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Tensor> params, const Options& options);

  void Step() override;
  void Step(const std::vector<uint8_t>& used_mask) override;

  double learning_rate() const override { return options_.lr; }
  void set_learning_rate(double lr) override { options_.lr = lr; }

  /// First/second moments (materialized as zeros where unused) plus the
  /// per-parameter step counters (int64 tensor).
  std::vector<std::pair<std::string, Tensor>> named_state() override;

 private:
  void StepImpl(const std::vector<uint8_t>* used_mask);

  Options options_;
  std::vector<Tensor> exp_avg_;
  std::vector<Tensor> exp_avg_sq_;
  Tensor step_counts_;  // int64 [num_params], serialized with the moments
};

}  // namespace ddpkit::optim

#endif  // DDPKIT_OPTIM_ADAM_H_
