#include "optim/optimizer.h"

#include "common/check.h"

namespace ddpkit::optim {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    DDPKIT_CHECK(p.defined());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

}  // namespace ddpkit::optim
