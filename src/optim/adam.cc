#include "optim/adam.h"

#include <cmath>

#include "autograd/engine.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::optim {

Adam::Adam(std::vector<Tensor> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  exp_avg_.resize(params_.size());
  exp_avg_sq_.resize(params_.size());
  step_counts_ = Tensor::Zeros({static_cast<int64_t>(params_.size())},
                               DType::kInt64);
}

std::vector<std::pair<std::string, Tensor>> Adam::named_state() {
  std::vector<std::pair<std::string, Tensor>> state;
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!exp_avg_[i].defined()) {
      exp_avg_[i] = Tensor::Zeros(params_[i].shape());
      exp_avg_sq_[i] = Tensor::Zeros(params_[i].shape());
    }
    state.emplace_back("exp_avg/" + std::to_string(i), exp_avg_[i]);
    state.emplace_back("exp_avg_sq/" + std::to_string(i), exp_avg_sq_[i]);
  }
  state.emplace_back("step_counts", step_counts_);
  return state;
}

void Adam::Step() { StepImpl(nullptr); }

void Adam::Step(const std::vector<uint8_t>& used_mask) {
  DDPKIT_CHECK_EQ(used_mask.size(), params_.size());
  StepImpl(&used_mask);
}

void Adam::StepImpl(const std::vector<uint8_t>* used_mask) {
  autograd::NoGradGuard guard;
  for (size_t i = 0; i < params_.size(); ++i) {
    if (used_mask != nullptr && (*used_mask)[i] == 0) continue;
    Tensor p = params_[i];
    Tensor g = p.grad();
    if (!g.defined()) continue;

    if (!exp_avg_[i].defined()) {
      exp_avg_[i] = Tensor::Zeros(p.shape());
      exp_avg_sq_[i] = Tensor::Zeros(p.shape());
    }
    int64_t* steps = step_counts_.data<int64_t>();
    const double t = static_cast<double>(++steps[i]);
    const double bias1 = 1.0 - std::pow(options_.beta1, t);
    const double bias2 = 1.0 - std::pow(options_.beta2, t);

    float* pp = p.data<float>();
    const float* pg = g.data<float>();
    float* m = exp_avg_[i].data<float>();
    float* v = exp_avg_sq_[i].data<float>();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      double grad = pg[j];
      if (options_.weight_decay != 0.0) grad += options_.weight_decay * pp[j];
      m[j] = static_cast<float>(options_.beta1 * m[j] +
                                (1.0 - options_.beta1) * grad);
      v[j] = static_cast<float>(options_.beta2 * v[j] +
                                (1.0 - options_.beta2) * grad * grad);
      const double mhat = m[j] / bias1;
      const double vhat = v[j] / bias2;
      pp[j] -= static_cast<float>(options_.lr * mhat /
                                  (std::sqrt(vhat) + options_.eps));
    }
  }
}

}  // namespace ddpkit::optim
