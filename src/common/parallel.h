#ifndef DDPKIT_COMMON_PARALLEL_H_
#define DDPKIT_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ddpkit {

/// Default work granularity, in scalar operations per chunk. Loops whose
/// total cost is below one grain run serially on the calling thread, so
/// small tensors never pay dispatch overhead. The value matches
/// at::internal::GRAIN_SIZE's order of magnitude.
inline constexpr int64_t kParallelGrain = 32768;

/// Grain (in iterations) for a loop whose every iteration performs
/// `cost_per_iter` scalar operations, so one chunk is ~kParallelGrain ops.
inline int64_t GrainFromCost(int64_t cost_per_iter) {
  return std::max<int64_t>(1, kParallelGrain / std::max<int64_t>(1, cost_per_iter));
}

namespace internal {

/// Non-owning type-erased reference to a `void(int64_t begin, int64_t end)`
/// callable. Avoids std::function's allocation on the hot dispatch path;
/// the referenced callable must outlive the call (ParallelFor blocks until
/// completion, so stack lambdas are safe).
class RangeFnRef {
 public:
  template <typename F>
  RangeFnRef(const F& f)  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_([](const void* obj, int64_t b, int64_t e) {
          (*static_cast<const F*>(obj))(b, e);
        }) {}
  void operator()(int64_t begin, int64_t end) const { call_(obj_, begin, end); }

 private:
  const void* obj_;
  void (*call_)(const void*, int64_t, int64_t);
};

/// True when the current thread is a pool worker (nested ParallelFor calls
/// then run inline to avoid deadlocking the pool).
bool InPoolWorker();

/// Parallel path of ParallelFor; begin < end and grain >= 1 guaranteed.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain, RangeFnRef body);

}  // namespace internal

/// Lazily-initialized persistent worker pool shared by every ParallelFor in
/// the process. Sized from DDPKIT_NUM_THREADS (else hardware concurrency);
/// `num_threads` counts the calling thread, so a pool of N keeps N-1
/// standing workers. Multiple threads (e.g. SimWorld rank threads) may
/// dispatch concurrently: the calling thread always participates in its own
/// loop, so progress never depends on a worker being free.
class ThreadPool {
 public:
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use.
  static ThreadPool& Global();

  /// Test escape hatch: resize the global pool (clamped to >= 1). Must not
  /// be called while any ParallelFor is in flight.
  static void SetNumThreads(int n);

  /// Total threads that participate in a ParallelFor (workers + caller).
  int num_threads() const { return num_threads_.load(std::memory_order_relaxed); }

 private:
  friend void internal::ParallelForImpl(int64_t, int64_t, int64_t,
                                        internal::RangeFnRef);

  struct Task;

  explicit ThreadPool(int num_threads);
  void StartWorkers() EXCLUDES(mu_);
  void StopWorkers() EXCLUDES(mu_);
  void Resize(int n) EXCLUDES(mu_);
  void Dispatch(const std::shared_ptr<Task>& task) EXCLUDES(mu_);
  void WorkerLoop() EXCLUDES(mu_);

  /// Protects the task queue, the stop flag, and the worker-thread vector
  /// (workers_ is mutated by Start/StopWorkers, which Resize may run while
  /// other threads call num_threads()/Dispatch).
  Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<Task>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::atomic<int> num_threads_{1};
};

/// Runs `body(sub_begin, sub_end)` over disjoint subranges that exactly
/// tile [begin, end), potentially on multiple threads.
///
/// Determinism contract: subrange boundaries are derived only from
/// (end - begin) and `grain` — never from the thread count — and every
/// subrange is executed by exactly one thread. A body whose writes are
/// per-index pure (each output element depends only on its own subrange
/// position) therefore produces bit-identical results for any pool size,
/// including the serial fallback. Order-sensitive reductions must go
/// through ParallelReduce, which fixes the combine order by chunk index.
///
/// The calling thread participates; nested calls from inside a body run
/// serially. Exceptions thrown by `body` are rethrown on the caller (first
/// one wins) after all subranges finish.
template <typename F>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, const F& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int64_t g = grain < 1 ? 1 : grain;
  if (n <= g || internal::InPoolWorker() ||
      ThreadPool::Global().num_threads() == 1) {
    body(begin, end);
    return;
  }
  internal::ParallelForImpl(begin, end, g, internal::RangeFnRef(body));
}

/// Chunked deterministic reduction: partials are computed per fixed-size
/// chunk (`map(chunk_begin, chunk_end) -> T`) and combined left-to-right in
/// chunk-index order, so the floating-point summation order depends only on
/// (end - begin) and `grain`, never on the thread count. Returns `identity`
/// for empty ranges.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 const MapFn& map, const CombineFn& combine) {
  const int64_t n = end - begin;
  if (n <= 0) return identity;
  const int64_t g = grain < 1 ? 1 : grain;
  const int64_t num_chunks = (n + g - 1) / g;
  if (num_chunks == 1) return combine(identity, map(begin, end));
  std::vector<T> partials(static_cast<size_t>(num_chunks), identity);
  ParallelFor(0, num_chunks, 1, [&](int64_t cb, int64_t ce) {
    for (int64_t c = cb; c < ce; ++c) {
      const int64_t b = begin + c * g;
      partials[static_cast<size_t>(c)] = map(b, std::min(end, b + g));
    }
  });
  T acc = identity;
  for (T& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_PARALLEL_H_
