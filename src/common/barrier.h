#ifndef DDPKIT_COMMON_BARRIER_H_
#define DDPKIT_COMMON_BARRIER_H_

#include <cstddef>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ddpkit {

/// Reusable thread barrier for a fixed participant count. Used by the
/// simulated process-group backends to implement synchronized collective
/// semantics across rank threads.
class Barrier {
 public:
  explicit Barrier(size_t num_threads) : threshold_(num_threads) {
    DDPKIT_CHECK_GT(num_threads, 0u);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants arrive. Returns true on exactly one
  /// participant per cycle (the last arrival), mirroring
  /// pthread_barrier's SERIAL_THREAD semantics.
  bool ArriveAndWait() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    const size_t generation = generation_;
    if (++count_ == threshold_) {
      ++generation_;
      count_ = 0;
      cv_.NotifyAll();
      return true;
    }
    while (generation_ == generation) cv_.Wait(mutex_);
    return false;
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  const size_t threshold_;
  size_t count_ GUARDED_BY(mutex_) = 0;
  size_t generation_ GUARDED_BY(mutex_) = 0;
};

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_BARRIER_H_
