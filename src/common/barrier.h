#ifndef DDPKIT_COMMON_BARRIER_H_
#define DDPKIT_COMMON_BARRIER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/check.h"

namespace ddpkit {

/// Reusable thread barrier for a fixed participant count. Used by the
/// simulated process-group backends to implement synchronized collective
/// semantics across rank threads.
class Barrier {
 public:
  explicit Barrier(size_t num_threads) : threshold_(num_threads) {
    DDPKIT_CHECK_GT(num_threads, 0u);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants arrive. Returns true on exactly one
  /// participant per cycle (the last arrival), mirroring
  /// pthread_barrier's SERIAL_THREAD semantics.
  bool ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const size_t generation = generation_;
    if (++count_ == threshold_) {
      ++generation_;
      count_ = 0;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
    return false;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const size_t threshold_;
  size_t count_ = 0;
  size_t generation_ = 0;
};

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_BARRIER_H_
