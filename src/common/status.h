#ifndef DDPKIT_COMMON_STATUS_H_
#define DDPKIT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ddpkit {

/// Error categories used across ddpkit. Mirrors the Arrow/RocksDB style of
/// returning rich status objects instead of throwing exceptions on hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kTimedOut,
  kNotFound,
  kUnimplemented,
  /// A collective was issued against a process-group generation that a
  /// completed rendezvous has superseded (elastic recovery: stragglers
  /// from the old generation must fail fast, never corrupt a reduction).
  kInvalidGeneration,
};

/// A Status describes the outcome of an operation: either OK, or an error
/// code plus a human-readable message. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status InvalidGeneration(std::string msg) {
    return Status(StatusCode::kInvalidGeneration, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: shape mismatch".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise (see DDPKIT_CHECK in check.h).
  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }

  T ValueOr(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define DDPKIT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::ddpkit::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_STATUS_H_
