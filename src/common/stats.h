#ifndef DDPKIT_COMMON_STATS_H_
#define DDPKIT_COMMON_STATS_H_

#include <string>
#include <vector>

namespace ddpkit {

/// Five-number summary plus mean/stddev, used by the benchmark harness to
/// report box-whisker style distributions (Figs 7 and 8 in the paper).
struct Summary {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  size_t count = 0;

  std::string ToString() const;
};

/// Computes a Summary over the samples. Precondition: !samples.empty().
Summary Summarize(const std::vector<double>& samples);

/// Linear-interpolation percentile over a *sorted* vector, q in [0, 1].
double Percentile(const std::vector<double>& sorted, double q);

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_STATS_H_
