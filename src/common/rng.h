#ifndef DDPKIT_COMMON_RNG_H_
#define DDPKIT_COMMON_RNG_H_

#include <cstdint>

namespace ddpkit {

/// Deterministic, seedable pseudo-random generator (xoshiro256**). All
/// randomness in ddpkit flows through explicit Rng instances so every test,
/// example and benchmark is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal (Box-Muller).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Derives an independent child generator (useful for per-rank streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_RNG_H_
