#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ddpkit {

double Percentile(const std::vector<double>& sorted, double q) {
  DDPKIT_CHECK(!sorted.empty());
  DDPKIT_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(const std::vector<double>& samples) {
  DDPKIT_CHECK(!samples.empty());
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = Percentile(sorted, 0.25);
  s.median = Percentile(sorted, 0.50);
  s.p75 = Percentile(sorted, 0.75);

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  double sq = 0.0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(sq / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  return s;
}

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.6g p25=%.6g med=%.6g p75=%.6g max=%.6g mean=%.6g",
                min, p25, median, p75, max, mean);
  return buf;
}

}  // namespace ddpkit
