#include "common/vec.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#define DDPKIT_VEC_X86 1
#include <immintrin.h>
#endif

namespace ddpkit::vec {
namespace {

// Target attributes deliberately request only the base ISA sets (no "fma"):
// the kernels below must emit separate mul and add instructions so their
// rounding matches the scalar fallback bit-for-bit (see the contract in
// vec.h). The x86-64 baseline the scalar path compiles against has no FMA
// instruction, so -ffp-contract cannot fuse it either.
#if defined(DDPKIT_VEC_X86)
#define DDPKIT_TARGET_AVX2 __attribute__((target("avx2")))
#define DDPKIT_TARGET_AVX512 __attribute__((target("avx512f")))
#endif

// ---------------------------------------------------------------------------
// Scalar kernels, written over Vec<T,N> so the fallback exercises the same
// fixed-width shape the intrinsic paths use (N=8 matches one AVX2 float
// register). The compiler is free to auto-vectorize these at the baseline
// ISA; correctness never depends on whether it does.
// ---------------------------------------------------------------------------

template <typename T, typename LaneFn>
void ScalarLanewise2(const T* a, const T* b, T* dst, int64_t n, LaneFn fn) {
  using V = Vec<T, 8>;
  int64_t i = 0;
  for (; i + V::size() <= n; i += V::size()) {
    fn(V::Load(a + i), V::Load(b + i)).Store(dst + i);
  }
  for (; i < n; ++i) {
    V va = V::Broadcast(a[i]);
    V vb = V::Broadcast(b[i]);
    dst[i] = fn(va, vb).lane[0];
  }
}

template <typename T, typename LaneFn>
void ScalarLanewise1(const T* a, T* dst, int64_t n, LaneFn fn) {
  using V = Vec<T, 8>;
  int64_t i = 0;
  for (; i + V::size() <= n; i += V::size()) {
    fn(V::Load(a + i)).Store(dst + i);
  }
  for (; i < n; ++i) {
    dst[i] = fn(V::Broadcast(a[i])).lane[0];
  }
}

void AddScalarImpl(const float* a, const float* b, float* dst, int64_t n) {
  ScalarLanewise2(a, b, dst, n, [](auto x, auto y) { return x + y; });
}
void SubScalarImpl(const float* a, const float* b, float* dst, int64_t n) {
  ScalarLanewise2(a, b, dst, n, [](auto x, auto y) { return x - y; });
}
void MulScalarImpl(const float* a, const float* b, float* dst, int64_t n) {
  ScalarLanewise2(a, b, dst, n, [](auto x, auto y) { return x * y; });
}
void DivScalarImpl(const float* a, const float* b, float* dst, int64_t n) {
  ScalarLanewise2(a, b, dst, n, [](auto x, auto y) { return x / y; });
}

void ScaleScalarImpl(const float* a, float s, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] * s;
}
void AddScalarScalarImpl(const float* a, float s, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] + s;
}
void NegScalarImpl(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = -a[i];
}
void ReluScalarImpl(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] > 0.0f ? a[i] : 0.0f;
}
void ReluBackwardScalarImpl(const float* g, const float* x, float* dst,
                            int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = x[i] > 0.0f ? g[i] : 0.0f;
}
void SqrtScalarImpl(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = __builtin_sqrtf(a[i]);
}
void AxpyScalarImpl(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float prod = alpha * x[i];
    y[i] = y[i] + prod;
  }
}
void ScaleInPlaceScalarImpl(float* y, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = y[i] * s;
}
void AccumAddF32ScalarImpl(float* dst, const float* src, int64_t n) {
  ScalarLanewise2<float>(dst, src, dst, n,
                         [](auto x, auto y) { return x + y; });
}
void AccumMaxF32ScalarImpl(float* dst, const float* src, int64_t n) {
  ScalarLanewise2<float>(dst, src, dst, n, [](auto x, auto y) {
    return decltype(x)::Max(x, y);
  });
}
void AccumAddF64ScalarImpl(double* dst, const double* src, int64_t n) {
  ScalarLanewise2<double>(dst, src, dst, n,
                          [](auto x, auto y) { return x + y; });
}
void AccumMaxF64ScalarImpl(double* dst, const double* src, int64_t n) {
  ScalarLanewise2<double>(dst, src, dst, n, [](auto x, auto y) {
    return decltype(x)::Max(x, y);
  });
}

#if defined(DDPKIT_VEC_X86)

// ---------------------------------------------------------------------------
// AVX2 kernels: 8 float / 4 double lanes per register.
// ---------------------------------------------------------------------------

DDPKIT_TARGET_AVX2 void AddAvx2(const float* a, const float* b, float* dst,
                                int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}
DDPKIT_TARGET_AVX2 void SubAvx2(const float* a, const float* b, float* dst,
                                int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}
DDPKIT_TARGET_AVX2 void MulAvx2(const float* a, const float* b, float* dst,
                                int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}
DDPKIT_TARGET_AVX2 void DivAvx2(const float* a, const float* b, float* dst,
                                int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_div_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] / b[i];
}
DDPKIT_TARGET_AVX2 void ScaleAvx2(const float* a, float s, float* dst,
                                  int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) dst[i] = a[i] * s;
}
DDPKIT_TARGET_AVX2 void AddScalarAvx2(const float* a, float s, float* dst,
                                      int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) dst[i] = a[i] + s;
}
DDPKIT_TARGET_AVX2 void NegAvx2(const float* a, float* dst, int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
  }
  for (; i < n; ++i) dst[i] = -a[i];
}
DDPKIT_TARGET_AVX2 void ReluAvx2(const float* a, float* dst, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max(a, +0.0) maps -0.0 inputs to +0.0, matching `a > 0 ? a : 0`.
    _mm256_storeu_ps(dst + i, _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
  }
  for (; i < n; ++i) dst[i] = a[i] > 0.0f ? a[i] : 0.0f;
}
DDPKIT_TARGET_AVX2 void ReluBackwardAvx2(const float* g, const float* x,
                                         float* dst, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ);
    _mm256_storeu_ps(dst + i, _mm256_and_ps(_mm256_loadu_ps(g + i), mask));
  }
  for (; i < n; ++i) dst[i] = x[i] > 0.0f ? g[i] : 0.0f;
}
DDPKIT_TARGET_AVX2 void SqrtAvx2(const float* a, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_sqrt_ps(_mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) dst[i] = __builtin_sqrtf(a[i]);
}
DDPKIT_TARGET_AVX2 void AxpyAvx2(float alpha, const float* x, float* y,
                                 int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) {
    const float prod = alpha * x[i];
    y[i] = y[i] + prod;
  }
}
DDPKIT_TARGET_AVX2 void ScaleInPlaceAvx2(float* y, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), vs));
  }
  for (; i < n; ++i) y[i] = y[i] * s;
}
DDPKIT_TARGET_AVX2 void AccumAddF32Avx2(float* dst, const float* src,
                                        int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] + src[i];
}
DDPKIT_TARGET_AVX2 void AccumMaxF32Avx2(float* dst, const float* src,
                                        int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // maxps returns its second operand on unordered or equal compares, and
    // the scalar `dst > src ? dst : src` yields src in exactly those cases
    // (NaN anywhere, or ±0.0 ties) — so src must be the second operand.
    _mm256_storeu_ps(dst + i, _mm256_max_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] > src[i] ? dst[i] : src[i];
}
DDPKIT_TARGET_AVX2 void AccumAddF64Avx2(double* dst, const double* src,
                                        int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] + src[i];
}
DDPKIT_TARGET_AVX2 void AccumMaxF64Avx2(double* dst, const double* src,
                                        int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_max_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] > src[i] ? dst[i] : src[i];
}

// ---------------------------------------------------------------------------
// AVX-512 kernels: 16 float / 8 double lanes per register. Only the
// bandwidth-bound accumulate/copy/axpy family gets dedicated 512-bit
// bodies; the rest reuse the AVX2 bodies at this level (same bit-exact
// results, and 256-bit ops avoid license-based downclocking on older
// parts for the short kernels).
// ---------------------------------------------------------------------------

DDPKIT_TARGET_AVX512 void AddAvx512(const float* a, const float* b, float* dst,
                                    int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(a + i),
                                            _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}
DDPKIT_TARGET_AVX512 void MulAvx512(const float* a, const float* b, float* dst,
                                    int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_mul_ps(_mm512_loadu_ps(a + i),
                                            _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}
DDPKIT_TARGET_AVX512 void AxpyAvx512(float alpha, const float* x, float* y,
                                     int64_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(x + i));
    _mm512_storeu_ps(y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) {
    const float prod = alpha * x[i];
    y[i] = y[i] + prod;
  }
}
DDPKIT_TARGET_AVX512 void AccumAddF32Avx512(float* dst, const float* src,
                                            int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i),
                                            _mm512_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] + src[i];
}
DDPKIT_TARGET_AVX512 void AccumMaxF32Avx512(float* dst, const float* src,
                                            int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_max_ps(_mm512_loadu_ps(dst + i),
                                            _mm512_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] > src[i] ? dst[i] : src[i];
}
DDPKIT_TARGET_AVX512 void AccumAddF64Avx512(double* dst, const double* src,
                                            int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] + src[i];
}
DDPKIT_TARGET_AVX512 void AccumMaxF64Avx512(double* dst, const double* src,
                                            int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_max_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] > src[i] ? dst[i] : src[i];
}

#endif  // DDPKIT_VEC_X86

// ---------------------------------------------------------------------------
// Level detection + dispatch state.
// ---------------------------------------------------------------------------

Level DetectHardwareLevel() {
#if defined(DDPKIT_VEC_X86)
  if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level ClampToEnv(Level hw) {
  // Startup-only env read; the result is a process-wide constant, and every
  // level is bit-exact anyway, so this cannot make a run irreproducible.
  const char* env = std::getenv("DDPKIT_SIMD");
  if (env == nullptr) return hw;
  const std::string_view want(env);
  Level requested = hw;
  if (want == "scalar") {
    requested = Level::kScalar;
  } else if (want == "avx2") {
    requested = Level::kAvx2;
  } else if (want == "avx512") {
    requested = Level::kAvx512;
  }
  return requested <= hw ? requested : hw;
}

std::atomic<Level>& ActiveLevelState() {
  static std::atomic<Level> level{ClampToEnv(DetectHardwareLevel())};
  return level;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level detected = ClampToEnv(DetectHardwareLevel());
  return detected;
}

Level ActiveLevel() {
  return ActiveLevelState().load(std::memory_order_relaxed);
}

Level SetLevelForTesting(Level level) {
  const Level clamped = level <= DetectedLevel() ? level : DetectedLevel();
  ActiveLevelState().store(clamped, std::memory_order_relaxed);
  return clamped;
}

// ---------------------------------------------------------------------------
// Dispatched entry points. The switch costs one predictable branch per
// batch call — negligible against the loops it guards, and it keeps
// SetLevelForTesting effective without a rebindable function table.
// ---------------------------------------------------------------------------

#if defined(DDPKIT_VEC_X86)
#define DDPKIT_VEC_DISPATCH(avx512_call, avx2_call, scalar_call) \
  do {                                                           \
    switch (ActiveLevel()) {                                     \
      case Level::kAvx512:                                       \
        avx512_call;                                             \
        return;                                                  \
      case Level::kAvx2:                                         \
        avx2_call;                                               \
        return;                                                  \
      case Level::kScalar:                                       \
        break;                                                   \
    }                                                            \
    scalar_call;                                                 \
  } while (0)
#else
#define DDPKIT_VEC_DISPATCH(avx512_call, avx2_call, scalar_call) \
  do {                                                           \
    scalar_call;                                                 \
  } while (0)
#endif

void Add(const float* a, const float* b, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(AddAvx512(a, b, dst, n), AddAvx2(a, b, dst, n),
                      AddScalarImpl(a, b, dst, n));
}
void Sub(const float* a, const float* b, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(SubAvx2(a, b, dst, n), SubAvx2(a, b, dst, n),
                      SubScalarImpl(a, b, dst, n));
}
void Mul(const float* a, const float* b, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(MulAvx512(a, b, dst, n), MulAvx2(a, b, dst, n),
                      MulScalarImpl(a, b, dst, n));
}
void Div(const float* a, const float* b, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(DivAvx2(a, b, dst, n), DivAvx2(a, b, dst, n),
                      DivScalarImpl(a, b, dst, n));
}
void Scale(const float* a, float s, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(ScaleAvx2(a, s, dst, n), ScaleAvx2(a, s, dst, n),
                      ScaleScalarImpl(a, s, dst, n));
}
void AddScalar(const float* a, float s, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(AddScalarAvx2(a, s, dst, n), AddScalarAvx2(a, s, dst, n),
                      AddScalarScalarImpl(a, s, dst, n));
}
void Neg(const float* a, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(NegAvx2(a, dst, n), NegAvx2(a, dst, n),
                      NegScalarImpl(a, dst, n));
}
void Relu(const float* a, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(ReluAvx2(a, dst, n), ReluAvx2(a, dst, n),
                      ReluScalarImpl(a, dst, n));
}
void ReluBackward(const float* g, const float* x, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(ReluBackwardAvx2(g, x, dst, n),
                      ReluBackwardAvx2(g, x, dst, n),
                      ReluBackwardScalarImpl(g, x, dst, n));
}
void Sqrt(const float* a, float* dst, int64_t n) {
  DDPKIT_VEC_DISPATCH(SqrtAvx2(a, dst, n), SqrtAvx2(a, dst, n),
                      SqrtScalarImpl(a, dst, n));
}
void Axpy(float alpha, const float* x, float* y, int64_t n) {
  DDPKIT_VEC_DISPATCH(AxpyAvx512(alpha, x, y, n), AxpyAvx2(alpha, x, y, n),
                      AxpyScalarImpl(alpha, x, y, n));
}
void ScaleInPlace(float* y, float s, int64_t n) {
  DDPKIT_VEC_DISPATCH(ScaleInPlaceAvx2(y, s, n), ScaleInPlaceAvx2(y, s, n),
                      ScaleInPlaceScalarImpl(y, s, n));
}
void AccumulateAdd(float* dst, const float* src, int64_t n) {
  DDPKIT_VEC_DISPATCH(AccumAddF32Avx512(dst, src, n),
                      AccumAddF32Avx2(dst, src, n),
                      AccumAddF32ScalarImpl(dst, src, n));
}
void AccumulateMax(float* dst, const float* src, int64_t n) {
  DDPKIT_VEC_DISPATCH(AccumMaxF32Avx512(dst, src, n),
                      AccumMaxF32Avx2(dst, src, n),
                      AccumMaxF32ScalarImpl(dst, src, n));
}
void AccumulateAdd(double* dst, const double* src, int64_t n) {
  DDPKIT_VEC_DISPATCH(AccumAddF64Avx512(dst, src, n),
                      AccumAddF64Avx2(dst, src, n),
                      AccumAddF64ScalarImpl(dst, src, n));
}
void AccumulateMax(double* dst, const double* src, int64_t n) {
  DDPKIT_VEC_DISPATCH(AccumMaxF64Avx512(dst, src, n),
                      AccumMaxF64Avx2(dst, src, n),
                      AccumMaxF64ScalarImpl(dst, src, n));
}

void Copy(float* dst, const float* src, int64_t n) {
  if (n > 0) std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}
void Copy(double* dst, const double* src, int64_t n) {
  if (n > 0) std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(double));
}

#undef DDPKIT_VEC_DISPATCH

}  // namespace ddpkit::vec
