#include "common/parallel.h"

#include <cstdlib>
#include <exception>
#include <string>

namespace ddpkit {
namespace {

thread_local bool t_in_pool_worker = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("DDPKIT_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(std::min(v, 64L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

}  // namespace

namespace internal {

bool InPoolWorker() { return t_in_pool_worker; }

}  // namespace internal

/// One ParallelFor invocation. Chunks are claimed from `next` by whichever
/// threads show up (caller + any free workers); chunk *boundaries* are fixed
/// by (begin, end, grain) alone, so the claiming race never affects results.
struct ThreadPool::Task {
  Task(int64_t begin_in, int64_t end_in, int64_t grain_in,
       internal::RangeFnRef body_in)
      : body(body_in),
        begin(begin_in),
        end(end_in),
        grain(grain_in),
        num_chunks((end_in - begin_in + grain_in - 1) / grain_in) {}

  internal::RangeFnRef body;
  const int64_t begin;
  const int64_t end;
  const int64_t grain;
  const int64_t num_chunks;

  std::atomic<int64_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  int64_t done = 0;                 // guarded by mu
  std::exception_ptr error;         // guarded by mu; first thrown wins

  /// Claim and run chunks until none remain. Returns once this thread can
  /// claim no more work; other threads may still be finishing their chunks.
  void RunChunks() {
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const int64_t b = begin + c * grain;
      const int64_t e = std::min(end, b + grain);
      std::exception_ptr err;
      try {
        body(b, e);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (err && !error) error = err;
      if (++done == num_chunks) done_cv.notify_all();
    }
  }

  bool HasUnclaimedChunks() const {
    return next.load(std::memory_order_relaxed) < num_chunks;
  }

  void WaitAndRethrow() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return done == num_chunks; });
    if (error) std::rethrow_exception(error);
  }
};

ThreadPool::ThreadPool(int num_threads) {
  num_threads_.store(std::max(1, num_threads), std::memory_order_relaxed);
  StartWorkers();
}

ThreadPool::~ThreadPool() { StopWorkers(); }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

void ThreadPool::SetNumThreads(int n) { Global().Resize(std::max(1, n)); }

void ThreadPool::StartWorkers() {
  const int n = num_threads_.load(std::memory_order_relaxed);
  workers_.reserve(static_cast<size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  stop_ = false;
}

void ThreadPool::Resize(int n) {
  StopWorkers();
  num_threads_.store(n, std::memory_order_relaxed);
  StartWorkers();
}

void ThreadPool::Dispatch(const std::shared_ptr<Task>& task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(task);
  }
  cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    // Every free worker converges on the oldest task and claims chunks from
    // it; the task is retired from the queue once fully claimed.
    std::shared_ptr<Task> task = queue_.front();
    lock.unlock();
    task->RunChunks();
    lock.lock();
    if (!queue_.empty() && queue_.front() == task &&
        !task->HasUnclaimedChunks()) {
      queue_.pop_front();
    }
  }
}

namespace internal {

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     RangeFnRef body) {
  ThreadPool& pool = ThreadPool::Global();
  auto task = std::make_shared<ThreadPool::Task>(begin, end, grain, body);
  pool.Dispatch(task);
  task->RunChunks();
  task->WaitAndRethrow();
}

}  // namespace internal

}  // namespace ddpkit
