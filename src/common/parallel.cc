#include "common/parallel.h"

#include <cstdlib>
#include <exception>
#include <string>

namespace ddpkit {
namespace {

thread_local bool t_in_pool_worker = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("DDPKIT_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(std::min(v, 64L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

}  // namespace

namespace internal {

bool InPoolWorker() { return t_in_pool_worker; }

}  // namespace internal

/// One ParallelFor invocation. Chunks are claimed from `next` by whichever
/// threads show up (caller + any free workers); chunk *boundaries* are fixed
/// by (begin, end, grain) alone, so the claiming race never affects results.
struct ThreadPool::Task {
  Task(int64_t begin_in, int64_t end_in, int64_t grain_in,
       internal::RangeFnRef body_in)
      : body(body_in),
        begin(begin_in),
        end(end_in),
        grain(grain_in),
        num_chunks((end_in - begin_in + grain_in - 1) / grain_in) {}

  internal::RangeFnRef body;
  const int64_t begin;
  const int64_t end;
  const int64_t grain;
  const int64_t num_chunks;

  std::atomic<int64_t> next{0};
  Mutex mu;
  CondVar done_cv;
  int64_t done GUARDED_BY(mu) = 0;
  std::exception_ptr error GUARDED_BY(mu);  // first thrown wins

  /// Claim and run chunks until none remain. Returns once this thread can
  /// claim no more work; other threads may still be finishing their chunks.
  void RunChunks() EXCLUDES(mu) {
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const int64_t b = begin + c * grain;
      const int64_t e = std::min(end, b + grain);
      std::exception_ptr err;
      try {
        body(b, e);
      } catch (...) {
        err = std::current_exception();
      }
      MutexLock lock(&mu);
      if (err && !error) error = err;
      if (++done == num_chunks) done_cv.NotifyAll();
    }
  }

  bool HasUnclaimedChunks() const {
    return next.load(std::memory_order_relaxed) < num_chunks;
  }

  void WaitAndRethrow() EXCLUDES(mu) {
    MutexLock lock(&mu);
    while (done != num_chunks) done_cv.Wait(mu);
    if (error) std::rethrow_exception(error);
  }
};

ThreadPool::ThreadPool(int num_threads) {
  num_threads_.store(std::max(1, num_threads), std::memory_order_relaxed);
  StartWorkers();
}

ThreadPool::~ThreadPool() { StopWorkers(); }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

void ThreadPool::SetNumThreads(int n) { Global().Resize(std::max(1, n)); }

void ThreadPool::StartWorkers() {
  const int n = num_threads_.load(std::memory_order_relaxed);
  // Workers spawned under mu_ block on their first Lock() until we release,
  // so they never observe a half-built workers_ vector.
  MutexLock lock(&mu_);
  workers_.reserve(static_cast<size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::StopWorkers() {
  // Swap the worker vector out under the lock, then join outside it: joining
  // under mu_ would deadlock with workers reacquiring mu_ to observe stop_.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(&mu_);
    stop_ = true;
    to_join.swap(workers_);
  }
  cv_.NotifyAll();
  for (std::thread& w : to_join) w.join();
  MutexLock lock(&mu_);
  stop_ = false;
}

void ThreadPool::Resize(int n) {
  StopWorkers();
  num_threads_.store(n, std::memory_order_relaxed);
  StartWorkers();
}

void ThreadPool::Dispatch(const std::shared_ptr<Task>& task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(task);
  }
  cv_.NotifyAll();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  mu_.Lock();
  for (;;) {
    while (!stop_ && queue_.empty()) cv_.Wait(mu_);
    if (stop_) break;
    // Every free worker converges on the oldest task and claims chunks from
    // it; the task is retired from the queue once fully claimed.
    std::shared_ptr<Task> task = queue_.front();
    mu_.Unlock();
    task->RunChunks();
    mu_.Lock();
    if (!queue_.empty() && queue_.front() == task &&
        !task->HasUnclaimedChunks()) {
      queue_.pop_front();
    }
  }
  mu_.Unlock();
}

namespace internal {

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     RangeFnRef body) {
  ThreadPool& pool = ThreadPool::Global();
  auto task = std::make_shared<ThreadPool::Task>(begin, end, grain, body);
  pool.Dispatch(task);
  task->RunChunks();
  task->WaitAndRethrow();
}

}  // namespace internal

}  // namespace ddpkit
