#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace ddpkit {

namespace {

// SplitMix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  DDPKIT_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == (2^64 - n) mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace ddpkit
