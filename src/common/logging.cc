#include "common/logging.h"

#include <atomic>
#include <iostream>

#include "common/mutex.h"

namespace ddpkit {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

/// Serializes whole log lines onto std::cerr across threads. Leaked so log
/// statements in static destructors stay safe.
Mutex& LogMutex() {
  static Mutex* m = new Mutex;
  return *m;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  MutexLock lock(&LogMutex());
  std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace ddpkit
