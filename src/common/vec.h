#ifndef DDPKIT_COMMON_VEC_H_
#define DDPKIT_COMMON_VEC_H_

#include <cstdint>
#include <cstring>

namespace ddpkit::vec {

/// Portable SIMD layer for the elementwise hot paths (tensor kernels, the
/// all-reduce combine loops, the Reducer's bucket copies), modeled on
/// ATen's cpu/vec Vectorized<T> idiom: a fixed-width value type `Vec<T,N>`
/// plus batch entry points that runtime-dispatch to AVX-512, AVX2 or a
/// scalar loop depending on what the host CPU supports.
///
/// Bit-exactness contract
/// ----------------------
/// Every batch helper below performs only *lanewise* IEEE-754 operations —
/// add, sub, mul, div, max, sqrt — which are correctly rounded at every
/// vector width, and no implementation ever emits a fused multiply-add
/// (Axpy is an explicit mul-then-add at all levels; the x86-64 baseline has
/// no FMA instruction, so the scalar fallback cannot contract either).
/// Element i of the output therefore has the same bit pattern no matter
/// which Level executes the call. Combined with ParallelFor's thread-count-
/// independent chunking this means the SIMD dispatch can never perturb a
/// deterministic run: results are identical across machines with different
/// ISA extensions, across DDPKIT_SIMD overrides, and across pool sizes.
/// Horizontal reductions (dot products, sums) are deliberately NOT offered
/// here — they would change accumulation order; use ParallelReduce's
/// chunked combine for those.

// ---------------------------------------------------------------------------
// Dispatch levels.
// ---------------------------------------------------------------------------

enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* LevelName(Level level);

/// Highest level the host CPU supports, clamped by the DDPKIT_SIMD
/// environment variable ("scalar" | "avx2" | "avx512") when set. Computed
/// once per process.
Level DetectedLevel();

/// Level the batch helpers currently dispatch to (DetectedLevel() unless a
/// test overrode it).
Level ActiveLevel();

/// Test/bench escape hatch: force a dispatch level at or below
/// DetectedLevel() (requests above the hardware's capability clamp down).
/// Returns the level actually installed. Not intended for concurrent use
/// with in-flight kernels.
Level SetLevelForTesting(Level level);

// ---------------------------------------------------------------------------
// Vec<T, N>: the fixed-width value type. This generic definition is the
// scalar fallback (an N-lane array with lanewise operators); the AVX2 and
// AVX-512 batch implementations in vec.cc use the intrinsic registers
// directly inside target-attributed functions, with identical lanewise
// semantics. N = 8 floats matches one AVX2 register; N = 16 one AVX-512
// register.
// ---------------------------------------------------------------------------

template <typename T, int N>
struct Vec {
  T lane[N];

  static constexpr int size() { return N; }

  static Vec Load(const T* p) {
    Vec v;
    std::memcpy(v.lane, p, sizeof(v.lane));
    return v;
  }

  static Vec Broadcast(T value) {
    Vec v;
    for (int i = 0; i < N; ++i) v.lane[i] = value;
    return v;
  }

  void Store(T* p) const { std::memcpy(p, lane, sizeof(lane)); }

  Vec operator+(const Vec& o) const {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = lane[i] + o.lane[i];
    return r;
  }
  Vec operator-(const Vec& o) const {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = lane[i] - o.lane[i];
    return r;
  }
  Vec operator*(const Vec& o) const {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = lane[i] * o.lane[i];
    return r;
  }
  Vec operator/(const Vec& o) const {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = lane[i] / o.lane[i];
    return r;
  }

  static Vec Max(const Vec& a, const Vec& b) {
    Vec r;
    for (int i = 0; i < N; ++i) {
      r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    }
    return r;
  }
};

// ---------------------------------------------------------------------------
// Batch entry points (runtime-dispatched). Pointers may alias only when the
// scalar loop would tolerate it: dst == a or dst == b is fine (pure
// lanewise), partially-overlapping ranges are not.
// ---------------------------------------------------------------------------

void Add(const float* a, const float* b, float* dst, int64_t n);
void Sub(const float* a, const float* b, float* dst, int64_t n);
void Mul(const float* a, const float* b, float* dst, int64_t n);
void Div(const float* a, const float* b, float* dst, int64_t n);

void Scale(const float* a, float s, float* dst, int64_t n);
void AddScalar(const float* a, float s, float* dst, int64_t n);
void Neg(const float* a, float* dst, int64_t n);
void Relu(const float* a, float* dst, int64_t n);
/// dst[i] = x[i] > 0 ? g[i] : 0 — the ReLU gradient mask.
void ReluBackward(const float* g, const float* x, float* dst, int64_t n);
void Sqrt(const float* a, float* dst, int64_t n);

/// y[i] += alpha * x[i], mul-then-add at every level (never fused).
void Axpy(float alpha, const float* x, float* y, int64_t n);
void ScaleInPlace(float* y, float s, int64_t n);

/// The all-reduce combine primitives: dst[i] = dst[i] (+|max) src[i].
void AccumulateAdd(float* dst, const float* src, int64_t n);
void AccumulateMax(float* dst, const float* src, int64_t n);
void AccumulateAdd(double* dst, const double* src, int64_t n);
void AccumulateMax(double* dst, const double* src, int64_t n);

/// Contiguous copy (the bucket copy-in/copy-out primitive). Semantically
/// memcpy; routed through this layer so the hot copies share one audited
/// entry point with the arithmetic kernels.
void Copy(float* dst, const float* src, int64_t n);
void Copy(double* dst, const double* src, int64_t n);

}  // namespace ddpkit::vec

#endif  // DDPKIT_COMMON_VEC_H_
