#ifndef DDPKIT_COMMON_CHECK_H_
#define DDPKIT_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ddpkit::internal {

/// Stream collector used by the DDPKIT_CHECK family. Aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "DDPKIT_CHECK failed at " << file << ":" << line << ": "
            << condition << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace ddpkit::internal

/// Invariant checks for programmer errors. These abort: they flag bugs in
/// ddpkit itself or misuse of its API, not recoverable runtime conditions
/// (which use Status).
#define DDPKIT_CHECK(cond)                                              \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::ddpkit::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

#define DDPKIT_CHECK_EQ(a, b) \
  DDPKIT_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DDPKIT_CHECK_NE(a, b) \
  DDPKIT_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DDPKIT_CHECK_LT(a, b) \
  DDPKIT_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DDPKIT_CHECK_LE(a, b) \
  DDPKIT_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DDPKIT_CHECK_GT(a, b) \
  DDPKIT_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DDPKIT_CHECK_GE(a, b) \
  DDPKIT_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Checks that a Status-returning expression is OK.
#define DDPKIT_CHECK_OK(expr)                                   \
  do {                                                          \
    ::ddpkit::Status _st = (expr);                              \
    DDPKIT_CHECK(_st.ok()) << _st.ToString();                   \
  } while (false)

#endif  // DDPKIT_COMMON_CHECK_H_
