#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.h"

namespace ddpkit {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void Histogram::Record(double sample) {
  MutexLock lock(&mutex_);
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

size_t Histogram::count() const {
  MutexLock lock(&mutex_);
  return samples_.size();
}

double Histogram::sum() const {
  MutexLock lock(&mutex_);
  return sum_;
}

double Histogram::min() const {
  MutexLock lock(&mutex_);
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  MutexLock lock(&mutex_);
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::QuantileLocked(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return Percentile(sorted_, q);
}

double Histogram::Quantile(double q) const {
  MutexLock lock(&mutex_);
  return QuantileLocked(q);
}

Histogram::Summary Histogram::Snapshot() const {
  MutexLock lock(&mutex_);
  Summary s;
  s.count = samples_.size();
  s.sum = sum_;
  if (!samples_.empty()) {
    s.min = *std::min_element(samples_.begin(), samples_.end());
    s.max = *std::max_element(samples_.begin(), samples_.end());
  }
  s.p50 = QuantileLocked(0.50);
  s.p95 = QuantileLocked(0.95);
  s.p99 = QuantileLocked(0.99);
  return s;
}

std::vector<double> Histogram::snapshot() const {
  MutexLock lock(&mutex_);
  return samples_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

size_t MetricsRegistry::NumMetrics() const {
  MutexLock lock(&mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  // Hold the creation lock only to copy the pointer maps; each metric's own
  // lock serializes against concurrent updates while rendering.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    MutexLock lock(&mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }

  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\":" + JsonNumber(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    // One locked snapshot per histogram: rendering via the individual
    // accessors would take the lock seven times, letting a concurrent
    // Record() tear the view (e.g. count from before a sample, sum from
    // after it).
    const Histogram::Summary s = h->Snapshot();
    out += "\":{\"count\":" + std::to_string(s.count) +
           ",\"sum\":" + JsonNumber(s.sum) +
           ",\"min\":" + JsonNumber(s.min) +
           ",\"max\":" + JsonNumber(s.max) +
           ",\"p50\":" + JsonNumber(s.p50) +
           ",\"p95\":" + JsonNumber(s.p95) +
           ",\"p99\":" + JsonNumber(s.p99) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace ddpkit
