#ifndef DDPKIT_COMMON_THREAD_ANNOTATIONS_H_
#define DDPKIT_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These turn the repo's implicit locking conventions ("the pg mutex protects
/// the comm queue") into contracts the compiler checks at build time. Under
/// clang with -Wthread-safety (see the DDPKIT_THREAD_SAFETY CMake option)
/// every annotated member access and lock acquisition is verified; under any
/// other compiler the macros expand to nothing, so GCC builds are unaffected.
///
/// The analysis only understands lock acquisitions performed through
/// annotated functions, and libstdc++'s std::mutex carries no annotations —
/// so guarded state must be protected by ddpkit::Mutex / ddpkit::MutexLock /
/// ddpkit::CondVar from common/mutex.h, not by raw std types. tools/ddplint
/// enforces that convention tree-wide.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define DDPKIT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DDPKIT_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (lockable type).
#define CAPABILITY(x) DDPKIT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY DDPKIT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define GUARDED_BY(x) DDPKIT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) DDPKIT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the listed mutexes.
#define REQUIRES(...) \
  DDPKIT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called while holding the listed mutexes in
/// shared (reader) mode.
#define REQUIRES_SHARED(...) \
  DDPKIT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed mutexes and does not release them.
#define ACQUIRE(...) \
  DDPKIT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed mutexes (which must be held on entry).
#define RELEASE(...) \
  DDPKIT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the listed mutexes iff it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  DDPKIT_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the listed mutexes
/// (deadlock prevention; catches self-deadlock on non-reentrant locks).
#define EXCLUDES(...) DDPKIT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares lock-ordering on a mutex member: this mutex is acquired before
/// (resp. after) the listed mutexes of the same class. Clang verifies the
/// same-class pairs; the cross-class hierarchy of DESIGN.md §8 is checked
/// textually by ddplint's lock-order pass (tools/ddplint/lock_order.txt),
/// which also parses these annotations' intent from MutexLock scopes.
#define ACQUIRED_BEFORE(...) \
  DDPKIT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DDPKIT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Declares that a function returns a reference to the given mutex.
#define RETURN_CAPABILITY(x) DDPKIT_THREAD_ANNOTATION(lock_returned(x))

/// Asserts (without acquiring) that the calling context holds the mutex.
#define ASSERT_CAPABILITY(x) DDPKIT_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables analysis for one function. Every use must carry a
/// comment explaining why the function is correct anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  DDPKIT_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DDPKIT_COMMON_THREAD_ANNOTATIONS_H_
