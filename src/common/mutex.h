#ifndef DDPKIT_COMMON_MUTEX_H_
#define DDPKIT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

// ddplint: allow-file(unannotated-mutex) this header IS the annotated
// wrapper layer; it necessarily names the raw std primitives it wraps.

namespace ddpkit {

/// Annotated wrapper over std::mutex. Clang's thread-safety analysis can only
/// reason about lock acquisitions made through attributed functions, and
/// libstdc++'s std::mutex / std::lock_guard carry no attributes — so all
/// mutex-protected state in ddpkit is guarded by this type (enforced by
/// tools/ddplint).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for interop (CondVar, std::scoped_lock of two
  /// mutexes). Lock state changes made through it are invisible to the
  /// analysis; pair every use with the matching annotation.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;  // ddplint: allow(unannotated-mutex) wrapped by this class
};

/// RAII lock for Mutex, equivalent of std::lock_guard. The analysis treats
/// the guard's scope as the critical section.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable with Mutex. Waits REQUIRE the mutex so the
/// analysis verifies the wait-predicate is only evaluated under the lock.
/// There is deliberately no predicate-lambda overload: clang analyzes lambda
/// bodies as separate functions (losing the held-capability context), so
/// call sites write the canonical `while (!pred) cv.Wait(mu);` loop, which
/// the analysis checks directly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before return.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native_handle(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Like Wait, but returns false if `deadline` passed without a signal.
  /// Spurious wakeups return true; callers must re-check their predicate.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status != std::cv_status::timeout;
  }

  /// Like WaitUntil with a relative timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lk, timeout);
    lk.release();
    return status != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // ddplint: allow(unannotated-mutex) wrapped by this class
  std::condition_variable cv_;
};

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_MUTEX_H_
