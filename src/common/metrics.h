#ifndef DDPKIT_COMMON_METRICS_H_
#define DDPKIT_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ddpkit {

/// Appends `s` to `*out` with JSON string escaping: quotes, backslashes,
/// and control characters (< 0x20) become \" \\ \n \t \r or \u00XX. Shared
/// by the metrics registry, the telemetry records, and the Chrome trace
/// exporter so every JSON emitter in the codebase survives hostile names.
void AppendJsonEscaped(std::string* out, const std::string& s);

/// Renders a double for JSON: finite values via %.9g, non-finite as 0 (JSON
/// has no NaN/Inf literals).
std::string JsonNumber(double value);

/// Monotonic event count. Lock-free; safe to bump from rank threads.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) {
    MutexLock lock(&mutex_);
    value_ = value;
  }
  double value() const {
    MutexLock lock(&mutex_);
    return value_;
  }

 private:
  mutable Mutex mutex_;
  double value_ GUARDED_BY(mutex_) = 0.0;
};

/// Sample distribution with exact quantiles. Samples are retained (the
/// per-iteration cardinalities here are small — thousands, not millions),
/// so p50/p95/p99 are true percentiles rather than sketch estimates.
class Histogram {
 public:
  /// All summary fields captured under one lock acquisition, so the numbers
  /// are mutually consistent even while other threads keep recording.
  struct Summary {
    size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  void Record(double sample);

  size_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Linear-interpolation percentile, q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  /// Atomic multi-field snapshot. Prefer this over chaining the scalar
  /// accessors when the fields must agree with each other (each scalar call
  /// locks independently, so a writer between two calls tears the view).
  Summary Snapshot() const;

  std::vector<double> snapshot() const;

 private:
  double QuantileLocked(double q) const REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<double> samples_ GUARDED_BY(mutex_);
  /// Sorted lazily on quantile queries; valid while no Record intervened.
  mutable std::vector<double> sorted_ GUARDED_BY(mutex_);
  mutable bool sorted_valid_ GUARDED_BY(mutex_) = false;
  double sum_ GUARDED_BY(mutex_) = 0.0;
};

/// Named metric registry: the process-level sink for DDP runtime telemetry
/// (reducer, DDP wrapper, simulated process group). Metrics are created on
/// first use and live as long as the registry; returned references stay
/// valid, so hot paths can cache them. ToJson() renders the full registry
/// for the BENCH_*.json emitters and test assertions.
///
/// Thread-safe: creation is serialized, and each metric type synchronizes
/// its own updates.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99}}} — keys sorted (std::map) for stable diffs.
  std::string ToJson() const;

  size_t NumMetrics() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_METRICS_H_
