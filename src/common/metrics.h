#ifndef DDPKIT_COMMON_METRICS_H_
#define DDPKIT_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ddpkit {

/// Appends `s` to `*out` with JSON string escaping: quotes, backslashes,
/// and control characters (< 0x20) become \" \\ \n \t \r or \u00XX. Shared
/// by the metrics registry, the telemetry records, and the Chrome trace
/// exporter so every JSON emitter in the codebase survives hostile names.
void AppendJsonEscaped(std::string* out, const std::string& s);

/// Renders a double for JSON: finite values via %.9g, non-finite as 0 (JSON
/// has no NaN/Inf literals).
std::string JsonNumber(double value);

/// Monotonic event count. Lock-free; safe to bump from rank threads.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ = value;
  }
  double value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

/// Sample distribution with exact quantiles. Samples are retained (the
/// per-iteration cardinalities here are small — thousands, not millions),
/// so p50/p95/p99 are true percentiles rather than sketch estimates.
class Histogram {
 public:
  void Record(double sample);

  size_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Linear-interpolation percentile, q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  std::vector<double> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  /// Sorted lazily on quantile queries; valid while no Record intervened.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Named metric registry: the process-level sink for DDP runtime telemetry
/// (reducer, DDP wrapper, simulated process group). Metrics are created on
/// first use and live as long as the registry; returned references stay
/// valid, so hot paths can cache them. ToJson() renders the full registry
/// for the BENCH_*.json emitters and test assertions.
///
/// Thread-safe: creation is serialized, and each metric type synchronizes
/// its own updates.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99}}} — keys sorted (std::map) for stable diffs.
  std::string ToJson() const;

  size_t NumMetrics() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ddpkit

#endif  // DDPKIT_COMMON_METRICS_H_
