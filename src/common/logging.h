#ifndef DDPKIT_COMMON_LOGGING_H_
#define DDPKIT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ddpkit {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log statement. Serializes output across threads on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ddpkit

#define DDPKIT_LOG(level)                                          \
  if (::ddpkit::LogLevel::k##level < ::ddpkit::GetLogLevel()) {    \
  } else /* NOLINT */                                              \
    ::ddpkit::internal::LogMessage(::ddpkit::LogLevel::k##level,   \
                                   __FILE__, __LINE__)             \
        .stream()

#endif  // DDPKIT_COMMON_LOGGING_H_
