#ifndef DDPKIT_CORE_TRACE_H_
#define DDPKIT_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ddpkit::core {

/// Virtual-time span recorder for DDP iterations. The reducer and DDP
/// wrapper emit spans (forward compute, per-gradient backward compute,
/// per-bucket AllReduce) against the rank's virtual clock; the result
/// exports to the Chrome trace-event JSON format (chrome://tracing /
/// Perfetto), making the paper's overlap behaviour directly visible: comm
/// spans riding under the backward-compute span.
///
/// Beyond plain spans the recorder supports two Chrome trace-event idioms:
///  - flow events ("s"/"t"/"f" phases, shared id) draw arrows across the
///    causal chain of one bucket: last gradient ready -> AllReduce launch
///    -> completion;
///  - instant events ("i" phase) mark iteration boundaries, giving the
///    viewer per-iteration frames to navigate by.
///
/// Thread-safe: rank threads append concurrently.
class TraceRecorder {
 public:
  struct Span {
    std::string name;
    std::string category;  // "forward" | "backward" | "comm" | ...
    int rank = 0;
    double start_seconds = 0.0;
    double end_seconds = 0.0;
  };

  /// Position of a flow point within its arrow chain.
  enum class FlowPhase { kStart, kStep, kEnd };

  struct FlowPoint {
    uint64_t flow_id = 0;
    FlowPhase phase = FlowPhase::kStart;
    std::string name;
    std::string category;
    int rank = 0;
    double time_seconds = 0.0;
  };

  struct Instant {
    std::string name;
    std::string category;
    int rank = 0;
    double time_seconds = 0.0;
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void AddSpan(std::string name, std::string category, int rank,
               double start_seconds, double end_seconds);

  /// One point of a flow arrow. Points sharing `flow_id` are connected in
  /// time order; every chain needs exactly one kStart and one kEnd, with
  /// any number of kStep points between.
  void AddFlowPoint(uint64_t flow_id, FlowPhase phase, std::string name,
                    std::string category, int rank, double time_seconds);

  /// Zero-duration marker (per-iteration frame boundaries).
  void AddInstant(std::string name, std::string category, int rank,
                  double time_seconds);

  void Clear();

  std::vector<Span> snapshot() const;
  std::vector<FlowPoint> flow_points() const;
  std::vector<Instant> instants() const;
  size_t size() const;

  /// Chrome trace-event JSON ("X" complete events, "s"/"t"/"f" flow
  /// events, "i" instants; microsecond units, one pseudo-thread per rank).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  mutable Mutex mutex_;
  std::vector<Span> spans_ GUARDED_BY(mutex_);
  std::vector<FlowPoint> flow_points_ GUARDED_BY(mutex_);
  std::vector<Instant> instants_ GUARDED_BY(mutex_);
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_TRACE_H_
