#ifndef DDPKIT_CORE_TRACE_H_
#define DDPKIT_CORE_TRACE_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ddpkit::core {

/// Virtual-time span recorder for DDP iterations. The reducer and DDP
/// wrapper emit spans (forward compute, per-gradient backward compute,
/// per-bucket AllReduce) against the rank's virtual clock; the result
/// exports to the Chrome trace-event JSON format (chrome://tracing /
/// Perfetto), making the paper's overlap behaviour directly visible: comm
/// spans riding under the backward-compute span.
///
/// Thread-safe: rank threads append concurrently.
class TraceRecorder {
 public:
  struct Span {
    std::string name;
    std::string category;  // "forward" | "backward" | "comm" | ...
    int rank = 0;
    double start_seconds = 0.0;
    double end_seconds = 0.0;
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void AddSpan(std::string name, std::string category, int rank,
               double start_seconds, double end_seconds);
  void Clear();

  std::vector<Span> snapshot() const;
  size_t size() const;

  /// Chrome trace-event JSON ("X" complete events, microsecond units,
  /// one pseudo-thread per rank).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_TRACE_H_
