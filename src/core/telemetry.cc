#include "core/telemetry.h"

#include <cstdio>

#include "common/metrics.h"

namespace ddpkit::core {

std::string DDPTelemetry::ToJson() const {
  std::string out = "{";
  out += "\"iteration\":" + std::to_string(iteration);
  out += ",\"rank\":" + std::to_string(rank);
  out += ",\"synced\":";
  out += synced ? "true" : "false";
  out += ",\"forward_seconds\":" + JsonNumber(forward_seconds);
  out += ",\"backward_compute_seconds\":" +
         JsonNumber(backward_compute_seconds);
  out += ",\"allreduce_wait_seconds\":" + JsonNumber(allreduce_wait_seconds);
  out += ",\"overlap_seconds\":" + JsonNumber(overlap_seconds);
  out += ",\"comm_seconds\":" + JsonNumber(comm_seconds);
  out += ",\"copy_in_seconds\":" + JsonNumber(copy_in_seconds);
  out += ",\"copy_out_seconds\":" + JsonNumber(copy_out_seconds);
  out += ",\"rebuilds\":" + std::to_string(rebuilds);
  out += ",\"sync_failures\":" + std::to_string(sync_failures);
  out += ",\"param_compute_seconds\":[";
  for (size_t i = 0; i < param_compute_seconds.size(); ++i) {
    if (i) out += ',';
    out += JsonNumber(param_compute_seconds[i]);
  }
  out += "],\"buckets\":[";
  for (size_t i = 0; i < buckets.size(); ++i) {
    const BucketTelemetry& b = buckets[i];
    if (i) out += ',';
    out += "{\"bucket\":" + std::to_string(b.bucket) +
           ",\"bytes\":" + std::to_string(b.bytes) +
           ",\"launch_seconds\":" + JsonNumber(b.launch_seconds) +
           ",\"completion_seconds\":" + JsonNumber(b.completion_seconds) +
           ",\"wait_seconds\":" + JsonNumber(b.wait_seconds) + "}";
  }
  out += "]}";
  return out;
}

void TelemetryLog::Append(DDPTelemetry record) {
  MutexLock lock(&mutex_);
  records_.push_back(std::move(record));
}

void TelemetryLog::Clear() {
  MutexLock lock(&mutex_);
  records_.clear();
}

size_t TelemetryLog::size() const {
  MutexLock lock(&mutex_);
  return records_.size();
}

std::vector<DDPTelemetry> TelemetryLog::snapshot() const {
  MutexLock lock(&mutex_);
  return records_;
}

std::string TelemetryLog::ToJson() const {
  std::vector<DDPTelemetry> records = snapshot();
  std::string out = "{\"iterations\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i) out += ',';
    out += records[i].ToJson();
  }
  out += "]}";
  return out;
}

Status TelemetryLog::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace ddpkit::core
