#include "core/order_tracer.h"

#include "common/check.h"

namespace ddpkit::core {

bool OrderTracer::ObserveAndMaybeRebuild(Reducer* reducer) {
  DDPKIT_CHECK(reducer != nullptr);
  const std::vector<size_t>& order = reducer->last_ready_order();
  if (order.empty()) return false;

  if (order == last_order_) {
    ++stable_count_;
  } else {
    // Disparity between iterations: restart the stability window (the
    // "additional complexities ... to reach a consensus" case of §6.2.1).
    stable_count_ = 0;
    last_order_ = order;
  }

  if (stable_count_ >= options_.stable_iterations &&
      rebuilds_ < options_.max_rebuilds) {
    if (reducer->RebuildBucketsFromTrace()) {
      ++rebuilds_;
      stable_count_ = 0;
      return true;
    }
  }
  return false;
}

}  // namespace ddpkit::core
