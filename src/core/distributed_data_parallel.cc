#include "core/distributed_data_parallel.h"

#include <string>
#include <utility>

#include "autograd/engine.h"
#include "common/check.h"

namespace ddpkit::core {

DistributedDataParallel::DistributedDataParallel(
    std::shared_ptr<nn::Module> module,
    std::shared_ptr<comm::ProcessGroup> process_group,
    const DdpOptions& options)
    : module_(std::move(module)), pg_(std::move(process_group)),
      options_(options) {
  DDPKIT_CHECK(module_ != nullptr);
  DDPKIT_CHECK(pg_ != nullptr);
  RegisterModule("module", module_);

  BroadcastInitialState();

  ReducerOptions reducer_options;
  reducer_options.bucket_cap_bytes = options_.bucket_cap_bytes;
  reducer_options.first_bucket_cap_bytes = options_.first_bucket_cap_bytes;
  reducer_options.find_unused_parameters = options_.find_unused_parameters;
  reducer_options.comm_hook = options_.comm_hook;
  reducer_options.compute_model = options_.compute_model;
  reducer_options.gradient_as_bucket_view = options_.gradient_as_bucket_view;
  reducer_options.trace = options_.trace;
  reducer_options.telemetry = options_.telemetry;
  reducer_options.metrics = options_.metrics;
  reducer_options.collective_timeout_seconds =
      options_.collective_timeout_seconds;
  reducer_options.validate_bucket_layout = options_.validate_bucket_layout;
  reducer_ = std::make_unique<Reducer>(module_->parameters(), pg_,
                                       reducer_options);
}

void DistributedDataParallel::RecordCommFailure(Status status) {
  DDPKIT_CHECK(!status.ok());
  if (comm_status_.ok()) comm_status_ = std::move(status);
}

void DistributedDataParallel::BroadcastInitialState() {
  // All replicas adopt rank 0's parameters and buffers at construction
  // time (Algorithm 1 lines 2-3), guaranteeing a common starting point. A
  // faulted broadcast disables sync (remaining broadcasts are skipped: the
  // replicas no longer share a collective sequence).
  autograd::NoGradGuard guard;
  for (Tensor& p : module_->parameters()) {
    Status st = pg_->Broadcast(p.Flatten(), /*root=*/0)
                    ->Wait(pg_->clock(), options_.collective_timeout_seconds);
    if (!st.ok()) {
      RecordCommFailure(Status(st.code(), "initial parameter broadcast (rank " +
                                              std::to_string(pg_->rank()) +
                                              "): " + st.message()));
      return;
    }
  }
  for (Tensor& b : module_->buffers()) {
    if (b.dtype() != DType::kFloat32) continue;
    Status st = pg_->Broadcast(b.Flatten(), /*root=*/0)
                    ->Wait(pg_->clock(), options_.collective_timeout_seconds);
    if (!st.ok()) {
      RecordCommFailure(Status(st.code(), "initial buffer broadcast (rank " +
                                              std::to_string(pg_->rank()) +
                                              "): " + st.message()));
      return;
    }
  }
  buffers_dirty_ = false;
}

void DistributedDataParallel::PreForward() {
  autograd::NoGradGuard guard;
  if (options_.broadcast_buffers && sync_enabled_ && buffers_dirty_ &&
      sync_status().ok()) {
    // Rank 0 is the authority for buffer state (paper §4.1): broadcast
    // before the forward pass of a synced iteration.
    for (Tensor& b : module_->buffers()) {
      if (b.dtype() != DType::kFloat32) continue;
      Status st =
          pg_->Broadcast(b.Flatten(), /*root=*/0)
              ->Wait(pg_->clock(), options_.collective_timeout_seconds);
      if (!st.ok()) {
        RecordCommFailure(Status(st.code(), "buffer broadcast (rank " +
                                                std::to_string(pg_->rank()) +
                                                "): " + st.message()));
        break;
      }
    }
    buffers_dirty_ = false;
  }
  if (options_.compute_model != nullptr) {
    // Charge the forward pass to the virtual clock.
    int64_t numel = 0;
    int64_t num_params = 0;
    for (const Tensor& p : module_->parameters()) {
      numel += p.numel();
      ++num_params;
    }
    const double t0 = pg_->clock()->Now();
    pg_->clock()->Advance(
        options_.compute_model->ForwardSeconds(numel, num_params));
    if (options_.trace != nullptr) {
      options_.trace->AddSpan("forward", "forward", pg_->rank(), t0,
                              pg_->clock()->Now());
    }
    // Stamp the forward cost into the next backward's telemetry frame.
    reducer_->RecordForwardSeconds(pg_->clock()->Now() - t0);
  }
}

void DistributedDataParallel::PostForward(const std::vector<Tensor>& outputs) {
  // Inference forwards (grad mode off) build no autograd graph, so there
  // is no backward to prepare for — mirroring PyTorch's
  // torch.is_grad_enabled() gate.
  if (autograd::GradModeEnabled()) {
    reducer_->PrepareForBackward(outputs,
                                 sync_enabled_ && sync_status().ok());
  }
  if (module_->training() && !module_->buffers().empty()) {
    // The local forward advanced running statistics; schedule a broadcast
    // before the next synced forward.
    buffers_dirty_ = true;
  }
}

Tensor DistributedDataParallel::Forward(const Tensor& input) {
  PreForward();
  Tensor out = module_->Forward(input);
  PostForward({out});
  return out;
}

Status DistributedDataParallel::AbortAndRendezvous(
    const RecoveryOptions& options, comm::RendezvousResult* result) {
  if (options.group_factory == nullptr) {
    return Status::InvalidArgument(
        "elastic recovery needs a group_factory to re-form the process "
        "group over the survivors");
  }
  comm::Store* store = pg_->store();
  if (store == nullptr) {
    return Status::FailedPrecondition(
        "elastic recovery needs a Store-backed process group to rendezvous "
        "through");
  }
  const int old_rank = pg_->rank();
  if (options_.metrics != nullptr) {
    options_.metrics->counter("ddp.recovery.attempts").Increment();
  }
  if (options_.trace != nullptr) {
    options_.trace->AddInstant(
        "recovery: rendezvous from generation " +
            std::to_string(pg_->generation()),
        "recovery", old_rank, pg_->clock()->Now());
  }

  comm::RendezvousOptions rendezvous_options;
  rendezvous_options.timeout_seconds = options.rendezvous_timeout_seconds;
  rendezvous_options.min_world = options.min_world;
  auto sealed = comm::AbortAndRendezvous(
      store, options.rendezvous_namespace, old_rank, pg_->world(),
      pg_->generation(), rendezvous_options);
  if (!sealed.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("ddp.recovery.failed").Increment();
    }
    Status annotated(sealed.status().code(),
                     "elastic rendezvous (rank " + std::to_string(old_rank) +
                         "): " + sealed.status().message());
    RecordCommFailure(annotated);
    return annotated;
  }
  const comm::RendezvousResult membership = std::move(sealed).value();

  // Retire the old generation before the replacement dispatches anything:
  // in-flight works fail typed (kInvalidGeneration) — which also unblocks
  // peers stranded mid-Wait on a collective this rank will never complete —
  // and any straggler still issuing on the old group fails fast.
  pg_->AbortGroup(membership.generation,
                  "rank " + std::to_string(old_rank) +
                      " completed rendezvous for generation " +
                      std::to_string(membership.generation));

  std::shared_ptr<comm::ProcessGroup> replacement = options.group_factory(
      membership.generation, membership.new_rank, membership.new_world);
  if (replacement == nullptr ||
      replacement->rank() != membership.new_rank ||
      replacement->world() != membership.new_world) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("ddp.recovery.failed").Increment();
    }
    Status bad = Status::Internal(
        "group_factory returned a group that does not match the sealed "
        "membership (want rank " + std::to_string(membership.new_rank) +
        "/" + std::to_string(membership.new_world) + ")");
    RecordCommFailure(bad);
    return bad;
  }
  pg_ = std::move(replacement);

  // Garbage-collect this generation's rendezvous keys. Safe now, not
  // earlier: group construction barriers on every member, so the factory
  // returning proves all survivors finished reading the membership.
  // Idempotent across survivors.
  comm::CleanupRendezvous(store, options.rendezvous_namespace,
                          membership.generation);

  if (result != nullptr) *result = membership;
  return Status::OK();
}

Status DistributedDataParallel::Recover(const RecoveryOptions& options,
                                        RecoveryReport* report) {
  comm::RendezvousResult membership;
  Status st = AbortAndRendezvous(options, &membership);
  if (!st.ok()) return st;

  // Deterministic resync: the lowest surviving old rank became new rank 0
  // at the rendezvous, so "broadcast from root 0" elects it the source on
  // every survivor with no further agreement round. Order matters and is
  // identical everywhere: parameters, then float32 buffers, then
  // extra_state in list order.
  const auto fail = [&](StatusCode code, const std::string& message) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("ddp.recovery.failed").Increment();
    }
    Status annotated(code, message);
    RecordCommFailure(annotated);
    return annotated;
  };
  {
    autograd::NoGradGuard guard;
    const double timeout = options_.collective_timeout_seconds;
    for (Tensor& p : module_->parameters()) {
      Status bst =
          pg_->Broadcast(p.Flatten(), /*root=*/0)->Wait(pg_->clock(), timeout);
      if (!bst.ok()) {
        return fail(bst.code(), "recovery parameter resync (rank " +
                                    std::to_string(pg_->rank()) +
                                    "): " + bst.message());
      }
    }
    for (Tensor& b : module_->buffers()) {
      if (b.dtype() != DType::kFloat32) continue;
      Status bst =
          pg_->Broadcast(b.Flatten(), /*root=*/0)->Wait(pg_->clock(), timeout);
      if (!bst.ok()) {
        return fail(bst.code(), "recovery buffer resync (rank " +
                                    std::to_string(pg_->rank()) +
                                    "): " + bst.message());
      }
    }
    for (const auto& [name, tensor] : options.extra_state) {
      Tensor t = tensor;  // handle copy; broadcast writes the shared storage
      Status bst =
          pg_->Broadcast(t.Flatten(), /*root=*/0)->Wait(pg_->clock(), timeout);
      if (!bst.ok()) {
        return fail(bst.code(), "recovery extra-state resync of \"" + name +
                                    "\" (rank " + std::to_string(pg_->rank()) +
                                    "): " + bst.message());
      }
    }
  }

  Status reducer_status = reducer_->ResetAfterRecovery(pg_);
  if (!reducer_status.ok()) {
    return fail(reducer_status.code(),
                "post-recovery reducer re-init: " + reducer_status.message());
  }

  // This replica is healthy again: clear the sync-disabling error and
  // force a buffer broadcast before the next synced forward (the source's
  // buffer state just landed, but a later local forward may dirty them).
  comm_status_ = Status::OK();
  buffers_dirty_ = false;

  if (options_.metrics != nullptr) {
    options_.metrics->counter("ddp.recovery.completed").Increment();
    options_.metrics->gauge("ddp.generation")
        .Set(static_cast<double>(membership.generation));
  }
  if (options_.trace != nullptr) {
    options_.trace->AddInstant(
        "recovery: resynced at generation " +
            std::to_string(membership.generation) + " as rank " +
            std::to_string(membership.new_rank) + "/" +
            std::to_string(membership.new_world),
        "recovery", pg_->rank(), pg_->clock()->Now());
  }
  if (report != nullptr) {
    report->generation = membership.generation;
    report->new_rank = membership.new_rank;
    report->new_world = membership.new_world;
    report->source_old_rank = membership.source_old_rank;
    report->survivors = membership.survivors;
  }
  return Status::OK();
}

}  // namespace ddpkit::core
