#include "core/distributed_data_parallel.h"

#include "autograd/engine.h"
#include "common/check.h"

namespace ddpkit::core {

DistributedDataParallel::DistributedDataParallel(
    std::shared_ptr<nn::Module> module,
    std::shared_ptr<comm::ProcessGroup> process_group,
    const DdpOptions& options)
    : module_(std::move(module)), pg_(std::move(process_group)),
      options_(options) {
  DDPKIT_CHECK(module_ != nullptr);
  DDPKIT_CHECK(pg_ != nullptr);
  RegisterModule("module", module_);

  BroadcastInitialState();

  ReducerOptions reducer_options;
  reducer_options.bucket_cap_bytes = options_.bucket_cap_bytes;
  reducer_options.first_bucket_cap_bytes = options_.first_bucket_cap_bytes;
  reducer_options.find_unused_parameters = options_.find_unused_parameters;
  reducer_options.comm_hook = options_.comm_hook;
  reducer_options.compute_model = options_.compute_model;
  reducer_options.gradient_as_bucket_view = options_.gradient_as_bucket_view;
  reducer_options.trace = options_.trace;
  reducer_options.telemetry = options_.telemetry;
  reducer_options.metrics = options_.metrics;
  reducer_options.collective_timeout_seconds =
      options_.collective_timeout_seconds;
  reducer_options.validate_bucket_layout = options_.validate_bucket_layout;
  reducer_ = std::make_unique<Reducer>(module_->parameters(), pg_,
                                       reducer_options);
}

void DistributedDataParallel::RecordCommFailure(Status status) {
  DDPKIT_CHECK(!status.ok());
  if (comm_status_.ok()) comm_status_ = std::move(status);
}

void DistributedDataParallel::BroadcastInitialState() {
  // All replicas adopt rank 0's parameters and buffers at construction
  // time (Algorithm 1 lines 2-3), guaranteeing a common starting point. A
  // faulted broadcast disables sync (remaining broadcasts are skipped: the
  // replicas no longer share a collective sequence).
  autograd::NoGradGuard guard;
  for (Tensor& p : module_->parameters()) {
    Status st = pg_->Broadcast(p.Flatten(), /*root=*/0)
                    ->Wait(pg_->clock(), options_.collective_timeout_seconds);
    if (!st.ok()) {
      RecordCommFailure(Status(st.code(), "initial parameter broadcast (rank " +
                                              std::to_string(pg_->rank()) +
                                              "): " + st.message()));
      return;
    }
  }
  for (Tensor& b : module_->buffers()) {
    if (b.dtype() != DType::kFloat32) continue;
    Status st = pg_->Broadcast(b.Flatten(), /*root=*/0)
                    ->Wait(pg_->clock(), options_.collective_timeout_seconds);
    if (!st.ok()) {
      RecordCommFailure(Status(st.code(), "initial buffer broadcast (rank " +
                                              std::to_string(pg_->rank()) +
                                              "): " + st.message()));
      return;
    }
  }
  buffers_dirty_ = false;
}

void DistributedDataParallel::PreForward() {
  autograd::NoGradGuard guard;
  if (options_.broadcast_buffers && sync_enabled_ && buffers_dirty_ &&
      sync_status().ok()) {
    // Rank 0 is the authority for buffer state (paper §4.1): broadcast
    // before the forward pass of a synced iteration.
    for (Tensor& b : module_->buffers()) {
      if (b.dtype() != DType::kFloat32) continue;
      Status st =
          pg_->Broadcast(b.Flatten(), /*root=*/0)
              ->Wait(pg_->clock(), options_.collective_timeout_seconds);
      if (!st.ok()) {
        RecordCommFailure(Status(st.code(), "buffer broadcast (rank " +
                                                std::to_string(pg_->rank()) +
                                                "): " + st.message()));
        break;
      }
    }
    buffers_dirty_ = false;
  }
  if (options_.compute_model != nullptr) {
    // Charge the forward pass to the virtual clock.
    int64_t numel = 0;
    int64_t num_params = 0;
    for (const Tensor& p : module_->parameters()) {
      numel += p.numel();
      ++num_params;
    }
    const double t0 = pg_->clock()->Now();
    pg_->clock()->Advance(
        options_.compute_model->ForwardSeconds(numel, num_params));
    if (options_.trace != nullptr) {
      options_.trace->AddSpan("forward", "forward", pg_->rank(), t0,
                              pg_->clock()->Now());
    }
    // Stamp the forward cost into the next backward's telemetry frame.
    reducer_->RecordForwardSeconds(pg_->clock()->Now() - t0);
  }
}

void DistributedDataParallel::PostForward(const std::vector<Tensor>& outputs) {
  // Inference forwards (grad mode off) build no autograd graph, so there
  // is no backward to prepare for — mirroring PyTorch's
  // torch.is_grad_enabled() gate.
  if (autograd::GradModeEnabled()) {
    reducer_->PrepareForBackward(outputs,
                                 sync_enabled_ && sync_status().ok());
  }
  if (module_->training() && !module_->buffers().empty()) {
    // The local forward advanced running statistics; schedule a broadcast
    // before the next synced forward.
    buffers_dirty_ = true;
  }
}

Tensor DistributedDataParallel::Forward(const Tensor& input) {
  PreForward();
  Tensor out = module_->Forward(input);
  PostForward({out});
  return out;
}

}  // namespace ddpkit::core
