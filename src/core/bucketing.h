#ifndef DDPKIT_CORE_BUCKETING_H_
#define DDPKIT_CORE_BUCKETING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ddpkit::core {

/// Size/placement metadata for one parameter tensor, in
/// model.parameters() (registration/forward) order.
struct ParamMeta {
  int64_t numel = 0;
  size_t bytes = 0;
  int device_id = 0;
};

/// Parameter-to-bucket assignment. Buckets are listed in *launch order*:
/// bucket 0 holds the gradients expected to be ready first (the tail of
/// parameters()), per the paper's reverse-order heuristic (§3.2.3).
/// Within a bucket, indices are in bucket-offset order.
struct BucketAssignment {
  std::vector<std::vector<size_t>> buckets;  // bucket -> param indices

  size_t num_buckets() const { return buckets.size(); }
  std::string ToString(const std::vector<ParamMeta>& params) const;
};

/// Assigns parameters (given in registration order) to buckets by walking
/// them in *reverse* order and packing greedily up to `bucket_cap_bytes`
/// per bucket (Algorithm 1 line 4). Rules:
///   - `bucket_cap_bytes == 0` means one bucket per gradient — the paper's
///     "0 MB" baseline where every gradient is communicated on its own.
///   - A single parameter larger than the cap gets a bucket to itself.
///   - Parameters on different devices never share a bucket (buckets live
///     on the same device as their parameters, §4.2).
///   - `first_bucket_cap_bytes` (0 = same as cap) lets the first-launched
///     bucket be smaller so communication starts earlier.
BucketAssignment AssignBuckets(const std::vector<ParamMeta>& params,
                               size_t bucket_cap_bytes,
                               size_t first_bucket_cap_bytes = 0);

/// Re-assigns buckets according to an observed gradient-ready order (the
/// §6.2.1 "gradient order prediction" extension): `ready_order` lists
/// parameter indices in the order their hooks fired last backward; buckets
/// then pack in exactly that order instead of reverse registration order.
BucketAssignment AssignBucketsFromOrder(const std::vector<ParamMeta>& params,
                                        const std::vector<size_t>& ready_order,
                                        size_t bucket_cap_bytes,
                                        size_t first_bucket_cap_bytes = 0);

/// Total payload bytes of one bucket.
size_t BucketBytes(const std::vector<ParamMeta>& params,
                   const std::vector<size_t>& bucket);

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_BUCKETING_H_
