#include "core/memory.h"

#include <algorithm>
#include <cstdio>

namespace ddpkit::core {

std::string MemoryEstimate::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "params=%.1fMB grads=%.1fMB buckets=%.1fMB bitmap=%.1fKB "
                "hook=%.1fMB total=%.1fMB",
                parameter_bytes / 1048576.0, gradient_bytes / 1048576.0,
                bucket_bytes / 1048576.0, bitmap_bytes / 1024.0,
                hook_payload_bytes / 1048576.0, Total() / 1048576.0);
  return buf;
}

MemoryEstimate EstimateDdpMemory(const std::vector<ParamMeta>& params,
                                 const ReducerOptions& options) {
  MemoryEstimate estimate;
  for (const ParamMeta& p : params) estimate.parameter_bytes += p.bytes;

  BucketAssignment assignment = AssignBuckets(
      params, options.bucket_cap_bytes, options.first_bucket_cap_bytes);
  size_t max_bucket = 0;
  for (const auto& bucket : assignment.buckets) {
    const size_t bytes = BucketBytes(params, bucket);
    estimate.bucket_bytes += bytes;
    max_bucket = std::max(max_bucket, bytes);
  }

  // With bucket views, gradients ARE the buckets; otherwise a full
  // gradient copy exists alongside.
  estimate.gradient_bytes =
      options.gradient_as_bucket_view ? 0 : estimate.parameter_bytes;

  if (options.find_unused_parameters) {
    // CPU bitmap + device copy (paper §4.2).
    estimate.bitmap_bytes = 2 * params.size();
  }
  if (options.comm_hook != nullptr) {
    // Transient compressed payload for the largest in-flight bucket; the
    // 1-bit hook additionally keeps a full-size error-feedback residual.
    estimate.hook_payload_bytes = static_cast<size_t>(
        static_cast<double>(max_bucket) * options.comm_hook->compression_ratio());
    if (options.comm_hook->name() == "onebit") {
      estimate.hook_payload_bytes += estimate.bucket_bytes;  // residuals
    }
  }
  return estimate;
}

}  // namespace ddpkit::core
