#include "core/reducer.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <limits>
#include <sstream>
#include <utility>

#include <cstring>

#include "autograd/engine.h"
#include "autograd/grad_accumulator.h"
#include "autograd/graph_utils.h"
#include "comm/store.h"
#include "comm/store_keys.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/vec.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::core {

namespace {

/// Thread-chunked copy between contiguous float32 buffers (the bucket
/// copy-in/copy-out path, §4.2's named per-backward copy cost).
void ParallelCopy(float* dst, const float* src, int64_t n) {
  ParallelFor(0, n, kParallelGrain, [&](int64_t b, int64_t e) {
    vec::Copy(dst + b, src + b, e - b);
  });
}

/// Monotonic wall-clock seconds for the copy-cost telemetry (the copies
/// are real work in this process, unlike the modeled virtual time).
double WallSeconds() {
  // ddplint: allow(banned-nondeterminism) copy-cost telemetry measures real
  // memcpy time by design (§4.2); it never feeds simulated results.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

/// Total length of the union of [start, end) intervals clipped to
/// [clip_lo, clip_hi]. Buckets' launch->completion windows can nest and
/// abut (they share one serialized comm queue), so summing them naively
/// would double-count; the union is what "time with communication in
/// flight" means.
double UnionLength(std::vector<std::pair<double, double>> intervals,
                   double clip_lo, double clip_hi) {
  double total = 0.0;
  std::sort(intervals.begin(), intervals.end());
  double cur_lo = 0.0, cur_hi = 0.0;
  bool open = false;
  for (auto [lo, hi] : intervals) {
    lo = std::max(lo, clip_lo);
    hi = std::min(hi, clip_hi);
    if (hi <= lo) continue;
    if (!open) {
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else if (lo <= cur_hi) {
      cur_hi = std::max(cur_hi, hi);
    } else {
      total += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
    }
  }
  if (open) total += cur_hi - cur_lo;
  return total;
}

/// Strict integer parse of one ':'-separated field. Untrusted input (the
/// Store can serve corrupted/truncated values); never throws.
bool ParseField(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

/// Gradient-ready order serialized for the Store rebuild broadcast:
/// "<nparams>:<idx0>:<idx1>:...".
std::string SerializeOrder(const std::vector<size_t>& order) {
  std::ostringstream out;
  out << order.size();
  for (size_t idx : order) out << ':' << idx;
  return out.str();
}

/// Defensive inverse of SerializeOrder: the result must be a permutation
/// of [0, num_params). Returns false on any structural problem.
bool ParseOrder(const std::string& serialized, size_t num_params,
                std::vector<size_t>* order) {
  order->clear();
  std::istringstream in(serialized);
  std::string field;
  bool first = true;
  int64_t declared = -1;
  std::vector<uint8_t> seen(num_params, 0);
  while (std::getline(in, field, ':')) {
    int64_t value = 0;
    if (!ParseField(field, &value)) return false;
    if (first) {
      first = false;
      declared = value;
      continue;
    }
    if (value < 0 || static_cast<size_t>(value) >= num_params) return false;
    if (seen[static_cast<size_t>(value)]) return false;
    seen[static_cast<size_t>(value)] = 1;
    order->push_back(static_cast<size_t>(value));
  }
  return declared == static_cast<int64_t>(num_params) &&
         order->size() == num_params;
}

/// Bounded excerpt of untrusted Store payloads for diagnostics.
std::string Excerpt(const std::string& s) {
  constexpr size_t kMax = 48;
  if (s.size() <= kMax) return s;
  return s.substr(0, kMax) + "...";
}

}  // namespace

Reducer::Reducer(std::vector<Tensor> params,
                 std::shared_ptr<comm::ProcessGroup> process_group,
                 const ReducerOptions& options)
    : params_(std::move(params)),
      options_(options),
      alive_(std::make_shared<bool>(true)),
      pg_(std::move(process_group)) {
  DDPKIT_CHECK(pg_ != nullptr);
  DDPKIT_CHECK(!params_.empty()) << "Reducer needs at least one parameter";

  metas_.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const Tensor& p = params_[i];
    DDPKIT_CHECK(p.defined() && p.requires_grad());
    DDPKIT_CHECK(p.dtype() == DType::kFloat32)
        << "only float32 parameters are supported";
    metas_.push_back(ParamMeta{p.numel(), p.nbytes(), p.device_id()});
    DDPKIT_CHECK(param_index_.emplace(p.id(), i).second)
        << "duplicate parameter handed to Reducer";
  }

  DDPKIT_CHECK(!(options_.gradient_as_bucket_view &&
                 options_.find_unused_parameters))
      << "gradient_as_bucket_view cannot keep globally-unused gradients "
         "intact; disable one of the two options";

  // No concurrent access is possible before the constructor returns, but
  // InitBuckets / AbortSync / ValidateCrossRankLayout carry REQUIRES(mu_)
  // contracts, so take the (uncontended) lock for the setup sequence.
  MutexLock lock(&mu_);
  locally_used_.assign(params_.size(), 0);
  globally_used_.assign(params_.size(), 1);
  used_bitmap_ = Tensor::Zeros({static_cast<int64_t>(params_.size())},
                               DType::kUInt8);

  InitBuckets(AssignBuckets(metas_, options_.bucket_cap_bytes,
                            options_.first_bucket_cap_bytes));
  InstallHooks();

  // Pair up the Nth reducer on every rank: reducers are constructed in
  // program order, so the per-rank instance counter yields matching ids on
  // ranks that are still in sync. The id keys both the layout-validation
  // handshake and the rebuild-order broadcast.
  if (comm::Store* store = pg_->store();
      store != nullptr && pg_->world() > 1) {
    int64_t count = 0;
    // ddplint: allow(blocking-under-lock) constructor-held mu_ is
    // uncontended (no other thread can see this reducer yet) and the
    // retry loop is deadline-bounded, so nothing can wait on the lock.
    Status st = store->AddWithRetry(
        comm::store_keys::ReducerInstanceCounter(pg_->rank()), 1, &count);
    if (st.ok()) {
      store_instance_ = count - 1;
    } else if (options_.validate_bucket_layout) {
      AbortSync(Status(st.code(),
                       "bucket-layout validation could not reach the store: " +
                           st.message()));
    } else {
      DDPKIT_LOG(Warning)
          << "reducer instance-id allocation failed; bucket rebuilds will "
             "stay rank-local: " << st.ToString();
    }
  }
  if (options_.validate_bucket_layout) ValidateCrossRankLayout();
}

Reducer::~Reducer() { *alive_ = false; }

void Reducer::InstallHooks() {
  // One post-hook per gradient accumulator (Algorithm 1 lines 5-7). The
  // accumulator outlives this Reducer, so hooks are guarded by an alive
  // token.
  for (size_t i = 0; i < params_.size(); ++i) {
    auto accumulator = autograd::GetGradAccumulator(params_[i]);
    std::weak_ptr<bool> alive = alive_;
    Reducer* self = this;
    accumulator->AddPostHook([alive, self, i](const Tensor&) {
      if (auto token = alive.lock(); token && *token) {
        self->AutogradHook(i);
      }
    });
  }
}

void Reducer::InitBuckets(const BucketAssignment& assignment) {
  assignment_ = assignment;
  buckets_.clear();
  buckets_.resize(assignment_.buckets.size());
  param_to_bucket_.assign(params_.size(), 0);
  param_slots_.assign(params_.size(), Slot{});

  for (size_t b = 0; b < assignment_.buckets.size(); ++b) {
    Bucket& bucket = buckets_[b];
    int64_t total = 0;
    for (size_t idx : assignment_.buckets[b]) {
      bucket.slots.push_back(Slot{idx, total, metas_[idx].numel});
      param_to_bucket_[idx] = b;
      param_slots_[idx] = bucket.slots.back();
      total += metas_[idx].numel;
    }
    const int device = metas_[assignment_.buckets[b].front()].device_id;
    // Buckets live on the same device as their parameters (§4.2).
    bucket.buffer = Tensor::Zeros({total}, DType::kFloat32, device);
    bucket.bytes = BucketBytes(metas_, assignment_.buckets[b]);
    bucket.pending = bucket.slots.size();
  }
  if (options_.gradient_as_bucket_view) InstallGradViews();
}

void Reducer::InstallGradViews() {
  for (Bucket& bucket : buckets_) {
    for (const Slot& slot : bucket.slots) {
      Tensor p = params_[slot.param_index];
      Tensor view = bucket.buffer.Narrow(0, slot.offset, slot.length)
                        .Reshape(p.shape());
      Tensor existing = p.grad();
      if (existing.defined()) {
        // Preserve accumulated values across (re)installation.
        view.CopyFrom(existing);
      } else {
        view.Zero();
      }
      p.set_grad(view);
    }
  }
}

void Reducer::ResetIterationState() {
  param_ready_.assign(params_.size(), 0);
  for (Bucket& b : buckets_) {
    // Replenish the pending gradient count for every bucket (§4.2).
    b.pending = b.slots.size();
    b.ready = false;
    b.launched = false;
    b.work.reset();
    b.hook_launched = CommHook::Launched{};
  }
  next_bucket_ = 0;
  ready_order_.clear();
  finalized_ = false;
}

void Reducer::PrepareForBackward(const std::vector<Tensor>& outputs,
                                 bool will_sync) {
  MutexLock lock(&mu_);
  DDPKIT_CHECK(!armed_ || finalized_ || !expect_hooks_)
      << "previous synced backward never finalized";
  ResetIterationState();
  // A replica whose communication failed (desync or collective fault)
  // degrades to local-only accumulation: issuing further collectives after
  // a desync would deadlock or corrupt the reduction.
  expect_hooks_ = will_sync && sync_status_.ok();
  armed_ = true;
  will_sync = expect_hooks_;

  // Open this iteration's telemetry frame. Only synced backwards produce a
  // record: no_sync iterations issue no collectives, so there is nothing
  // to break down.
  frame_ = DDPTelemetry{};
  frame_.iteration = iteration_++;
  frame_.rank = pg_->rank();
  frame_.forward_seconds = pending_forward_seconds_;
  pending_forward_seconds_ = 0.0;
  backward_start_clock_ = pg_->clock()->Now();
  frame_active_ = will_sync;

  if (!will_sync) return;

  if (options_.find_unused_parameters) {
    // Traverse the autograd graph from the outputs and proactively mark
    // parameters outside this iteration's sub-graph (Algorithm 1 line 10),
    // so their buckets cannot wait forever (Fig 3(b) hazard).
    auto reachable = autograd::FindReachableParams(outputs);
    for (size_t i = 0; i < params_.size(); ++i) {
      if (reachable.count(params_[i].id()) == 0) {
        MarkParamReady(i, /*via_hook=*/false);
      }
    }
  }
}

void Reducer::AutogradHook(size_t param_index) {
  MutexLock lock(&mu_);
  if (!armed_) return;  // backward outside a DDP forward; nothing to do
  locally_used_[param_index] = 1;
  if (!expect_hooks_) return;  // no_sync: gradients accumulate locally only

  if (options_.compute_model != nullptr) {
    // Charge this parameter's backward compute to the virtual clock before
    // the bucket logic records arrival times.
    const double t0 = pg_->clock()->Now();
    pg_->clock()->Advance(options_.compute_model->options().per_op_overhead +
                          static_cast<double>(metas_[param_index].numel) *
                              options_.compute_model->options()
                                  .backward_ns_per_element *
                              1e-9);
    if (options_.trace != nullptr) {
      options_.trace->AddSpan("grad " + std::to_string(param_index),
                              "backward", pg_->rank(), t0,
                              pg_->clock()->Now());
    }
    if (frame_active_ && options_.telemetry != nullptr) {
      frame_.param_compute_seconds.push_back(pg_->clock()->Now() - t0);
    }
  }

  DDPKIT_CHECK(!param_ready_[param_index])
      << "gradient for parameter " << param_index
      << " marked ready twice in one backward (is the same parameter "
         "shared, or was backward called twice without a DDP forward?)";
  MarkParamReady(param_index, /*via_hook=*/true);
}

void Reducer::MarkParamReady(size_t param_index, bool via_hook) {
  param_ready_[param_index] = 1;
  ready_order_.push_back(param_index);

  const size_t bucket_id = param_to_bucket_[param_index];
  Bucket& bucket = buckets_[bucket_id];
  // Copy the gradient into its bucket view (Algorithm 1 lines 15-16). The
  // slot was precomputed at bucket-build time, so this lookup is O(1).
  const Slot& slot = param_slots_[param_index];
  DDPKIT_CHECK_EQ(slot.param_index, param_index);
  const bool time_copies = frame_active_ && options_.telemetry != nullptr;
  const double copy_start = time_copies ? WallSeconds() : 0.0;
  Tensor view = bucket.buffer.Narrow(0, slot.offset, slot.length);
  Tensor grad = params_[param_index].grad();
  if (grad.defined() && grad.data<float>() == view.data<float>()) {
    // gradient_as_bucket_view: the gradient already lives in the bucket.
  } else if (grad.defined()) {
    if (grad.is_contiguous()) {
      ParallelCopy(view.data<float>(), grad.data<float>(), slot.length);
    } else {
      view.CopyFrom(grad.Flatten());
    }
  } else {
    // Locally-unused parameter with no accumulated gradient: contribute
    // zeros so peers that did use it still receive a correct average.
    DDPKIT_CHECK(!via_hook);
    view.Zero();
  }
  if (time_copies) frame_.copy_in_seconds += WallSeconds() - copy_start;

  DDPKIT_CHECK_GT(bucket.pending, 0u);
  if (--bucket.pending == 0) {
    bucket.ready = true;
    if (expect_hooks_ && options_.trace != nullptr) {
      // Flow-arrow origin: the instant the bucket's last gradient landed.
      options_.trace->AddFlowPoint(
          FlowId(bucket_id), TraceRecorder::FlowPhase::kStart,
          "bucket " + std::to_string(bucket_id) + " grads ready", "flow",
          pg_->rank(), pg_->clock()->Now());
    }
    MaybeLaunchBuckets();
  }
}

void Reducer::MaybeLaunchBuckets() {
  // In-order launch rule (§3.2.3): bucket i+1 never launches before bucket
  // i, even if it became ready first, so AllReduce contents line up across
  // ranks.
  while (next_bucket_ < buckets_.size() && buckets_[next_bucket_].ready) {
    LaunchBucket(next_bucket_);
    ++next_bucket_;
  }
  if (next_bucket_ == buckets_.size()) {
    FinalizeBackward();
  }
}

void Reducer::LaunchBucket(size_t bucket_id) {
  Bucket& bucket = buckets_[bucket_id];
  DDPKIT_CHECK(!bucket.launched);
  bucket.launched = true;
  bucket.launch_clock = pg_->clock()->Now();
  if (options_.trace != nullptr) {
    options_.trace->AddFlowPoint(
        FlowId(bucket_id), TraceRecorder::FlowPhase::kStep,
        "bucket " + std::to_string(bucket_id) + " launch", "flow",
        pg_->rank(), bucket.launch_clock);
  }
  if (frame_active_ && options_.telemetry != nullptr) {
    frame_.buckets.push_back(BucketTelemetry{bucket_id, bucket.bytes,
                                             bucket.launch_clock, 0.0, 0.0});
  }
  uint64_t bytes_raw = bucket.bytes;
  uint64_t bytes_compressed = bucket.bytes;
  if (options_.comm_hook != nullptr) {
    bucket.hook_launched =
        options_.comm_hook->Launch(*pg_, bucket.buffer, bucket_id);
    DDPKIT_CHECK(!bucket.hook_launched.works.empty())
        << "comm hook " << options_.comm_hook->name()
        << " returned no collective handles";
    bytes_raw = bucket.hook_launched.bytes_raw;
    bytes_compressed = bucket.hook_launched.bytes_compressed;
  } else {
    bucket.work = pg_->AllReduce(bucket.buffer, comm::ReduceOp::kSum);
  }
  ++stats_.allreduces_launched;
  stats_.bytes_reduced += bucket.bytes;
  stats_.bytes_wire_raw += bytes_raw;
  stats_.bytes_wire_compressed += bytes_compressed;
  if (options_.metrics != nullptr) {
    options_.metrics->counter("ddp.comm.bytes_raw").Increment(bytes_raw);
    options_.metrics->counter("ddp.comm.bytes_compressed")
        .Increment(bytes_compressed);
  }
  if (options_.trace != nullptr) {
    options_.trace->AddInstant(
        "bucket " + std::to_string(bucket_id) + " wire " +
            std::to_string(bytes_compressed) + "/" +
            std::to_string(bytes_raw) + " B",
        "comm", pg_->rank(), bucket.launch_clock);
  }
}

void Reducer::FinalizeBackward() {
  // Virtual time at which backward compute ended: every gradient hook has
  // fired and the last bucket just became launch-eligible. Everything the
  // clock advances past this point is exposed communication (the Fig 6
  // "allreduce wait" slice).
  const double backward_end = pg_->clock()->Now();

  // The additional bitmap AllReduce for globally-unused parameters
  // (§3.2.3). It cannot be coalesced into the gradient buckets because of
  // the dtype mismatch; it launches after all buckets, in the same order on
  // every rank.
  comm::WorkHandle bitmap_work;
  if (options_.find_unused_parameters) {
    uint8_t* bits = used_bitmap_.data<uint8_t>();
    for (size_t i = 0; i < params_.size(); ++i) bits[i] = locally_used_[i];
    bitmap_work = pg_->AllReduce(used_bitmap_, comm::ReduceOp::kBor);
    ++stats_.bitmap_allreduces;
  }

  const bool telem = options_.telemetry != nullptr;

  // Block waiting for all AllReduce ops (Algorithm 1 line 21), advancing
  // the virtual clock to each completion. A fault — a bucket that timed
  // out, a peer that crashed mid-collective — aborts the sync with a
  // diagnostic naming the bucket instead of deadlocking the backward.
  const bool hooked = options_.comm_hook != nullptr;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    const double wait_start = pg_->clock()->Now();
    // A hook may have issued several collectives; wait them in issue order
    // and propagate the FIRST typed error (later handles are drained
    // non-throwingly by AbortSync). The diagnostic names the hook: a
    // timeout inside a compression collective is a different bug hunt than
    // one in the stock bucket all-reduce.
    Status wait_status = Status::OK();
    double completion = 0.0;
    if (hooked) {
      for (const comm::WorkHandle& work : bucket.hook_launched.works) {
        DDPKIT_CHECK(work != nullptr);
        wait_status =
            work->Wait(pg_->clock(), options_.collective_timeout_seconds);
        if (!wait_status.ok()) break;
        completion = std::max(completion, work->completion_time());
      }
    } else {
      DDPKIT_CHECK(bucket.work != nullptr);
      wait_status =
          bucket.work->Wait(pg_->clock(), options_.collective_timeout_seconds);
      if (wait_status.ok()) completion = bucket.work->completion_time();
    }
    const std::string where =
        "gradient bucket " + std::to_string(b) + " (rank " +
        std::to_string(pg_->rank()) +
        (hooked ? ", comm hook " + options_.comm_hook->name() : "") + ")";
    if (!wait_status.ok()) {
      // Skip finalize: a failed collective left the gathered buffers
      // incomplete, and decompressing them would overwrite the bucket with
      // garbage.
      AbortSync(Status(wait_status.code(),
                       where + ": " + wait_status.message()));
      return;
    }
    if (bucket.hook_launched.finalize) {
      const Status finalize_status = bucket.hook_launched.finalize();
      if (!finalize_status.ok()) {
        AbortSync(Status(finalize_status.code(),
                         where + " finalize: " + finalize_status.message()));
        return;
      }
    }
    if (telem && b < frame_.buckets.size()) {
      frame_.buckets[b].completion_seconds = completion;
      frame_.buckets[b].wait_seconds =
          std::max(0.0, pg_->clock()->Now() - wait_start);
    }
    if (options_.trace != nullptr) {
      options_.trace->AddSpan("allreduce bucket " + std::to_string(b),
                              "comm", pg_->rank(), bucket.launch_clock,
                              completion);
      options_.trace->AddFlowPoint(
          FlowId(b), TraceRecorder::FlowPhase::kEnd,
          "bucket " + std::to_string(b) + " complete", "flow", pg_->rank(),
          completion);
    }
  }
  if (bitmap_work != nullptr) {
    const Status wait_status =
        bitmap_work->Wait(pg_->clock(), options_.collective_timeout_seconds);
    if (!wait_status.ok()) {
      AbortSync(Status(wait_status.code(),
                       "unused-parameter bitmap all-reduce (rank " +
                           std::to_string(pg_->rank()) +
                           "): " + wait_status.message()));
      return;
    }
    const uint8_t* bits = used_bitmap_.data<uint8_t>();
    for (size_t i = 0; i < params_.size(); ++i) {
      globally_used_[i] = bits[i] ? 1 : 0;
    }
  } else {
    std::fill(globally_used_.begin(), globally_used_.end(), 1);
  }

  // Close out the Fig 6 breakdown now that every wait has resolved.
  const double waits_end = pg_->clock()->Now();
  frame_.backward_compute_seconds = backward_end - backward_start_clock_;
  frame_.allreduce_wait_seconds = waits_end - backward_end;
  {
    std::vector<std::pair<double, double>> windows;
    windows.reserve(frame_.buckets.size());
    for (const BucketTelemetry& bt : frame_.buckets) {
      windows.emplace_back(bt.launch_seconds, bt.completion_seconds);
    }
    const double inf = std::numeric_limits<double>::infinity();
    frame_.comm_seconds = UnionLength(windows, -inf, inf);
    // Communication hidden behind backward compute: in-flight windows
    // clipped to the compute span. By construction overlap_seconds <=
    // backward_compute_seconds.
    frame_.overlap_seconds =
        UnionLength(std::move(windows), backward_start_clock_, backward_end);
  }

  // Average and write back (the finalizing step Algorithm 1 omits).
  const double inv_world = 1.0 / static_cast<double>(pg_->world());
  // Gradient allocation and view bookkeeping stay on this thread; the
  // per-slot data movement is collected into jobs and fanned out across the
  // pool (slots write disjoint gradient buffers).
  struct CopyJob {
    float* dst;
    const float* src;
    int64_t numel;
  };
  const double copy_out_start = telem ? WallSeconds() : 0.0;
  std::vector<CopyJob> copy_jobs;
  for (Bucket& bucket : buckets_) {
    kernels::ScaleInPlace(&bucket.buffer, inv_world);
    if (options_.gradient_as_bucket_view) {
      // Gradients alias the bucket; the scale above already averaged them
      // in place and there is nothing to copy back.
      continue;
    }
    for (const Slot& slot : bucket.slots) {
      const size_t i = slot.param_index;
      if (options_.find_unused_parameters && !globally_used_[i]) {
        // Globally-unused gradients stay intact (§3.2.3), so optimizers
        // that inspect gradient absence behave exactly as in local
        // training.
        continue;
      }
      Tensor p = params_[i];
      Tensor grad = p.grad();
      if (!grad.defined()) {
        Tensor fresh = Tensor::Zeros(p.shape(), p.dtype(), p.device_id());
        p.set_grad(fresh);
        grad = p.grad();
      }
      DDPKIT_CHECK(grad.is_contiguous());
      copy_jobs.push_back(CopyJob{
          grad.data<float>(),
          bucket.buffer.data<float>() + slot.offset,
          slot.length,
      });
    }
  }
  ParallelFor(0, static_cast<int64_t>(copy_jobs.size()), 1,
              [&](int64_t jb, int64_t je) {
    for (int64_t j = jb; j < je; ++j) {
      const CopyJob& job = copy_jobs[static_cast<size_t>(j)];
      vec::Copy(job.dst, job.src, job.numel);
    }
  });
  if (telem) frame_.copy_out_seconds = WallSeconds() - copy_out_start;

  std::fill(locally_used_.begin(), locally_used_.end(), 0);
  last_ready_order_ = ready_order_;
  armed_ = false;
  expect_hooks_ = false;
  finalized_ = true;
  ++stats_.finalized_backwards;

  if (options_.metrics != nullptr) {
    MetricsRegistry& m = *options_.metrics;
    m.counter("reducer.finalized_backwards").Increment();
    m.counter("reducer.bytes_reduced").Increment(stats_.bytes_reduced);
    m.histogram("ddp.forward_seconds").Record(frame_.forward_seconds);
    m.histogram("ddp.backward_compute_seconds")
        .Record(frame_.backward_compute_seconds);
    m.histogram("ddp.allreduce_wait_seconds")
        .Record(frame_.allreduce_wait_seconds);
    m.histogram("ddp.overlap_seconds").Record(frame_.overlap_seconds);
    for (const BucketTelemetry& bt : frame_.buckets) {
      m.histogram("reducer.bucket_latency_seconds")
          .Record(bt.completion_seconds - bt.launch_seconds);
    }
  }
  if (options_.trace != nullptr) {
    // Per-iteration frame marker: lets trace viewers (and trace_summary)
    // slice the timeline at synced-iteration boundaries.
    options_.trace->AddInstant("iteration " + std::to_string(frame_.iteration),
                               "frame", pg_->rank(), waits_end);
  }
  EmitTelemetryFrame(/*synced=*/true);
}

uint64_t Reducer::FlowId(size_t bucket_id) const {
  // Unique across (rank, iteration, bucket): ranks share one trace file.
  return ((static_cast<uint64_t>(pg_->rank()) + 1) << 48) ^
         (iteration_ << 16) ^ static_cast<uint64_t>(bucket_id);
}

void Reducer::EmitTelemetryFrame(bool synced) {
  if (!frame_active_) return;
  frame_active_ = false;
  if (options_.telemetry == nullptr) return;
  frame_.synced = synced;
  frame_.rebuilds = stats_.rebuilds;
  frame_.sync_failures = stats_.sync_failures;
  options_.telemetry->Append(frame_);
}

void Reducer::AbortSync(Status status) {
  DDPKIT_CHECK(!status.ok());
  if (sync_status_.ok()) {
    // First error wins; later failures are downstream of the original.
    sync_status_ = std::move(status);
    DDPKIT_LOG(Error) << "gradient synchronization disabled: "
                      << sync_status_.ToString();
  }
  ++stats_.sync_failures;
  // Drain in-flight collectives non-throwingly: a handle whose work did
  // complete still advances the clock to its completion (peers saw this
  // rank participate), and every handle is released so an abandoned Work
  // can never be waited on again by a later iteration.
  for (Bucket& bucket : buckets_) DrainBucketWorks(bucket);
  // The aborted iteration never reached the bitmap AllReduce; leaving
  // locally_used_ set would leak this iteration's usage into the next
  // successful sync's globally-used mask.
  std::fill(locally_used_.begin(), locally_used_.end(), 0);
  // Unwind the iteration so the replica survives to read the diagnostic:
  // no hooks are expected, nothing is finalized, and the next
  // PrepareForBackward degrades to local-only accumulation.
  armed_ = false;
  expect_hooks_ = false;
  finalized_ = false;
  EmitTelemetryFrame(/*synced=*/false);
}

void Reducer::DrainBucketWorks(Bucket& bucket) {
  const auto drain = [this](const comm::WorkHandle& work) {
    if (work == nullptr) return;
    if (work->Poll() && work->IsCompleted()) {
      pg_->clock()->AdvanceTo(work->completion_time());
    }
  };
  drain(bucket.work);
  for (const comm::WorkHandle& work : bucket.hook_launched.works) drain(work);
  bucket.work.reset();
  bucket.hook_launched = CommHook::Launched{};
}

namespace {

/// Bucket-layout signature exchanged through the Store:
/// "<nbuckets>:<numel0>:<numel1>:...". Two ranks whose reducers would issue
/// different collective sequences necessarily differ in this string.
std::string LayoutSignature(const std::vector<int64_t>& bucket_numels) {
  std::ostringstream sig;
  sig << bucket_numels.size();
  for (int64_t n : bucket_numels) sig << ':' << n;
  return sig.str();
}

/// Defensive inverse of LayoutSignature. The Store serves untrusted bytes
/// (a corrupted peer, a stale key, an operator poking at the rendezvous
/// service); a malformed signature must surface as a diagnostic, not as a
/// std::stoll throw. Returns false on any structural problem.
bool ParseSignatureNumels(const std::string& sig,
                          std::vector<int64_t>* numels) {
  numels->clear();
  std::istringstream in(sig);
  std::string field;
  bool first = true;
  int64_t declared = -1;
  while (std::getline(in, field, ':')) {
    int64_t value = 0;
    if (!ParseField(field, &value)) return false;
    if (first) {
      first = false;  // leading bucket count
      declared = value;
      continue;
    }
    if (value < 0) return false;
    numels->push_back(value);
  }
  return !first && declared == static_cast<int64_t>(numels->size());
}

}  // namespace

void Reducer::ValidateCrossRankLayout() {
  comm::Store* store = pg_->store();
  if (store == nullptr || pg_->world() <= 1) return;
  if (store_instance_ < 0) return;  // id allocation failed; already reported
  if (!sync_status_.ok()) return;  // not sync_disabled(): mu_ already held

  const int rank = pg_->rank();
  const int world = pg_->world();

  // Epoch-keyed namespace: the handshake re-runs after every coordinated
  // bucket rebuild, and ranks in lockstep consume matching epochs. (The
  // instance id pairing the Nth reducer across ranks was allocated at
  // construction.)
  const int64_t epoch = layout_epoch_++;

  std::vector<int64_t> bucket_numels;
  bucket_numels.reserve(buckets_.size());
  for (const Bucket& bucket : buckets_) {
    bucket_numels.push_back(bucket.buffer.numel());
  }
  const std::string own_sig = LayoutSignature(bucket_numels);
  Status st = store->SetWithRetry(
      comm::store_keys::ReducerLayoutRankKey(store_instance_, epoch, rank),
      own_sig);
  if (!st.ok()) {
    AbortSync(Status(st.code(),
                     "bucket-layout validation could not publish rank " +
                         std::to_string(rank) +
                         "'s signature: " + st.message()));
    return;
  }

  // Compare every rank against rank 0's canonical layout. The bounded Get
  // turns a peer that never constructed its reducer into a typed timeout
  // instead of a rendezvous hang.
  std::vector<std::string> sigs(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    auto got = store->GetWithRetry(
        comm::store_keys::ReducerLayoutRankKey(store_instance_, epoch, r),
        options_.validation_timeout_seconds);
    if (!got.ok()) {
      AbortSync(Status(got.status().code(),
                       "bucket-layout validation: rank " + std::to_string(r) +
                           " never published a signature for reducer instance " +
                           std::to_string(store_instance_) + " (" +
                           got.status().message() + ")"));
      return;
    }
    sigs[static_cast<size_t>(r)] = std::move(got).value();
  }

  // Garbage-collect previous epochs' signature keys. Completing the read
  // loop above proves every rank published epoch e (= layout_epoch_ - 1),
  // and a rank publishes e only after finishing its reads of e-1 — so no
  // rank can still need any epoch below e. Without this sweep a
  // rebuild-heavy job leaks world keys per epoch into the Store.
  for (; layout_swept_ + 1 < layout_epoch_; ++layout_swept_) {
    store->DeletePrefix(comm::store_keys::ReducerLayoutEpochPrefix(
        store_instance_, layout_swept_));
  }

  for (int r = 1; r < world; ++r) {
    if (sigs[static_cast<size_t>(r)] == sigs[0]) continue;
    // Lowest disagreeing rank named; pin down the first divergent bucket.
    // Both signatures are untrusted Store bytes — parse defensively and
    // fold a malformed one into the diagnostic instead of crashing on it.
    std::vector<int64_t> base;
    std::vector<int64_t> theirs;
    const bool base_ok = ParseSignatureNumels(sigs[0], &base);
    const bool theirs_ok =
        ParseSignatureNumels(sigs[static_cast<size_t>(r)], &theirs);
    std::ostringstream msg;
    msg << "bucket layout desynchronized across ranks";
    if (!base_ok || !theirs_ok) {
      const int bad = base_ok ? r : 0;
      const std::string& raw = sigs[static_cast<size_t>(base_ok ? r : 0)];
      msg << ": rank " << bad << " published a malformed signature \""
          << Excerpt(raw) << "\"";
    } else {
      msg << ": rank " << r << " has " << theirs.size()
          << " bucket(s) vs rank 0's " << base.size();
      const size_t common = std::min(base.size(), theirs.size());
      for (size_t b = 0; b < common; ++b) {
        if (base[b] != theirs[b]) {
          msg << "; first mismatch at bucket " << b << " (rank " << r << ": "
              << theirs[b] << " elements, rank 0: " << base[b]
              << " elements)";
          break;
        }
      }
    }
    msg << " — did ranks diverge in bucket_cap_bytes or rebuild order?";
    AbortSync(Status::FailedPrecondition(msg.str()));
    return;
  }
}

bool Reducer::RebuildBucketsFromTrace() {
  MutexLock lock(&mu_);
  DDPKIT_CHECK(!armed_ || finalized_)
      << "RebuildBucketsFromTrace must be called between iterations";
  if (!sync_status_.ok()) return false;

  comm::Store* store = pg_->store();
  const bool coordinated =
      store != nullptr && pg_->world() > 1 && store_instance_ >= 0;

  // The order to rebuild from. Rank-local only in single-process or
  // store-less setups; otherwise rank 0's observed order is broadcast and
  // every rank rebuilds from that ONE trace. Rebuilding from each rank's
  // local order looks symmetric but is the desync bug this guards against:
  // hook orders diverge under jitter or divergent control flow, the
  // resulting layouts differ, and every later in-order AllReduce silently
  // mixes unrelated parameters.
  std::vector<size_t> order;
  if (!coordinated) {
    if (last_ready_order_.size() != params_.size()) return false;
    order = last_ready_order_;
  } else {
    const std::string key = comm::store_keys::ReducerRebuildOrderKey(
        store_instance_, rebuild_epoch_++);
    if (pg_->rank() == 0) {
      // "skip" keeps the epoch consumed on every rank even when rank 0 has
      // no complete trace yet (e.g. rebuild requested before any synced
      // backward); SerializeOrder output always starts with a digit.
      const bool has_trace = last_ready_order_.size() == params_.size();
      // ddplint: allow(blocking-under-lock) mu_ is the OUTERMOST level in
      // the DESIGN.md §8 hierarchy — no other thread blocks on mu_ while
      // holding anything the Store RPC needs — and the retry is
      // deadline-bounded.
      Status st = store->SetWithRetry(
          key, has_trace ? SerializeOrder(last_ready_order_) : "skip");
      if (!st.ok()) {
        AbortSync(Status(st.code(),
                         "bucket rebuild could not broadcast rank 0's ready "
                         "order: " + st.message()));
        return false;
      }
      if (!has_trace) return false;
      order = last_ready_order_;
    } else {
      // Bounded wait: a rank rebuilding alone (mismatched call counts
      // across ranks) surfaces here as a typed timeout instead of a hang
      // or a corrupted reduction.
      // ddplint: allow(blocking-under-lock) mu_ is the outermost §8 level
      // (see the SetWithRetry waiver above) and the wait is bounded by
      // validation_timeout_seconds.
      auto got = store->GetWithRetry(key, options_.validation_timeout_seconds);
      if (!got.ok()) {
        AbortSync(Status(got.status().code(),
                         "bucket rebuild: rank 0 never broadcast a ready "
                         "order for epoch " + std::to_string(rebuild_epoch_ - 1) +
                         " — did every rank call RebuildBucketsFromTrace? (" +
                         got.status().message() + ")"));
        return false;
      }
      const std::string payload = std::move(got).value();
      if (payload == "skip") return false;
      if (!ParseOrder(payload, params_.size(), &order)) {
        AbortSync(Status::FailedPrecondition(
            "bucket rebuild: rank 0 broadcast a malformed ready order \"" +
            Excerpt(payload) + "\""));
        return false;
      }
    }
  }

  BucketAssignment rebuilt = AssignBucketsFromOrder(
      metas_, order, options_.bucket_cap_bytes,
      options_.first_bucket_cap_bytes);
  const bool changed = rebuilt.buckets != assignment_.buckets;
  if (changed) {
    InitBuckets(rebuilt);
    ++stats_.rebuilds;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("reducer.rebuilds").Increment();
    }
  }
  // Re-validate after every coordinated rebuild — even a no-op one keeps
  // the layout epochs aligned, and a rank whose layout diverged for any
  // other reason is caught here rather than at the next AllReduce.
  if (coordinated && options_.validate_bucket_layout) {
    ValidateCrossRankLayout();
    if (sync_status_.ok()) {
      // Garbage-collect the rebuild-order keys through the epoch just
      // consumed: peers read the order key before entering the validation
      // handshake, and this rank completing that handshake proves every
      // peer got past its read. ("skip" epochs that returned early above
      // are swept by the next rebuild that reaches this point.)
      for (; rebuild_swept_ < rebuild_epoch_; ++rebuild_swept_) {
        store->DeletePrefix(comm::store_keys::ReducerRebuildEpochPrefix(
            store_instance_, rebuild_swept_));
      }
    }
  }
  return changed;
}

Status Reducer::ResetAfterRecovery(
    std::shared_ptr<comm::ProcessGroup> new_group) {
  MutexLock lock(&mu_);
  if (new_group == nullptr) {
    return Status::InvalidArgument(
        "ResetAfterRecovery needs the rendezvous-formed replacement group");
  }

  // Drain works left over from the retired generation non-throwingly. A
  // handle that did complete before the abort still advances the clock to
  // its completion; everything else was failed (kInvalidGeneration) by
  // AbortGroup and is simply released.
  for (Bucket& bucket : buckets_) DrainBucketWorks(bucket);

  // Error-feedback residuals and warm-start factors die with the
  // generation: the recovered replica must match a fresh checkpoint-resumed
  // run bit for bit, and a fresh run starts with empty hook state.
  if (options_.comm_hook != nullptr) options_.comm_hook->ResetState();

  pg_ = std::move(new_group);
  sync_status_ = Status::OK();
  armed_ = false;
  expect_hooks_ = false;
  finalized_ = false;
  frame_active_ = false;

  // Usage state restarts clean: the recovery broadcast just overwrote every
  // parameter (and optimizer slot), so nothing accumulated before the fault
  // may leak into the first post-recovery sync.
  std::fill(locally_used_.begin(), locally_used_.end(), 0);
  std::fill(globally_used_.begin(), globally_used_.end(), 1);
  used_bitmap_.Zero();
  last_ready_order_.clear();
  ready_order_.clear();

  // Fresh Store-coordination identity on the new generation: epochs restart
  // at zero and a new instance id is allocated under the rank's NEW id.
  // Every survivor constructed the same reducers pre-fault, so the per-rank
  // instance counters agree across old rank positions and the re-allocation
  // yields matching ids on every survivor.
  layout_epoch_ = 0;
  rebuild_epoch_ = 0;
  layout_swept_ = 0;
  rebuild_swept_ = 0;
  store_instance_ = -1;
  if (comm::Store* store = pg_->store();
      store != nullptr && pg_->world() > 1) {
    int64_t count = 0;
    // ddplint: allow(blocking-under-lock) recovery runs with the backward
    // quiesced: nothing else can contend mu_ (DESIGN.md §8 outermost
    // level), and the retry loop is deadline-bounded.
    Status st = store->AddWithRetry(
        comm::store_keys::ReducerInstanceCounter(pg_->rank()), 1, &count);
    if (st.ok()) {
      store_instance_ = count - 1;
    } else if (options_.validate_bucket_layout) {
      AbortSync(Status(st.code(),
                       "post-recovery instance-id allocation could not reach "
                       "the store: " + st.message()));
      return sync_status_;
    }
  }

  // Rebuild from the DEFAULT assignment — NOT the last trace-driven one.
  // The reference a recovered run must stay bit-exact with is a fresh
  // world' job started from the same checkpoint, and that job's freshly
  // constructed reducer uses the default layout; ring all-reduce chunking
  // (hence float summation order) follows the bucket partition.
  InitBuckets(AssignBuckets(metas_, options_.bucket_cap_bytes,
                            options_.first_bucket_cap_bytes));
  ResetIterationState();

  if (options_.validate_bucket_layout) ValidateCrossRankLayout();
  if (options_.metrics != nullptr) {
    options_.metrics->counter("reducer.recoveries").Increment();
  }
  return sync_status_;
}

}  // namespace ddpkit::core
