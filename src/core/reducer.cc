#include "core/reducer.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include <cstring>

#include "autograd/engine.h"
#include "autograd/grad_accumulator.h"
#include "autograd/graph_utils.h"
#include "comm/store.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::core {

namespace {

/// Thread-chunked copy between contiguous float32 buffers (the bucket
/// copy-in/copy-out path, §4.2's named per-backward copy cost).
void ParallelCopy(float* dst, const float* src, int64_t n) {
  ParallelFor(0, n, kParallelGrain, [&](int64_t b, int64_t e) {
    std::memcpy(dst + b, src + b, static_cast<size_t>(e - b) * sizeof(float));
  });
}

}  // namespace

Reducer::Reducer(std::vector<Tensor> params,
                 std::shared_ptr<comm::ProcessGroup> process_group,
                 const ReducerOptions& options)
    : params_(std::move(params)),
      pg_(std::move(process_group)),
      options_(options),
      alive_(std::make_shared<bool>(true)) {
  DDPKIT_CHECK(pg_ != nullptr);
  DDPKIT_CHECK(!params_.empty()) << "Reducer needs at least one parameter";

  metas_.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const Tensor& p = params_[i];
    DDPKIT_CHECK(p.defined() && p.requires_grad());
    DDPKIT_CHECK(p.dtype() == DType::kFloat32)
        << "only float32 parameters are supported";
    metas_.push_back(ParamMeta{p.numel(), p.nbytes(), p.device_id()});
    DDPKIT_CHECK(param_index_.emplace(p.id(), i).second)
        << "duplicate parameter handed to Reducer";
  }

  DDPKIT_CHECK(!(options_.gradient_as_bucket_view &&
                 options_.find_unused_parameters))
      << "gradient_as_bucket_view cannot keep globally-unused gradients "
         "intact; disable one of the two options";

  locally_used_.assign(params_.size(), 0);
  globally_used_.assign(params_.size(), 1);
  used_bitmap_ = Tensor::Zeros({static_cast<int64_t>(params_.size())},
                               DType::kUInt8);

  InitBuckets(AssignBuckets(metas_, options_.bucket_cap_bytes,
                            options_.first_bucket_cap_bytes));
  InstallHooks();
  if (options_.validate_bucket_layout) ValidateCrossRankLayout();
}

Reducer::~Reducer() { *alive_ = false; }

void Reducer::InstallHooks() {
  // One post-hook per gradient accumulator (Algorithm 1 lines 5-7). The
  // accumulator outlives this Reducer, so hooks are guarded by an alive
  // token.
  for (size_t i = 0; i < params_.size(); ++i) {
    auto accumulator = autograd::GetGradAccumulator(params_[i]);
    std::weak_ptr<bool> alive = alive_;
    Reducer* self = this;
    accumulator->AddPostHook([alive, self, i](const Tensor&) {
      if (auto token = alive.lock(); token && *token) {
        self->AutogradHook(i);
      }
    });
  }
}

void Reducer::InitBuckets(const BucketAssignment& assignment) {
  assignment_ = assignment;
  buckets_.clear();
  buckets_.resize(assignment_.buckets.size());
  param_to_bucket_.assign(params_.size(), 0);
  param_slots_.assign(params_.size(), Slot{});

  for (size_t b = 0; b < assignment_.buckets.size(); ++b) {
    Bucket& bucket = buckets_[b];
    int64_t total = 0;
    for (size_t idx : assignment_.buckets[b]) {
      bucket.slots.push_back(Slot{idx, total, metas_[idx].numel});
      param_to_bucket_[idx] = b;
      param_slots_[idx] = bucket.slots.back();
      total += metas_[idx].numel;
    }
    const int device = metas_[assignment_.buckets[b].front()].device_id;
    // Buckets live on the same device as their parameters (§4.2).
    bucket.buffer = Tensor::Zeros({total}, DType::kFloat32, device);
    bucket.bytes = BucketBytes(metas_, assignment_.buckets[b]);
    bucket.pending = bucket.slots.size();
  }
  if (options_.gradient_as_bucket_view) InstallGradViews();
}

void Reducer::InstallGradViews() {
  for (Bucket& bucket : buckets_) {
    for (const Slot& slot : bucket.slots) {
      Tensor p = params_[slot.param_index];
      Tensor view = bucket.buffer.Narrow(0, slot.offset, slot.length)
                        .Reshape(p.shape());
      Tensor existing = p.grad();
      if (existing.defined()) {
        // Preserve accumulated values across (re)installation.
        view.CopyFrom(existing);
      } else {
        view.Zero();
      }
      p.set_grad(view);
    }
  }
}

void Reducer::ResetIterationState() {
  param_ready_.assign(params_.size(), 0);
  for (Bucket& b : buckets_) {
    // Replenish the pending gradient count for every bucket (§4.2).
    b.pending = b.slots.size();
    b.ready = false;
    b.launched = false;
    b.work.reset();
    b.hook_launched = CommHook::Launched{};
  }
  next_bucket_ = 0;
  ready_order_.clear();
  finalized_ = false;
}

void Reducer::PrepareForBackward(const std::vector<Tensor>& outputs,
                                 bool will_sync) {
  DDPKIT_CHECK(!armed_ || finalized_ || !expect_hooks_)
      << "previous synced backward never finalized";
  ResetIterationState();
  // A replica whose communication failed (desync or collective fault)
  // degrades to local-only accumulation: issuing further collectives after
  // a desync would deadlock or corrupt the reduction.
  expect_hooks_ = will_sync && sync_status_.ok();
  armed_ = true;
  will_sync = expect_hooks_;

  if (!will_sync) return;

  if (options_.find_unused_parameters) {
    // Traverse the autograd graph from the outputs and proactively mark
    // parameters outside this iteration's sub-graph (Algorithm 1 line 10),
    // so their buckets cannot wait forever (Fig 3(b) hazard).
    auto reachable = autograd::FindReachableParams(outputs);
    for (size_t i = 0; i < params_.size(); ++i) {
      if (reachable.count(params_[i].id()) == 0) {
        MarkParamReady(i, /*via_hook=*/false);
      }
    }
  }
}

void Reducer::AutogradHook(size_t param_index) {
  if (!armed_) return;  // backward outside a DDP forward; nothing to do
  locally_used_[param_index] = 1;
  if (!expect_hooks_) return;  // no_sync: gradients accumulate locally only

  if (options_.compute_model != nullptr) {
    // Charge this parameter's backward compute to the virtual clock before
    // the bucket logic records arrival times.
    const double t0 = pg_->clock()->Now();
    pg_->clock()->Advance(options_.compute_model->options().per_op_overhead +
                          static_cast<double>(metas_[param_index].numel) *
                              options_.compute_model->options()
                                  .backward_ns_per_element *
                              1e-9);
    if (options_.trace != nullptr) {
      options_.trace->AddSpan("grad " + std::to_string(param_index),
                              "backward", pg_->rank(), t0,
                              pg_->clock()->Now());
    }
  }

  DDPKIT_CHECK(!param_ready_[param_index])
      << "gradient for parameter " << param_index
      << " marked ready twice in one backward (is the same parameter "
         "shared, or was backward called twice without a DDP forward?)";
  MarkParamReady(param_index, /*via_hook=*/true);
}

void Reducer::MarkParamReady(size_t param_index, bool via_hook) {
  param_ready_[param_index] = 1;
  ready_order_.push_back(param_index);

  Bucket& bucket = buckets_[param_to_bucket_[param_index]];
  // Copy the gradient into its bucket view (Algorithm 1 lines 15-16). The
  // slot was precomputed at bucket-build time, so this lookup is O(1).
  const Slot& slot = param_slots_[param_index];
  DDPKIT_CHECK_EQ(slot.param_index, param_index);
  Tensor view = bucket.buffer.Narrow(0, slot.offset, slot.length);
  Tensor grad = params_[param_index].grad();
  if (grad.defined() && grad.data<float>() == view.data<float>()) {
    // gradient_as_bucket_view: the gradient already lives in the bucket.
  } else if (grad.defined()) {
    if (grad.is_contiguous()) {
      ParallelCopy(view.data<float>(), grad.data<float>(), slot.length);
    } else {
      view.CopyFrom(grad.Flatten());
    }
  } else {
    // Locally-unused parameter with no accumulated gradient: contribute
    // zeros so peers that did use it still receive a correct average.
    DDPKIT_CHECK(!via_hook);
    view.Zero();
  }

  DDPKIT_CHECK_GT(bucket.pending, 0u);
  if (--bucket.pending == 0) {
    bucket.ready = true;
    MaybeLaunchBuckets();
  }
}

void Reducer::MaybeLaunchBuckets() {
  // In-order launch rule (§3.2.3): bucket i+1 never launches before bucket
  // i, even if it became ready first, so AllReduce contents line up across
  // ranks.
  while (next_bucket_ < buckets_.size() && buckets_[next_bucket_].ready) {
    LaunchBucket(next_bucket_);
    ++next_bucket_;
  }
  if (next_bucket_ == buckets_.size()) {
    FinalizeBackward();
  }
}

void Reducer::LaunchBucket(size_t bucket_id) {
  Bucket& bucket = buckets_[bucket_id];
  DDPKIT_CHECK(!bucket.launched);
  bucket.launched = true;
  bucket.launch_clock = pg_->clock()->Now();
  if (options_.comm_hook != nullptr) {
    bucket.hook_launched =
        options_.comm_hook->Launch(*pg_, bucket.buffer, bucket_id);
    bucket.work = bucket.hook_launched.work;
  } else {
    bucket.work = pg_->AllReduce(bucket.buffer, comm::ReduceOp::kSum);
  }
  ++stats_.allreduces_launched;
  stats_.bytes_reduced += bucket.bytes;
}

void Reducer::FinalizeBackward() {
  // The additional bitmap AllReduce for globally-unused parameters
  // (§3.2.3). It cannot be coalesced into the gradient buckets because of
  // the dtype mismatch; it launches after all buckets, in the same order on
  // every rank.
  comm::WorkHandle bitmap_work;
  if (options_.find_unused_parameters) {
    uint8_t* bits = used_bitmap_.data<uint8_t>();
    for (size_t i = 0; i < params_.size(); ++i) bits[i] = locally_used_[i];
    bitmap_work = pg_->AllReduce(used_bitmap_, comm::ReduceOp::kBor);
    ++stats_.bitmap_allreduces;
  }

  // Block waiting for all AllReduce ops (Algorithm 1 line 21), advancing
  // the virtual clock to each completion. A fault — a bucket that timed
  // out, a peer that crashed mid-collective — aborts the sync with a
  // diagnostic naming the bucket instead of deadlocking the backward.
  for (size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    DDPKIT_CHECK(bucket.work != nullptr);
    const Status wait_status =
        bucket.work->Wait(pg_->clock(), options_.collective_timeout_seconds);
    if (!wait_status.ok()) {
      AbortSync(Status(wait_status.code(),
                       "gradient bucket " + std::to_string(b) +
                           " (rank " + std::to_string(pg_->rank()) +
                           "): " + wait_status.message()));
      return;
    }
    if (bucket.hook_launched.finalize) bucket.hook_launched.finalize();
    if (options_.trace != nullptr) {
      options_.trace->AddSpan("allreduce bucket " + std::to_string(b),
                              "comm", pg_->rank(), bucket.launch_clock,
                              bucket.work->completion_time());
    }
  }
  if (bitmap_work != nullptr) {
    const Status wait_status =
        bitmap_work->Wait(pg_->clock(), options_.collective_timeout_seconds);
    if (!wait_status.ok()) {
      AbortSync(Status(wait_status.code(),
                       "unused-parameter bitmap all-reduce (rank " +
                           std::to_string(pg_->rank()) +
                           "): " + wait_status.message()));
      return;
    }
    const uint8_t* bits = used_bitmap_.data<uint8_t>();
    for (size_t i = 0; i < params_.size(); ++i) {
      globally_used_[i] = bits[i] ? 1 : 0;
    }
  } else {
    std::fill(globally_used_.begin(), globally_used_.end(), 1);
  }

  // Average and write back (the finalizing step Algorithm 1 omits).
  const double inv_world = 1.0 / static_cast<double>(pg_->world());
  // Gradient allocation and view bookkeeping stay on this thread; the
  // per-slot data movement is collected into jobs and fanned out across the
  // pool (slots write disjoint gradient buffers).
  struct CopyJob {
    float* dst;
    const float* src;
    int64_t numel;
  };
  std::vector<CopyJob> copy_jobs;
  for (Bucket& bucket : buckets_) {
    kernels::ScaleInPlace(&bucket.buffer, inv_world);
    if (options_.gradient_as_bucket_view) {
      // Gradients alias the bucket; the scale above already averaged them
      // in place and there is nothing to copy back.
      continue;
    }
    for (const Slot& slot : bucket.slots) {
      const size_t i = slot.param_index;
      if (options_.find_unused_parameters && !globally_used_[i]) {
        // Globally-unused gradients stay intact (§3.2.3), so optimizers
        // that inspect gradient absence behave exactly as in local
        // training.
        continue;
      }
      Tensor p = params_[i];
      Tensor grad = p.grad();
      if (!grad.defined()) {
        Tensor fresh = Tensor::Zeros(p.shape(), p.dtype(), p.device_id());
        p.set_grad(fresh);
        grad = p.grad();
      }
      DDPKIT_CHECK(grad.is_contiguous());
      copy_jobs.push_back(CopyJob{
          grad.data<float>(),
          bucket.buffer.data<float>() + slot.offset,
          slot.length,
      });
    }
  }
  ParallelFor(0, static_cast<int64_t>(copy_jobs.size()), 1,
              [&](int64_t jb, int64_t je) {
    for (int64_t j = jb; j < je; ++j) {
      const CopyJob& job = copy_jobs[static_cast<size_t>(j)];
      std::memcpy(job.dst, job.src,
                  static_cast<size_t>(job.numel) * sizeof(float));
    }
  });

  std::fill(locally_used_.begin(), locally_used_.end(), 0);
  last_ready_order_ = ready_order_;
  armed_ = false;
  expect_hooks_ = false;
  finalized_ = true;
  ++stats_.finalized_backwards;
}

void Reducer::AbortSync(Status status) {
  DDPKIT_CHECK(!status.ok());
  if (sync_status_.ok()) {
    // First error wins; later failures are downstream of the original.
    sync_status_ = std::move(status);
    DDPKIT_LOG(Error) << "gradient synchronization disabled: "
                      << sync_status_.ToString();
  }
  ++stats_.sync_failures;
  // Unwind the iteration so the replica survives to read the diagnostic:
  // no hooks are expected, nothing is finalized, and the next
  // PrepareForBackward degrades to local-only accumulation.
  armed_ = false;
  expect_hooks_ = false;
  finalized_ = false;
}

namespace {

/// Bucket-layout signature exchanged through the Store:
/// "<nbuckets>:<numel0>:<numel1>:...". Two ranks whose reducers would issue
/// different collective sequences necessarily differ in this string.
std::string LayoutSignature(const std::vector<int64_t>& bucket_numels) {
  std::ostringstream sig;
  sig << bucket_numels.size();
  for (int64_t n : bucket_numels) sig << ':' << n;
  return sig.str();
}

std::vector<int64_t> ParseSignatureNumels(const std::string& sig) {
  std::vector<int64_t> numels;
  std::istringstream in(sig);
  std::string field;
  bool first = true;
  while (std::getline(in, field, ':')) {
    if (first) {
      first = false;  // leading bucket count
      continue;
    }
    numels.push_back(std::stoll(field));
  }
  return numels;
}

}  // namespace

void Reducer::ValidateCrossRankLayout() {
  comm::Store* store = pg_->store();
  if (store == nullptr || pg_->world() <= 1) return;

  const int rank = pg_->rank();
  const int world = pg_->world();

  // Pair up the Nth reducer on every rank: reducers are constructed in
  // program order, so the per-rank instance counter yields matching ids on
  // ranks that are still in sync — and the handshake below catches the
  // ones that are not.
  int64_t count = 0;
  Status st = store->AddWithRetry(
      "reducer/instances/rank" + std::to_string(rank), 1, &count);
  if (!st.ok()) {
    AbortSync(Status(st.code(),
                     "bucket-layout validation could not reach the store: " +
                         st.message()));
    return;
  }
  const int64_t instance = count - 1;
  const std::string prefix =
      "reducer/layout/" + std::to_string(instance) + "/rank";

  std::vector<int64_t> bucket_numels;
  bucket_numels.reserve(buckets_.size());
  for (const Bucket& bucket : buckets_) {
    bucket_numels.push_back(bucket.buffer.numel());
  }
  const std::string own_sig = LayoutSignature(bucket_numels);
  st = store->SetWithRetry(prefix + std::to_string(rank), own_sig);
  if (!st.ok()) {
    AbortSync(Status(st.code(),
                     "bucket-layout validation could not publish rank " +
                         std::to_string(rank) +
                         "'s signature: " + st.message()));
    return;
  }

  // Compare every rank against rank 0's canonical layout. The bounded Get
  // turns a peer that never constructed its reducer into a typed timeout
  // instead of a rendezvous hang.
  std::vector<std::string> sigs(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    auto got = store->GetWithRetry(prefix + std::to_string(r),
                                   options_.validation_timeout_seconds);
    if (!got.ok()) {
      AbortSync(Status(got.status().code(),
                       "bucket-layout validation: rank " + std::to_string(r) +
                           " never published a signature for reducer instance " +
                           std::to_string(instance) + " (" +
                           got.status().message() + ")"));
      return;
    }
    sigs[static_cast<size_t>(r)] = std::move(got).value();
  }

  for (int r = 1; r < world; ++r) {
    if (sigs[static_cast<size_t>(r)] == sigs[0]) continue;
    // Lowest disagreeing rank named; pin down the first divergent bucket.
    const std::vector<int64_t> base = ParseSignatureNumels(sigs[0]);
    const std::vector<int64_t> theirs =
        ParseSignatureNumels(sigs[static_cast<size_t>(r)]);
    std::ostringstream msg;
    msg << "bucket layout desynchronized across ranks: rank " << r << " has "
        << theirs.size() << " bucket(s) vs rank 0's " << base.size();
    const size_t common = std::min(base.size(), theirs.size());
    for (size_t b = 0; b < common; ++b) {
      if (base[b] != theirs[b]) {
        msg << "; first mismatch at bucket " << b << " (rank " << r << ": "
            << theirs[b] << " elements, rank 0: " << base[b] << " elements)";
        break;
      }
    }
    msg << " — did ranks diverge in bucket_cap_bytes or rebuild order?";
    AbortSync(Status::FailedPrecondition(msg.str()));
    return;
  }
}

bool Reducer::RebuildBucketsFromTrace() {
  DDPKIT_CHECK(!armed_ || finalized_)
      << "RebuildBucketsFromTrace must be called between iterations";
  if (last_ready_order_.size() != params_.size()) return false;
  BucketAssignment rebuilt =
      AssignBucketsFromOrder(metas_, last_ready_order_,
                             options_.bucket_cap_bytes,
                             options_.first_bucket_cap_bytes);
  if (rebuilt.buckets == assignment_.buckets) return false;
  InitBuckets(rebuilt);
  ++stats_.rebuilds;
  return true;
}

}  // namespace ddpkit::core
