#ifndef DDPKIT_CORE_COMPRESSION_H_
#define DDPKIT_CORE_COMPRESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/process_group.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace ddpkit::core {

/// Communication hook: replaces the reducer's default bucket AllReduce with
/// a custom compression scheme (the paper's §6.2.3 future-work direction,
/// realized here as an extension). The hook must leave the bucket holding
/// the *sum* across ranks when `finalize` runs; the reducer then divides by
/// world size exactly as in the uncompressed path.
///
/// Bit-consistency contract: every hook in this zoo transports its payload
/// exclusively through AllGather — pure byte movement, identical over
/// ProcessGroupSim and ProcessGroupTcp regardless of the all-reduce
/// algorithm in use — and reconstructs the sum locally in fp32, iterating
/// ranks 0..world-1 in order. The decompressed bucket is therefore
/// bit-identical across backends, algorithms, and pool sizes.
class CommHook {
 public:
  struct Launched {
    /// Every collective the hook issued, in issue order. The reducer waits
    /// them in order and propagates the first typed error; none may be
    /// dropped (a lost handle means a lost timeout/rank-failure verdict).
    std::vector<comm::WorkHandle> works;
    /// Runs on the launching rank after every work completed OK; writes the
    /// reduced sum back into the bucket. A non-OK return (e.g. fp16
    /// overflow) aborts the sync with a typed status naming the hook.
    std::function<Status()> finalize;
    /// Bytes this rank would have put on the wire uncompressed (the fp32
    /// bucket payload).
    uint64_t bytes_raw = 0;
    /// Bytes this rank actually contributed to the hook's collectives.
    uint64_t bytes_compressed = 0;
  };

  virtual ~CommHook() = default;

  /// `bucket_id` identifies the bucket across iterations (for per-bucket
  /// persistent state such as error feedback).
  virtual Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                          size_t bucket_id) = 0;

  virtual std::string name() const = 0;

  /// Payload bytes actually sent per input byte. Before the first Launch
  /// this is the hook's nominal estimate; afterwards it is the measured
  /// cumulative bytes_compressed / bytes_raw, which the metrics pair
  /// `ddp.comm.bytes_{raw,compressed}` must match.
  double compression_ratio() const;

  /// Drops all per-bucket persistent state (error-feedback residuals,
  /// PowerSGD warm-start factors). Called by the reducer on elastic
  /// recovery: the recovered replica must be bit-exact against a fresh
  /// checkpoint-resumed run, and a fresh run starts with zero residuals.
  virtual void ResetState() {}

 protected:
  /// Nominal estimate used until the first Launch records real bytes.
  virtual double nominal_ratio() const = 0;

  /// Accumulates measured wire bytes (called from Launch implementations).
  void RecordBytes(uint64_t raw, uint64_t compressed);

 private:
  std::atomic<uint64_t> total_raw_{0};
  std::atomic<uint64_t> total_compressed_{0};
};

/// Casts buckets to IEEE half precision for transport: 2x less traffic,
/// small quantization error. Values are pre-scaled by `loss_scale` (a power
/// of two, so scaling is exact) to lift small gradients out of the denormal
/// range, all-gathered as fp16 payloads, then decompressed and accumulated
/// in fp32 on every rank — partial sums never round or overflow in half
/// precision. Overflow of the *encoded* values (|g·scale| > 65504, or a
/// non-finite input) surfaces as a typed kOutOfRange status from finalize.
class Fp16CompressionHook : public CommHook {
 public:
  explicit Fp16CompressionHook(double loss_scale = 8.0)
      : loss_scale_(loss_scale) {}
  Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                  size_t bucket_id) override;
  std::string name() const override { return "fp16"; }
  double loss_scale() const { return loss_scale_; }

 protected:
  double nominal_ratio() const override { return 0.5; }

 private:
  double loss_scale_;
};

/// bfloat16 transport: the top 16 bits of fp32 with round-to-nearest-even.
/// Same exponent range as fp32 (no ±65504 cliff), 8-bit mantissa. The
/// loss-scale plumbing matches fp16 (default 1.0: bf16 rarely underflows);
/// non-finite encoded values surface as kOutOfRange from finalize.
class Bf16CompressionHook : public CommHook {
 public:
  explicit Bf16CompressionHook(double loss_scale = 1.0)
      : loss_scale_(loss_scale) {}
  Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                  size_t bucket_id) override;
  std::string name() const override { return "bf16"; }
  double loss_scale() const { return loss_scale_; }

 protected:
  double nominal_ratio() const override { return 0.5; }

 private:
  double loss_scale_;
};

/// 1-bit SGD-style compression (Seide et al., cited as [34] in the paper):
/// each bucket is reduced to sign bits plus one scale, with per-bucket
/// error feedback so the quantization error is re-injected into the next
/// iteration. Transport is an all-gather of the packed sign bitmaps and
/// scales; each rank decompresses and sums locally.
class OneBitCompressionHook : public CommHook {
 public:
  Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                  size_t bucket_id) override;
  std::string name() const override { return "onebit"; }
  void ResetState() override { error_feedback_.clear(); }

 protected:
  double nominal_ratio() const override { return 1.0 / 32.0; }

 private:
  /// Per-bucket error-feedback residual, keyed by bucket id.
  std::unordered_map<size_t, Tensor> error_feedback_;
};

/// PowerSGD-style low-rank projection (Vogels et al.) with per-bucket error
/// feedback and warm-started factors. The bucket is reshaped to a matrix M
/// (rows×cols); one power-iteration step runs per bucket per iteration:
///
///   P = M·Q_prev        — all-gathered, summed, then orthogonalized
///   Q = Mᵀ·P̂            — all-gathered, summed in finalize
///   bucket = P̂·Q_sumᵀ   — the rank-r approximation of the gradient sum
///
/// The first all-gather is waited inside Launch (the Q step needs the
/// agreed P̂); its failure is still returned through `works`, so the
/// reducer observes the typed error. Q_prev starts from a deterministic
/// seeded basis identical on every rank, so no broadcast is needed.
class PowerSGDCompressionHook : public CommHook {
 public:
  struct Options {
    /// Rank of the low-rank approximation (clamped to min(rows, cols)).
    int rank = 4;
    /// Timeout for the in-Launch wait on the P all-gather (virtual time).
    double collective_timeout_seconds = 30.0;
  };
  PowerSGDCompressionHook() : PowerSGDCompressionHook(Options{}) {}
  explicit PowerSGDCompressionHook(Options options) : options_(options) {}
  Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                  size_t bucket_id) override;
  std::string name() const override { return "powersgd"; }
  void ResetState() override { state_.clear(); }

 protected:
  /// Rough estimate for a square matrix: r(rows+cols)/(rows·cols) ≈ 2r/√n
  /// for typical bucket sizes; measured ratio replaces this after the
  /// first launch.
  double nominal_ratio() const override { return 0.125; }

 private:
  struct BucketState {
    Tensor residual;  // error feedback, length n
    Tensor q;         // warm-start factor, cols×rank
  };
  Options options_;
  std::unordered_map<size_t, BucketState> state_;
};

/// Top-k sparsification with per-bucket error feedback: the k = ⌈n/16⌉
/// largest-magnitude entries of (gradient + residual) are packed CSR-style
/// as (uint32 index, fp32 value bits) pairs into one uint8 payload,
/// all-gathered, and scatter-added into the zeroed bucket in rank order.
/// Ties break deterministically toward the lower index.
class TopKCompressionHook : public CommHook {
 public:
  Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                  size_t bucket_id) override;
  std::string name() const override { return "topk"; }
  void ResetState() override { error_feedback_.clear(); }

 protected:
  /// 8 bytes per entry, one entry per 16 elements of 4 bytes: 8/(16·4).
  double nominal_ratio() const override { return 0.125; }

 private:
  std::unordered_map<size_t, Tensor> error_feedback_;
};

/// Hook registry shared by the trainer (`--compress=`), the multiproc
/// worker (`--comm-hook=`), and the compression bench. Returns nullptr for
/// "none"/"" (run uncompressed). "1bit" is accepted as an alias of
/// "onebit". Unknown names also return nullptr; gate user input through
/// IsValidCommHookName first.
std::shared_ptr<CommHook> MakeCommHookByName(const std::string& name);
bool IsValidCommHookName(const std::string& name);
/// Canonical hook names (no aliases, no "none") for sweeps and usage text.
const std::vector<std::string>& CommHookNames();

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_COMPRESSION_H_
