#ifndef DDPKIT_CORE_COMPRESSION_H_
#define DDPKIT_CORE_COMPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/process_group.h"
#include "tensor/tensor.h"

namespace ddpkit::core {

/// Communication hook: replaces the reducer's default bucket AllReduce with
/// a custom compression scheme (the paper's §6.2.3 future-work direction,
/// realized here as an extension). The hook must leave the bucket holding
/// the *sum* across ranks when `finalize` runs; the reducer then divides by
/// world size exactly as in the uncompressed path.
class CommHook {
 public:
  struct Launched {
    comm::WorkHandle work;
    /// Runs on the launching rank after `work` completes; writes the
    /// reduced result back into the bucket.
    std::function<void()> finalize;
  };

  virtual ~CommHook() = default;

  /// `bucket_id` identifies the bucket across iterations (for per-bucket
  /// persistent state such as error feedback).
  virtual Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                          size_t bucket_id) = 0;

  virtual std::string name() const = 0;

  /// Payload bytes actually sent per input byte (for reporting).
  virtual double compression_ratio() const = 0;
};

/// Casts buckets to IEEE half precision for transport: 2x less traffic,
/// small quantization error.
class Fp16CompressionHook : public CommHook {
 public:
  Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                  size_t bucket_id) override;
  std::string name() const override { return "fp16"; }
  double compression_ratio() const override { return 0.5; }
};

/// 1-bit SGD-style compression (Seide et al., cited as [34] in the paper):
/// each bucket is reduced to sign bits plus one scale, with per-bucket
/// error feedback so the quantization error is re-injected into the next
/// iteration. Transport is an all-gather of the packed sign bitmaps and
/// scales; each rank decompresses and sums locally.
class OneBitCompressionHook : public CommHook {
 public:
  Launched Launch(comm::ProcessGroup& pg, Tensor bucket,
                  size_t bucket_id) override;
  std::string name() const override { return "onebit"; }
  double compression_ratio() const override { return 1.0 / 32.0; }

 private:
  /// Per-bucket error-feedback residual, keyed by bucket id.
  std::unordered_map<size_t, Tensor> error_feedback_;
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_COMPRESSION_H_
