#ifndef DDPKIT_CORE_MEMORY_H_
#define DDPKIT_CORE_MEMORY_H_

#include <string>
#include <vector>

#include "core/bucketing.h"
#include "core/reducer.h"

namespace ddpkit::core {

/// Per-rank memory footprint of a DDP configuration. The paper's related
/// work (§7, ZeRO discussion) lists parameters, gradients and buckets as
/// the data-parallel memory contributors DDP replicates on every rank;
/// this estimator makes the trade-offs of the knobs visible:
/// gradient_as_bucket_view removes the separate gradient allocation, and
/// compression hooks add transient payload buffers.
struct MemoryEstimate {
  size_t parameter_bytes = 0;
  size_t gradient_bytes = 0;
  size_t bucket_bytes = 0;
  size_t bitmap_bytes = 0;
  size_t hook_payload_bytes = 0;

  size_t Total() const {
    return parameter_bytes + gradient_bytes + bucket_bytes + bitmap_bytes +
           hook_payload_bytes;
  }
  std::string ToString() const;
};

/// Estimates per-rank steady-state memory for `params` under `options`.
MemoryEstimate EstimateDdpMemory(const std::vector<ParamMeta>& params,
                                 const ReducerOptions& options);

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_MEMORY_H_
