#ifndef DDPKIT_CORE_ORDER_TRACER_H_
#define DDPKIT_CORE_ORDER_TRACER_H_

#include <cstddef>
#include <vector>

#include "core/reducer.h"

namespace ddpkit::core {

/// Gradient-order prediction policy (paper §6.2.1 future work, implemented
/// as an extension): observes the gradient-ready order the Reducer traced
/// in each synced backward, and — once the order has been stable for
/// `stable_iterations` consecutive backwards — triggers one bucket rebuild
/// so the bucket layout matches the *actual* backward order instead of the
/// reverse-registration heuristic. Rebuilds are infrequent by design: the
/// paper notes re-allocation overhead must be amortized.
class OrderTracer {
 public:
  struct Options {
    /// Consecutive identical orders required before rebuilding.
    int stable_iterations = 2;
    /// Maximum number of rebuilds over the tracer's lifetime.
    int max_rebuilds = 1;
  };

  OrderTracer() : OrderTracer(Options()) {}
  explicit OrderTracer(const Options& options) : options_(options) {}

  /// Call once per iteration, after backward and before the next forward.
  /// Returns true if a rebuild happened this call.
  bool ObserveAndMaybeRebuild(Reducer* reducer);

  int rebuilds() const { return rebuilds_; }
  int stable_count() const { return stable_count_; }

 private:
  Options options_;
  std::vector<size_t> last_order_;
  int stable_count_ = 0;
  int rebuilds_ = 0;
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_ORDER_TRACER_H_
