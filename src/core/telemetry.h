#ifndef DDPKIT_CORE_TELEMETRY_H_
#define DDPKIT_CORE_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ddpkit::core {

/// Per-bucket timing inside one synced backward: launch (all gradients
/// ready, AllReduce issued) to completion (cost-model finish), plus the
/// slice of that window FinalizeBackward actually blocked on — the exposed
/// portion. All times are the rank's virtual clock, in seconds.
struct BucketTelemetry {
  size_t bucket = 0;
  size_t bytes = 0;
  double launch_seconds = 0.0;
  double completion_seconds = 0.0;
  /// Exposed wait charged to this bucket at finalize (0 when the bucket
  /// completed entirely under later compute or earlier waits).
  double wait_seconds = 0.0;
};

/// One synced iteration's timing record — the paper's Fig 6 quantities plus
/// the copy costs §4.2 names. Populated by the DDP wrapper (forward) and
/// the Reducer (everything else); virtual-clock fields are comparable to
/// the cluster simulator's breakdowns, while the copy fields are real
/// wall-clock spent in this process's memcpy loops.
struct DDPTelemetry {
  uint64_t iteration = 0;
  int rank = 0;
  /// False when the iteration's sync aborted on a collective fault; timing
  /// fields then cover only the completed prefix.
  bool synced = true;

  // -- Fig 6 breakdown (virtual seconds) --
  double forward_seconds = 0.0;
  /// First gradient hook to last bucket launch-eligibility: the backward
  /// compute span.
  double backward_compute_seconds = 0.0;
  /// Exposed AllReduce time: clock advance inside FinalizeBackward's waits
  /// (communication NOT hidden behind backward compute).
  double allreduce_wait_seconds = 0.0;
  /// Communication hidden behind backward compute: union of the per-bucket
  /// launch→completion windows clipped to the backward-compute span.
  /// Invariant: overlap_seconds <= backward_compute_seconds.
  double overlap_seconds = 0.0;
  /// Union of launch→completion windows (in-flight communication time).
  double comm_seconds = 0.0;

  // -- §4.2 copy costs (real wall-clock seconds) --
  double copy_in_seconds = 0.0;   // gradient -> bucket, summed over hooks
  double copy_out_seconds = 0.0;  // bucket -> gradient, at finalize

  /// Per-parameter backward compute charged by the cost model, in hook
  /// order; empty when no compute model is attached.
  std::vector<double> param_compute_seconds;
  std::vector<BucketTelemetry> buckets;

  // -- cumulative health counters (reducer lifetime, sampled at finalize) --
  uint64_t rebuilds = 0;
  uint64_t sync_failures = 0;

  std::string ToJson() const;
};

/// Append-only per-iteration telemetry trajectory. One instance is shared
/// by a replica's DDP wrapper and Reducer (ReducerOptions::telemetry); a
/// multi-rank harness may share one log across ranks — Append is
/// thread-safe and records carry their rank.
class TelemetryLog {
 public:
  TelemetryLog() = default;
  TelemetryLog(const TelemetryLog&) = delete;
  TelemetryLog& operator=(const TelemetryLog&) = delete;

  void Append(DDPTelemetry record);
  void Clear();

  size_t size() const;
  std::vector<DDPTelemetry> snapshot() const;

  /// {"iterations":[{...},...]} — the BENCH_*.json trajectory format.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  mutable Mutex mutex_;
  std::vector<DDPTelemetry> records_ GUARDED_BY(mutex_);
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_TELEMETRY_H_
