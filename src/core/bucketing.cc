#include "core/bucketing.h"

#include <sstream>

#include "common/check.h"

namespace ddpkit::core {

namespace {

/// Packs `order` (a permutation of parameter indices, in desired launch
/// order) into buckets respecting caps and device affinity.
BucketAssignment PackInOrder(const std::vector<ParamMeta>& params,
                             const std::vector<size_t>& order,
                             size_t bucket_cap_bytes,
                             size_t first_bucket_cap_bytes) {
  if (first_bucket_cap_bytes == 0) first_bucket_cap_bytes = bucket_cap_bytes;

  BucketAssignment assignment;
  std::vector<size_t> current;
  size_t current_bytes = 0;
  int current_device = -1;

  auto flush = [&] {
    if (!current.empty()) {
      assignment.buckets.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
      current_device = -1;
    }
  };

  for (size_t idx : order) {
    DDPKIT_CHECK_LT(idx, params.size());
    const ParamMeta& p = params[idx];
    const size_t cap = assignment.buckets.empty() ? first_bucket_cap_bytes
                                                  : bucket_cap_bytes;
    const bool device_mismatch =
        current_device >= 0 && p.device_id != current_device;
    const bool over_cap =
        cap == 0 ? !current.empty()
                 : (!current.empty() && current_bytes + p.bytes > cap);
    if (device_mismatch || over_cap) flush();
    current.push_back(idx);
    current_bytes += p.bytes;
    current_device = p.device_id;
    // cap == 0: one gradient per bucket.
    if (cap == 0) flush();
  }
  flush();
  return assignment;
}

}  // namespace

BucketAssignment AssignBuckets(const std::vector<ParamMeta>& params,
                               size_t bucket_cap_bytes,
                               size_t first_bucket_cap_bytes) {
  std::vector<size_t> reverse_order;
  reverse_order.reserve(params.size());
  for (size_t i = params.size(); i-- > 0;) reverse_order.push_back(i);
  return PackInOrder(params, reverse_order, bucket_cap_bytes,
                     first_bucket_cap_bytes);
}

BucketAssignment AssignBucketsFromOrder(const std::vector<ParamMeta>& params,
                                        const std::vector<size_t>& ready_order,
                                        size_t bucket_cap_bytes,
                                        size_t first_bucket_cap_bytes) {
  DDPKIT_CHECK_EQ(ready_order.size(), params.size())
      << "ready_order must be a permutation of all parameter indices";
  std::vector<uint8_t> seen(params.size(), 0);
  for (size_t idx : ready_order) {
    DDPKIT_CHECK_LT(idx, params.size());
    DDPKIT_CHECK(!seen[idx]) << "duplicate index in ready_order";
    seen[idx] = 1;
  }
  return PackInOrder(params, ready_order, bucket_cap_bytes,
                     first_bucket_cap_bytes);
}

size_t BucketBytes(const std::vector<ParamMeta>& params,
                   const std::vector<size_t>& bucket) {
  size_t total = 0;
  for (size_t idx : bucket) total += params[idx].bytes;
  return total;
}

std::string BucketAssignment::ToString(
    const std::vector<ParamMeta>& params) const {
  std::ostringstream os;
  for (size_t b = 0; b < buckets.size(); ++b) {
    os << "bucket " << b << ": " << buckets[b].size() << " params, "
       << BucketBytes(params, buckets[b]) << " bytes\n";
  }
  return os.str();
}

}  // namespace ddpkit::core
