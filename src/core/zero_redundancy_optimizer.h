#ifndef DDPKIT_CORE_ZERO_REDUNDANCY_OPTIMIZER_H_
#define DDPKIT_CORE_ZERO_REDUNDANCY_OPTIMIZER_H_

#include <functional>
#include <memory>
#include <vector>

#include "comm/process_group.h"
#include "optim/optimizer.h"

namespace ddpkit::core {

/// Optimizer-state sharding on top of DDP — the first stage of the ZeRO
/// line of work the paper discusses in §7 ("ZeRO addressed this problem by
/// partitioning parameters, gradients, and optimizer states").
///
/// Each rank owns a contiguous shard of the parameter list (balanced by
/// element count), runs the wrapped optimizer only on its shard, and then
/// broadcasts the updated parameters from their owners. Optimizer state
/// (momentum/Adam moments) exists only on the owning rank, cutting that
/// memory by ~1/world at the price of the broadcast round — the
/// speed-for-memory trade the paper describes.
///
/// Gradients are still averaged by DDP before Step(), so every owner
/// applies the same update it would have applied unsharded: training is
/// mathematically identical to the wrapped optimizer.
class ZeroRedundancyOptimizer {
 public:
  /// `factory` builds the wrapped optimizer over this rank's shard.
  using OptimizerFactory = std::function<std::unique_ptr<optim::Optimizer>(
      std::vector<Tensor> shard_params)>;

  ZeroRedundancyOptimizer(std::vector<Tensor> params,
                          std::shared_ptr<comm::ProcessGroup> process_group,
                          OptimizerFactory factory);

  /// Updates this rank's shard, then broadcasts every shard from its owner.
  void Step();

  /// Zeroes all gradients (shard-independent).
  void ZeroGrad();

  /// The parameter indices owned by `rank`.
  const std::vector<size_t>& ShardForRank(int rank) const;
  int OwnerOf(size_t param_index) const;

  optim::Optimizer& local_optimizer() { return *local_optimizer_; }

 private:
  std::vector<Tensor> params_;
  std::shared_ptr<comm::ProcessGroup> pg_;
  std::vector<std::vector<size_t>> shards_;   // rank -> param indices
  std::vector<int> owner_;                    // param index -> rank
  std::unique_ptr<optim::Optimizer> local_optimizer_;
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_ZERO_REDUNDANCY_OPTIMIZER_H_
