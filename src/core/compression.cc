#include "core/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/rng.h"

namespace ddpkit::core {

double CommHook::compression_ratio() const {
  const uint64_t raw = total_raw_.load(std::memory_order_relaxed);
  const uint64_t compressed = total_compressed_.load(std::memory_order_relaxed);
  if (raw == 0) return nominal_ratio();
  return static_cast<double>(compressed) / static_cast<double>(raw);
}

void CommHook::RecordBytes(uint64_t raw, uint64_t compressed) {
  total_raw_.fetch_add(raw, std::memory_order_relaxed);
  total_compressed_.fetch_add(compressed, std::memory_order_relaxed);
}

namespace {

/// Shared fp16/bf16 transport: pre-scale by the loss scale (a power of two,
/// so the mantissa is untouched), encode to 16 bits, all-gather every
/// rank's payload, then decode and accumulate in fp32 in rank order. The
/// accumulation never rounds in half precision and never overflows below
/// float range; a non-finite decoded sum (encode-side overflow or a
/// non-finite input gradient, on any rank) surfaces as kOutOfRange.
CommHook::Launched LaunchHalfTransport(comm::ProcessGroup& pg, Tensor bucket,
                                       double loss_scale,
                                       uint16_t (*encode)(float),
                                       float (*decode)(uint16_t),
                                       const char* hook_name) {
  DDPKIT_CHECK(bucket.dtype() == DType::kFloat32);
  const int64_t n = bucket.numel();
  const int world = pg.world();
  const float scale = static_cast<float>(loss_scale);
  const float inv_scale = 1.0f / scale;

  Tensor payload = Tensor::Empty({n}, DType::kFloat16, bucket.device_id());
  {
    const float* src = bucket.data<float>();
    uint16_t* dst = payload.data<uint16_t>();
    for (int64_t i = 0; i < n; ++i) dst[i] = encode(src[i] * scale);
  }
  Tensor gathered =
      Tensor::Zeros({n * static_cast<int64_t>(world)}, DType::kFloat16);

  CommHook::Launched launched;
  launched.bytes_raw = static_cast<uint64_t>(n) * sizeof(float);
  launched.bytes_compressed = static_cast<uint64_t>(n) * sizeof(uint16_t);
  launched.works.push_back(pg.AllGather(payload, gathered));
  std::string overflow_message =
      std::string(hook_name) +
      " transport overflow: non-finite decompressed sum (gradient "
      "magnitude exceeded the format range at loss scale " +
      std::to_string(loss_scale) + ")";
  launched.finalize = [bucket, gathered, decode, inv_scale, n, world,
                       overflow_message = std::move(overflow_message)]() mutable
      -> Status {
    const uint16_t* src = gathered.data<uint16_t>();
    float* dst = bucket.data<float>();
    bool finite = true;
    for (int64_t i = 0; i < n; ++i) {
      float acc = 0.0f;
      for (int r = 0; r < world; ++r) {
        acc += decode(src[static_cast<int64_t>(r) * n + i]);
      }
      const float value = acc * inv_scale;
      finite = finite && std::isfinite(value);
      dst[i] = value;
    }
    if (!finite) return Status::OutOfRange(overflow_message);
    return Status::OK();
  };
  return launched;
}

}  // namespace

// ---- Fp16CompressionHook ----------------------------------------------------

CommHook::Launched Fp16CompressionHook::Launch(comm::ProcessGroup& pg,
                                               Tensor bucket,
                                               size_t /*bucket_id*/) {
  Launched launched = LaunchHalfTransport(pg, std::move(bucket), loss_scale_,
                                          &Float32ToHalfBits,
                                          &HalfBitsToFloat32, "fp16");
  RecordBytes(launched.bytes_raw, launched.bytes_compressed);
  return launched;
}

// ---- Bf16CompressionHook ----------------------------------------------------

CommHook::Launched Bf16CompressionHook::Launch(comm::ProcessGroup& pg,
                                               Tensor bucket,
                                               size_t /*bucket_id*/) {
  Launched launched = LaunchHalfTransport(pg, std::move(bucket), loss_scale_,
                                          &Float32ToBf16Bits,
                                          &Bf16BitsToFloat32, "bf16");
  RecordBytes(launched.bytes_raw, launched.bytes_compressed);
  return launched;
}

// ---- OneBitCompressionHook --------------------------------------------------

CommHook::Launched OneBitCompressionHook::Launch(comm::ProcessGroup& pg,
                                                 Tensor bucket,
                                                 size_t bucket_id) {
  DDPKIT_CHECK(bucket.dtype() == DType::kFloat32);
  const int64_t n = bucket.numel();
  const int world = pg.world();

  // Error feedback: compress (gradient + residual), store the new residual.
  Tensor& residual = error_feedback_[bucket_id];
  if (!residual.defined()) residual = Tensor::Zeros({n});
  DDPKIT_CHECK_EQ(residual.numel(), n);

  std::vector<float> corrected(static_cast<size_t>(n));
  {
    const float* g = bucket.data<float>();
    const float* e = residual.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      corrected[static_cast<size_t>(i)] = g[i] + e[i];
    }
  }

  // Scale = mean absolute value; each element transmitted as sign * scale.
  double abs_sum = 0.0;
  for (float v : corrected) abs_sum += std::abs(v);
  const float scale =
      n > 0 ? static_cast<float>(abs_sum / static_cast<double>(n)) : 0.0f;

  const int64_t packed_len = (n + 7) / 8;
  Tensor signs = Tensor::Zeros({packed_len}, DType::kUInt8);
  {
    uint8_t* bits = signs.data<uint8_t>();
    for (int64_t i = 0; i < n; ++i) {
      if (corrected[static_cast<size_t>(i)] >= 0.0f) {
        bits[i / 8] = static_cast<uint8_t>(bits[i / 8] | (1u << (i % 8)));
      }
    }
  }
  // New residual: corrected - quantized(corrected).
  {
    float* e = residual.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      const float q = corrected[static_cast<size_t>(i)] >= 0.0f ? scale
                                                                : -scale;
      e[i] = corrected[static_cast<size_t>(i)] - q;
    }
  }

  Tensor scale_tensor = Tensor::Full({1}, scale);
  Tensor all_scales = Tensor::Zeros({static_cast<int64_t>(world)});
  Tensor all_signs =
      Tensor::Zeros({packed_len * world}, DType::kUInt8);

  // Two collectives; BOTH handles are returned to the reducer. Completion
  // order is a backend property (the TCP wire gives no cross-collective
  // ordering guarantee), and a timeout or rank failure on either one must
  // surface as a typed error rather than finalize reading zero scales.
  Launched launched;
  launched.bytes_raw = static_cast<uint64_t>(n) * sizeof(float);
  launched.bytes_compressed =
      static_cast<uint64_t>(packed_len) + sizeof(float);
  RecordBytes(launched.bytes_raw, launched.bytes_compressed);
  launched.works.push_back(pg.AllGather(scale_tensor, all_scales));
  launched.works.push_back(pg.AllGather(signs, all_signs));
  launched.finalize = [bucket, all_scales, all_signs, packed_len, n,
                       world]() mutable -> Status {
    float* dst = bucket.data<float>();
    const float* scales = all_scales.data<float>();
    const uint8_t* bits = all_signs.data<uint8_t>();
    for (int64_t i = 0; i < n; ++i) dst[i] = 0.0f;
    for (int r = 0; r < world; ++r) {
      const float s = scales[r];
      const uint8_t* rank_bits = bits + r * packed_len;
      for (int64_t i = 0; i < n; ++i) {
        const bool positive = (rank_bits[i / 8] >> (i % 8)) & 1u;
        dst[i] += positive ? s : -s;
      }
    }
    return Status::OK();
  };
  return launched;
}

// ---- PowerSGDCompressionHook ------------------------------------------------

CommHook::Launched PowerSGDCompressionHook::Launch(comm::ProcessGroup& pg,
                                                   Tensor bucket,
                                                   size_t bucket_id) {
  DDPKIT_CHECK(bucket.dtype() == DType::kFloat32);
  const int64_t n = bucket.numel();
  const int world = pg.world();

  BucketState& st = state_[bucket_id];
  if (!st.residual.defined()) st.residual = Tensor::Zeros({n});
  DDPKIT_CHECK_EQ(st.residual.numel(), n);

  // Square-ish factorization: rows = ceil(sqrt(n)), padded with zeros. The
  // linear index i*cols + j < n maps straight back to the bucket.
  int64_t rows = static_cast<int64_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<int64_t>(n, 1)))));
  rows = std::max<int64_t>(rows, 1);
  const int64_t cols = (n + rows - 1) / rows;
  const int64_t r = std::min<int64_t>(
      std::max(1, options_.rank), std::min(rows, cols));

  // M = gradient + residual (error feedback), row-major rows×cols.
  std::vector<float> m(static_cast<size_t>(rows * cols), 0.0f);
  {
    const float* g = bucket.data<float>();
    const float* e = st.residual.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      m[static_cast<size_t>(i)] = g[i] + e[i];
    }
  }

  // Warm-started right factor Q (cols×r, row-major). The first iteration
  // seeds it from an Rng keyed only by the bucket id, so every rank starts
  // from the identical basis without a broadcast.
  if (!st.q.defined() || st.q.numel() != cols * r) {
    st.q = Tensor::Zeros({cols * r});
    Rng rng(0x9e3779b97f4a7c15ull ^
            (static_cast<uint64_t>(bucket_id) * 0x100000001b3ull));
    float* q = st.q.data<float>();
    for (int64_t i = 0; i < cols * r; ++i) {
      q[i] = static_cast<float>(rng.Normal());
    }
  }

  // Power-iteration left step: P_local = M · Q_prev (rows×r).
  Tensor p_local = Tensor::Zeros({rows * r});
  {
    const float* q = st.q.data<float>();
    float* p = p_local.data<float>();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        const float mij = m[static_cast<size_t>(i * cols + j)];
        if (mij == 0.0f) continue;
        for (int64_t t = 0; t < r; ++t) {
          p[i * r + t] += mij * q[j * r + t];
        }
      }
    }
  }

  Launched launched;
  launched.bytes_raw = static_cast<uint64_t>(n) * sizeof(float);
  launched.bytes_compressed =
      static_cast<uint64_t>((rows + cols) * r) * sizeof(float);
  RecordBytes(launched.bytes_raw, launched.bytes_compressed);

  Tensor all_p = Tensor::Zeros({static_cast<int64_t>(world) * rows * r});
  comm::WorkHandle p_work = pg.AllGather(p_local, all_p);
  launched.works.push_back(p_work);

  // The Q step needs the globally-agreed P̂, so the P all-gather is waited
  // here inside Launch. On failure the handle (terminal state is sticky)
  // stays in `works`: the reducer re-waits it, observes the same typed
  // error, and aborts the sync without running finalize.
  if (!p_work->Wait(pg.clock(), options_.collective_timeout_seconds).ok()) {
    return launched;
  }

  // P_sum in rank order, then modified Gram-Schmidt so every rank holds the
  // same orthonormal P̂ (sequential double accumulators: deterministic).
  std::vector<float> p_hat(static_cast<size_t>(rows * r), 0.0f);
  {
    const float* ap = all_p.data<float>();
    for (int rank = 0; rank < world; ++rank) {
      const float* block = ap + static_cast<int64_t>(rank) * rows * r;
      for (int64_t i = 0; i < rows * r; ++i) {
        p_hat[static_cast<size_t>(i)] += block[i];
      }
    }
    for (int64_t t = 0; t < r; ++t) {
      for (int64_t s = 0; s < t; ++s) {
        double dot = 0.0;
        for (int64_t i = 0; i < rows; ++i) {
          dot += static_cast<double>(p_hat[i * r + t]) * p_hat[i * r + s];
        }
        const float proj = static_cast<float>(dot);
        for (int64_t i = 0; i < rows; ++i) {
          p_hat[i * r + t] -= proj * p_hat[i * r + s];
        }
      }
      double norm_sq = 0.0;
      for (int64_t i = 0; i < rows; ++i) {
        norm_sq += static_cast<double>(p_hat[i * r + t]) * p_hat[i * r + t];
      }
      const double norm = std::sqrt(norm_sq);
      const float inv = norm > 1e-20 ? static_cast<float>(1.0 / norm) : 0.0f;
      for (int64_t i = 0; i < rows; ++i) p_hat[i * r + t] *= inv;
    }
  }

  // Right step: Q_local = Mᵀ · P̂ (cols×r), all-gathered asynchronously.
  Tensor q_local = Tensor::Zeros({cols * r});
  {
    float* ql = q_local.data<float>();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        const float mij = m[static_cast<size_t>(i * cols + j)];
        if (mij == 0.0f) continue;
        for (int64_t t = 0; t < r; ++t) {
          ql[j * r + t] += mij * p_hat[static_cast<size_t>(i * r + t)];
        }
      }
    }
  }
  Tensor all_q = Tensor::Zeros({static_cast<int64_t>(world) * cols * r});
  launched.works.push_back(pg.AllGather(q_local, all_q));

  launched.finalize = [this, bucket, all_q, p_hat = std::move(p_hat),
                       corrected = std::move(m), rows, cols, r, n, world,
                       bucket_id]() mutable -> Status {
    std::vector<float> q_sum(static_cast<size_t>(cols * r), 0.0f);
    const float* aq = all_q.data<float>();
    for (int rank = 0; rank < world; ++rank) {
      const float* block = aq + static_cast<int64_t>(rank) * cols * r;
      for (int64_t i = 0; i < cols * r; ++i) {
        q_sum[static_cast<size_t>(i)] += block[i];
      }
    }
    // bucket = P̂ · Q_sumᵀ — the rank-r approximation of the gradient SUM.
    float* dst = bucket.data<float>();
    bool finite = true;
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        const int64_t idx = i * cols + j;
        if (idx >= n) break;
        float acc = 0.0f;
        for (int64_t t = 0; t < r; ++t) {
          acc += p_hat[static_cast<size_t>(i * r + t)] *
                 q_sum[static_cast<size_t>(j * r + t)];
        }
        finite = finite && std::isfinite(acc);
        dst[idx] = acc;
      }
    }
    if (!finite) {
      return Status::OutOfRange(
          "powersgd decompression produced a non-finite value (non-finite "
          "input gradient?)");
    }
    BucketState& st = state_[bucket_id];
    const float inv_world = 1.0f / static_cast<float>(world);
    // Residual against the decompressed *average* (what this rank's next
    // gradient competes with), warm-start Q for the next power iteration.
    float* e = st.residual.data<float>();
    for (int64_t idx = 0; idx < n; ++idx) {
      e[idx] = corrected[static_cast<size_t>(idx)] - dst[idx] * inv_world;
    }
    float* q = st.q.data<float>();
    for (int64_t i = 0; i < cols * r; ++i) {
      q[i] = q_sum[static_cast<size_t>(i)] * inv_world;
    }
    return Status::OK();
  };
  return launched;
}

// ---- TopKCompressionHook ----------------------------------------------------

namespace {
constexpr int64_t kTopKEntryBytes = 8;  // uint32 index + fp32 value bits
}  // namespace

CommHook::Launched TopKCompressionHook::Launch(comm::ProcessGroup& pg,
                                               Tensor bucket,
                                               size_t bucket_id) {
  DDPKIT_CHECK(bucket.dtype() == DType::kFloat32);
  const int64_t n = bucket.numel();
  const int world = pg.world();
  const int64_t k = std::min<int64_t>(n, (n + 15) / 16);

  Tensor& residual = error_feedback_[bucket_id];
  if (!residual.defined()) residual = Tensor::Zeros({n});
  DDPKIT_CHECK_EQ(residual.numel(), n);

  std::vector<float> corrected(static_cast<size_t>(n));
  {
    const float* g = bucket.data<float>();
    const float* e = residual.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      corrected[static_cast<size_t>(i)] = g[i] + e[i];
    }
  }

  // Top-k by magnitude, ties toward the lower index (a total order, so the
  // selected set is unique regardless of the partial-sort implementation).
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  const auto by_magnitude = [&corrected](int64_t a, int64_t b) {
    const float ma = std::abs(corrected[static_cast<size_t>(a)]);
    const float mb = std::abs(corrected[static_cast<size_t>(b)]);
    if (ma != mb) return ma > mb;
    return a < b;
  };
  if (k < n) {
    std::nth_element(order.begin(), order.begin() + k, order.end(),
                     by_magnitude);
  }
  order.resize(static_cast<size_t>(k));
  // Canonical payload order: ascending index.
  std::sort(order.begin(), order.end());

  Tensor payload = Tensor::Zeros({k * kTopKEntryBytes}, DType::kUInt8);
  {
    uint8_t* out = payload.data<uint8_t>();
    float* e = residual.data<float>();
    for (int64_t i = 0; i < n; ++i) e[i] = corrected[static_cast<size_t>(i)];
    for (int64_t s = 0; s < k; ++s) {
      const int64_t idx = order[static_cast<size_t>(s)];
      const uint32_t index32 = static_cast<uint32_t>(idx);
      const float value = corrected[static_cast<size_t>(idx)];
      std::memcpy(out + s * kTopKEntryBytes, &index32, sizeof(index32));
      std::memcpy(out + s * kTopKEntryBytes + sizeof(index32), &value,
                  sizeof(value));
      e[idx] = 0.0f;  // transmitted in full: nothing left to feed back
    }
  }

  Tensor gathered = Tensor::Zeros(
      {static_cast<int64_t>(world) * k * kTopKEntryBytes}, DType::kUInt8);

  Launched launched;
  launched.bytes_raw = static_cast<uint64_t>(n) * sizeof(float);
  launched.bytes_compressed = static_cast<uint64_t>(k * kTopKEntryBytes);
  RecordBytes(launched.bytes_raw, launched.bytes_compressed);
  launched.works.push_back(pg.AllGather(payload, gathered));
  launched.finalize = [bucket, gathered, k, n, world]() mutable -> Status {
    float* dst = bucket.data<float>();
    for (int64_t i = 0; i < n; ++i) dst[i] = 0.0f;
    const uint8_t* in = gathered.data<uint8_t>();
    for (int r = 0; r < world; ++r) {
      const uint8_t* block =
          in + static_cast<int64_t>(r) * k * kTopKEntryBytes;
      for (int64_t s = 0; s < k; ++s) {
        uint32_t index32 = 0;
        float value = 0.0f;
        std::memcpy(&index32, block + s * kTopKEntryBytes, sizeof(index32));
        std::memcpy(&value, block + s * kTopKEntryBytes + sizeof(index32),
                    sizeof(value));
        if (static_cast<int64_t>(index32) >= n) {
          return Status::Internal(
              "topk payload corrupt: rank " + std::to_string(r) +
              " entry " + std::to_string(s) + " indexes element " +
              std::to_string(index32) + " of a " + std::to_string(n) +
              "-element bucket");
        }
        dst[index32] += value;
      }
    }
    return Status::OK();
  };
  return launched;
}

// ---- Hook registry ----------------------------------------------------------

std::shared_ptr<CommHook> MakeCommHookByName(const std::string& name) {
  if (name.empty() || name == "none") return nullptr;
  if (name == "fp16") return std::make_shared<Fp16CompressionHook>();
  if (name == "bf16") return std::make_shared<Bf16CompressionHook>();
  if (name == "onebit" || name == "1bit") {
    return std::make_shared<OneBitCompressionHook>();
  }
  if (name == "powersgd") return std::make_shared<PowerSGDCompressionHook>();
  if (name == "topk") return std::make_shared<TopKCompressionHook>();
  return nullptr;
}

bool IsValidCommHookName(const std::string& name) {
  return name.empty() || name == "none" || name == "1bit" ||
         MakeCommHookByName(name) != nullptr;
}

const std::vector<std::string>& CommHookNames() {
  static const std::vector<std::string> kNames = {"fp16", "bf16", "onebit",
                                                  "powersgd", "topk"};
  return kNames;
}

}  // namespace ddpkit::core
