#include "core/compression.h"

#include <cmath>

#include "common/check.h"

namespace ddpkit::core {

// ---- Fp16CompressionHook ------------------------------------------------------

CommHook::Launched Fp16CompressionHook::Launch(comm::ProcessGroup& pg,
                                               Tensor bucket,
                                               size_t /*bucket_id*/) {
  DDPKIT_CHECK(bucket.dtype() == DType::kFloat32);
  const int64_t n = bucket.numel();

  Tensor payload = Tensor::Empty({n}, DType::kFloat16, bucket.device_id());
  {
    const float* src = bucket.data<float>();
    uint16_t* dst = payload.data<uint16_t>();
    for (int64_t i = 0; i < n; ++i) dst[i] = Float32ToHalfBits(src[i]);
  }

  Launched launched;
  launched.work = pg.AllReduce(payload, comm::ReduceOp::kSum);
  launched.finalize = [bucket, payload]() mutable {
    const uint16_t* src = payload.data<uint16_t>();
    float* dst = bucket.data<float>();
    const int64_t n = bucket.numel();
    for (int64_t i = 0; i < n; ++i) dst[i] = HalfBitsToFloat32(src[i]);
  };
  return launched;
}

// ---- OneBitCompressionHook ------------------------------------------------------

CommHook::Launched OneBitCompressionHook::Launch(comm::ProcessGroup& pg,
                                                 Tensor bucket,
                                                 size_t bucket_id) {
  DDPKIT_CHECK(bucket.dtype() == DType::kFloat32);
  const int64_t n = bucket.numel();
  const int world = pg.world();

  // Error feedback: compress (gradient + residual), store the new residual.
  Tensor& residual = error_feedback_[bucket_id];
  if (!residual.defined()) residual = Tensor::Zeros({n});
  DDPKIT_CHECK_EQ(residual.numel(), n);

  std::vector<float> corrected(static_cast<size_t>(n));
  {
    const float* g = bucket.data<float>();
    const float* e = residual.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      corrected[static_cast<size_t>(i)] = g[i] + e[i];
    }
  }

  // Scale = mean absolute value; each element transmitted as sign * scale.
  double abs_sum = 0.0;
  for (float v : corrected) abs_sum += std::abs(v);
  const float scale =
      n > 0 ? static_cast<float>(abs_sum / static_cast<double>(n)) : 0.0f;

  const int64_t packed_len = (n + 7) / 8;
  Tensor signs = Tensor::Zeros({packed_len}, DType::kUInt8);
  {
    uint8_t* bits = signs.data<uint8_t>();
    for (int64_t i = 0; i < n; ++i) {
      if (corrected[static_cast<size_t>(i)] >= 0.0f) {
        bits[i / 8] = static_cast<uint8_t>(bits[i / 8] | (1u << (i % 8)));
      }
    }
  }
  // New residual: corrected - quantized(corrected).
  {
    float* e = residual.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      const float q = corrected[static_cast<size_t>(i)] >= 0.0f ? scale
                                                                : -scale;
      e[i] = corrected[static_cast<size_t>(i)] - q;
    }
  }

  Tensor scale_tensor = Tensor::Full({1}, scale);
  Tensor all_scales = Tensor::Zeros({static_cast<int64_t>(world)});
  Tensor all_signs =
      Tensor::Zeros({packed_len * world}, DType::kUInt8);

  // Two collectives on the same queue: scales then sign bitmaps. Data of
  // the first is complete before the second can complete (program order per
  // rank), so waiting on the second suffices.
  pg.AllGather(scale_tensor, all_scales);
  Launched launched;
  launched.work = pg.AllGather(signs, all_signs);
  launched.finalize = [bucket, all_scales, all_signs, packed_len, n,
                       world]() mutable {
    float* dst = bucket.data<float>();
    const float* scales = all_scales.data<float>();
    const uint8_t* bits = all_signs.data<uint8_t>();
    for (int64_t i = 0; i < n; ++i) dst[i] = 0.0f;
    for (int r = 0; r < world; ++r) {
      const float s = scales[r];
      const uint8_t* rank_bits = bits + r * packed_len;
      for (int64_t i = 0; i < n; ++i) {
        const bool positive = (rank_bits[i / 8] >> (i % 8)) & 1u;
        dst[i] += positive ? s : -s;
      }
    }
  };
  return launched;
}

}  // namespace ddpkit::core
