#include "core/zero_redundancy_optimizer.h"

#include <algorithm>

#include "common/check.h"

namespace ddpkit::core {

ZeroRedundancyOptimizer::ZeroRedundancyOptimizer(
    std::vector<Tensor> params,
    std::shared_ptr<comm::ProcessGroup> process_group,
    OptimizerFactory factory)
    : params_(std::move(params)), pg_(std::move(process_group)) {
  DDPKIT_CHECK(pg_ != nullptr);
  DDPKIT_CHECK(!params_.empty());
  DDPKIT_CHECK(factory != nullptr);

  // Greedy balanced partition: assign each parameter (in order, so every
  // rank derives the identical mapping) to the currently lightest shard.
  const int world = pg_->world();
  shards_.resize(static_cast<size_t>(world));
  owner_.resize(params_.size());
  std::vector<int64_t> load(static_cast<size_t>(world), 0);
  for (size_t i = 0; i < params_.size(); ++i) {
    int lightest = 0;
    for (int r = 1; r < world; ++r) {
      if (load[static_cast<size_t>(r)] <
          load[static_cast<size_t>(lightest)]) {
        lightest = r;
      }
    }
    shards_[static_cast<size_t>(lightest)].push_back(i);
    owner_[i] = lightest;
    load[static_cast<size_t>(lightest)] += params_[i].numel();
  }

  std::vector<Tensor> my_shard;
  for (size_t idx : shards_[static_cast<size_t>(pg_->rank())]) {
    my_shard.push_back(params_[idx]);
  }
  // A rank can own zero parameters in degenerate configurations; give the
  // wrapped optimizer an empty list rather than skipping construction so
  // Step() stays uniform.
  local_optimizer_ = factory(std::move(my_shard));
  DDPKIT_CHECK(local_optimizer_ != nullptr);
}

const std::vector<size_t>& ZeroRedundancyOptimizer::ShardForRank(
    int rank) const {
  DDPKIT_CHECK(rank >= 0 && rank < pg_->world());
  return shards_[static_cast<size_t>(rank)];
}

int ZeroRedundancyOptimizer::OwnerOf(size_t param_index) const {
  DDPKIT_CHECK_LT(param_index, owner_.size());
  return owner_[param_index];
}

void ZeroRedundancyOptimizer::Step() {
  // Local update on the owned shard only.
  if (!local_optimizer_->params().empty()) {
    local_optimizer_->Step();
  }
  // Publish every shard from its owner. All ranks issue the same broadcast
  // sequence (parameter order), satisfying the collective-ordering rule.
  std::vector<comm::WorkHandle> works;
  works.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    works.push_back(pg_->Broadcast(params_[i].Flatten(), owner_[i]));
  }
  for (auto& work : works) work->Wait(pg_->clock());
}

void ZeroRedundancyOptimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

}  // namespace ddpkit::core
