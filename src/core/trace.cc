#include "core/trace.h"

#include <cstdio>
#include <sstream>

#include "common/metrics.h"

namespace ddpkit::core {

void TraceRecorder::AddSpan(std::string name, std::string category, int rank,
                            double start_seconds, double end_seconds) {
  MutexLock lock(&mutex_);
  spans_.push_back(Span{std::move(name), std::move(category), rank,
                        start_seconds, end_seconds});
}

void TraceRecorder::AddFlowPoint(uint64_t flow_id, FlowPhase phase,
                                 std::string name, std::string category,
                                 int rank, double time_seconds) {
  MutexLock lock(&mutex_);
  flow_points_.push_back(FlowPoint{flow_id, phase, std::move(name),
                                   std::move(category), rank, time_seconds});
}

void TraceRecorder::AddInstant(std::string name, std::string category,
                               int rank, double time_seconds) {
  MutexLock lock(&mutex_);
  instants_.push_back(
      Instant{std::move(name), std::move(category), rank, time_seconds});
}

void TraceRecorder::Clear() {
  MutexLock lock(&mutex_);
  spans_.clear();
  flow_points_.clear();
  instants_.clear();
}

std::vector<TraceRecorder::Span> TraceRecorder::snapshot() const {
  MutexLock lock(&mutex_);
  return spans_;
}

std::vector<TraceRecorder::FlowPoint> TraceRecorder::flow_points() const {
  MutexLock lock(&mutex_);
  return flow_points_;
}

std::vector<TraceRecorder::Instant> TraceRecorder::instants() const {
  MutexLock lock(&mutex_);
  return instants_;
}

size_t TraceRecorder::size() const {
  MutexLock lock(&mutex_);
  return spans_.size() + flow_points_.size() + instants_.size();
}

namespace {

void AppendEscaped(std::ostringstream* os, const std::string& s) {
  // Full JSON escaping (control characters included): span names may carry
  // user-provided parameter or module names.
  std::string out;
  AppendJsonEscaped(&out, s);
  *os << out;
}

void AppendCommon(std::ostringstream* os, const std::string& name,
                  const std::string& category, int rank) {
  *os << "{\"name\":\"";
  AppendEscaped(os, name);
  *os << "\",\"cat\":\"";
  AppendEscaped(os, category);
  *os << "\",\"pid\":0,\"tid\":" << rank;
}

const char* FlowPhaseChar(TraceRecorder::FlowPhase phase) {
  switch (phase) {
    case TraceRecorder::FlowPhase::kStart:
      return "s";
    case TraceRecorder::FlowPhase::kStep:
      return "t";
    case TraceRecorder::FlowPhase::kEnd:
      return "f";
  }
  return "s";
}

}  // namespace

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<Span> spans;
  std::vector<FlowPoint> flows;
  std::vector<Instant> instants;
  {
    MutexLock lock(&mutex_);
    spans = spans_;
    flows = flow_points_;
    instants = instants_;
  }

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) os << ",";
    first = false;
    AppendCommon(&os, span.name, span.category, span.rank);
    os << ",\"ph\":\"X\",\"ts\":" << span.start_seconds * 1e6
       << ",\"dur\":" << (span.end_seconds - span.start_seconds) * 1e6 << "}";
  }
  for (const FlowPoint& fp : flows) {
    if (!first) os << ",";
    first = false;
    AppendCommon(&os, fp.name, fp.category, fp.rank);
    // bp:"e" binds flow end points to the enclosing slice, matching how
    // chrome://tracing draws arrows between spans.
    os << ",\"ph\":\"" << FlowPhaseChar(fp.phase) << "\",\"id\":" << fp.flow_id
       << ",\"ts\":" << fp.time_seconds * 1e6;
    if (fp.phase == FlowPhase::kEnd) os << ",\"bp\":\"e\"";
    os << "}";
  }
  for (const Instant& inst : instants) {
    if (!first) os << ",";
    first = false;
    AppendCommon(&os, inst.name, inst.category, inst.rank);
    os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << inst.time_seconds * 1e6
       << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const std::string json = ToChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace ddpkit::core
