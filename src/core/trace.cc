#include "core/trace.h"

#include <cstdio>
#include <sstream>

namespace ddpkit::core {

void TraceRecorder::AddSpan(std::string name, std::string category, int rank,
                            double start_seconds, double end_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(Span{std::move(name), std::move(category), rank,
                        start_seconds, end_seconds});
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

std::vector<TraceRecorder::Span> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

namespace {

void AppendEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *os << '\\';
    }
    *os << c;
  }
}

}  // namespace

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<Span> spans = snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    AppendEscaped(&os, span.name);
    os << "\",\"cat\":\"";
    AppendEscaped(&os, span.category);
    os << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << span.rank
       << ",\"ts\":" << span.start_seconds * 1e6
       << ",\"dur\":" << (span.end_seconds - span.start_seconds) * 1e6
       << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const std::string json = ToChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace ddpkit::core
