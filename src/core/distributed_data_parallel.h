#ifndef DDPKIT_CORE_DISTRIBUTED_DATA_PARALLEL_H_
#define DDPKIT_CORE_DISTRIBUTED_DATA_PARALLEL_H_

#include <memory>
#include <vector>

#include "comm/process_group.h"
#include "core/reducer.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace ddpkit::core {

/// Constructor knobs (paper §4.1 "Configurable Knobs"): process_group,
/// bucket_cap (bucket_cap_mb), and find_unused_parameters — plus extension
/// hooks.
struct DdpOptions {
  size_t bucket_cap_bytes = 25u << 20;
  size_t first_bucket_cap_bytes = 0;  // 0 = same as bucket_cap_bytes
  bool find_unused_parameters = false;
  /// Broadcast BatchNorm-style buffers from rank 0 before synced forwards
  /// (paper §4.1 "Model Buffers").
  bool broadcast_buffers = true;
  std::shared_ptr<CommHook> comm_hook;
  std::shared_ptr<sim::ComputeCostModel> compute_model;
  /// See ReducerOptions::gradient_as_bucket_view.
  bool gradient_as_bucket_view = false;
  /// Optional span recorder (forward/backward/comm timeline; see
  /// core/trace.h).
  std::shared_ptr<TraceRecorder> trace;
  /// Optional per-iteration telemetry sink (see ReducerOptions::telemetry);
  /// DDP additionally stamps each frame's forward time.
  std::shared_ptr<TelemetryLog> telemetry;
  /// Optional metrics registry shared by the reducer (ddp.*/reducer.*
  /// namespaces) and — when the same registry is handed to the backend —
  /// the process group (pg.* namespace).
  std::shared_ptr<MetricsRegistry> metrics;
  /// Watchdog (virtual seconds) applied to every collective DDP issues:
  /// state broadcasts, buffer broadcasts, and — through ReducerOptions —
  /// gradient-bucket all-reduces. A stalled or crashed peer surfaces as a
  /// typed sync_status() error instead of a hang.
  double collective_timeout_seconds = 30.0;
  /// See ReducerOptions::validate_bucket_layout.
  bool validate_bucket_layout = true;
};

/// The paper's primary contribution: an nn::Module wrapper that makes
/// distributed data-parallel training non-intrusive (wrap the model, keep
/// the training loop) and interceptive (the constructor inspects
/// parameters; Forward and autograd hooks give the implementation its
/// timing signals).
///
/// Correctness contract (§3): all replicas start from rank 0's parameter
/// and buffer state, and every synced backward leaves every replica holding
/// the same averaged gradients — so independent local optimizers keep the
/// replicas bit-identical.
class DistributedDataParallel : public nn::Module {
 public:
  DistributedDataParallel(std::shared_ptr<nn::Module> module,
                          std::shared_ptr<comm::ProcessGroup> process_group,
                          const DdpOptions& options = DdpOptions());

  /// Wraps the local module's forward (Algorithm 1 lines 8-11): broadcasts
  /// buffers if due, runs the module, then prepares the reducer (graph
  /// traversal / pending-count replenishment).
  Tensor Forward(const Tensor& input) override;

  /// Forward for modules with richer signatures: `fn` must invoke the local
  /// module and return its output tensor.
  template <typename Fn>
  Tensor ForwardWith(Fn&& fn) {
    PreForward();
    Tensor out = fn(*module_);
    PostForward({out});
    return out;
  }

  /// RAII context reproducing the paper's no_sync (§3.2.4): backward passes
  /// inside the scope skip gradient synchronization and accumulate locally;
  /// the first backward after the scope reduces everything.
  class NoSyncGuard {
   public:
    explicit NoSyncGuard(DistributedDataParallel* ddp) : ddp_(ddp) {
      previous_ = ddp_->sync_enabled_;
      ddp_->sync_enabled_ = false;
    }
    ~NoSyncGuard() { ddp_->sync_enabled_ = previous_; }
    NoSyncGuard(const NoSyncGuard&) = delete;
    NoSyncGuard& operator=(const NoSyncGuard&) = delete;

   private:
    DistributedDataParallel* ddp_;
    bool previous_;
  };
  NoSyncGuard no_sync() { return NoSyncGuard(this); }

  nn::Module& module() { return *module_; }
  Reducer& reducer() { return *reducer_; }
  comm::ProcessGroup& process_group() { return *pg_; }

  /// Per-parameter globally-used mask from the last synced backward (all
  /// ones unless find_unused_parameters). Feed to Optimizer::Step(mask) to
  /// keep momentum state untouched for globally-unused parameters.
  const std::vector<uint8_t>& globally_used_mask() const {
    return reducer_->globally_used_mask();
  }

  /// Communication health of this replica: the first error among DDP's own
  /// collectives (state/buffer broadcasts) and the reducer's
  /// (layout-validation desync, gradient all-reduce faults). Non-OK means
  /// gradient synchronization is permanently disabled — training continues
  /// locally; restart-from-checkpoint is the recovery path.
  Status sync_status() const {
    return comm_status_.ok() ? reducer_->sync_status() : comm_status_;
  }
  bool sync_disabled() const { return !sync_status().ok(); }

 private:
  void BroadcastInitialState();
  void PreForward();
  void PostForward(const std::vector<Tensor>& outputs);
  /// Records a failed DDP-issued collective (first error wins) and stops
  /// issuing broadcasts.
  void RecordCommFailure(Status status);

  std::shared_ptr<nn::Module> module_;
  std::shared_ptr<comm::ProcessGroup> pg_;
  DdpOptions options_;
  std::unique_ptr<Reducer> reducer_;
  Status comm_status_;
  bool sync_enabled_ = true;
  /// Buffers must be re-broadcast before the next synced forward whenever
  /// the previous synced iteration advanced them (paper §4.1).
  bool buffers_dirty_ = true;
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_DISTRIBUTED_DATA_PARALLEL_H_
