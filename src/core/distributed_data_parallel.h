#ifndef DDPKIT_CORE_DISTRIBUTED_DATA_PARALLEL_H_
#define DDPKIT_CORE_DISTRIBUTED_DATA_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comm/process_group.h"
#include "comm/rendezvous.h"
#include "core/reducer.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace ddpkit::core {

/// Inputs to elastic recovery (DistributedDataParallel::Recover). Every
/// survivor of one logical group must pass the same namespace, timeouts,
/// and extra_state key set; the factory runs after the rendezvous settles
/// membership.
struct RecoveryOptions {
  /// Store namespace for the rendezvous keys — typically the group's base
  /// name (SimWorld::RankContext::group_name).
  std::string rendezvous_namespace;
  /// Real-time budget for the survivor rendezvous (see
  /// comm::RendezvousOptions::timeout_seconds).
  double rendezvous_timeout_seconds = 5.0;
  /// Fewest survivors worth re-forming over; below it the rendezvous
  /// returns kTimedOut (a lone survivor cannot data-parallel train).
  int min_world = 2;
  /// Builds the replacement group for the sealed membership. Must mirror
  /// the original group's construction (backend, topology, composite
  /// shape) at the new generation — SimWorld::RankContext::make_group is
  /// exactly this.
  std::function<std::shared_ptr<comm::ProcessGroup>(
      uint64_t generation, int new_rank, int new_world)>
      group_factory;
  /// Extra named tensors resynced from the source rank alongside module
  /// parameters and buffers — pass Optimizer::named_state() here so
  /// momentum/moment buffers stay bit-identical across survivors.
  /// Broadcast in place, in list order; every survivor must pass the same
  /// names, dtypes, and shapes.
  std::vector<std::pair<std::string, Tensor>> extra_state;
};

/// What a completed recovery settled on.
struct RecoveryReport {
  uint64_t generation = 0;
  int new_rank = -1;
  int new_world = 0;
  /// Old rank whose state every survivor adopted (lowest surviving old
  /// rank — new rank 0 by construction).
  int source_old_rank = -1;
  /// Surviving old ranks, ascending; index = new rank.
  std::vector<int> survivors;
};

/// Constructor knobs (paper §4.1 "Configurable Knobs"): process_group,
/// bucket_cap (bucket_cap_mb), and find_unused_parameters — plus extension
/// hooks.
struct DdpOptions {
  size_t bucket_cap_bytes = 25u << 20;
  size_t first_bucket_cap_bytes = 0;  // 0 = same as bucket_cap_bytes
  bool find_unused_parameters = false;
  /// Broadcast BatchNorm-style buffers from rank 0 before synced forwards
  /// (paper §4.1 "Model Buffers").
  bool broadcast_buffers = true;
  std::shared_ptr<CommHook> comm_hook;
  std::shared_ptr<sim::ComputeCostModel> compute_model;
  /// See ReducerOptions::gradient_as_bucket_view.
  bool gradient_as_bucket_view = false;
  /// Optional span recorder (forward/backward/comm timeline; see
  /// core/trace.h).
  std::shared_ptr<TraceRecorder> trace;
  /// Optional per-iteration telemetry sink (see ReducerOptions::telemetry);
  /// DDP additionally stamps each frame's forward time.
  std::shared_ptr<TelemetryLog> telemetry;
  /// Optional metrics registry shared by the reducer (ddp.*/reducer.*
  /// namespaces) and — when the same registry is handed to the backend —
  /// the process group (pg.* namespace).
  std::shared_ptr<MetricsRegistry> metrics;
  /// Watchdog (virtual seconds) applied to every collective DDP issues:
  /// state broadcasts, buffer broadcasts, and — through ReducerOptions —
  /// gradient-bucket all-reduces. A stalled or crashed peer surfaces as a
  /// typed sync_status() error instead of a hang.
  double collective_timeout_seconds = 30.0;
  /// See ReducerOptions::validate_bucket_layout.
  bool validate_bucket_layout = true;
};

/// The paper's primary contribution: an nn::Module wrapper that makes
/// distributed data-parallel training non-intrusive (wrap the model, keep
/// the training loop) and interceptive (the constructor inspects
/// parameters; Forward and autograd hooks give the implementation its
/// timing signals).
///
/// Correctness contract (§3): all replicas start from rank 0's parameter
/// and buffer state, and every synced backward leaves every replica holding
/// the same averaged gradients — so independent local optimizers keep the
/// replicas bit-identical.
class DistributedDataParallel : public nn::Module {
 public:
  DistributedDataParallel(std::shared_ptr<nn::Module> module,
                          std::shared_ptr<comm::ProcessGroup> process_group,
                          const DdpOptions& options = DdpOptions());

  /// Wraps the local module's forward (Algorithm 1 lines 8-11): broadcasts
  /// buffers if due, runs the module, then prepares the reducer (graph
  /// traversal / pending-count replenishment).
  Tensor Forward(const Tensor& input) override;

  /// Forward for modules with richer signatures: `fn` must invoke the local
  /// module and return its output tensor.
  template <typename Fn>
  Tensor ForwardWith(Fn&& fn) {
    PreForward();
    Tensor out = fn(*module_);
    PostForward({out});
    return out;
  }

  /// RAII context reproducing the paper's no_sync (§3.2.4): backward passes
  /// inside the scope skip gradient synchronization and accumulate locally;
  /// the first backward after the scope reduces everything.
  class NoSyncGuard {
   public:
    explicit NoSyncGuard(DistributedDataParallel* ddp) : ddp_(ddp) {
      previous_ = ddp_->sync_enabled_;
      ddp_->sync_enabled_ = false;
    }
    ~NoSyncGuard() { ddp_->sync_enabled_ = previous_; }
    NoSyncGuard(const NoSyncGuard&) = delete;
    NoSyncGuard& operator=(const NoSyncGuard&) = delete;

   private:
    DistributedDataParallel* ddp_;
    bool previous_;
  };
  NoSyncGuard no_sync() { return NoSyncGuard(this); }

  nn::Module& module() { return *module_; }
  Reducer& reducer() { return *reducer_; }
  comm::ProcessGroup& process_group() { return *pg_; }

  /// Per-parameter globally-used mask from the last synced backward (all
  /// ones unless find_unused_parameters). Feed to Optimizer::Step(mask) to
  /// keep momentum state untouched for globally-unused parameters.
  const std::vector<uint8_t>& globally_used_mask() const {
    return reducer_->globally_used_mask();
  }

  /// Communication health of this replica: the first error among DDP's own
  /// collectives (state/buffer broadcasts) and the reducer's
  /// (layout-validation desync, gradient all-reduce faults). Non-OK means
  /// gradient synchronization is disabled — training continues locally
  /// until either Recover() re-forms the group over the survivors or the
  /// job restarts from a checkpoint.
  [[nodiscard]] Status sync_status() const {
    return comm_status_.ok() ? reducer_->sync_status() : comm_status_;
  }
  bool sync_disabled() const { return !sync_status().ok(); }

  /// Elastic recovery, stage 1 (DESIGN.md §9): retire the current group
  /// generation, rendezvous with the surviving ranks through the Store,
  /// and swap in the factory-built replacement group. In-flight works on
  /// the old generation fail fast and typed (kInvalidGeneration) — a
  /// straggler still issuing on it can never hang. On success `*result`
  /// (optional) holds the sealed membership. Does NOT resync state: call
  /// Recover() unless you are restoring from a checkpoint yourself.
  /// Failure leaves sync disabled with the returned status.
  [[nodiscard]] Status AbortAndRendezvous(const RecoveryOptions& options,
                                          comm::RendezvousResult* result);

  /// Full elastic recovery (DESIGN.md §9): AbortAndRendezvous, then
  /// deterministic resync — the lowest surviving old rank (new rank 0)
  /// broadcasts its parameters, float32 buffers, and `extra_state`
  /// tensors; the reducer drops the retired group, clears its sync error,
  /// and rebuilds default-layout buckets on the new generation so the
  /// continued run stays bit-exact with a fresh new_world job started from
  /// the source's state. Call between iterations on the rank's own thread
  /// (after backward returned; before Optimizer::Step for the faulted
  /// iteration — that iteration's gradients are incomplete and must be
  /// discarded). Lost work: everything since the last completed optimizer
  /// step on the source.
  [[nodiscard]] Status Recover(const RecoveryOptions& options,
                               RecoveryReport* report = nullptr);

 private:
  void BroadcastInitialState();
  void PreForward();
  void PostForward(const std::vector<Tensor>& outputs);
  /// Records a failed DDP-issued collective (first error wins) and stops
  /// issuing broadcasts.
  void RecordCommFailure(Status status);

  std::shared_ptr<nn::Module> module_;
  std::shared_ptr<comm::ProcessGroup> pg_;
  DdpOptions options_;
  std::unique_ptr<Reducer> reducer_;
  Status comm_status_;
  bool sync_enabled_ = true;
  /// Buffers must be re-broadcast before the next synced forward whenever
  /// the previous synced iteration advanced them (paper §4.1).
  bool buffers_dirty_ = true;
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_DISTRIBUTED_DATA_PARALLEL_H_
