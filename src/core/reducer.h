#ifndef DDPKIT_CORE_REDUCER_H_
#define DDPKIT_CORE_REDUCER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "comm/process_group.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/bucketing.h"
#include "core/compression.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "sim/compute_cost_model.h"
#include "tensor/tensor.h"

namespace ddpkit::core {

/// Configuration knobs exposed through the DDP constructor (paper §4.1):
/// bucket_cap_bytes <-> bucket_cap_mb, find_unused_parameters, plus the
/// extension hooks.
struct ReducerOptions {
  /// Bucket capacity; 0 means one AllReduce per gradient (the paper's 0 MB
  /// baseline). Default 25 MB per the paper.
  size_t bucket_cap_bytes = 25u << 20;
  /// Capacity of the first-launched bucket; 0 = same as bucket_cap_bytes.
  size_t first_bucket_cap_bytes = 0;
  /// Traverse the autograd graph each forward to proactively mark
  /// parameters outside the iteration's sub-graph (paper §3.2.3) and track
  /// a globally-unused bitmap.
  bool find_unused_parameters = false;
  /// Optional gradient-compression hook (§6.2.3 extension).
  std::shared_ptr<CommHook> comm_hook;
  /// Memory/copy optimization: make each parameter's .grad a view into its
  /// bucket slot, eliminating both the hook-time grad->bucket copy and the
  /// finalize-time bucket->grad copy-back ("every backward pass copies
  /// tensors from all parameter gradients to buckets, and averaged
  /// gradients are copied back" — §4.2 names these copies as a cost).
  /// Incompatible with find_unused_parameters: a view cannot "stay intact"
  /// while its bucket is reduced.
  bool gradient_as_bucket_view = false;
  /// Optional virtual-time charging: when set, each gradient hook advances
  /// the rank's clock by the modeled per-op backward cost, so the real
  /// thread-backed stack produces paper-comparable iteration latencies.
  std::shared_ptr<sim::ComputeCostModel> compute_model;
  /// Optional span recorder: per-gradient compute spans (when a compute
  /// model is attached), per-bucket AllReduce request->completion spans,
  /// flow arrows linking grad-ready -> bucket launch -> completion, and
  /// per-iteration frame markers.
  std::shared_ptr<TraceRecorder> trace;
  /// Optional per-iteration telemetry sink: every synced backward appends
  /// one DDPTelemetry record (Fig 6 breakdown, copy costs, per-bucket
  /// latencies); aborted syncs append a record with synced=false.
  std::shared_ptr<TelemetryLog> telemetry;
  /// Optional metrics registry: finalize-time counters and latency
  /// histograms (ddp.* and reducer.* namespaces).
  std::shared_ptr<MetricsRegistry> metrics;
  /// Per-bucket watchdog (virtual seconds): a bucket AllReduce that takes
  /// longer than this to complete after FinalizeBackward starts waiting
  /// surfaces as a kTimedOut sync_status() instead of blocking forever.
  /// Non-positive disables the watchdog.
  double collective_timeout_seconds = 30.0;
  /// Cross-rank bucket-layout validation at construction: every rank
  /// publishes its bucket signature through the process group's Store and
  /// checks the peers'. A mismatch (desynchronized rebuild, divergent
  /// bucket_cap) is reported through sync_status() naming the offending
  /// rank and bucket, and gradient synchronization is disabled — the
  /// clean-abort alternative to the paper's "incorrect reduction result or
  /// program crash". Skipped when the backend exposes no Store.
  bool validate_bucket_layout = true;
  /// Real-time budget for the validation handshake above.
  double validation_timeout_seconds = 20.0;
};

/// Core gradient-reduction engine (the paper's reducer.cpp, §4.2). Four
/// responsibilities: parameter-to-bucket mapping, autograd post-hooks,
/// in-order asynchronous bucket AllReduce, and globally-unused-parameter
/// tracking. Runs entirely on its rank's thread; cross-rank coordination
/// happens inside the process group.
class Reducer {
 public:
  Reducer(std::vector<Tensor> params,
          std::shared_ptr<comm::ProcessGroup> process_group,
          const ReducerOptions& options);
  ~Reducer();

  Reducer(const Reducer&) = delete;
  Reducer& operator=(const Reducer&) = delete;

  /// Called by DDP::Forward after the local forward pass (Algorithm 1 lines
  /// 8-11). Resets per-iteration state, and — in sync mode with
  /// find_unused_parameters — traverses the graph from `outputs`, marking
  /// out-of-graph parameters ready so their buckets cannot hang.
  /// `will_sync` is false inside no_sync: hooks then only record usage and
  /// let gradients accumulate.
  void PrepareForBackward(const std::vector<Tensor>& outputs, bool will_sync)
      EXCLUDES(mu_);

  /// True once the most recent synced backward has completed its reduction
  /// (all AllReduce waits done, gradients averaged and written back).
  bool backward_finalized() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return finalized_;
  }

  /// Communication health. OK while every sync has succeeded. Becomes a
  /// typed error when construction-time validation detects a cross-rank
  /// bucket-layout desync (kFailedPrecondition naming rank and bucket) or
  /// when a synced backward hits a collective fault (kTimedOut /
  /// kInternal, naming the bucket and — when known — the offending rank).
  /// Any non-OK status permanently disables further gradient
  /// synchronization on this replica: backwards still accumulate local
  /// gradients, but no collectives are issued (restart-from-checkpoint is
  /// the recovery path, as with a dead NCCL communicator).
  ///
  /// Like the other const&-returning accessors below, this returns a
  /// reference into reducer state: safe to hold only while no backward /
  /// rebuild is running on another thread (the quiescent-read contract —
  /// callers read between iterations on the rank's own thread).
  const Status& sync_status() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return sync_status_;
  }

  /// True when gradient synchronization has been disabled by an error.
  bool sync_disabled() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return !sync_status_.ok();
  }

  /// Per-parameter "used by any rank since last sync" mask; all ones when
  /// find_unused_parameters is off. Valid after a finalized backward.
  const std::vector<uint8_t>& globally_used_mask() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return globally_used_;
  }

  /// Parameter indices in the order their gradients became ready during
  /// the last synced backward (the §6.2.1 trace).
  const std::vector<size_t>& last_ready_order() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return last_ready_order_;
  }

  /// §6.2.1 extension: re-bucket according to an observed gradient-ready
  /// order. Call between iterations; returns true if the assignment
  /// changed.
  ///
  /// This is a COLLECTIVE operation when the backend exposes a Store and
  /// world > 1: rank 0 broadcasts its last_ready_order() through the Store
  /// and every rank rebuilds from that one order (as PyTorch's
  /// _rebuild_buckets does). Rebuilding from each rank's *local* order
  /// would silently desynchronize bucket layouts whenever hook orders
  /// diverge (jitter, stragglers, divergent control flow) — every later
  /// AllReduce would then mix unrelated parameters. All ranks must call
  /// this the same number of times at the same point in training; a rank
  /// that rebuilds alone surfaces as a typed kTimedOut sync_status() after
  /// validation_timeout_seconds instead of corrupting gradients. After
  /// every coordinated rebuild the cross-rank layout validation handshake
  /// re-runs (validate_bucket_layout).
  bool RebuildBucketsFromTrace() EXCLUDES(mu_);

  /// Elastic-recovery re-init: adopt `new_group` (the shrunken,
  /// rendezvous-formed replacement), drain any in-flight works from the
  /// retired group non-throwingly, clear the sync-disabling error, and
  /// rebuild buckets from the DEFAULT assignment — the layout a freshly
  /// constructed reducer over the same parameters would pick, so a
  /// recovered run stays bit-exact with a fresh run started from the same
  /// state (ring all-reduce summation order depends on bucket chunking).
  /// A fresh Store instance id is allocated and the cross-rank layout
  /// validation handshake re-runs on the new group. Call between
  /// iterations on the rank's own thread (after DDP's recovery broadcasts).
  /// Returns the post-reset sync status.
  [[nodiscard]] Status ResetAfterRecovery(
      std::shared_ptr<comm::ProcessGroup> new_group) EXCLUDES(mu_);

  /// Records the virtual-time cost of the preceding forward pass; consumed
  /// into the next iteration's telemetry frame. Called by the DDP wrapper.
  void RecordForwardSeconds(double seconds) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    pending_forward_seconds_ = seconds;
  }

  /// Per-parameter "used locally since last successful sync" bitmap
  /// (telemetry/introspection; cleared by finalize and by AbortSync).
  const std::vector<uint8_t>& locally_used() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return locally_used_;
  }

  const BucketAssignment& assignment() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return assignment_;
  }
  size_t num_buckets() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return buckets_.size();
  }
  size_t bucket_bytes(size_t b) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return buckets_[b].bytes;
  }

  struct Stats {
    uint64_t allreduces_launched = 0;
    uint64_t bitmap_allreduces = 0;
    uint64_t bytes_reduced = 0;
    uint64_t rebuilds = 0;
    uint64_t finalized_backwards = 0;
    uint64_t sync_failures = 0;
    /// Wire-byte accounting: what the gradient payload would have cost
    /// uncompressed vs. what the comm hook actually put on the wire. Equal
    /// when no hook is installed.
    uint64_t bytes_wire_raw = 0;
    uint64_t bytes_wire_compressed = 0;
  };
  const Stats& stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  struct Slot {
    size_t param_index;
    int64_t offset;
    int64_t length;
  };
  struct Bucket {
    Tensor buffer;  // flat float32, same device as its parameters
    std::vector<Slot> slots;
    size_t pending = 0;
    bool ready = false;
    bool launched = false;
    size_t bytes = 0;
    comm::WorkHandle work;
    CommHook::Launched hook_launched;
    double launch_clock = 0.0;  // for trace spans
  };

  void InstallHooks();
  void InitBuckets(const BucketAssignment& assignment) REQUIRES(mu_);
  /// Store-based cross-rank bucket-signature handshake (see
  /// ReducerOptions::validate_bucket_layout). Sets sync_status_ on desync.
  /// Re-runnable: each invocation uses a fresh epoch of Store keys, so the
  /// handshake repeats after every coordinated bucket rebuild. Holding mu_
  /// across the Store round-trips is deadlock-free: peers answer from
  /// their own reducer instances and never need this rank's mu_.
  void ValidateCrossRankLayout() REQUIRES(mu_);
  /// Flow-arrow id for one bucket of the current iteration, unique across
  /// ranks and iterations.
  uint64_t FlowId(size_t bucket_id) const REQUIRES(mu_);
  /// Appends the current telemetry frame (if a sink is attached and a
  /// synced backward is in flight). `synced` is false on abort paths.
  void EmitTelemetryFrame(bool synced) REQUIRES(mu_);
  /// Records a failed sync: stamps sync_status_ (first error wins),
  /// disables future syncs, and unwinds per-iteration state so the replica
  /// survives to read the diagnostic.
  void AbortSync(Status status) REQUIRES(mu_);
  /// Releases every collective handle a bucket holds (the default-path
  /// AllReduce and all comm-hook works) non-throwingly: a handle whose work
  /// did complete still advances the clock to its completion, everything
  /// else is simply dropped.
  void DrainBucketWorks(Bucket& bucket) REQUIRES(mu_);
  /// gradient_as_bucket_view: repoint every param.grad at its bucket slot,
  /// preserving any existing gradient values.
  void InstallGradViews() REQUIRES(mu_);
  void ResetIterationState() REQUIRES(mu_);
  /// Post-hook entry point (Algorithm 1 lines 12-21). Locks mu_ for the
  /// whole hook: autograd fires it on the rank's own backward thread,
  /// which holds no reducer lock at that point.
  void AutogradHook(size_t param_index) EXCLUDES(mu_);
  void MarkParamReady(size_t param_index, bool via_hook) REQUIRES(mu_);
  void MaybeLaunchBuckets() REQUIRES(mu_);
  void LaunchBucket(size_t bucket_id) REQUIRES(mu_);
  /// Waits on the in-flight bucket works while holding mu_. Deadlock-free
  /// by the lock hierarchy (DESIGN.md §8): completing a collective takes
  /// GroupState::mutex and Work::mutex_, never a peer Reducer's mu_.
  void FinalizeBackward() REQUIRES(mu_);

  // Immutable after construction (no guard needed): the parameter set,
  // its metadata, the options block, and the hook liveness token are
  // written once in the constructor and only read afterwards.
  std::vector<Tensor> params_;
  std::vector<ParamMeta> metas_;
  std::unordered_map<const void*, size_t> param_index_;
  ReducerOptions options_;
  std::shared_ptr<bool> alive_;  // guards accumulator hooks against dtor

  /// Guards all mutable reducer state below. Root of this replica's lock
  /// hierarchy: held while calling into the process group (GroupState
  /// mutex, Work mutex, Store mutex are all acquired strictly after it,
  /// never the other way around). See DESIGN.md §8.
  mutable Mutex mu_;

  // Swapped by elastic recovery (ResetAfterRecovery), read everywhere else
  // under mu_: the process-group handle and the Store instance id pairing
  // the Nth reducer across ranks.
  std::shared_ptr<comm::ProcessGroup> pg_ GUARDED_BY(mu_);
  int64_t store_instance_ GUARDED_BY(mu_) = -1;

  BucketAssignment assignment_ GUARDED_BY(mu_);
  std::vector<Bucket> buckets_ GUARDED_BY(mu_);
  std::vector<size_t> param_to_bucket_ GUARDED_BY(mu_);
  /// param_index -> its slot (offset/length in its bucket's buffer),
  /// precomputed at bucket-build time so MarkParamReady does no O(slots)
  /// scan on the per-gradient hot path.
  std::vector<Slot> param_slots_ GUARDED_BY(mu_);

  // Per-iteration state.
  std::vector<uint8_t> param_ready_ GUARDED_BY(mu_);
  // In-order launch cursor (§3.2.3 rule 1).
  size_t next_bucket_ GUARDED_BY(mu_) = 0;
  bool expect_hooks_ GUARDED_BY(mu_) = false;
  bool armed_ GUARDED_BY(mu_) = false;
  bool finalized_ GUARDED_BY(mu_) = false;
  std::vector<size_t> ready_order_ GUARDED_BY(mu_);

  // Usage tracking (accumulates across no_sync iterations, §3.2.4).
  std::vector<uint8_t> locally_used_ GUARDED_BY(mu_);
  std::vector<uint8_t> globally_used_ GUARDED_BY(mu_);
  // uint8, lives on "CPU" then copied (paper §4.2).
  Tensor used_bitmap_ GUARDED_BY(mu_);

  std::vector<size_t> last_ready_order_ GUARDED_BY(mu_);
  Status sync_status_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);

  // Store-coordination epochs that keep validation and rebuild key
  // namespaces in lockstep across ranks. The *_swept_ cursors track the
  // oldest epoch whose Store keys have not been deleted yet: once a
  // handshake proves every rank has consumed epoch e, everything below e
  // is garbage-collected so long-running jobs keep a bounded key count.
  uint64_t layout_epoch_ GUARDED_BY(mu_) = 0;
  uint64_t rebuild_epoch_ GUARDED_BY(mu_) = 0;
  uint64_t layout_swept_ GUARDED_BY(mu_) = 0;
  uint64_t rebuild_swept_ GUARDED_BY(mu_) = 0;

  // Telemetry state for the in-flight iteration.
  DDPTelemetry frame_ GUARDED_BY(mu_);
  bool frame_active_ GUARDED_BY(mu_) = false;
  double backward_start_clock_ GUARDED_BY(mu_) = 0.0;
  double pending_forward_seconds_ GUARDED_BY(mu_) = 0.0;
  uint64_t iteration_ GUARDED_BY(mu_) = 0;
};

}  // namespace ddpkit::core

#endif  // DDPKIT_CORE_REDUCER_H_
