#include "comm/store_tcp.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "comm/net_socket.h"

// ddplint: allow-file(banned-nondeterminism) the TCP store is an
// out-of-band wall-clock service shared by independent processes; its
// waits and slices are real time by definition (DESIGN.md §11).
// ddplint: allow-file(raw-wire-io) owns the server wake pipe; everything
// socket-shaped goes through comm/net_socket.h helpers.

namespace ddpkit::comm {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// RPC opcodes. Integers cross the wire fixed-width native-endian: the
/// launcher and its workers share one host by design (localhost runtime).
enum Op : uint8_t {
  kOpSet = 1,
  kOpTryGet = 2,
  kOpAdd = 3,
  kOpGetBounded = 4,
  kOpWaitBounded = 5,
  kOpNumKeys = 6,
  kOpDeleteKey = 7,
  kOpDeletePrefix = 8,
  kOpPing = 9,
};

/// Server-side granularity of a held bounded wait; bounds how long Stop()
/// can lag behind a connection thread parked in a store wait.
constexpr double kServerSliceSeconds = 0.05;

/// Ceiling on one RPC round trip beyond its own wait budget; generous so
/// it only fires on a genuinely wedged peer, not a slow CI machine.
constexpr double kRpcGraceSeconds = 20.0;

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutStr(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked reader over a received payload.
struct Reader {
  const std::vector<uint8_t>& buf;
  size_t off = 0;

  bool Raw(void* dst, size_t n) {
    if (off + n > buf.size()) return false;
    std::memcpy(dst, buf.data() + off, n);
    off += n;
    return true;
  }
  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (off + n > buf.size()) return false;
    s->assign(reinterpret_cast<const char*>(buf.data()) + off, n);
    off += n;
    return true;
  }
  bool Done() const { return off == buf.size(); }
};

double ElapsedSeconds(SteadyClock::time_point since) {
  return std::chrono::duration<double>(SteadyClock::now() - since).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

/// Re-exposes the protected bounded primitives: the connection handlers
/// loop them in short slices so a shutdown never strands a thread inside a
/// long condition-variable wait.
class StoreServerTcp::ServerStore : public Store {
 public:
  using Store::DoAdd;
  using Store::DoDeleteKey;
  using Store::DoDeletePrefix;
  using Store::DoGetBounded;
  using Store::DoNumKeys;
  using Store::DoSet;
  using Store::DoTryGet;
  using Store::DoWaitBounded;
};

Result<std::unique_ptr<StoreServerTcp>> StoreServerTcp::Start(
    const std::string& host, int port) {
  Result<int> listen_fd = ListenTcp(host, port);
  if (!listen_fd.ok()) return listen_fd.status();
  Result<int> bound_port = ListenPort(listen_fd.value());
  if (!bound_port.ok()) {
    CloseFd(listen_fd.value());
    return bound_port.status();
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    CloseFd(listen_fd.value());
    return Status::Internal("pipe() failed for store server wake pipe");
  }
  return std::unique_ptr<StoreServerTcp>(
      new StoreServerTcp(host, bound_port.value(), listen_fd.value(),
                         pipe_fds[0], pipe_fds[1]));
}

StoreServerTcp::StoreServerTcp(std::string host, int port, int listen_fd,
                               int wake_rfd, int wake_wfd)
    : host_(std::move(host)),
      port_(port),
      listen_fd_(listen_fd),
      wake_rfd_(wake_rfd),
      wake_wfd_(wake_wfd),
      store_(std::make_unique<ServerStore>()) {
  accept_thread_ = std::thread(&StoreServerTcp::AcceptLoop, this);
}

StoreServerTcp::~StoreServerTcp() { Stop(); }

Store& StoreServerTcp::backing() { return *store_; }

void StoreServerTcp::Stop() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  // Wake every thread parked in poll(): one byte is enough, the pipe is
  // never drained.
  const char wake = 'x';
  (void)!write(wake_wfd_, &wake, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<uint64_t, std::thread> conns;
  {
    MutexLock lock(&conn_mutex_);
    conns.swap(conn_threads_);
    finished_conns_.clear();
  }
  for (auto& [id, t] : conns) {
    if (t.joinable()) t.join();
  }
  CloseFd(listen_fd_);
  CloseFd(wake_rfd_);
  CloseFd(wake_wfd_);
  listen_fd_ = wake_rfd_ = wake_wfd_ = -1;
}

void StoreServerTcp::ReapFinishedConnections() {
  // Finished threads have only their epilogue left, so these joins do not
  // block the accept path. Joining outside conn_mutex_ keeps the lock off
  // the (tiny) join wait.
  std::vector<std::thread> done;
  {
    MutexLock lock(&conn_mutex_);
    for (uint64_t id : finished_conns_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      done.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conns_.clear();
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

size_t StoreServerTcp::tracked_connections() {
  MutexLock lock(&conn_mutex_);
  return conn_threads_.size();
}

void StoreServerTcp::AcceptLoop() {
  for (;;) {
    Result<int> fd = AcceptWithDeadline(listen_fd_, Deadline::Never(),
                                        wake_rfd_);
    if (!fd.ok()) return;  // aborted by Stop() or listener torn down
    // Reap before admitting: a churning client (connect, one RPC, reset —
    // the self-healing backend's re-mesh pattern) must not accumulate one
    // dead thread per cycle until Stop().
    ReapFinishedConnections();
    MutexLock lock(&conn_mutex_);
    if (shutdown_.load()) {
      CloseFd(fd.value());
      return;
    }
    const uint64_t id = next_conn_id_++;
    conn_threads_.emplace(id, std::thread(&StoreServerTcp::ServeConnection,
                                          this, id, fd.value()));
  }
}

void StoreServerTcp::ServeConnection(uint64_t conn_id, int fd) {
  for (;;) {
    Result<std::vector<uint8_t>> frame =
        RecvFrame(fd, Deadline::Never(), wake_rfd_);
    if (!frame.ok()) break;  // client gone, or Stop() woke us
    std::vector<uint8_t> response;
    if (!HandleRequest(frame.value(), &response)) break;
    const Status sent = SendFrame(fd, response.data(), response.size(),
                                  Deadline::After(kRpcGraceSeconds),
                                  wake_rfd_);
    if (!sent.ok()) break;
  }
  CloseFd(fd);
  // Announce completion so the accept loop can reap this thread; must be
  // the last touch of server state.
  MutexLock lock(&conn_mutex_);
  finished_conns_.push_back(conn_id);
}

bool StoreServerTcp::HandleRequest(const std::vector<uint8_t>& request,
                                   std::vector<uint8_t>* response) {
  Reader r{request};
  uint8_t op = 0;
  if (!r.U8(&op)) return false;
  switch (op) {
    case kOpSet: {
      std::string key, value;
      if (!r.Str(&key) || !r.Str(&value) || !r.Done()) return false;
      const Status status = store_->DoSet(key, value);
      return status.ok();  // in-memory DoSet cannot fail
    }
    case kOpTryGet: {
      std::string key, value;
      if (!r.Str(&key) || !r.Done()) return false;
      bool found = false;
      if (!store_->DoTryGet(key, &value, &found).ok()) return false;
      PutU8(response, found ? 1 : 0);
      if (found) PutStr(response, value);
      return true;
    }
    case kOpAdd: {
      std::string key;
      int64_t delta = 0;
      if (!r.Str(&key) || !r.I64(&delta) || !r.Done()) return false;
      Result<int64_t> result = store_->DoAdd(key, delta);
      if (!result.ok()) return false;
      PutI64(response, result.value());
      return true;
    }
    case kOpGetBounded: {
      std::string key;
      double timeout = 0.0;
      if (!r.Str(&key) || !r.F64(&timeout) || !r.Done()) return false;
      // Sliced wait: stays responsive to Stop() and bounds how long this
      // connection's channel is held.
      const auto start = SteadyClock::now();
      for (;;) {
        const double remaining = timeout - ElapsedSeconds(start);
        const double slice =
            std::clamp(remaining, 0.0, kServerSliceSeconds);
        Result<std::string> value = store_->DoGetBounded(key, slice);
        if (value.ok()) {
          PutU8(response, 1);
          PutStr(response, value.value());
          return true;
        }
        if (value.status().code() != StatusCode::kTimedOut) return false;
        if (shutdown_.load() || remaining <= 0.0) {
          PutU8(response, 0);
          return true;
        }
      }
    }
    case kOpWaitBounded: {
      uint32_t count = 0;
      double timeout = 0.0;
      if (!r.U32(&count) || count > 4096) return false;
      std::vector<std::string> keys(count);
      for (auto& key : keys) {
        if (!r.Str(&key)) return false;
      }
      if (!r.F64(&timeout) || !r.Done()) return false;
      const auto start = SteadyClock::now();
      for (;;) {
        const double remaining = timeout - ElapsedSeconds(start);
        const double slice =
            std::clamp(remaining, 0.0, kServerSliceSeconds);
        const Status status = store_->DoWaitBounded(keys, slice);
        if (status.ok()) {
          PutU8(response, 1);
          return true;
        }
        if (status.code() != StatusCode::kTimedOut) return false;
        if (shutdown_.load() || remaining <= 0.0) {
          PutU8(response, 0);
          return true;
        }
      }
    }
    case kOpNumKeys: {
      if (!r.Done()) return false;
      Result<int64_t> n = store_->DoNumKeys();
      if (!n.ok()) return false;
      PutI64(response, n.value());
      return true;
    }
    case kOpDeleteKey: {
      std::string key;
      if (!r.Str(&key) || !r.Done()) return false;
      Result<int64_t> n = store_->DoDeleteKey(key);
      if (!n.ok()) return false;
      PutI64(response, n.value());
      return true;
    }
    case kOpDeletePrefix: {
      std::string prefix;
      if (!r.Str(&prefix) || !r.Done()) return false;
      Result<int64_t> n = store_->DoDeletePrefix(prefix);
      if (!n.ok()) return false;
      PutI64(response, n.value());
      return true;
    }
    case kOpPing: {
      return r.Done();
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

StoreClientTcp::StoreClientTcp(std::string host, int port)
    : StoreClientTcp(std::move(host), port, Options()) {}

StoreClientTcp::StoreClientTcp(std::string host, int port, Options options)
    : host_(std::move(host)), port_(port), options_(options) {}

StoreClientTcp::~StoreClientTcp() {
  MutexLock lock(&rpc_mutex_);
  CloseFd(fd_);
  fd_ = -1;
}

Result<std::vector<uint8_t>> StoreClientTcp::Rpc(
    const std::vector<uint8_t>& request, double deadline_seconds) {
  MutexLock lock(&rpc_mutex_);
  if (fd_ < 0) {
    // ddplint: allow(blocking-under-lock) rpc_mutex_ exists to serialize
    // whole RPCs on the single connection; holders block only on the store
    // SERVER (a separate process that never takes client locks), every
    // wait below is deadline-bounded, and rpc_mutex_ is a §8 level below
    // everything that calls into the store client.
    Result<int> fd = ConnectWithDeadline(
        host_, port_, Deadline::After(options_.connect_timeout_seconds));
    if (!fd.ok()) {
      return Status::Internal("store server " + host_ + ":" +
                              std::to_string(port_) +
                              " unreachable: " + fd.status().message());
    }
    fd_ = fd.value();
  }
  const Deadline deadline = Deadline::After(deadline_seconds);
  // ddplint: allow(blocking-under-lock) serialized RPC frame exchange with
  // the store server; deadline-bounded, no lock-holder on the peer side
  // (see the ConnectWithDeadline waiver above).
  Status sent = SendFrame(fd_, request.data(), request.size(), deadline);
  if (sent.ok()) {
    // ddplint: allow(blocking-under-lock) same serialized-RPC argument as
    // the SendFrame half of this exchange.
    Result<std::vector<uint8_t>> response = RecvFrame(fd_, deadline);
    if (response.ok()) return response;
    sent = response.status();
  }
  // Any failure leaves the stream unsynchronized; drop the connection so
  // the next attempt (the retry tiers re-call us) reconnects cleanly.
  CloseFd(fd_);
  fd_ = -1;
  return Status::Internal("store RPC to " + host_ + ":" +
                          std::to_string(port_) +
                          " failed: " + sent.message());
}

Status StoreClientTcp::Ping() {
  std::vector<uint8_t> request;
  PutU8(&request, kOpPing);
  return Rpc(request, kRpcGraceSeconds).status();
}

Status StoreClientTcp::DoSet(const std::string& key,
                             const std::string& value) {
  std::vector<uint8_t> request;
  PutU8(&request, kOpSet);
  PutStr(&request, key);
  PutStr(&request, value);
  return Rpc(request, kRpcGraceSeconds).status();
}

Status StoreClientTcp::DoTryGet(const std::string& key, std::string* value,
                                bool* found) {
  std::vector<uint8_t> request;
  PutU8(&request, kOpTryGet);
  PutStr(&request, key);
  Result<std::vector<uint8_t>> response = Rpc(request, kRpcGraceSeconds);
  if (!response.ok()) return response.status();
  Reader r{response.value()};
  uint8_t present = 0;
  if (!r.U8(&present)) return Status::Internal("malformed TryGet response");
  *found = present != 0;
  if (*found && !r.Str(value)) {
    return Status::Internal("malformed TryGet response");
  }
  return Status::OK();
}

Result<int64_t> StoreClientTcp::DoAdd(const std::string& key, int64_t delta) {
  std::vector<uint8_t> request;
  PutU8(&request, kOpAdd);
  PutStr(&request, key);
  PutI64(&request, delta);
  Result<std::vector<uint8_t>> response = Rpc(request, kRpcGraceSeconds);
  if (!response.ok()) return response.status();
  Reader r{response.value()};
  int64_t result = 0;
  if (!r.I64(&result)) return Status::Internal("malformed Add response");
  return result;
}

Result<std::string> StoreClientTcp::DoGetBounded(const std::string& key,
                                                 double timeout_seconds) {
  // Sliced client-side too: each RPC asks the server to hold the wait for
  // at most slice_seconds, so one blocked Get never monopolizes the RPC
  // channel against concurrent threads sharing this client.
  const auto start = SteadyClock::now();
  for (;;) {
    const double remaining = timeout_seconds - ElapsedSeconds(start);
    const double slice = std::clamp(remaining, 0.0, options_.slice_seconds);
    std::vector<uint8_t> request;
    PutU8(&request, kOpGetBounded);
    PutStr(&request, key);
    PutF64(&request, slice);
    Result<std::vector<uint8_t>> response =
        Rpc(request, slice + kRpcGraceSeconds);
    if (!response.ok()) return response.status();
    Reader r{response.value()};
    uint8_t ok = 0;
    if (!r.U8(&ok)) return Status::Internal("malformed Get response");
    if (ok != 0) {
      std::string value;
      if (!r.Str(&value)) return Status::Internal("malformed Get response");
      return value;
    }
    if (timeout_seconds - ElapsedSeconds(start) <= 0.0) {
      return Status::TimedOut("store key '" + key + "' not set within " +
                              std::to_string(timeout_seconds) + "s (tcp)");
    }
  }
}

Status StoreClientTcp::DoWaitBounded(const std::vector<std::string>& keys,
                                     double timeout_seconds) {
  const auto start = SteadyClock::now();
  for (;;) {
    const double remaining = timeout_seconds - ElapsedSeconds(start);
    const double slice = std::clamp(remaining, 0.0, options_.slice_seconds);
    std::vector<uint8_t> request;
    PutU8(&request, kOpWaitBounded);
    PutU32(&request, static_cast<uint32_t>(keys.size()));
    for (const std::string& key : keys) PutStr(&request, key);
    PutF64(&request, slice);
    Result<std::vector<uint8_t>> response =
        Rpc(request, slice + kRpcGraceSeconds);
    if (!response.ok()) return response.status();
    Reader r{response.value()};
    uint8_t ok = 0;
    if (!r.U8(&ok)) return Status::Internal("malformed Wait response");
    if (ok != 0) return Status::OK();
    if (timeout_seconds - ElapsedSeconds(start) <= 0.0) {
      return Status::TimedOut("store keys not all set within " +
                              std::to_string(timeout_seconds) + "s (tcp)");
    }
  }
}

Result<int64_t> StoreClientTcp::DoNumKeys() {
  std::vector<uint8_t> request;
  PutU8(&request, kOpNumKeys);
  Result<std::vector<uint8_t>> response = Rpc(request, kRpcGraceSeconds);
  if (!response.ok()) return response.status();
  Reader r{response.value()};
  int64_t n = 0;
  if (!r.I64(&n)) return Status::Internal("malformed NumKeys response");
  return n;
}

Result<int64_t> StoreClientTcp::DoDeleteKey(const std::string& key) {
  std::vector<uint8_t> request;
  PutU8(&request, kOpDeleteKey);
  PutStr(&request, key);
  Result<std::vector<uint8_t>> response = Rpc(request, kRpcGraceSeconds);
  if (!response.ok()) return response.status();
  Reader r{response.value()};
  int64_t n = 0;
  if (!r.I64(&n)) return Status::Internal("malformed DeleteKey response");
  return n;
}

Result<int64_t> StoreClientTcp::DoDeletePrefix(const std::string& prefix) {
  std::vector<uint8_t> request;
  PutU8(&request, kOpDeletePrefix);
  PutStr(&request, prefix);
  Result<std::vector<uint8_t>> response = Rpc(request, kRpcGraceSeconds);
  if (!response.ok()) return response.status();
  Reader r{response.value()};
  int64_t n = 0;
  if (!r.I64(&n)) return Status::Internal("malformed DeletePrefix response");
  return n;
}

}  // namespace ddpkit::comm
