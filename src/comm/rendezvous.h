#ifndef DDPKIT_COMM_RENDEZVOUS_H_
#define DDPKIT_COMM_RENDEZVOUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "comm/store.h"
#include "common/status.h"

namespace ddpkit::comm {

/// Knobs for one recovery rendezvous round.
struct RendezvousOptions {
  /// Real-time bound on each Store wait of the protocol (the join barrier
  /// and the sealed-membership read). A survivor whose peers are all dead
  /// exits with a typed kTimedOut after roughly this long — never a hang.
  /// Worst-case end-to-end latency is about twice this (a late-entering
  /// sealer spends its own full barrier wait before publishing members).
  double timeout_seconds = 5.0;
  /// Fewest survivors worth re-forming a group over. A rendezvous that
  /// seals fewer members fails with kTimedOut on every participant — the
  /// lone-survivor case degrades to a typed error, not a 1-rank "world".
  int min_world = 2;
  /// Backoff schedule for the underlying *WithRetry Store calls.
  RetryPolicy retry;
};

/// Outcome of a sealed rendezvous: the survivors of `old_world`, renumbered
/// densely in ascending old-rank order.
struct RendezvousResult {
  /// The newly formed generation (from_generation + 1).
  uint64_t generation = 0;
  /// This rank's dense rank in the shrunken group.
  int new_rank = -1;
  int new_world = 0;
  /// Surviving old ranks, ascending. new_rank == index of old rank here.
  std::vector<int> survivors;
  /// Lowest surviving old rank — the state-resync source (new rank 0).
  int source_old_rank = -1;
};

/// Serialized membership payload ("<count>:<rank0>:<rank1>:...") — exposed
/// for tests; the Store serves untrusted bytes, so ParseMembers is strict
/// and never throws.
std::string SerializeMembers(const std::vector<int>& members);
bool ParseMembers(const std::string& payload, int old_world,
                  std::vector<int>* members);

/// Store key prefix under which generation `generation` of namespace `ns`
/// rendezvouses ("rendezvous/<ns>/g<generation>/").
std::string RendezvousPrefix(const std::string& ns, uint64_t generation);

/// One survivor's half of the shrink-and-regroup protocol (DESIGN.md §9).
/// Called by every rank that observed a terminal collective failure on a
/// group of generation `from_generation`:
///
///  1. publish liveness under the target generation's epoch-keyed namespace
///     (`rendezvous/<ns>/g<gen>/join/rank<r>`, via SetWithRetry);
///  2. bounded join barrier: wait for all `old_world` ranks up to
///     `timeout_seconds`, then snapshot whoever made it;
///  3. seal: the lowest joined rank wins an atomic AddWithRetry on the
///     `seal` key and publishes the members list — a single source of
///     truth, so racing snapshots cannot seal divergent memberships;
///  4. every rank reads the sealed members (bounded), derives its dense new
///     rank, and elects the lowest surviving old rank as resync source.
///
/// Typed failures instead of hangs: a lone survivor (|members| <
/// min_world) and a straggler sealed out of the membership both get
/// kTimedOut. The caller then forms the replacement group (e.g.
/// ProcessGroupSim::Create with Options::generation = result.generation)
/// and, once its construction rendezvous completes, deletes this round's
/// keys with CleanupRendezvous.
[[nodiscard]] Result<RendezvousResult> AbortAndRendezvous(
    Store* store, const std::string& ns, int old_rank, int old_world,
    uint64_t from_generation,
    const RendezvousOptions& options = RendezvousOptions());

/// Deletes generation `generation`'s rendezvous keys (and, defensively, any
/// earlier generation's leftovers cannot exist once each round cleans up
/// after itself — key count stays bounded across repeated recoveries).
/// Safe once the replacement group's construction rendezvous has completed:
/// every sealed member has finished reading this round's keys by then.
void CleanupRendezvous(Store* store, const std::string& ns,
                       uint64_t generation);

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_RENDEZVOUS_H_
