#ifndef DDPKIT_COMM_BACKEND_FACTORY_H_
#define DDPKIT_COMM_BACKEND_FACTORY_H_

#include <memory>
#include <string>

#include "comm/process_group.h"
#include "comm/process_group_sim.h"
#include "comm/process_group_tcp.h"
#include "comm/store.h"

namespace ddpkit::comm {

/// Backend selection by string — the `init_process_group(backend=...)` seam
/// (paper §3.3): trainers and tools name a wire ("sim" | "tcp") and get a
/// ProcessGroup without compiling against a concrete backend.
struct BackendConfig {
  /// "sim": shared-memory rank threads with modeled time (ProcessGroupSim).
  /// "tcp": one process per rank over real sockets (ProcessGroupTcp).
  std::string backend = "sim";
  ProcessGroupSim::Options sim;
  ProcessGroupTcp::Options tcp;
};

/// Creates the configured backend. For "sim", every rank must call from its
/// own thread of one process (rendezvous through the shared in-memory
/// store); for "tcp", every rank is its own process and `store` is normally
/// a StoreClientTcp pointed at the launcher's StoreServerTcp. Unknown
/// backend strings fail kInvalidArgument.
[[nodiscard]] Result<std::shared_ptr<ProcessGroup>> CreateProcessGroupBackend(
    const BackendConfig& config, Store* store, const std::string& name,
    int rank, int world, sim::VirtualClock* clock);

/// Reads the launcher's environment contract (DDPKIT_RANK, DDPKIT_WORLD,
/// DDPKIT_STORE_HOST, DDPKIT_STORE_PORT — what tools/ddp_launch exports to
/// every worker). Fails kFailedPrecondition when a variable is missing or
/// malformed.
struct LaunchEnv {
  int rank = 0;
  int world = 1;
  std::string store_host;
  int store_port = 0;
};
[[nodiscard]] Result<LaunchEnv> ReadLaunchEnv();

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_BACKEND_FACTORY_H_
