#ifndef DDPKIT_COMM_PROCESS_GROUP_TCP_H_
#define DDPKIT_COMM_PROCESS_GROUP_TCP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/algorithms.h"
#include "comm/net_fault.h"
#include "comm/process_group.h"
#include "comm/store.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ddpkit::comm {

/// ProcessGroup over real nonblocking TCP sockets — the production backend
/// the paper's stack assumes (Gloo/NCCL bootstrapped through a store,
/// §3.3). One process per rank; rendezvous through any comm::Store (in
/// practice a StoreClientTcp pointed at the launcher's StoreServerTcp).
///
/// Bootstrap: each rank binds port 0 (collision-proof), publishes
/// `pgtcp/<name>/g<generation>/rank<r>` = host:port, connects to every
/// lower rank and accepts from every higher one, then keeps the full mesh
/// cached for the group's lifetime.
///
/// Data plane: the wire schedules replicate the algorithm zoo's combine
/// orders *exactly* — same chunking, same per-element summation order as
/// comm/algorithms.cc — so a TCP run is bit-identical to ProcessGroupSim
/// on the same seed (the PR's cross-check gate). kRing/kRingChunked run
/// the two-phase ring, kHalvingDoubling the Rabenseifner exchange, kTree
/// recursive doubling to rank 0, kNaive the root star; kAuto resolves per
/// collective through sim::SelectAllReduceAlgorithm. Collectives execute
/// synchronously in the calling thread (localhost latencies make overlap
/// machinery pure complexity here); the returned Work is already terminal
/// and carries the typed verdict.
///
/// Failure taxonomy, mapped from socket-layer Status:
///   deadline elapsed      → WorkError::kTimeout
///   peer closed / reset   → WorkError::kRankFailure
///   header mismatch       → WorkError::kShapeMismatch
///   abort pipe fired      → WorkError::kInvalidGeneration
///
/// Self-healing (DESIGN.md §14): with `max_reconnect_attempts` > 0 a
/// connection supervisor classifies wire failures. Transient ones (peer
/// reset, deadline elapsed) trigger close + backoff + a full re-mesh at
/// the *same* generation — addresses republished, HELLO re-handshake
/// carrying the in-flight sequence number — and a byte-transparent replay
/// of the interrupted collective from its snapshotted input. Fatal ones
/// (generation/resume mismatch, abort) and exhausted budgets poison the
/// group and surface the existing typed errors, feeding the elastic
/// DDP::Recover path. An optional heartbeat thread probes every mesh link
/// on a second socket channel, feeding `pg.heartbeat_misses`; reconnect
/// rounds feed `pg.reconnects`.
///
/// After an unrecovered wire failure the group is poisoned (streams may
/// be desynchronized): later collectives fail fast with kRankFailure.
/// AbortGroup(new_gen) wakes any in-flight poll via the abort pipe and
/// closes all peer sockets, which unblocks stranded remote peers with
/// kRankFailure on their side.
class ProcessGroupTcp : public ProcessGroup {
 public:
  struct Options {
    Algorithm algorithm = Algorithm::kRing;
    /// Wall-clock deadline for one collective's wire I/O. Unlike the sim
    /// backend's virtual-time watchdog, this must be real time: a kill -9'd
    /// peer stops making progress in real time only.
    double collective_timeout_seconds = 30.0;
    /// Wall-clock budget for the bootstrap (store publish + full mesh).
    double connect_timeout_seconds = 30.0;
    /// Address this rank binds and publishes (the launcher runtime is
    /// localhost by design).
    std::string host = "127.0.0.1";
    /// Feeds kAuto resolution (message size x world, sim topology).
    int ranks_per_node = 0;
    /// Optional metrics sink (pg.* namespace, issue-side counters).
    std::shared_ptr<MetricsRegistry> metrics;
    /// Elastic-recovery generation (namespaces the rendezvous keys, so a
    /// regrouped world bootstraps a fresh mesh).
    uint64_t generation = 0;

    /// Optional wire-fault shim. Owned by the caller and shared across
    /// group incarnations (one per *process*, so sticky fault state —
    /// activated partitions, heal hit counts — survives regeneration).
    /// Null = raw sockets.
    WireFaultInjector* fault_injector = nullptr;
    /// Connection supervisor: > 0 enables transient-failure self-healing
    /// (close + backoff + same-generation re-mesh + in-flight collective
    /// replay), up to this many re-mesh rounds per collective. 0 keeps the
    /// legacy poison-on-first-failure behaviour.
    int max_reconnect_attempts = 0;
    /// Wall budget for one re-mesh round (republish + full mesh + HELLO).
    double reconnect_timeout_seconds = 2.0;
    /// Backoff before the first re-mesh round; doubles per round
    /// (RetryPolicy-shaped, wall clock — peers live in other processes).
    double reconnect_backoff_seconds = 0.05;
    /// > 0 starts a heartbeat thread probing every mesh link at this
    /// period over a dedicated socket channel. 0 disables probing.
    double heartbeat_interval_seconds = 0.0;
    /// Silent intervals on a link before it counts one heartbeat miss.
    int heartbeat_miss_intervals = 3;
    /// Optional supervisor event sink ("pg.reconnect", "pg.heartbeat_miss"
    /// instants; the caller can forward them to a trace recorder). Called
    /// with the group lock held — must not call back into the group.
    std::function<void(const std::string& event, const std::string& detail)>
        event_sink;
  };

  /// Rendezvous constructor: blocks until the full mesh is up, within the
  /// connect timeout. `store` and `clock` must outlive the group. Typed
  /// failures: kTimedOut when a peer never publishes/connects,
  /// kInvalidArgument for an unsupported algorithm (kHierarchical needs a
  /// multi-host topology this backend doesn't have).
  [[nodiscard]] static Result<std::shared_ptr<ProcessGroupTcp>> Create(
      Store* store, const std::string& name, int rank, int world,
      const Options& options, sim::VirtualClock* clock);

  ~ProcessGroupTcp() override;

  [[nodiscard]] WorkHandle AllReduce(Tensor tensor, ReduceOp op) override;
  [[nodiscard]] WorkHandle Broadcast(Tensor tensor, int root) override;
  [[nodiscard]] WorkHandle AllGather(const Tensor& input,
                                     Tensor output) override;
  [[nodiscard]] WorkHandle Reduce(Tensor tensor, int root,
                                  ReduceOp op) override;
  [[nodiscard]] WorkHandle ReduceScatter(const Tensor& input, Tensor output,
                                         ReduceOp op) override;
  [[nodiscard]] WorkHandle Gather(const Tensor& input, Tensor output,
                                  int root) override;
  void Barrier() override;

  sim::VirtualClock* clock() override { return clock_; }
  Store* store() override { return store_; }
  std::string backend_name() const override;
  Algorithm algorithm() const { return options_.algorithm; }

  uint64_t generation() const override { return options_.generation; }
  uint64_t superseded_by() const override { return superseded_by_.load(); }

  /// Retires this group: wakes any in-flight socket poll (abort pipe),
  /// then closes every peer socket so remote peers blocked on us observe
  /// EOF (kRankFailure) instead of hanging. Idempotent.
  void AbortGroup(uint64_t new_generation, const std::string& reason) override;

  /// Total number of collectives this rank has issued.
  uint64_t ops_issued() const { return next_seq_.load(); }

  /// Successful supervisor re-mesh rounds (mirrors the pg.reconnects
  /// counter, readable without a metrics registry).
  uint64_t reconnects() const { return reconnects_.load(); }
  /// Heartbeat misses observed on this rank's links.
  uint64_t heartbeat_misses() const { return heartbeat_misses_.load(); }

  /// Per-collective wire header, exchanged with the ring neighbours before
  /// payload bytes move; disagreement is the typed kShapeMismatch arm.
  /// Public only so the schedule implementations (free functions in the
  /// .cc) can name it; defined there.
  struct OpHeader;
  /// Everything a schedule needs for one collective's I/O. Same deal.
  struct OpContext;

 private:
  ProcessGroupTcp(Store* store, std::string name, int rank, int world,
                  const Options& options, sim::VirtualClock* clock);

  /// Mutated-byte span a collective must snapshot for replay.
  using ByteSpan = std::pair<void*, size_t>;

  /// Builds the full mesh (listen, publish, connect/accept + HELLO) into
  /// `*data_fds` (+ `*hb_fds` when heartbeats are enabled), re-usable for
  /// both bootstrap (resume_seq 0) and supervisor re-mesh rounds.
  [[nodiscard]] Status BuildMesh(uint64_t resume_seq, const Deadline& deadline,
                                 std::vector<int>* data_fds,
                                 std::vector<int>* hb_fds);

  /// Initial bootstrap: abort pipe + mesh (with supervisor retries when
  /// enabled) + heartbeat thread.
  [[nodiscard]] Status Bootstrap();

  /// One supervisor re-mesh round at the current generation: closes the
  /// old mesh, republishes this rank's address, rebuilds both channels and
  /// re-handshakes with `resume_seq` consensus.
  [[nodiscard]] Status RemeshLocked(uint64_t resume_seq) REQUIRES(mu_);

  /// Heartbeat thread body: probe every link each interval, drain pongs,
  /// count misses.
  void SupervisorLoop();

  bool supervised() const {
    return options_.max_reconnect_attempts > 0 && world() > 1;
  }

  void EmitEvent(const char* event, const std::string& detail);

  /// Runs `body` as collective `kind`, wrapping it with the sequence-number
  /// bump, the neighbour header exchange, wall-deadline setup, supervisor
  /// retry (snapshotting `payload` so a replay starts from the original
  /// bytes), error mapping, and Work termination.
  template <typename Body>
  [[nodiscard]] WorkHandle RunCollective(uint8_t kind, uint8_t dtype_code,
                                         int64_t numel, int root, ReduceOp op,
                                         std::vector<ByteSpan> payload,
                                         Body body);

  [[nodiscard]] Status ExchangeHeaders(const OpHeader& mine,
                                       const OpContext& ctx);

  Options options_;
  std::string name_;
  Store* store_;
  sim::VirtualClock* clock_;

  /// Serializes collectives and guards the socket mesh. AbortGroup writes
  /// the wake pipe *before* taking this lock, so an in-flight collective
  /// wakes, fails typed, and releases it.
  Mutex mu_;
  std::vector<int> peer_fds_ GUARDED_BY(mu_);  // rank -> fd, own rank = -1
  /// Heartbeat channel mesh (empty when probing is disabled).
  std::vector<int> hb_fds_ GUARDED_BY(mu_);
  // ddplint: allow(banned-nondeterminism) reason: peer liveness is a
  // wall-clock property of the real TCP mesh; the sim backend (where
  // reproducibility lives) never starts the prober.
  std::vector<std::chrono::steady_clock::time_point> hb_last_recv_
      GUARDED_BY(mu_);
  std::vector<bool> hb_missing_ GUARDED_BY(mu_);
  bool wire_failed_ GUARDED_BY(mu_) = false;
  std::string wire_failure_reason_ GUARDED_BY(mu_);

  /// Abort pipe: AbortGroup writes `wake_wfd_`; every poll in a collective
  /// includes `wake_rfd_`. Never drained — once aborted, always aborted.
  int wake_rfd_ = -1;
  int wake_wfd_ = -1;

  /// Supervisor stop pipe (destructor -> heartbeat thread), distinct from
  /// the abort pipe so a clean teardown is not an abort.
  int sup_stop_rfd_ = -1;
  int sup_stop_wfd_ = -1;
  std::thread hb_thread_;

  std::atomic<uint64_t> superseded_by_{0};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> heartbeat_misses_{0};
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_PROCESS_GROUP_TCP_H_
