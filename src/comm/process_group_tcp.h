#ifndef DDPKIT_COMM_PROCESS_GROUP_TCP_H_
#define DDPKIT_COMM_PROCESS_GROUP_TCP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/algorithms.h"
#include "comm/process_group.h"
#include "comm/store.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ddpkit::comm {

/// ProcessGroup over real nonblocking TCP sockets — the production backend
/// the paper's stack assumes (Gloo/NCCL bootstrapped through a store,
/// §3.3). One process per rank; rendezvous through any comm::Store (in
/// practice a StoreClientTcp pointed at the launcher's StoreServerTcp).
///
/// Bootstrap: each rank binds port 0 (collision-proof), publishes
/// `pgtcp/<name>/g<generation>/rank<r>` = host:port, connects to every
/// lower rank and accepts from every higher one, then keeps the full mesh
/// cached for the group's lifetime.
///
/// Data plane: the wire schedules replicate the algorithm zoo's combine
/// orders *exactly* — same chunking, same per-element summation order as
/// comm/algorithms.cc — so a TCP run is bit-identical to ProcessGroupSim
/// on the same seed (the PR's cross-check gate). kRing/kRingChunked run
/// the two-phase ring, kHalvingDoubling the Rabenseifner exchange, kTree
/// recursive doubling to rank 0, kNaive the root star; kAuto resolves per
/// collective through sim::SelectAllReduceAlgorithm. Collectives execute
/// synchronously in the calling thread (localhost latencies make overlap
/// machinery pure complexity here); the returned Work is already terminal
/// and carries the typed verdict.
///
/// Failure taxonomy, mapped from socket-layer Status:
///   deadline elapsed      → WorkError::kTimeout
///   peer closed / reset   → WorkError::kRankFailure
///   header mismatch       → WorkError::kShapeMismatch
///   abort pipe fired      → WorkError::kInvalidGeneration
/// After any wire failure the group is poisoned (streams may be
/// desynchronized): later collectives fail fast with kRankFailure.
/// AbortGroup(new_gen) wakes any in-flight poll via the abort pipe and
/// closes all peer sockets, which unblocks stranded remote peers with
/// kRankFailure on their side.
class ProcessGroupTcp : public ProcessGroup {
 public:
  struct Options {
    Algorithm algorithm = Algorithm::kRing;
    /// Wall-clock deadline for one collective's wire I/O. Unlike the sim
    /// backend's virtual-time watchdog, this must be real time: a kill -9'd
    /// peer stops making progress in real time only.
    double collective_timeout_seconds = 30.0;
    /// Wall-clock budget for the bootstrap (store publish + full mesh).
    double connect_timeout_seconds = 30.0;
    /// Address this rank binds and publishes (the launcher runtime is
    /// localhost by design).
    std::string host = "127.0.0.1";
    /// Feeds kAuto resolution (message size x world, sim topology).
    int ranks_per_node = 0;
    /// Optional metrics sink (pg.* namespace, issue-side counters).
    std::shared_ptr<MetricsRegistry> metrics;
    /// Elastic-recovery generation (namespaces the rendezvous keys, so a
    /// regrouped world bootstraps a fresh mesh).
    uint64_t generation = 0;
  };

  /// Rendezvous constructor: blocks until the full mesh is up, within the
  /// connect timeout. `store` and `clock` must outlive the group. Typed
  /// failures: kTimedOut when a peer never publishes/connects,
  /// kInvalidArgument for an unsupported algorithm (kHierarchical needs a
  /// multi-host topology this backend doesn't have).
  [[nodiscard]] static Result<std::shared_ptr<ProcessGroupTcp>> Create(
      Store* store, const std::string& name, int rank, int world,
      const Options& options, sim::VirtualClock* clock);

  ~ProcessGroupTcp() override;

  [[nodiscard]] WorkHandle AllReduce(Tensor tensor, ReduceOp op) override;
  [[nodiscard]] WorkHandle Broadcast(Tensor tensor, int root) override;
  [[nodiscard]] WorkHandle AllGather(const Tensor& input,
                                     Tensor output) override;
  [[nodiscard]] WorkHandle Reduce(Tensor tensor, int root,
                                  ReduceOp op) override;
  [[nodiscard]] WorkHandle ReduceScatter(const Tensor& input, Tensor output,
                                         ReduceOp op) override;
  [[nodiscard]] WorkHandle Gather(const Tensor& input, Tensor output,
                                  int root) override;
  void Barrier() override;

  sim::VirtualClock* clock() override { return clock_; }
  Store* store() override { return store_; }
  std::string backend_name() const override;
  Algorithm algorithm() const { return options_.algorithm; }

  uint64_t generation() const override { return options_.generation; }
  uint64_t superseded_by() const override { return superseded_by_.load(); }

  /// Retires this group: wakes any in-flight socket poll (abort pipe),
  /// then closes every peer socket so remote peers blocked on us observe
  /// EOF (kRankFailure) instead of hanging. Idempotent.
  void AbortGroup(uint64_t new_generation, const std::string& reason) override;

  /// Total number of collectives this rank has issued.
  uint64_t ops_issued() const { return next_seq_.load(); }

  /// Per-collective wire header, exchanged with the ring neighbours before
  /// payload bytes move; disagreement is the typed kShapeMismatch arm.
  /// Public only so the schedule implementations (free functions in the
  /// .cc) can name it; defined there.
  struct OpHeader;
  /// Everything a schedule needs for one collective's I/O. Same deal.
  struct OpContext;

 private:
  ProcessGroupTcp(Store* store, std::string name, int rank, int world,
                  const Options& options, sim::VirtualClock* clock);

  /// Builds the full mesh (listen, publish, connect/accept + HELLO).
  [[nodiscard]] Status Bootstrap();

  /// Runs `body` as collective `kind`, wrapping it with the sequence-number
  /// bump, the neighbour header exchange, wall-deadline setup, error
  /// mapping, and Work termination.
  template <typename Body>
  [[nodiscard]] WorkHandle RunCollective(uint8_t kind, uint8_t dtype_code, int64_t numel,
                           int root, ReduceOp op, Body body);

  [[nodiscard]] Status ExchangeHeaders(const OpHeader& mine,
                                       const OpContext& ctx);

  Options options_;
  std::string name_;
  Store* store_;
  sim::VirtualClock* clock_;

  /// Serializes collectives and guards the socket mesh. AbortGroup writes
  /// the wake pipe *before* taking this lock, so an in-flight collective
  /// wakes, fails typed, and releases it.
  Mutex mu_;
  std::vector<int> peer_fds_ GUARDED_BY(mu_);  // rank -> fd, own rank = -1
  bool wire_failed_ GUARDED_BY(mu_) = false;
  std::string wire_failure_reason_ GUARDED_BY(mu_);

  /// Abort pipe: AbortGroup writes `wake_wfd_`; every poll in a collective
  /// includes `wake_rfd_`. Never drained — once aborted, always aborted.
  int wake_rfd_ = -1;
  int wake_wfd_ = -1;

  std::atomic<uint64_t> superseded_by_{0};
  std::atomic<uint64_t> next_seq_{0};
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_PROCESS_GROUP_TCP_H_
