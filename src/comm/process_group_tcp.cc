#include "comm/process_group_tcp.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "comm/net_socket.h"
#include "comm/store_keys.h"
#include "common/logging.h"
#include "common/vec.h"
#include "sim/collective_algo.h"
#include "sim/topology.h"
#include "tensor/dtype.h"

// ddplint: allow-file(banned-nondeterminism) wire deadlines are wall-clock
// by definition: peers are other processes that make progress only in real
// time (DESIGN.md §11). The virtual clock still tracks completions so
// telemetry and Work timeout semantics stay uniform across backends.
// ddplint: allow-file(raw-wire-io) owns the abort wake pipe and the
// heartbeat drain; all data-plane traffic goes through comm/net_socket.h
// helpers or the comm/net_fault.h shim.

namespace ddpkit::comm {

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr uint32_t kHelloMagic = 0xDD9C0001;
constexpr uint32_t kHeaderMagic = 0xDD9C0002;

/// Connection channels: the data mesh carries collectives, the heartbeat
/// mesh carries supervisor probes (sharing a stream would interleave probe
/// bytes into payloads).
constexpr uint32_t kChannelData = 0;
constexpr uint32_t kChannelHeartbeat = 1;

/// Collective kinds for the wire header.
enum OpKind : uint8_t {
  kKindAllReduce = 1,
  kKindBroadcast = 2,
  kKindAllGather = 3,
  kKindReduce = 4,
  kKindReduceScatter = 5,
  kKindGather = 6,
  kKindBarrier = 7,
};

const char* OpKindName(uint8_t kind) {
  switch (kind) {
    case kKindAllReduce:
      return "allreduce";
    case kKindBroadcast:
      return "broadcast";
    case kKindAllGather:
      return "allgather";
    case kKindReduce:
      return "reduce";
    case kKindReduceScatter:
      return "reduce_scatter";
    case kKindGather:
      return "gather";
    case kKindBarrier:
      return "barrier";
  }
  return "?";
}

template <typename T>
T Combine(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::kSum:
      return static_cast<T>(a + b);
    case ReduceOp::kMax:
      return a > b ? a : b;
    case ReduceOp::kBor:
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(a | b);
      } else {
        return (a != 0 || b != 0) ? T{1} : T{0};
      }
  }
  return a;
}

/// Elementwise `dst = Combine(dst, src)` with the exact operand order and
/// SIMD dispatch of comm/algorithms.cc's CombineSpan — the wire schedules
/// below must produce bit-identical floats to the shared-memory zoo.
template <typename T>
void CombineSpan(ReduceOp op, T* dst, const T* src, int64_t len) {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    if (op == ReduceOp::kSum) {
      vec::AccumulateAdd(dst, src, len);
      return;
    }
    if (op == ReduceOp::kMax) {
      vec::AccumulateMax(dst, src, len);
      return;
    }
  }
  // ddplint: allow(raw-elementwise-loop) integer / kBor fallback; the vec
  // layer covers the float and double sum/max hot paths above
  for (int64_t i = 0; i < len; ++i) dst[i] = Combine(op, dst[i], src[i]);
}

/// Exchanged both ways on every fresh connection (connector first). The
/// resume_seq field is the self-healing handshake: a supervisor re-mesh
/// may only proceed when both ends agree on which collective is being
/// replayed — otherwise byte-transparent replay is impossible and the
/// group falls back to the step-level DDP::Recover path.
struct Hello {
  uint32_t magic;
  int32_t rank;
  uint64_t generation;
  uint32_t channel;
  uint32_t pad;
  uint64_t resume_seq;
};

/// Transient wire verdicts: peer reset / closed stream (kInternal) and
/// elapsed deadlines (kTimedOut) are conditions a re-mesh can heal.
/// Everything else — shape disagreement, generation divergence, the abort
/// pipe — is fatal by classification.
bool IsTransientWire(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kTimedOut;
}

double RemainingSeconds(const Deadline& deadline) {
  const int ms = deadline.PollMillis();
  return ms < 0 ? 0.0 : static_cast<double>(ms) / 1000.0;
}

}  // namespace

/// Exchanged with both ring neighbours before any payload moves; all
/// fields must agree or the collective fails kShapeMismatch — the typed
/// version of the paper's "incorrect reduction result or program crash"
/// when ranks desynchronize.
struct ProcessGroupTcp::OpHeader {
  uint32_t magic;
  uint8_t kind;
  uint8_t dtype;
  uint8_t rop;
  uint8_t pad;
  int32_t root;
  int64_t numel;
  uint64_t seq;
  uint64_t generation;
};

/// I/O context one collective runs under: the cached mesh, the wall
/// deadline, the abort pipe, and (under chaos) the fault shim.
struct ProcessGroupTcp::OpContext {
  const std::vector<int>* fds;
  int rank;
  int world;
  Deadline deadline;
  int abort_fd;
  WireFaultInjector* shim = nullptr;

  int fd(int peer) const { return (*fds)[static_cast<size_t>(peer)]; }
};

namespace {
using OpContext = ProcessGroupTcp::OpContext;
}  // namespace

// ---------------------------------------------------------------------------
// Wire schedules. Each replicates the combine order documented in
// comm/algorithms.cc for its algorithm, with "own value" always on the
// exact operand side the shared-memory loop uses. All I/O funnels through
// SendTo/RecvFrom/Exchange so the fault shim sees every byte.
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] Status SendTo(const OpContext& ctx, int peer, const void* buf,
                            size_t len) {
  if (ctx.shim != nullptr) {
    return ctx.shim->SendAll(peer, ctx.fd(peer), buf, len, ctx.deadline,
                             ctx.abort_fd);
  }
  return SendAll(ctx.fd(peer), buf, len, ctx.deadline, ctx.abort_fd);
}

[[nodiscard]] Status RecvFrom(const OpContext& ctx, int peer, void* buf,
                              size_t len) {
  if (ctx.shim != nullptr) {
    return ctx.shim->RecvAll(peer, ctx.fd(peer), buf, len, ctx.deadline,
                             ctx.abort_fd);
  }
  return RecvAll(ctx.fd(peer), buf, len, ctx.deadline, ctx.abort_fd);
}

[[nodiscard]] Status Exchange(const OpContext& ctx, int send_peer,
                              const void* sbuf, size_t slen, int recv_peer,
                              void* rbuf, size_t rlen) {
  if (ctx.shim != nullptr) {
    return ctx.shim->SendRecvAll(send_peer, ctx.fd(send_peer), sbuf, slen,
                                 recv_peer, ctx.fd(recv_peer), rbuf, rlen,
                                 ctx.deadline, ctx.abort_fd);
  }
  return SendRecvAll(ctx.fd(send_peer), sbuf, slen, ctx.fd(recv_peer), rbuf,
                     rlen, ctx.deadline, ctx.abort_fd);
}

/// Naive: ascending-rank combine at rank 0, then a star broadcast —
/// NaiveAllReduce's order exactly (acc = bufs[0], += bufs[1], bufs[2]...).
template <typename T>
Status NaiveAllReduceTcp(const OpContext& ctx, ReduceOp op, T* data,
                         int64_t n) {
  const size_t bytes = static_cast<size_t>(n) * sizeof(T);
  if (ctx.rank == 0) {
    std::vector<T> tmp(static_cast<size_t>(n));
    for (int q = 1; q < ctx.world; ++q) {
      DDPKIT_RETURN_IF_ERROR(RecvFrom(ctx, q, tmp.data(), bytes));
      CombineSpan(op, data, tmp.data(), n);
    }
    for (int q = 1; q < ctx.world; ++q) {
      DDPKIT_RETURN_IF_ERROR(SendTo(ctx, q, data, bytes));
    }
    return Status::OK();
  }
  DDPKIT_RETURN_IF_ERROR(SendTo(ctx, 0, data, bytes));
  return RecvFrom(ctx, 0, data, bytes);
}

/// fp16: Fp16AllReduce's order — fp32 accumulation starting from 0.0f over
/// ranks 0..world-1 ascending, at rank 0, then broadcast of the half bits.
Status Fp16AllReduceTcp(const OpContext& ctx, ReduceOp op, uint16_t* data,
                        int64_t n) {
  if (op != ReduceOp::kSum) {
    return Status::InvalidArgument("fp16 all-reduce supports sum only");
  }
  const size_t bytes = static_cast<size_t>(n) * sizeof(uint16_t);
  if (ctx.rank == 0) {
    std::vector<std::vector<uint16_t>> contributions(
        static_cast<size_t>(ctx.world));
    for (int q = 1; q < ctx.world; ++q) {
      contributions[static_cast<size_t>(q)].resize(static_cast<size_t>(n));
      DDPKIT_RETURN_IF_ERROR(RecvFrom(
          ctx, q, contributions[static_cast<size_t>(q)].data(), bytes));
    }
    for (int64_t i = 0; i < n; ++i) {
      float v = 0.0f;
      v += HalfBitsToFloat32(data[i]);  // rank 0's own contribution first
      for (int q = 1; q < ctx.world; ++q) {
        v += HalfBitsToFloat32(contributions[static_cast<size_t>(q)][i]);
      }
      data[i] = Float32ToHalfBits(v);
    }
    for (int q = 1; q < ctx.world; ++q) {
      DDPKIT_RETURN_IF_ERROR(SendTo(ctx, q, data, bytes));
    }
    return Status::OK();
  }
  DDPKIT_RETURN_IF_ERROR(SendTo(ctx, 0, data, bytes));
  return RecvFrom(ctx, 0, data, bytes);
}

/// Two-phase ring (reduce-scatter + all-gather) with `chunks_per_rank`
/// chunks in flight per rank — RingAllReduce's chunking and combine order:
/// chunk k (owner k % world) accumulates rank (owner+1)'s value first,
/// then each next ring rank combines its own value as the right operand,
/// ending at the owner.
template <typename T>
Status RingAllReduceTcp(const OpContext& ctx, ReduceOp op, T* data, int64_t n,
                        int chunks_per_rank) {
  const int world = ctx.world;
  const int rank = ctx.rank;
  const int next = (rank + 1) % world;
  const int prev = (rank + world - 1) % world;
  const int num_chunks = world * chunks_per_rank;
  const int64_t base = n / num_chunks;
  const int64_t rem = n % num_chunks;
  auto chunk_begin = [&](int c) {
    return base * c + std::min<int64_t>(c, rem);
  };
  auto chunk_size = [&](int c) { return base + (c < rem ? 1 : 0); };
  // Owner o's chunks are o, o+world, o+2*world, ...
  auto owner_bytes = [&](int o) {
    int64_t total = 0;
    for (int k = o; k < num_chunks; k += world) total += chunk_size(k);
    return static_cast<size_t>(total) * sizeof(T);
  };
  auto pack = [&](int o, const T* src, T* stage) {
    int64_t at = 0;
    for (int k = o; k < num_chunks; k += world) {
      std::memcpy(stage + at, src + chunk_begin(k),
                  static_cast<size_t>(chunk_size(k)) * sizeof(T));
      at += chunk_size(k);
    }
  };
  auto unpack = [&](int o, const T* stage, T* dst) {
    int64_t at = 0;
    for (int k = o; k < num_chunks; k += world) {
      std::memcpy(dst + chunk_begin(k), stage + at,
                  static_cast<size_t>(chunk_size(k)) * sizeof(T));
      at += chunk_size(k);
    }
  };

  const size_t max_stage =
      static_cast<size_t>(base + 1) * static_cast<size_t>(chunks_per_rank);
  std::vector<T> send_stage(max_stage);
  std::vector<T> recv_stage(max_stage);

  // Phase 1 — reduce-scatter. At step s this rank forwards the partial for
  // owner (rank - s) and receives the partial for owner (rank - 1 - s),
  // combining its own contribution as the right operand.
  for (int s = 1; s < world; ++s) {
    const int send_owner = (rank - s + world) % world;
    const int recv_owner = (rank - 1 - s + 2 * world) % world;
    if (s == 1) pack(send_owner, data, send_stage.data());
    DDPKIT_RETURN_IF_ERROR(Exchange(ctx, next, send_stage.data(),
                                    owner_bytes(send_owner), prev,
                                    recv_stage.data(),
                                    owner_bytes(recv_owner)));
    int64_t at = 0;
    for (int k = recv_owner; k < num_chunks; k += world) {
      CombineSpan(op, recv_stage.data() + at, data + chunk_begin(k),
                  chunk_size(k));
      at += chunk_size(k);
    }
    send_stage.swap(recv_stage);  // forward what we just accumulated
  }
  // After world-1 steps the accumulated partial is for owner == rank and it
  // is complete; install it.
  unpack(rank, send_stage.data(), data);

  // Phase 2 — all-gather rotation of the finalized owner chunks.
  for (int s = 1; s < world; ++s) {
    const int send_owner = (rank - s + 1 + world) % world;
    const int recv_owner = (rank - s + world) % world;
    pack(send_owner, data, send_stage.data());
    DDPKIT_RETURN_IF_ERROR(Exchange(ctx, next, send_stage.data(),
                                    owner_bytes(send_owner), prev,
                                    recv_stage.data(),
                                    owner_bytes(recv_owner)));
    unpack(recv_owner, recv_stage.data(), data);
  }
  return Status::OK();
}

/// Recursive halving-doubling — HalvingDoublingAllReduce's exact fold /
/// segment-split / unfold sequence. Every rank replays the sim's beg/end
/// bookkeeping for all participants (identical inputs → identical
/// schedules), then performs only its own exchanges.
template <typename T>
Status HalvingDoublingAllReduceTcp(const OpContext& ctx, ReduceOp op,
                                   T* data, int64_t n) {
  const int world = ctx.world;
  const int rank = ctx.rank;
  int pof2 = 1;
  while (pof2 * 2 <= world) pof2 *= 2;
  const int rem = world - pof2;
  const size_t nbytes = static_cast<size_t>(n) * sizeof(T);

  // Fold: odd ranks below 2*rem hand their contribution to the even
  // neighbour (which combines it as the right operand) and sit out until
  // the unfold.
  if (rank < 2 * rem) {
    if (rank % 2 == 1) {
      DDPKIT_RETURN_IF_ERROR(SendTo(ctx, rank - 1, data, nbytes));
      return RecvFrom(ctx, rank - 1, data, nbytes);  // unfold
    }
    std::vector<T> tmp(static_cast<size_t>(n));
    DDPKIT_RETURN_IF_ERROR(RecvFrom(ctx, rank + 1, tmp.data(), nbytes));
    CombineSpan(op, data, tmp.data(), n);
  }
  const int p = rank < 2 * rem ? rank / 2 : rank - rem;
  auto part_rank = [&](int q) { return q < rem ? 2 * q : q + rem; };

  std::vector<int64_t> beg(static_cast<size_t>(pof2), 0);
  std::vector<int64_t> end(static_cast<size_t>(pof2), n);
  std::vector<T> tmp(static_cast<size_t>(n));

  // Recursive halving: keeper combines its own (pre-round) half with the
  // partner's, own value on the left — exactly the sim's CombineSpan
  // operand order for both the low and the high keeper.
  for (int mask = pof2 / 2; mask >= 1; mask /= 2) {
    for (int a = 0; a < pof2; ++a) {
      const int b_part = a ^ mask;
      if (b_part < a) continue;
      const int64_t b = beg[static_cast<size_t>(a)];
      const int64_t e = end[static_cast<size_t>(a)];
      const int64_t mid = b + (e - b) / 2;
      if (a == p || b_part == p) {
        const int partner = part_rank(a == p ? b_part : a);
        const bool low = a == p;  // keep [b, mid) if we're the low member
        const int64_t keep_b = low ? b : mid;
        const int64_t keep_len = low ? mid - b : e - mid;
        const int64_t give_b = low ? mid : b;
        const int64_t give_len = low ? e - mid : mid - b;
        DDPKIT_RETURN_IF_ERROR(Exchange(
            ctx, partner, data + give_b,
            static_cast<size_t>(give_len) * sizeof(T), partner,
            tmp.data() + keep_b, static_cast<size_t>(keep_len) * sizeof(T)));
        CombineSpan(op, data + keep_b, tmp.data() + keep_b, keep_len);
      }
      end[static_cast<size_t>(a)] = mid;
      beg[static_cast<size_t>(b_part)] = mid;
    }
  }

  // Recursive doubling: adjacent segments swap back (pure copies, order
  // free), segments merge in reverse.
  for (int mask = 1; mask < pof2; mask *= 2) {
    for (int a = 0; a < pof2; ++a) {
      const int b_part = a ^ mask;
      if (b_part < a) continue;
      const int64_t pb = beg[static_cast<size_t>(a)];
      const int64_t pe = end[static_cast<size_t>(a)];
      const int64_t qb = beg[static_cast<size_t>(b_part)];
      const int64_t qe = end[static_cast<size_t>(b_part)];
      if (a == p || b_part == p) {
        const int partner = part_rank(a == p ? b_part : a);
        const bool low = a == p;
        const int64_t send_b = low ? pb : qb;
        const int64_t send_len = low ? pe - pb : qe - qb;
        const int64_t recv_b = low ? qb : pb;
        const int64_t recv_len = low ? qe - qb : pe - pb;
        DDPKIT_RETURN_IF_ERROR(Exchange(
            ctx, partner, data + send_b,
            static_cast<size_t>(send_len) * sizeof(T), partner,
            data + recv_b, static_cast<size_t>(recv_len) * sizeof(T)));
      }
      const int64_t nb = std::min(pb, qb);
      const int64_t ne = std::max(pe, qe);
      beg[static_cast<size_t>(a)] = beg[static_cast<size_t>(b_part)] = nb;
      end[static_cast<size_t>(a)] = end[static_cast<size_t>(b_part)] = ne;
    }
  }

  // Unfold: hand the full result back to the folded odd neighbour.
  if (rank < 2 * rem) {
    DDPKIT_RETURN_IF_ERROR(SendTo(ctx, rank + 1, data, nbytes));
  }
  return Status::OK();
}

/// Tree: recursive doubling reduce to rank 0 (receiver's own value on the
/// left, matching TreeAllReduce), then a star broadcast (copies).
template <typename T>
Status TreeAllReduceTcp(const OpContext& ctx, ReduceOp op, T* data,
                        int64_t n) {
  const size_t nbytes = static_cast<size_t>(n) * sizeof(T);
  std::vector<T> tmp(static_cast<size_t>(n));
  for (int span = 1; span < ctx.world; span *= 2) {
    if (ctx.rank % (2 * span) == 0) {
      if (ctx.rank + span < ctx.world) {
        DDPKIT_RETURN_IF_ERROR(
            RecvFrom(ctx, ctx.rank + span, tmp.data(), nbytes));
        CombineSpan(op, data, tmp.data(), n);
      }
    } else if (ctx.rank % (2 * span) == span) {
      DDPKIT_RETURN_IF_ERROR(SendTo(ctx, ctx.rank - span, data, nbytes));
      break;  // contribution handed off; wait for the broadcast
    }
  }
  if (ctx.rank == 0) {
    for (int q = 1; q < ctx.world; ++q) {
      DDPKIT_RETURN_IF_ERROR(SendTo(ctx, q, data, nbytes));
    }
    return Status::OK();
  }
  return RecvFrom(ctx, 0, data, nbytes);
}

template <typename T>
Status AllReduceTcp(const OpContext& ctx, Algorithm algorithm, ReduceOp op,
                    T* data, int64_t n) {
  if (ctx.world == 1 || n == 0) return Status::OK();
  switch (algorithm) {
    case Algorithm::kNaive:
      return NaiveAllReduceTcp(ctx, op, data, n);
    case Algorithm::kRing:
      return RingAllReduceTcp(ctx, op, data, n, /*chunks_per_rank=*/1);
    case Algorithm::kRingChunked:
      return RingAllReduceTcp(ctx, op, data, n, sim::kRingChunksPerRank);
    case Algorithm::kHalvingDoubling:
      return HalvingDoublingAllReduceTcp(ctx, op, data, n);
    case Algorithm::kTree:
      return TreeAllReduceTcp(ctx, op, data, n);
    default:
      return Status::InvalidArgument(
          std::string("algorithm not supported over TCP: ") +
          AlgorithmName(algorithm));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Group lifecycle.
// ---------------------------------------------------------------------------

ProcessGroupTcp::ProcessGroupTcp(Store* store, std::string name, int rank,
                                 int world, const Options& options,
                                 sim::VirtualClock* clock)
    : ProcessGroup(rank, world),
      options_(options),
      name_(std::move(name)),
      store_(store),
      clock_(clock) {}

Result<std::shared_ptr<ProcessGroupTcp>> ProcessGroupTcp::Create(
    Store* store, const std::string& name, int rank, int world,
    const Options& options, sim::VirtualClock* clock) {
  if (store == nullptr || clock == nullptr) {
    return Status::InvalidArgument("ProcessGroupTcp needs a store and clock");
  }
  if (rank < 0 || world <= 0 || rank >= world) {
    return Status::InvalidArgument("bad rank/world: " + std::to_string(rank) +
                                   "/" + std::to_string(world));
  }
  if (options.algorithm == Algorithm::kHierarchical) {
    return Status::InvalidArgument(
        "kHierarchical needs a multi-host topology; the TCP backend is a "
        "single-host mesh (use kRing/kRingChunked/kHalvingDoubling)");
  }
  if (options.fault_injector != nullptr &&
      options.fault_injector->self_rank() != rank) {
    return Status::InvalidArgument(
        "fault injector is bound to rank " +
        std::to_string(options.fault_injector->self_rank()) +
        " but this group is rank " + std::to_string(rank));
  }
  std::shared_ptr<ProcessGroupTcp> group(
      new ProcessGroupTcp(store, name, rank, world, options, clock));
  DDPKIT_RETURN_IF_ERROR(group->Bootstrap());
  return group;
}

Status ProcessGroupTcp::BuildMesh(uint64_t resume_seq,
                                  const Deadline& deadline,
                                  std::vector<int>* data_fds,
                                  std::vector<int>* hb_fds) {
  WireFaultInjector* shim = options_.fault_injector;
  const bool want_hb =
      options_.heartbeat_interval_seconds > 0.0 && world() > 1;
  const int channels = want_hb ? 2 : 1;

  Result<int> listen_fd =
      ListenTcp(options_.host, 0, /*backlog=*/world() * channels);
  if (!listen_fd.ok()) return listen_fd.status();
  Result<int> port = ListenPort(listen_fd.value());
  if (!port.ok()) {
    CloseFd(listen_fd.value());
    return port.status();
  }

  const std::string prefix =
      store_keys::PgTcpPrefix(name_, options_.generation);
  // Overwrite semantics: every (re-)mesh round republishes this rank's
  // current listener under the same key; peers re-read per connect try, so
  // stale addresses from an earlier round converge without new key mints.
  const Status published = store_->SetWithRetry(
      store_keys::PgTcpRankKey(prefix, rank()),
      options_.host + ":" + std::to_string(port.value()));
  if (!published.ok()) {
    CloseFd(listen_fd.value());
    return published;
  }

  data_fds->assign(static_cast<size_t>(world()), -1);
  hb_fds->assign(want_hb ? static_cast<size_t>(world()) : 0, -1);
  auto slot = [&](int peer, uint32_t channel) -> int& {
    return channel == kChannelData ? (*data_fds)[static_cast<size_t>(peer)]
                                   : (*hb_fds)[static_cast<size_t>(peer)];
  };
  auto fail = [&](Status status) {
    for (int fd : *data_fds) CloseFd(fd);
    for (int fd : *hb_fds) CloseFd(fd);
    data_fds->assign(static_cast<size_t>(world()), -1);
    hb_fds->assign(want_hb ? static_cast<size_t>(world()) : 0, -1);
    CloseFd(listen_fd.value());
    return status;
  };

  // Connect to every lower rank, one connection per channel. A try window
  // far below the round deadline lets a supervisor round chase the peer's
  // re-publication instead of camping on a dead port.
  for (int peer = 0; peer < rank(); ++peer) {
    for (int channel = 0; channel < channels; ++channel) {
      int ready_fd = -1;
      while (ready_fd < 0) {
        if (deadline.Expired()) {
          return fail(Status::TimedOut(
              "connect to rank " + std::to_string(peer) +
              " failed: mesh deadline elapsed (channel " +
              std::to_string(channel) + ")"));
        }
        Result<std::string> addr = store_->GetWithRetry(
            store_keys::PgTcpRankKey(prefix, peer),
            std::max(0.01, RemainingSeconds(deadline)));
        if (!addr.ok()) {
          return fail(Status(addr.status().code(),
                             "rank " + std::to_string(peer) +
                                 " never published its address: " +
                                 addr.status().message()));
        }
        const size_t colon = addr.value().rfind(':');
        if (colon == std::string::npos) {
          return fail(
              Status::Internal("malformed peer address: " + addr.value()));
        }
        const std::string host = addr.value().substr(0, colon);
        const int peer_port = std::atoi(addr.value().c_str() + colon + 1);
        const Deadline try_deadline = Deadline::After(
            std::min(0.3, std::max(0.01, RemainingSeconds(deadline))));
        Result<int> fd =
            shim != nullptr
                ? shim->ConnectWithDeadline(peer, host, peer_port,
                                            try_deadline, wake_rfd_)
                : ConnectWithDeadline(host, peer_port, try_deadline,
                                      wake_rfd_);
        if (!fd.ok()) {
          if (fd.status().code() == StatusCode::kFailedPrecondition) {
            return fail(fd.status());  // abort pipe fired
          }
          continue;  // refused / blackholed / stale address: re-read, retry
        }
        Hello mine{kHelloMagic,
                   rank(),
                   options_.generation,
                   static_cast<uint32_t>(channel),
                   0,
                   resume_seq};
        const Status sent =
            shim != nullptr
                ? shim->SendAll(peer, fd.value(), &mine, sizeof(mine),
                                deadline, wake_rfd_)
                : SendAll(fd.value(), &mine, sizeof(mine), deadline,
                          wake_rfd_);
        if (!sent.ok()) {
          CloseFd(fd.value());
          if (sent.code() == StatusCode::kFailedPrecondition) {
            return fail(sent);
          }
          continue;
        }
        Hello theirs{};
        const Status got = RecvAll(fd.value(), &theirs, sizeof(theirs),
                                   deadline, wake_rfd_);
        if (!got.ok()) {
          CloseFd(fd.value());
          if (got.code() == StatusCode::kFailedPrecondition) {
            return fail(got);
          }
          continue;
        }
        if (theirs.magic != kHelloMagic || theirs.rank != peer ||
            theirs.channel != static_cast<uint32_t>(channel)) {
          CloseFd(fd.value());
          continue;  // garbled / stale reply; reconnect
        }
        if (theirs.generation != options_.generation) {
          CloseFd(fd.value());
          return fail(Status::InvalidGeneration(
              "peer rank " + std::to_string(peer) + " is at generation " +
              std::to_string(theirs.generation) + ", this group is g" +
              std::to_string(options_.generation)));
        }
        if (theirs.resume_seq != resume_seq) {
          // The peer is replaying a different collective: byte-transparent
          // resume is impossible on this pairing. Treated as transient at
          // the handshake (a stale connection from the peer's previous
          // round looks identical); genuine divergence persists every
          // round until the reconnect budget runs out and the caller
          // poisons the group, handing recovery to the step-level path.
          EmitEvent("pg.resume_mismatch",
                    "peer=" + std::to_string(peer) + " theirs=" +
                        std::to_string(theirs.resume_seq) +
                        " ours=" + std::to_string(resume_seq));
          CloseFd(fd.value());
          // The peer needs wall-clock time to drain its replay and reach
          // our sequence; an immediate retry busy-spins the handshake
          // thousands of times on localhost. The pause is bounded and the
          // mesh is down anyway — stalling this round is the point; abort
          // still cuts in at the next poll via the wake pipe.
          // ddplint: allow(blocking-under-lock) reason: bounded 5ms pacing
          // of a dead-mesh handshake retry; see above.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        ready_fd = fd.value();
      }
      slot(peer, static_cast<uint32_t>(channel)) = ready_fd;
    }
  }

  // Accept one connection per channel from every higher rank, identified
  // by its HELLO (accept order is arbitrary under contention). Connections
  // that fail the handshake are dropped and the accept retried: a flaky
  // accept, a garbled HELLO or a stale connection from a peer's failed
  // round must not burn the whole mesh.
  const int expected = (world() - rank() - 1) * channels;
  int accepted = 0;
  while (accepted < expected) {
    if (deadline.Expired()) {
      return fail(Status::TimedOut(
          "waiting for " + std::to_string(expected - accepted) +
          " higher-rank connection(s): mesh deadline elapsed"));
    }
    Result<int> fd =
        shim != nullptr
            ? shim->AcceptWithDeadline(listen_fd.value(), deadline,
                                       wake_rfd_)
            : AcceptWithDeadline(listen_fd.value(), deadline, wake_rfd_);
    if (!fd.ok()) {
      if (fd.status().code() == StatusCode::kInternal &&
          !deadline.Expired()) {
        continue;  // injected flaky accept / transient kernel error
      }
      return fail(Status(fd.status().code(),
                         "waiting for " +
                             std::to_string(expected - accepted) +
                             " higher-rank connection(s): " +
                             fd.status().message()));
    }
    Hello theirs{};
    const Status got =
        RecvAll(fd.value(), &theirs, sizeof(theirs), deadline, wake_rfd_);
    if (!got.ok()) {
      CloseFd(fd.value());
      if (got.code() == StatusCode::kFailedPrecondition) return fail(got);
      continue;
    }
    if (theirs.magic != kHelloMagic || theirs.rank <= rank() ||
        theirs.rank >= world() ||
        theirs.channel >= static_cast<uint32_t>(channels)) {
      CloseFd(fd.value());
      continue;
    }
    if (theirs.generation != options_.generation) {
      CloseFd(fd.value());
      return fail(Status::InvalidGeneration(
          "peer rank " + std::to_string(theirs.rank) + " is at generation " +
          std::to_string(theirs.generation) + ", this group is g" +
          std::to_string(options_.generation)));
    }
    if (theirs.resume_seq != resume_seq) {
      EmitEvent("pg.resume_mismatch",
                "peer=" + std::to_string(theirs.rank) + " theirs=" +
                    std::to_string(theirs.resume_seq) +
                    " ours=" + std::to_string(resume_seq));
      // Pause before closing: the connector retries the instant its recv
      // fails, so the accept side is the only place this rank can pace a
      // divergent peer's handshake spin (the connect-side pause does not
      // help rank 0, which never dials out). Bounded, and the mesh is
      // down anyway.
      // ddplint: allow(blocking-under-lock) reason: bounded 5ms pacing of
      // a dead-mesh handshake retry; see above.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      CloseFd(fd.value());
      continue;
    }
    int& s = slot(theirs.rank, theirs.channel);
    if (s != -1) {
      // The peer retried this pairing; the newer connection supersedes the
      // stale one.
      CloseFd(s);
      s = -1;
      --accepted;
    }
    Hello mine{kHelloMagic, rank(),     options_.generation,
               theirs.channel, 0,       resume_seq};
    const Status sent =
        shim != nullptr
            ? shim->SendAll(theirs.rank, fd.value(), &mine, sizeof(mine),
                            deadline, wake_rfd_)
            : SendAll(fd.value(), &mine, sizeof(mine), deadline, wake_rfd_);
    if (!sent.ok()) {
      CloseFd(fd.value());
      if (sent.code() == StatusCode::kFailedPrecondition) return fail(sent);
      continue;
    }
    s = fd.value();
    ++accepted;
  }
  CloseFd(listen_fd.value());
  return Status::OK();
}

Status ProcessGroupTcp::Bootstrap() {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::Internal("pipe() failed for abort pipe");
  }
  wake_rfd_ = pipe_fds[0];
  wake_wfd_ = pipe_fds[1];
  int stop_fds[2];
  if (pipe(stop_fds) != 0) {
    return Status::Internal("pipe() failed for supervisor stop pipe");
  }
  sup_stop_rfd_ = stop_fds[0];
  sup_stop_wfd_ = stop_fds[1];

  const Deadline deadline = Deadline::After(options_.connect_timeout_seconds);
  std::vector<int> data_fds;
  std::vector<int> hb_fds;
  Status status;
  double backoff = options_.reconnect_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    // Unsupervised groups get one round with the whole budget (the legacy
    // contract); supervised ones slice it into retryable rounds so a
    // bootstrap-time partition or flaky peer doesn't consume everything.
    const double round =
        supervised() ? std::min(options_.reconnect_timeout_seconds,
                                std::max(0.01, RemainingSeconds(deadline)))
                     : std::max(0.01, RemainingSeconds(deadline));
    status = BuildMesh(/*resume_seq=*/0, Deadline::After(round), &data_fds,
                       &hb_fds);
    if (status.ok()) {
      if (attempt > 0) {
        reconnects_.fetch_add(1);
        if (options_.metrics) {
          options_.metrics->counter("pg.reconnects").Increment();
        }
      }
      break;
    }
    if (!supervised() || !IsTransientWire(status) ||
        attempt >= options_.max_reconnect_attempts || deadline.Expired()) {
      return status;
    }
    EmitEvent("pg.reconnect", "bootstrap retry attempt=" +
                                  std::to_string(attempt + 1) +
                                  " cause=" + status.message());
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff *= 2.0;
  }

  {
    MutexLock lock(&mu_);
    peer_fds_ = std::move(data_fds);
    hb_fds_ = std::move(hb_fds);
    const auto now = SteadyClock::now();
    hb_last_recv_.assign(static_cast<size_t>(world()), now);
    hb_missing_.assign(static_cast<size_t>(world()), false);
  }
  if (options_.heartbeat_interval_seconds > 0.0 && world() > 1) {
    hb_thread_ = std::thread([this] { SupervisorLoop(); });
  }
  return Status::OK();
}

Status ProcessGroupTcp::RemeshLocked(uint64_t resume_seq) {
  // Closing the old mesh first doubles as the failure signal to peers
  // still blocked inside the broken collective: their reads observe EOF,
  // classify transient, and join the re-mesh.
  for (int fd : peer_fds_) CloseFd(fd);
  for (int fd : hb_fds_) CloseFd(fd);
  std::fill(peer_fds_.begin(), peer_fds_.end(), -1);
  std::fill(hb_fds_.begin(), hb_fds_.end(), -1);

  std::vector<int> data_fds;
  std::vector<int> hb_fds;
  const Deadline deadline =
      Deadline::After(options_.reconnect_timeout_seconds);
  DDPKIT_RETURN_IF_ERROR(
      BuildMesh(resume_seq, deadline, &data_fds, &hb_fds));
  peer_fds_ = std::move(data_fds);
  hb_fds_ = std::move(hb_fds);
  const auto now = SteadyClock::now();
  hb_last_recv_.assign(static_cast<size_t>(world()), now);
  hb_missing_.assign(static_cast<size_t>(world()), false);
  return Status::OK();
}

ProcessGroupTcp::~ProcessGroupTcp() {
  if (hb_thread_.joinable()) {
    const char stop = 's';
    (void)!write(sup_stop_wfd_, &stop, 1);
    hb_thread_.join();
  }
  {
    MutexLock lock(&mu_);
    for (int fd : peer_fds_) CloseFd(fd);
    peer_fds_.clear();
    for (int fd : hb_fds_) CloseFd(fd);
    hb_fds_.clear();
  }
  CloseFd(wake_rfd_);
  CloseFd(wake_wfd_);
  CloseFd(sup_stop_rfd_);
  CloseFd(sup_stop_wfd_);
}

std::string ProcessGroupTcp::backend_name() const {
  return std::string("tcp[") + AlgorithmName(options_.algorithm) + "]";
}

void ProcessGroupTcp::EmitEvent(const char* event,
                                const std::string& detail) {
  if (options_.event_sink) options_.event_sink(event, detail);
}

void ProcessGroupTcp::AbortGroup(uint64_t new_generation,
                                 const std::string& reason) {
  uint64_t expected = 0;
  if (!superseded_by_.compare_exchange_strong(expected, new_generation)) {
    return;  // first abort wins
  }
  if (options_.metrics) {
    options_.metrics->counter("pg.group_aborts").Increment();
  }
  // Wake any in-flight poll first (the pipe is never drained: once
  // aborted, always aborted), then take the I/O lock — the woken
  // collective fails kInvalidGeneration and releases it — and tear the
  // mesh down so remote peers blocked on us see EOF, not a hang.
  const char wake = 'x';
  (void)!write(wake_wfd_, &wake, 1);
  (void)reason;
  MutexLock lock(&mu_);
  for (int fd : peer_fds_) CloseFd(fd);
  std::fill(peer_fds_.begin(), peer_fds_.end(), -1);
  for (int fd : hb_fds_) CloseFd(fd);
  std::fill(hb_fds_.begin(), hb_fds_.end(), -1);
}

// ---------------------------------------------------------------------------
// Heartbeat failure detector.
// ---------------------------------------------------------------------------

void ProcessGroupTcp::SupervisorLoop() {
  const int interval_ms = std::max(
      1, static_cast<int>(options_.heartbeat_interval_seconds * 1000.0));
  const double miss_after =
      options_.heartbeat_interval_seconds *
      static_cast<double>(std::max(1, options_.heartbeat_miss_intervals));
  while (true) {
    pollfd stop{sup_stop_rfd_, POLLIN, 0};
    const int n = poll(&stop, 1, interval_ms);
    if (n > 0 && (stop.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      return;
    }
    // A collective in flight holds mu_ for its whole duration and is its
    // own liveness signal; skip the tick rather than queue behind it.
    if (!mu_.TryLock()) continue;
    const auto now = SteadyClock::now();
    for (int peer = 0; peer < world(); ++peer) {
      if (peer == rank() || hb_fds_.empty()) continue;
      const int fd = hb_fds_[static_cast<size_t>(peer)];
      if (fd < 0) continue;
      const char ping = 'h';
      const Deadline send_deadline =
          Deadline::After(options_.heartbeat_interval_seconds);
      if (options_.fault_injector != nullptr) {
        (void)!options_.fault_injector
                   ->Heartbeat(peer, fd, &ping, 1, send_deadline)
                   .ok();
      } else {
        (void)!comm::SendAll(fd, &ping, 1, send_deadline).ok();
      }
      // Drain whatever the peer's probes delivered; any byte proves the
      // link alive. Nonblocking read keeps the tick bounded.
      char buf[64];
      bool alive = false;
      while (recv(fd, buf, sizeof(buf), MSG_DONTWAIT) > 0) alive = true;
      if (alive) {
        hb_last_recv_[static_cast<size_t>(peer)] = now;
        if (hb_missing_[static_cast<size_t>(peer)]) {
          hb_missing_[static_cast<size_t>(peer)] = false;
          EmitEvent("pg.heartbeat_recovered",
                    "peer=" + std::to_string(peer));
        }
      } else if (!hb_missing_[static_cast<size_t>(peer)]) {
        const double silent =
            std::chrono::duration<double>(
                now - hb_last_recv_[static_cast<size_t>(peer)])
                .count();
        if (silent > miss_after) {
          hb_missing_[static_cast<size_t>(peer)] = true;
          heartbeat_misses_.fetch_add(1);
          if (options_.metrics) {
            options_.metrics->counter("pg.heartbeat_misses").Increment();
          }
          EmitEvent("pg.heartbeat_miss",
                    "peer=" + std::to_string(peer) + " silent_ms=" +
                        std::to_string(static_cast<int>(silent * 1000.0)));
        }
      }
    }
    mu_.Unlock();
  }
}

// ---------------------------------------------------------------------------
// Collective plumbing.
// ---------------------------------------------------------------------------

Status ProcessGroupTcp::ExchangeHeaders(const OpHeader& mine,
                                        const OpContext& ctx) {
  if (ctx.world == 1) return Status::OK();
  const int next = (ctx.rank + 1) % ctx.world;
  const int prev = (ctx.rank + ctx.world - 1) % ctx.world;
  OpHeader from_prev{};
  DDPKIT_RETURN_IF_ERROR(Exchange(ctx, next, &mine, sizeof(mine), prev,
                                  &from_prev, sizeof(from_prev)));
  auto mismatch = [&](const char* field, uint64_t ours, uint64_t theirs) {
    return Status::InvalidArgument(
        std::string("collective signature mismatch with rank ") +
        std::to_string(prev) + ": " + field + " ours=" +
        std::to_string(ours) + " theirs=" + std::to_string(theirs) +
        " (op " + OpKindName(mine.kind) + ", seq " +
        std::to_string(mine.seq) + ")");
  };
  if (from_prev.magic != kHeaderMagic) {
    return Status::Internal("corrupt collective header from rank " +
                            std::to_string(prev));
  }
  if (from_prev.seq != mine.seq) {
    return mismatch("seq", mine.seq, from_prev.seq);
  }
  if (from_prev.kind != mine.kind) {
    return mismatch("op", mine.kind, from_prev.kind);
  }
  if (from_prev.dtype != mine.dtype) {
    return mismatch("dtype", mine.dtype, from_prev.dtype);
  }
  if (from_prev.rop != mine.rop) {
    return mismatch("reduce_op", mine.rop, from_prev.rop);
  }
  if (from_prev.root != mine.root) {
    return mismatch("root", static_cast<uint64_t>(mine.root),
                    static_cast<uint64_t>(from_prev.root));
  }
  if (from_prev.numel != mine.numel) {
    return mismatch("numel", static_cast<uint64_t>(mine.numel),
                    static_cast<uint64_t>(from_prev.numel));
  }
  if (from_prev.generation != mine.generation) {
    return mismatch("generation", mine.generation, from_prev.generation);
  }
  return Status::OK();
}

template <typename Body>
WorkHandle ProcessGroupTcp::RunCollective(uint8_t kind, uint8_t dtype_code,
                                          int64_t numel, int root,
                                          ReduceOp op,
                                          std::vector<ByteSpan> payload,
                                          Body body) {
  auto work = std::make_shared<Work>();
  const uint64_t seq = next_seq_.fetch_add(1);
  const double issue_clock = clock_->Now();
  const auto wall_start = SteadyClock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(SteadyClock::now() - wall_start)
        .count();
  };
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->set_op_index(seq);
  }

  if (options_.metrics) {
    options_.metrics->counter(std::string("pg.ops.") + OpKindName(kind))
        .Increment();
    // Same accounting as ProcessGroupSim: this rank's payload contribution
    // at issue time, so `pg.bytes_contributed` is backend-portable and the
    // compression hooks' wire-byte metrics cross-check against it.
    options_.metrics->counter("pg.bytes_contributed")
        .Increment(static_cast<uint64_t>(numel) *
                   ItemSize(static_cast<DType>(dtype_code)));
  }

  MutexLock lock(&mu_);
  const uint64_t superseded = superseded_by_.load();
  if (superseded != 0) {
    work->MarkFailed(WorkError::kInvalidGeneration,
                     "group generation " +
                         std::to_string(options_.generation) +
                         " superseded by " + std::to_string(superseded),
                     issue_clock);
    return work;
  }
  if (wire_failed_) {
    work->MarkFailed(WorkError::kRankFailure,
                     "group wire poisoned by earlier failure: " +
                         wire_failure_reason_,
                     issue_clock);
    return work;
  }

  // Snapshot the bytes this collective mutates so a supervisor replay is
  // byte-transparent: every retry starts from the exact pre-op payload.
  std::vector<std::vector<uint8_t>> snapshot;
  if (supervised()) {
    snapshot.reserve(payload.size());
    for (const ByteSpan& span : payload) {
      const uint8_t* p = static_cast<const uint8_t*>(span.first);
      snapshot.emplace_back(p, p + span.second);
    }
  }

  OpHeader header{kHeaderMagic,
                  kind,
                  dtype_code,
                  static_cast<uint8_t>(op),
                  0,
                  root,
                  numel,
                  seq,
                  options_.generation};
  Status status;
  double backoff = options_.reconnect_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      // Transient wire failure: restore the payload, back off, rebuild the
      // mesh at the same generation, and replay this same seq.
      for (size_t i = 0; i < payload.size(); ++i) {
        if (payload[i].second > 0) {
          std::memcpy(payload[i].first, snapshot[i].data(),
                      payload[i].second);
        }
      }
      // ddplint: allow(blocking-under-lock) reason: the backoff is bounded
      // (reconnect_backoff doubled at most max_reconnect_attempts times)
      // and intentionally holds the collective lock — the mesh is down, so
      // stalling other issuers and the heartbeat prober until the remesh
      // verdict is the correct behaviour, and AbortGroup still cuts in via
      // the wake pipe at the next poll.
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2.0;
      const Status remesh = RemeshLocked(seq);
      if (!remesh.ok()) {
        status = remesh;
        if (!IsTransientWire(remesh) ||
            attempt >= options_.max_reconnect_attempts ||
            superseded_by_.load() != 0) {
          break;
        }
        continue;  // burn another attempt on re-meshing
      }
      reconnects_.fetch_add(1);
      if (options_.metrics) {
        options_.metrics->counter("pg.reconnects").Increment();
      }
      EmitEvent("pg.reconnect",
                "seq=" + std::to_string(seq) + " attempt=" +
                    std::to_string(attempt) + " op=" + OpKindName(kind));
    }
    OpContext ctx{&peer_fds_,
                  rank(),
                  world(),
                  Deadline::After(options_.collective_timeout_seconds),
                  wake_rfd_,
                  options_.fault_injector};
    status = ExchangeHeaders(header, ctx);
    if (status.ok()) status = body(ctx);
    if (status.ok()) break;
    if (!supervised() || !IsTransientWire(status) ||
        attempt >= options_.max_reconnect_attempts ||
        superseded_by_.load() != 0) {
      break;
    }
    EmitEvent("pg.wire_failure",
              "seq=" + std::to_string(seq) + " transient: " +
                  status.message());
  }

  if (status.ok()) {
    // Track wall time on the virtual clock so Work/telemetry semantics
    // stay uniform with the sim backends.
    work->MarkCompleted(issue_clock + elapsed());
    return work;
  }

  WorkError error = WorkError::kRankFailure;
  switch (status.code()) {
    case StatusCode::kTimedOut:
      error = WorkError::kTimeout;
      break;
    case StatusCode::kInvalidArgument:  // header/shape disagreement
      error = WorkError::kShapeMismatch;
      break;
    case StatusCode::kFailedPrecondition:  // abort pipe fired
      error = WorkError::kInvalidGeneration;
      break;
    default:  // incl. kInvalidGeneration from a re-mesh HELLO: rank failure
      error = WorkError::kRankFailure;
      break;
  }
  if (error == WorkError::kInvalidGeneration) {
    const uint64_t new_gen = superseded_by_.load();
    work->MarkFailed(error,
                     "collective " + std::string(OpKindName(kind)) + " seq " +
                         std::to_string(seq) + " aborted: generation " +
                         std::to_string(options_.generation) +
                         " superseded by " + std::to_string(new_gen),
                     issue_clock + elapsed());
    return work;
  }
  // The wire can be mid-message anywhere in the mesh; poison the group so
  // no later collective reads another op's bytes as its payload.
  wire_failed_ = true;
  wire_failure_reason_ = status.message();
  if (options_.metrics) {
    options_.metrics->counter("pg.collectives_failed").Increment();
  }
  work->MarkFailed(error,
                   "collective " + std::string(OpKindName(kind)) + " seq " +
                       std::to_string(seq) + " failed (" +
                       status.message() + ")",
                   issue_clock + elapsed());
  return work;
}

// ---------------------------------------------------------------------------
// Public collectives.
// ---------------------------------------------------------------------------

WorkHandle ProcessGroupTcp::AllReduce(Tensor tensor, ReduceOp op) {
  const int64_t n = tensor.numel();
  const uint8_t dtype_code = static_cast<uint8_t>(tensor.dtype());
  Algorithm algorithm = options_.algorithm;
  if (algorithm == Algorithm::kAuto) {
    sim::Topology::Options topo;
    if (options_.ranks_per_node > 0) {
      topo.gpus_per_host = options_.ranks_per_node;
    }
    algorithm = sim::SelectAllReduceAlgorithm(
        static_cast<size_t>(n) * ItemSize(tensor.dtype()), world(),
        sim::Topology(topo));
    // The auto-selector may pick the two-level hierarchical layout; this
    // backend's mesh is flat, so the chunked ring is its stand-in (same
    // bandwidth-optimal class, deterministically chosen on every rank).
    if (algorithm == Algorithm::kHierarchical) {
      algorithm = Algorithm::kRingChunked;
    }
  }
  std::vector<ByteSpan> payload;
  if (tensor.is_contiguous() && n > 0) {
    payload.push_back({tensor.data<uint8_t>(),
                       static_cast<size_t>(tensor.nbytes())});
  }
  return RunCollective(
      kKindAllReduce, dtype_code, n, /*root=*/-1, op, std::move(payload),
      [&, algorithm](const OpContext& ctx) -> Status {
        if (!tensor.is_contiguous()) {
          return Status::InvalidArgument("AllReduce needs contiguous tensor");
        }
        switch (tensor.dtype()) {
          case DType::kFloat32:
            return AllReduceTcp(ctx, algorithm, op, tensor.data<float>(), n);
          case DType::kUInt8:
            return AllReduceTcp(ctx, algorithm, op, tensor.data<uint8_t>(),
                                n);
          case DType::kInt64:
            return AllReduceTcp(ctx, algorithm, op, tensor.data<int64_t>(),
                                n);
          case DType::kFloat16:
            return Fp16AllReduceTcp(ctx, op, tensor.data<uint16_t>(), n);
          default:
            return Status::InvalidArgument(
                std::string("AllReduce unsupported dtype ") +
                DTypeName(tensor.dtype()));
        }
      });
}

WorkHandle ProcessGroupTcp::Broadcast(Tensor tensor, int root) {
  const int64_t n = tensor.numel();
  const size_t bytes = static_cast<size_t>(n) * ItemSize(tensor.dtype());
  std::vector<ByteSpan> payload;
  if (tensor.is_contiguous() && n > 0) {
    payload.push_back({tensor.data<uint8_t>(),
                       static_cast<size_t>(tensor.nbytes())});
  }
  return RunCollective(
      kKindBroadcast, static_cast<uint8_t>(tensor.dtype()), n, root,
      ReduceOp::kSum, std::move(payload),
      [&](const OpContext& ctx) -> Status {
        if (root < 0 || root >= ctx.world) {
          return Status::InvalidArgument("bad broadcast root");
        }
        if (!tensor.is_contiguous()) {
          return Status::InvalidArgument("Broadcast needs contiguous tensor");
        }
        if (ctx.world == 1 || bytes == 0) return Status::OK();
        void* data = tensor.data<uint8_t>();
        if (ctx.rank == root) {
          for (int q = 0; q < ctx.world; ++q) {
            if (q == root) continue;
            DDPKIT_RETURN_IF_ERROR(SendTo(ctx, q, data, bytes));
          }
          return Status::OK();
        }
        return RecvFrom(ctx, root, data, bytes);
      });
}

WorkHandle ProcessGroupTcp::AllGather(const Tensor& input, Tensor output) {
  const int64_t n = input.numel();
  const size_t block = static_cast<size_t>(n) * ItemSize(input.dtype());
  std::vector<ByteSpan> payload;
  if (output.is_contiguous() && output.numel() > 0) {
    payload.push_back({output.data<uint8_t>(),
                       static_cast<size_t>(output.nbytes())});
  }
  return RunCollective(
      kKindAllGather, static_cast<uint8_t>(input.dtype()), n, /*root=*/-1,
      ReduceOp::kSum, std::move(payload),
      [&](const OpContext& ctx) -> Status {
        if (output.numel() != n * ctx.world) {
          return Status::InvalidArgument("AllGather output size mismatch");
        }
        if (!input.is_contiguous() || !output.is_contiguous()) {
          return Status::InvalidArgument("AllGather needs contiguous tensors");
        }
        uint8_t* out = output.data<uint8_t>();
        std::memcpy(out + static_cast<size_t>(ctx.rank) * block,
                    input.data<uint8_t>(), block);
        if (ctx.world == 1 || block == 0) return Status::OK();
        // Ring rotation: step s forwards the block received last step.
        const int next = (ctx.rank + 1) % ctx.world;
        const int prev = (ctx.rank + ctx.world - 1) % ctx.world;
        for (int s = 1; s < ctx.world; ++s) {
          const int send_block = (ctx.rank - s + 1 + ctx.world) % ctx.world;
          const int recv_block = (ctx.rank - s + ctx.world) % ctx.world;
          DDPKIT_RETURN_IF_ERROR(Exchange(
              ctx, next, out + static_cast<size_t>(send_block) * block,
              block, prev, out + static_cast<size_t>(recv_block) * block,
              block));
        }
        return Status::OK();
      });
}

WorkHandle ProcessGroupTcp::Reduce(Tensor tensor, int root, ReduceOp op) {
  const int64_t n = tensor.numel();
  std::vector<ByteSpan> payload;
  if (tensor.is_contiguous() && n > 0) {
    payload.push_back({tensor.data<uint8_t>(),
                       static_cast<size_t>(tensor.nbytes())});
  }
  return RunCollective(
      kKindReduce, static_cast<uint8_t>(tensor.dtype()), n, root, op,
      std::move(payload), [&](const OpContext& ctx) -> Status {
        if (root < 0 || root >= ctx.world) {
          return Status::InvalidArgument("bad reduce root");
        }
        if (!tensor.is_contiguous()) {
          return Status::InvalidArgument("Reduce needs contiguous tensor");
        }
        if (ctx.world == 1 || n == 0) return Status::OK();
        // ReduceInto's order: root's tensor is the accumulator, sources
        // combined in ascending rank order skipping the root.
        auto run = [&](auto* data) -> Status {
          using T = std::remove_pointer_t<decltype(data)>;
          const size_t bytes = static_cast<size_t>(n) * sizeof(T);
          if (ctx.rank != root) return SendTo(ctx, root, data, bytes);
          std::vector<T> tmp(static_cast<size_t>(n));
          for (int q = 0; q < ctx.world; ++q) {
            if (q == root) continue;
            DDPKIT_RETURN_IF_ERROR(RecvFrom(ctx, q, tmp.data(), bytes));
            CombineSpan(op, data, tmp.data(), n);
          }
          return Status::OK();
        };
        switch (tensor.dtype()) {
          case DType::kFloat32:
            return run(tensor.data<float>());
          case DType::kUInt8:
            return run(tensor.data<uint8_t>());
          case DType::kInt64:
            return run(tensor.data<int64_t>());
          default:
            return Status::InvalidArgument(
                std::string("Reduce unsupported dtype ") +
                DTypeName(tensor.dtype()));
        }
      });
}

WorkHandle ProcessGroupTcp::ReduceScatter(const Tensor& input, Tensor output,
                                          ReduceOp op) {
  const int64_t chunk = output.numel();
  std::vector<ByteSpan> payload;
  if (output.is_contiguous() && chunk > 0) {
    payload.push_back({output.data<uint8_t>(),
                       static_cast<size_t>(output.nbytes())});
  }
  return RunCollective(
      kKindReduceScatter, static_cast<uint8_t>(input.dtype()), chunk,
      /*root=*/-1, op, std::move(payload),
      [&](const OpContext& ctx) -> Status {
        if (input.dtype() != DType::kFloat32 ||
            output.dtype() != DType::kFloat32) {
          return Status::InvalidArgument("ReduceScatter supports float32");
        }
        if (input.numel() != chunk * ctx.world) {
          return Status::InvalidArgument("ReduceScatter input size mismatch");
        }
        if (!input.is_contiguous() || !output.is_contiguous()) {
          return Status::InvalidArgument(
              "ReduceScatter needs contiguous tensors");
        }
        const float* in = input.data<float>();
        float* out = output.data<float>();
        if (ctx.world == 1) {
          std::memcpy(out, in, static_cast<size_t>(chunk) * sizeof(float));
          return Status::OK();
        }
        if (chunk == 0) return Status::OK();
        // Exactly RunReduceScatter: chunk c accumulates from rank (c+1)
        // around the ring, finishing at rank c — the ring's phase 1, with
        // this rank's contribution combined as the right operand.
        const size_t bytes = static_cast<size_t>(chunk) * sizeof(float);
        const int next = (ctx.rank + 1) % ctx.world;
        const int prev = (ctx.rank + ctx.world - 1) % ctx.world;
        std::vector<float> send_stage(static_cast<size_t>(chunk));
        std::vector<float> recv_stage(static_cast<size_t>(chunk));
        for (int s = 1; s < ctx.world; ++s) {
          const int send_chunk = (ctx.rank - s + ctx.world) % ctx.world;
          const int recv_chunk =
              (ctx.rank - 1 - s + 2 * ctx.world) % ctx.world;
          if (s == 1) {
            std::memcpy(send_stage.data(),
                        in + static_cast<size_t>(send_chunk) * chunk, bytes);
          }
          DDPKIT_RETURN_IF_ERROR(Exchange(ctx, next, send_stage.data(),
                                          bytes, prev, recv_stage.data(),
                                          bytes));
          CombineSpan(op, recv_stage.data(),
                      in + static_cast<size_t>(recv_chunk) * chunk, chunk);
          send_stage.swap(recv_stage);
        }
        std::memcpy(out, send_stage.data(), bytes);
        return Status::OK();
      });
}

WorkHandle ProcessGroupTcp::Gather(const Tensor& input, Tensor output,
                                   int root) {
  const int64_t n = input.numel();
  const size_t block = static_cast<size_t>(n) * ItemSize(input.dtype());
  std::vector<ByteSpan> payload;
  if (output.is_contiguous() && output.numel() > 0) {
    payload.push_back({output.data<uint8_t>(),
                       static_cast<size_t>(output.nbytes())});
  }
  return RunCollective(
      kKindGather, static_cast<uint8_t>(input.dtype()), n, root,
      ReduceOp::kSum, std::move(payload),
      [&](const OpContext& ctx) -> Status {
        if (root < 0 || root >= ctx.world) {
          return Status::InvalidArgument("bad gather root");
        }
        if (!input.is_contiguous()) {
          return Status::InvalidArgument("Gather needs contiguous input");
        }
        if (ctx.rank != root) {
          if (ctx.world == 1) return Status::OK();
          return SendTo(ctx, root, input.data<uint8_t>(), block);
        }
        if (output.numel() != n * ctx.world) {
          return Status::InvalidArgument("Gather output size mismatch");
        }
        if (!output.is_contiguous()) {
          return Status::InvalidArgument("Gather needs contiguous output");
        }
        uint8_t* out = output.data<uint8_t>();
        std::memcpy(out + static_cast<size_t>(root) * block,
                    input.data<uint8_t>(), block);
        for (int q = 0; q < ctx.world; ++q) {
          if (q == root) continue;
          DDPKIT_RETURN_IF_ERROR(RecvFrom(
              ctx, q, out + static_cast<size_t>(q) * block, block));
        }
        return Status::OK();
      });
}

void ProcessGroupTcp::Barrier() {
  WorkHandle work = RunCollective(
      kKindBarrier, 0, 0, /*root=*/-1, ReduceOp::kSum, {},
      [&](const OpContext& ctx) -> Status {
        if (ctx.world == 1) return Status::OK();
        char token = 'b';
        if (ctx.rank == 0) {
          for (int q = 1; q < ctx.world; ++q) {
            DDPKIT_RETURN_IF_ERROR(RecvFrom(ctx, q, &token, 1));
          }
          for (int q = 1; q < ctx.world; ++q) {
            DDPKIT_RETURN_IF_ERROR(SendTo(ctx, q, &token, 1));
          }
          return Status::OK();
        }
        DDPKIT_RETURN_IF_ERROR(SendTo(ctx, 0, &token, 1));
        return RecvFrom(ctx, 0, &token, 1);
      });
  // Barrier has no error channel; a wire failure is logged rather than
  // aborted on (kill -9 chaos must surface as typed errors on the ops that
  // carry Work handles, never as a raw abort in a drain-path barrier).
  const Status status = work->Wait(clock_, options_.collective_timeout_seconds);
  if (!status.ok()) {
    DDPKIT_LOG(Error) << "[pg_tcp rank " << rank() << "] barrier failed: "
                      << status.message();
  }
}

}  // namespace ddpkit::comm
