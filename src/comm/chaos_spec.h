#ifndef DDPKIT_COMM_CHAOS_SPEC_H_
#define DDPKIT_COMM_CHAOS_SPEC_H_

#include <cstdint>
#include <string>

#include "comm/fault_plan.h"
#include "common/status.h"

namespace ddpkit::comm {

/// Parses a `--chaos=<spec>` wire-fault spec into a WireFaultPlan. The spec
/// is a comma-separated fault list; every rank of a run parses the same
/// string with the same seed and derives the identical plan, which is what
/// makes a chaos run replayable from its command line.
///
/// Grammar (N, M are training-step numbers; ranks are launch-time ids):
///   partition:AxB@stepN        two-way partition of link A-B from step N
///   partition:A>B@stepN        one-way: A's bytes to B vanish
///   partition:rand@stepN       seeded random pair, two-way
///   ,heal@stepM                attaches to the preceding partition: heals
///                              after M-N blackholed operations
///   reset:AxB@stepN            hard connection reset (both directions;
///                              A>B for one) at step N, one-shot
///   truncate:A>B@stepN:BYTES   deliver BYTES bytes of one send, then reset
///   slow:AxB:LAT_MS[:BPS]      per-op latency (ms) and byte/s pacing
///   flaky-accept:R:COUNT       rank R's next COUNT accepts fail transient
///
/// Example: partition:2x3@step5,heal@step8
///
/// Step -> op-index mapping: `op_base` is the number of collectives the
/// training harness issues before step 0 (DDP construction broadcasts);
/// training step i is op index op_base + i. The shared multiproc scenario's
/// Mlp{4,6,2} issues 4.
[[nodiscard]] Result<WireFaultPlan> ParseWireChaosSpec(
    const std::string& spec, uint64_t seed, int world,
    uint64_t op_base = 4);

/// The environment half of the `--chaos` contract: ddp_launch exports
/// DDPKIT_CHAOS_WIRE (the spec string) to every worker, and the pre-existing
/// DDPKIT_CHAOS_SEED (default 1) seeds `rand` faults. `enabled` is false
/// when DDPKIT_CHAOS_WIRE is unset/empty — the common case.
struct WireChaosEnv {
  bool enabled = false;
  std::string spec;
  uint64_t seed = 1;
};
[[nodiscard]] WireChaosEnv ReadWireChaosEnv();

class WireFaultInjector;

/// Process-lifetime chaos injector built from the DDPKIT_CHAOS_WIRE /
/// DDPKIT_CHAOS_SEED env contract, for processes that reach the TCP backend
/// through CreateProcessGroupBackend rather than constructing their own
/// injector (ddpkit_trainer and any future --backend=tcp binary).
///
/// Returns nullptr when the env is disabled — the common case — and a typed
/// error when the exported spec does not parse, so a bad --chaos string
/// fails rendezvous loudly instead of silently running fault-free. The
/// first call fixes (rank, world) for the process; later calls with a
/// different pair get nullptr, which keeps regrouped generations (new rank
/// ids, smaller world) injector-free by policy — the fault already did its
/// job in generation 0.
[[nodiscard]] Result<WireFaultInjector*> ProcessWireChaosInjector(int rank,
                                                                  int world);

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_CHAOS_SPEC_H_
