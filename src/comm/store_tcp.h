#ifndef DDPKIT_COMM_STORE_TCP_H_
#define DDPKIT_COMM_STORE_TCP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "comm/store.h"

namespace ddpkit::comm {

/// TCP rendezvous store — the ddpkit equivalent of PyTorch's TCPStore
/// (paper §3.3: rank 0 hosts the store, every process connects to it to
/// bootstrap). One process runs a StoreServerTcp (the launcher, so a
/// kill -9'd worker can never take the store down with it); every worker
/// speaks to it through a StoreClientTcp, which IS a comm::Store — every
/// consumer built against the Store seam (process-group rendezvous, reducer
/// layout validation, elastic recovery) runs unchanged over the wire.
///
/// Wire protocol: length-prefixed frames (net_socket.h), payload = u8
/// opcode + operands (strings as u32 length + bytes, integers launcher and
/// workers share one host so fixed-width native-endian). Blocking ops
/// (bounded Get/Wait) are held server-side in short slices so a server
/// shutdown never strands a connection thread.
class StoreServerTcp {
 public:
  /// Binds `host:port` and starts serving. Port 0 picks a free port —
  /// the collision-proof choice for CI; read it back with port().
  [[nodiscard]] static Result<std::unique_ptr<StoreServerTcp>> Start(
      const std::string& host = "127.0.0.1", int port = 0);

  ~StoreServerTcp();
  StoreServerTcp(const StoreServerTcp&) = delete;
  StoreServerTcp& operator=(const StoreServerTcp&) = delete;

  int port() const { return port_; }
  const std::string& host() const { return host_; }

  /// Stops accepting, wakes every blocked connection, joins all threads.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// The in-memory store this server fronts (for same-process assertions
  /// in tests and for the launcher's own bookkeeping).
  Store& backing();

  /// Connection threads currently tracked (live + finished-but-unreaped).
  /// The accept loop reaps finished threads before admitting each new
  /// connection, so this stays bounded by the number of concurrently open
  /// clients — the regression surface for the reaping fix.
  size_t tracked_connections();

 private:
  StoreServerTcp(std::string host, int port, int listen_fd, int wake_rfd,
                 int wake_wfd);

  void AcceptLoop();
  void ServeConnection(uint64_t conn_id, int fd);
  /// Joins every connection thread that has announced completion. The join
  /// is near-instant: a finished thread only has its epilogue left.
  void ReapFinishedConnections();
  /// Handles one decoded request, appending the response payload.
  /// Returns false on a malformed request (connection is dropped).
  bool HandleRequest(const std::vector<uint8_t>& request,
                     std::vector<uint8_t>* response);

  /// Store subclass that re-exposes the protected bounded primitives: the
  /// server loops them in short slices so shutdown stays responsive.
  class ServerStore;

  std::string host_;
  int port_;
  int listen_fd_;
  /// Wake pipe: Stop() writes `wake_wfd_`; every blocking socket call in
  /// the server passes `wake_rfd_` as its abort fd.
  int wake_rfd_;
  int wake_wfd_;
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<ServerStore> store_;
  std::thread accept_thread_;

  Mutex conn_mutex_;
  /// Live connection threads keyed by connection id. A thread announces
  /// completion by moving its id to finished_conns_ as its last act; the
  /// accept loop (and Stop) joins and erases announced threads. Without
  /// this, a client that churns connect/reset cycles — exactly what the
  /// self-healing TCP backend's re-mesh does — would grow the vector of
  /// dead threads without bound for the server's lifetime.
  std::map<uint64_t, std::thread> conn_threads_ GUARDED_BY(conn_mutex_);
  std::vector<uint64_t> finished_conns_ GUARDED_BY(conn_mutex_);
  uint64_t next_conn_id_ GUARDED_BY(conn_mutex_) = 0;
};

/// Client half: a comm::Store whose primitive layer is framed RPCs to a
/// StoreServerTcp. One socket per client, one RPC in flight at a time
/// (serialized by a mutex); bounded waits are sliced so no single RPC
/// occupies the channel for long. Transport failures close the socket and
/// surface as non-OK Status from the primitives — the base-class tiers
/// translate that into retries (with reconnect-on-next-attempt) or typed
/// errors per their contract.
class StoreClientTcp : public Store {
 public:
  struct Options {
    /// Budget for (re)establishing the connection within one primitive op.
    double connect_timeout_seconds = 10.0;
    /// Server-side wait granularity for bounded Get/Wait slices.
    double slice_seconds = 0.05;
  };

  StoreClientTcp(std::string host, int port);
  StoreClientTcp(std::string host, int port, Options options);
  ~StoreClientTcp() override;

  /// One round-trip no-op RPC; OK means the server is reachable.
  [[nodiscard]] Status Ping();

 protected:
  [[nodiscard]] Status DoSet(const std::string& key,
                             const std::string& value) override;
  [[nodiscard]] Status DoTryGet(const std::string& key, std::string* value,
                                bool* found) override;
  [[nodiscard]] Result<int64_t> DoAdd(const std::string& key,
                                      int64_t delta) override;
  [[nodiscard]] Result<std::string> DoGetBounded(
      const std::string& key, double timeout_seconds) override;
  [[nodiscard]] Status DoWaitBounded(const std::vector<std::string>& keys,
                                     double timeout_seconds) override;
  [[nodiscard]] Result<int64_t> DoNumKeys() override;
  [[nodiscard]] Result<int64_t> DoDeleteKey(const std::string& key) override;
  [[nodiscard]] Result<int64_t> DoDeletePrefix(
      const std::string& prefix) override;

 private:
  /// One framed round trip under the RPC lock; connects first when needed.
  /// Any transport failure closes the socket so the next call reconnects.
  [[nodiscard]] Result<std::vector<uint8_t>> Rpc(
      const std::vector<uint8_t>& request, double deadline_seconds)
      EXCLUDES(rpc_mutex_);

  std::string host_;
  int port_;
  Options options_;
  Mutex rpc_mutex_;
  int fd_ GUARDED_BY(rpc_mutex_) = -1;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_STORE_TCP_H_
