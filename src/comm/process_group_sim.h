#ifndef DDPKIT_COMM_PROCESS_GROUP_SIM_H_
#define DDPKIT_COMM_PROCESS_GROUP_SIM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/algorithms.h"
#include "comm/fault_plan.h"
#include "comm/process_group.h"
#include "comm/store.h"
#include "common/barrier.h"
#include "common/metrics.h"
#include "sim/comm_cost_model.h"
#include "sim/topology.h"

namespace ddpkit::comm {

namespace internal {
struct GroupState;
}  // namespace internal

/// Simulated collective backend over shared-memory rank threads.
///
/// Data plane: real — contributions are combined with the selected
/// algorithm (ring by default), bit-deterministically.
/// Time plane: modeled — a collective starts at the max of participant
/// arrival clocks (synchronized semantics, §2.3), is serialized behind
/// earlier collectives of the same group on a single *comm queue* (the
/// dedicated CUDA stream NCCL groups use, §3.3), and completes after the
/// backend cost model's duration. Rank clocks advance on Work::Wait.
///
/// Construction is a rendezvous: every rank calls Create with the same
/// store/name/world, and all block until the last rank joins.
class ProcessGroupSim : public ProcessGroup {
 public:
  struct Options {
    sim::Backend flavor = sim::Backend::kNccl;
    Algorithm algorithm = Algorithm::kRing;
    sim::Topology topology = sim::Topology();
    /// Number of sibling groups concurrently sharing the links (set by
    /// RoundRobinProcessGroup; affects modeled bandwidth only).
    int concurrent_groups = 1;
    /// Optional overrides for the flavor's cost-model parameters.
    std::optional<sim::NcclCostModel::Options> nccl_options;
    std::optional<sim::GlooCostModel::Options> gloo_options;
    /// Deterministic fault schedule shared by all ranks of the group (pass
    /// the same plan to every rank's Create). Null = fault-free.
    std::shared_ptr<const FaultPlan> fault_plan;
    /// Virtual-time watchdog: when a fault plan makes a rank miss a
    /// collective, peers' Work fails kTimeout/kRankFailure this many
    /// virtual seconds after the last live participant arrived.
    double collective_timeout_seconds = 30.0;
    /// Optional metrics sink (pg.* namespace): per-rank op/byte counters at
    /// issue time, and — recorded once per collective by the last-arriving
    /// rank — queue-delay and duration histograms plus failure counters.
    /// Pass the same registry to every rank (the group adopts the first
    /// non-null one for the collective-level metrics).
    std::shared_ptr<MetricsRegistry> metrics;
    /// Elastic-recovery generation this group is formed at (0 for normal
    /// startup; rendezvous-formed replacement groups carry the generation
    /// the survivors agreed on). All ranks must pass the same value.
    uint64_t generation = 0;
  };

  /// Rendezvous constructor: blocks until all `world` ranks have called
  /// Create with the same `name`. `clock` must outlive the group.
  static std::shared_ptr<ProcessGroupSim> Create(Store* store,
                                                 const std::string& name,
                                                 int rank, int world,
                                                 const Options& options,
                                                 sim::VirtualClock* clock);

  ~ProcessGroupSim() override;

  [[nodiscard]] WorkHandle AllReduce(Tensor tensor, ReduceOp op) override;
  [[nodiscard]] WorkHandle Broadcast(Tensor tensor, int root) override;
  [[nodiscard]] WorkHandle AllGather(const Tensor& input,
                                     Tensor output) override;
  [[nodiscard]] WorkHandle Reduce(Tensor tensor, int root,
                                  ReduceOp op) override;
  [[nodiscard]] WorkHandle ReduceScatter(const Tensor& input, Tensor output,
                                         ReduceOp op) override;
  [[nodiscard]] WorkHandle Gather(const Tensor& input, Tensor output,
                                  int root) override;
  void Barrier() override;

  sim::VirtualClock* clock() override { return clock_; }
  Store* store() override { return store_; }
  std::string backend_name() const override;

  const sim::CommCostModel& cost_model() const;
  Algorithm algorithm() const { return options_.algorithm; }

  /// Total number of collectives this rank has issued.
  uint64_t ops_issued() const { return next_seq_; }

  uint64_t generation() const override { return options_.generation; }
  uint64_t superseded_by() const override;

  /// Marks the shared group state superseded by `new_generation`: every
  /// in-flight collective fails kInvalidGeneration immediately and every
  /// later Contribute (from any rank handle of this group — including a
  /// straggler that missed the rendezvous) fails fast the same way.
  /// Idempotent across the survivors' concurrent calls.
  void AbortGroup(uint64_t new_generation, const std::string& reason) override;

 private:
  ProcessGroupSim(std::shared_ptr<internal::GroupState> state, int rank,
                  int world, const Options& options, sim::VirtualClock* clock,
                  Store* store);

  std::shared_ptr<internal::GroupState> state_;
  Options options_;
  sim::VirtualClock* clock_;
  Store* store_ = nullptr;
  uint64_t next_seq_ = 0;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_PROCESS_GROUP_SIM_H_
