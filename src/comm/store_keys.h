// The single legal mint for Store key namespaces (enforced by ddplint's
// store-key-schema pass — see DESIGN.md §13). Store keys are a cross-rank
// wire protocol: every rank must compute byte-identical keys, or the
// rendezvous, address-exchange, and layout-validation handshakes silently
// miss each other and surface as timeouts. Centralizing the composition
// here makes a key-schema change a one-file diff and keeps the shape of
// each namespace reviewable in one place.
//
// Namespaces:
//   reducer/instances/rank<r>                 per-rank reducer counter
//   reducer/layout/<inst>/v<epoch>/rank<r>    bucket-layout signatures
//   reducer/rebuild/<inst>/v<epoch>/order     rank 0's ready-order broadcast
//   rendezvous/<ns>/g<gen>/{join/rank<r>,seal,members}
//   pgtcp/<group>/g<gen>/rank<r>              TCP address exchange
//   pg/<group>/joined                         sim membership counter

#ifndef DDPKIT_COMM_STORE_KEYS_H_
#define DDPKIT_COMM_STORE_KEYS_H_

#include <cstdint>
#include <string>

namespace ddpkit::comm::store_keys {

// --- reducer/ — cross-rank bucket-layout coordination ----------------------

/// Per-rank counter pairing the Nth reducer constructed on every rank.
inline std::string ReducerInstanceCounter(int rank) {
  return "reducer/instances/rank" + std::to_string(rank);
}

/// Key under which `rank` publishes its layout signature for one epoch.
inline std::string ReducerLayoutRankKey(int64_t instance, int64_t epoch,
                                        int rank) {
  return "reducer/layout/" + std::to_string(instance) + "/v" +
         std::to_string(epoch) + "/rank" + std::to_string(rank);
}

/// Prefix covering one whole layout epoch (DeletePrefix garbage sweep).
inline std::string ReducerLayoutEpochPrefix(int64_t instance, int64_t epoch) {
  return "reducer/layout/" + std::to_string(instance) + "/v" +
         std::to_string(epoch) + "/";
}

/// Rank 0's serialized ready-order broadcast for one rebuild epoch.
inline std::string ReducerRebuildOrderKey(int64_t instance, int64_t epoch) {
  return "reducer/rebuild/" + std::to_string(instance) + "/v" +
         std::to_string(epoch) + "/order";
}

/// Prefix covering one whole rebuild epoch (DeletePrefix garbage sweep).
inline std::string ReducerRebuildEpochPrefix(int64_t instance, int64_t epoch) {
  return "reducer/rebuild/" + std::to_string(instance) + "/v" +
         std::to_string(epoch) + "/";
}

// --- rendezvous/ — elastic membership (comm/rendezvous.h) ------------------

/// Generation-scoped namespace every rendezvous key lives under.
inline std::string RendezvousPrefix(const std::string& ns,
                                    uint64_t generation) {
  return "rendezvous/" + ns + "/g" + std::to_string(generation) + "/";
}

inline std::string RendezvousJoinKey(const std::string& prefix, int rank) {
  return prefix + "join/rank" + std::to_string(rank);
}

inline std::string RendezvousSealKey(const std::string& prefix) {
  return prefix + "seal";
}

inline std::string RendezvousMembersKey(const std::string& prefix) {
  return prefix + "members";
}

// --- pgtcp/ — TCP process-group address exchange ---------------------------

inline std::string PgTcpPrefix(const std::string& group, uint64_t generation) {
  return "pgtcp/" + group + "/g" + std::to_string(generation) + "/";
}

inline std::string PgTcpRankKey(const std::string& prefix, int rank) {
  return prefix + "rank" + std::to_string(rank);
}

// --- pg/ — sim process-group membership ------------------------------------

inline std::string PgJoinedCounter(const std::string& group) {
  return "pg/" + group + "/joined";
}

}  // namespace ddpkit::comm::store_keys

#endif  // DDPKIT_COMM_STORE_KEYS_H_
