#ifndef DDPKIT_COMM_STORE_H_
#define DDPKIT_COMM_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ddpkit::comm {

/// In-memory rendezvous key-value store with blocking waits — the
/// equivalent of PyTorch's TCPStore for our thread-backed "processes".
/// Process groups use it to agree on membership before any collective runs
/// ("the first arrival will block waiting until the last instance joins",
/// paper §3.3).
class Store {
 public:
  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  void Set(const std::string& key, std::string value);

  /// Blocks until the key exists, then returns its value.
  std::string Get(const std::string& key);

  /// Non-blocking lookup.
  bool TryGet(const std::string& key, std::string* value) const;

  /// Atomically adds `delta` to an integer-valued key (creating it at 0)
  /// and returns the new value.
  int64_t Add(const std::string& key, int64_t delta);

  /// Blocks until all keys exist.
  void Wait(const std::vector<std::string>& keys);

  size_t NumKeys() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::string> data_;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_STORE_H_
