#ifndef DDPKIT_COMM_STORE_H_
#define DDPKIT_COMM_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ddpkit::comm {

/// Backoff schedule for the retryable Store entry points: attempt, sleep
/// `initial_backoff_seconds`, retry, doubling (by `backoff_multiplier`) up
/// to `max_attempts` total tries. Real (wall-clock) sleeps: the store
/// models an out-of-band TCP service, not the virtual data plane.
struct RetryPolicy {
  int max_attempts = 5;
  double initial_backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
};

/// In-memory rendezvous key-value store with blocking waits — the
/// equivalent of PyTorch's TCPStore for our thread-backed "processes".
/// Process groups use it to agree on membership before any collective runs
/// ("the first arrival will block waiting until the last instance joins",
/// paper §3.3).
///
/// Two API tiers:
///  - the legacy blocking ops (Set/Get/Add/Wait) assume a healthy store
///    and block forever on missing keys;
///  - the *WithRetry ops model a flaky network path to the store service:
///    they honor a RetryPolicy with exponential backoff, bound waits with
///    real-time deadlines, and return Status instead of blocking forever.
///    Transient faults injected via InjectTransientFaults apply only to
///    this tier.
class Store {
 public:
  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  void Set(const std::string& key, std::string value);

  /// Blocks until the key exists, then returns its value.
  std::string Get(const std::string& key);

  /// Non-blocking lookup.
  bool TryGet(const std::string& key, std::string* value) const;

  /// Atomically adds `delta` to an integer-valued key (creating it at 0)
  /// and returns the new value.
  int64_t Add(const std::string& key, int64_t delta);

  /// Blocks until all keys exist.
  void Wait(const std::vector<std::string>& keys);

  size_t NumKeys() const;

  /// Removes `key`; returns true when it existed. Deleting never wakes
  /// waiters (a delete cannot satisfy a Wait/Get predicate).
  bool DeleteKey(const std::string& key);

  /// Removes every key starting with `prefix`; returns how many were
  /// deleted. Epoch-keyed protocols (bucket-layout validation, rebuild
  /// broadcasts, recovery rendezvous) use this to retire a finished
  /// epoch's namespace so long runs keep a bounded key count.
  size_t DeletePrefix(const std::string& prefix);

  /// Retryable Set: retries transient failures per `policy`; fails with
  /// kInternal once the attempt budget is exhausted.
  [[nodiscard]] Status SetWithRetry(const std::string& key, std::string value,
                                    const RetryPolicy& policy = RetryPolicy());

  /// Retryable Add; on success stores the post-add value in `*result`
  /// (which may be null).
  [[nodiscard]] Status AddWithRetry(const std::string& key, int64_t delta,
                                    int64_t* result,
                                    const RetryPolicy& policy = RetryPolicy());

  /// Retryable bounded Get: waits up to `timeout_seconds` of real time for
  /// the key to appear, retrying transient failures per `policy`. Returns
  /// kTimedOut if the key never appears — the caller-visible difference
  /// between "peer is slow" and the legacy Get's silent hang.
  [[nodiscard]] Result<std::string> GetWithRetry(
      const std::string& key, double timeout_seconds,
      const RetryPolicy& policy = RetryPolicy());

  /// Fault injection for the retryable tier: the next `failure_budget`
  /// retryable attempts fail with a transient error (deterministic), after
  /// which the store is healthy again. Complements the seeded overload.
  void InjectTransientFaults(int failure_budget);

  /// Seeded probabilistic injection: each retryable attempt independently
  /// fails with `probability`. Same seed => same failure sequence.
  void InjectTransientFaults(uint64_t seed, double probability);

  /// Total transient failures served so far (for test assertions).
  uint64_t transient_failures() const;

 private:
  /// True when this attempt should fail transiently (consumes budget/RNG).
  bool MaybeInjectFault() EXCLUDES(fault_mutex_);

  /// Protects the key-value map; cv_ signals key arrivals.
  mutable Mutex mutex_;
  CondVar cv_;
  std::map<std::string, std::string> data_ GUARDED_BY(mutex_);

  /// Separate leaf lock for the fault-injection state so injection checks
  /// never contend with data-plane waits.
  mutable Mutex fault_mutex_;
  int fault_budget_ GUARDED_BY(fault_mutex_) = 0;
  double fault_probability_ GUARDED_BY(fault_mutex_) = 0.0;
  std::unique_ptr<Rng> fault_rng_ GUARDED_BY(fault_mutex_);
  uint64_t transient_failures_ GUARDED_BY(fault_mutex_) = 0;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_STORE_H_
