#ifndef DDPKIT_COMM_STORE_H_
#define DDPKIT_COMM_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/virtual_clock.h"

namespace ddpkit::comm {

/// Backoff schedule for the retryable Store entry points: attempt, sleep
/// `initial_backoff_seconds`, retry, doubling (by `backoff_multiplier`) up
/// to `max_attempts` total tries.
struct RetryPolicy {
  int max_attempts = 5;
  double initial_backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;

  /// How backoff sleeps and GetWithRetry deadlines are measured.
  ///  - kReal (default): wall-clock sleeps and deadlines. Mandatory for
  ///    TCP-backed stores, whose peers live in other processes and make
  ///    progress only in real time.
  ///  - kVirtual: no real sleeping — backoff and deadline accrue on
  ///    `virtual_clock`, so sim tests exercise the retry/timeout decision
  ///    tree deterministically (the same injected fault sequence always
  ///    produces the same typed outcome at the same virtual timestamps).
  enum class ClockMode { kReal, kVirtual };
  ClockMode clock_mode = ClockMode::kReal;
  /// Required when clock_mode == kVirtual; ignored otherwise.
  sim::VirtualClock* virtual_clock = nullptr;
};

/// Rendezvous key-value store with blocking waits — the equivalent of
/// PyTorch's TCPStore. Process groups use it to agree on membership before
/// any collective runs ("the first arrival will block waiting until the
/// last instance joins", paper §3.3).
///
/// This base class IS the in-memory store (`Store s;` works as before,
/// backing thread-backed sim worlds where all ranks share one address
/// space). The wire backend subclasses it: StoreClientTcp (comm/store_tcp.h)
/// overrides the `Do*` primitive layer with framed RPCs to a StoreServerTcp,
/// so every consumer — rendezvous, reducer layout validation, elastic
/// recovery — runs unchanged against either transport.
///
/// Two API tiers:
///  - the legacy blocking ops (Set/Get/Add/Wait) assume a healthy store
///    and block (retrying transparently, forever) on missing keys or an
///    unreachable server;
///  - the *WithRetry ops model a flaky path to the store service: they
///    honor a RetryPolicy with exponential backoff, bound waits with
///    deadlines, and return Status instead of blocking forever. Transient
///    faults — injected via InjectTransientFaults, or real transport
///    failures from a TCP subclass — apply only to this tier's budget.
class Store {
 public:
  Store() = default;
  virtual ~Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  void Set(const std::string& key, std::string value);

  /// Blocks until the key exists, then returns its value.
  std::string Get(const std::string& key);

  /// Non-blocking lookup.
  bool TryGet(const std::string& key, std::string* value);

  /// Atomically adds `delta` to an integer-valued key (creating it at 0)
  /// and returns the new value.
  int64_t Add(const std::string& key, int64_t delta);

  /// Blocks until all keys exist.
  void Wait(const std::vector<std::string>& keys);

  size_t NumKeys();

  /// Removes `key`; returns true when it existed. Deleting never wakes
  /// waiters (a delete cannot satisfy a Wait/Get predicate).
  bool DeleteKey(const std::string& key);

  /// Removes every key starting with `prefix`; returns how many were
  /// deleted. Epoch-keyed protocols (bucket-layout validation, rebuild
  /// broadcasts, recovery rendezvous) use this to retire a finished
  /// epoch's namespace so long runs keep a bounded key count.
  size_t DeletePrefix(const std::string& prefix);

  /// Retryable Set: retries transient failures per `policy`; fails with
  /// kInternal once the attempt budget is exhausted.
  [[nodiscard]] Status SetWithRetry(const std::string& key, std::string value,
                                    const RetryPolicy& policy = RetryPolicy());

  /// Retryable Add; on success stores the post-add value in `*result`
  /// (which may be null).
  [[nodiscard]] Status AddWithRetry(const std::string& key, int64_t delta,
                                    int64_t* result,
                                    const RetryPolicy& policy = RetryPolicy());

  /// Retryable bounded Get: waits up to `timeout_seconds` (measured on the
  /// policy's clock) for the key to appear, retrying transient failures per
  /// `policy`. Returns kTimedOut if the key never appears — the
  /// caller-visible difference between "peer is slow" and the legacy Get's
  /// silent hang.
  [[nodiscard]] Result<std::string> GetWithRetry(
      const std::string& key, double timeout_seconds,
      const RetryPolicy& policy = RetryPolicy());

  /// Fault injection for the retryable tier: the next `failure_budget`
  /// retryable attempts fail with a transient error (deterministic), after
  /// which the store is healthy again. Complements the seeded overload.
  void InjectTransientFaults(int failure_budget);

  /// Seeded probabilistic injection: each retryable attempt independently
  /// fails with `probability`. Same seed => same failure sequence.
  void InjectTransientFaults(uint64_t seed, double probability);

  /// Total transient failures served so far (injected + real transport
  /// failures observed by the retry tier; for test assertions).
  uint64_t transient_failures() const;

 protected:
  /// Primitive layer every public entry point funnels through. The base
  /// implementations are the in-memory store; a wire-backed subclass
  /// overrides them with RPCs and reports transport failures as non-OK
  /// Status (anything but kTimedOut is treated as transient and retried by
  /// the tiers above). `DoGetBounded`/`DoWaitBounded` with a non-positive
  /// timeout are immediate lookups, never waits.
  [[nodiscard]] virtual Status DoSet(const std::string& key,
                                     const std::string& value);
  [[nodiscard]] virtual Status DoTryGet(const std::string& key,
                                        std::string* value, bool* found);
  [[nodiscard]] virtual Result<int64_t> DoAdd(const std::string& key,
                                              int64_t delta);
  [[nodiscard]] virtual Result<std::string> DoGetBounded(
      const std::string& key, double timeout_seconds);
  [[nodiscard]] virtual Status DoWaitBounded(
      const std::vector<std::string>& keys, double timeout_seconds);
  [[nodiscard]] virtual Result<int64_t> DoNumKeys();
  [[nodiscard]] virtual Result<int64_t> DoDeleteKey(const std::string& key);
  [[nodiscard]] virtual Result<int64_t> DoDeletePrefix(
      const std::string& prefix);

  /// Records a real transport failure against the transient counter so
  /// tests can assert on retried wire errors the same way as injected ones.
  void RecordTransientFailure();

 private:
  /// True when this attempt should fail transiently (consumes budget/RNG).
  bool MaybeInjectFault() EXCLUDES(fault_mutex_);

  /// Protects the key-value map; cv_ signals key arrivals. Ordered before
  /// fault_mutex_ in the DESIGN.md §8 hierarchy (store.mutex ≺ store.fault
  /// in tools/ddplint/lock_order.txt), though the two never nest today:
  /// MaybeInjectFault runs outside mutex_ by the EXCLUDES contract above.
  mutable Mutex mutex_ ACQUIRED_BEFORE(fault_mutex_);
  CondVar cv_;
  std::map<std::string, std::string> data_ GUARDED_BY(mutex_);

  /// Separate leaf lock for the fault-injection state so injection checks
  /// never contend with data-plane waits.
  mutable Mutex fault_mutex_;
  int fault_budget_ GUARDED_BY(fault_mutex_) = 0;
  double fault_probability_ GUARDED_BY(fault_mutex_) = 0.0;
  std::unique_ptr<Rng> fault_rng_ GUARDED_BY(fault_mutex_);
  uint64_t transient_failures_ GUARDED_BY(fault_mutex_) = 0;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_STORE_H_
