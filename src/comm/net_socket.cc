#include "comm/net_socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>

// ddplint: allow-file(banned-nondeterminism) wire I/O deadlines are real
// wall-clock time by definition: the peers live in other processes, which
// make progress only in real time (DESIGN.md §11).
// ddplint: allow-file(raw-wire-io) this file IS the deadline-aware wire
// layer every other file must route through.

namespace ddpkit::comm {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Hard cap on a single frame so a corrupt length prefix cannot drive a
/// multi-gigabyte allocation.
constexpr uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Latency matters more than byte overhead for collective headers;
  // best-effort (loopback ignores it anyway on some kernels).
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<sockaddr_in> MakeAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: '" + host +
                                   "'");
  }
  return addr;
}

/// Waits until `fd` has one of `events`, the abort pipe fires, or the
/// deadline passes. Returns OK when `fd` is ready.
Status PollReady(int fd, short events, const Deadline& deadline,
                 int abort_fd) {
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd, events, 0};
    nfds_t nfds = 1;
    if (abort_fd >= 0) {
      fds[1] = {abort_fd, POLLIN, 0};
      nfds = 2;
    }
    const int timeout_ms = deadline.PollMillis();
    if (timeout_ms == 0) {
      return Status::TimedOut("socket I/O deadline elapsed");
    }
    const int n = poll(fds, nfds, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("poll"));
    }
    if (n == 0) {
      return Status::TimedOut("socket I/O deadline elapsed");
    }
    if (abort_fd >= 0 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) {
      return Status::FailedPrecondition(
          "aborted: group woke the abort pipe during socket I/O");
    }
    if (fds[0].revents != 0) return Status::OK();
  }
}

}  // namespace

Deadline Deadline::After(double seconds) {
  Deadline d;
  d.never = false;
  d.at = SteadyClock::now() +
         std::chrono::duration_cast<SteadyClock::duration>(
             std::chrono::duration<double>(std::max(0.0, seconds)));
  return d;
}

Deadline Deadline::Never() {
  Deadline d;
  d.never = true;
  return d;
}

bool Deadline::Expired() const {
  return !never && SteadyClock::now() >= at;
}

int Deadline::PollMillis() const {
  if (never) return -1;
  const auto remaining = at - SteadyClock::now();
  if (remaining <= SteadyClock::duration::zero()) return 0;
  const auto ms =
      std::chrono::ceil<std::chrono::milliseconds>(remaining).count();
  return static_cast<int>(std::min<long long>(ms, 60'000));
}

Result<int> ListenTcp(const std::string& host, int port, int backlog) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    CloseFd(fd);
    return nb;
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
           sizeof(sockaddr_in)) < 0) {
    const Status err = Status::Internal(Errno("bind"));
    CloseFd(fd);
    return err;
  }
  if (listen(fd, backlog) < 0) {
    const Status err = Status::Internal(Errno("listen"));
    CloseFd(fd);
    return err;
  }
  return fd;
}

Result<int> ListenPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::Internal(Errno("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> AcceptWithDeadline(int listen_fd, const Deadline& deadline,
                               int abort_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const Status nb = SetNonBlocking(fd);
      if (!nb.ok()) {
        CloseFd(fd);
        return nb;
      }
      SetNoDelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status::Internal(Errno("accept"));
    }
    DDPKIT_RETURN_IF_ERROR(PollReady(listen_fd, POLLIN, deadline, abort_fd));
  }
}

Result<int> ConnectWithDeadline(const std::string& host, int port,
                                const Deadline& deadline, int abort_fd) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  for (;;) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal(Errno("socket"));
    Status setup = SetNonBlocking(fd);
    if (!setup.ok()) {
      CloseFd(fd);
      return setup;
    }
    SetNoDelay(fd);

    int err = 0;
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                sizeof(sockaddr_in)) == 0) {
      return fd;
    }
    if (errno == EINPROGRESS) {
      const Status ready = PollReady(fd, POLLOUT, deadline, abort_fd);
      if (!ready.ok()) {
        CloseFd(fd);
        return ready;
      }
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
        const Status st = Status::Internal(Errno("getsockopt(SO_ERROR)"));
        CloseFd(fd);
        return st;
      }
      if (err == 0) return fd;
    } else {
      err = errno;
    }
    CloseFd(fd);
    // The listener may not be up yet (bootstrap publishes the port before
    // some peers reach accept); refused/reset connects retry until the
    // deadline, anything else is a hard failure.
    if (err != ECONNREFUSED && err != ECONNRESET && err != ETIMEDOUT) {
      errno = err;
      return Status::Internal(Errno("connect"));
    }
    if (deadline.Expired()) {
      return Status::TimedOut("connect to " + host + ":" +
                              std::to_string(port) +
                              " timed out (connection refused)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Status SendAll(int fd, const void* data, size_t len, const Deadline& deadline,
               int abort_fd) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      // send() returning 0 for a nonzero request has no errno to blame;
      // report it as the peer-closed condition it behaves like instead of
      // decoding whatever stale errno the last call left behind.
      return Status::Internal("send wrote 0 bytes (" + std::to_string(sent) +
                              "/" + std::to_string(len) +
                              " sent, peer closed?)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DDPKIT_RETURN_IF_ERROR(PollReady(fd, POLLOUT, deadline, abort_fd));
      continue;
    }
    return Status::Internal(Errno("send (peer closed?)"));
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t len, const Deadline& deadline,
               int abort_fd) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Internal("peer closed connection mid-message (" +
                              std::to_string(got) + "/" +
                              std::to_string(len) + " bytes)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DDPKIT_RETURN_IF_ERROR(PollReady(fd, POLLIN, deadline, abort_fd));
      continue;
    }
    return Status::Internal(Errno("recv"));
  }
  return Status::OK();
}

Status SendRecvAll(int send_fd, const void* send_buf, size_t send_len,
                   int recv_fd, void* recv_buf, size_t recv_len,
                   const Deadline& deadline, int abort_fd) {
  const char* sp = static_cast<const char*>(send_buf);
  char* rp = static_cast<char*>(recv_buf);
  size_t sent = 0;
  size_t got = 0;
  while (sent < send_len || got < recv_len) {
    bool progressed = false;
    if (sent < send_len) {
      const ssize_t n = send(send_fd, sp + sent, send_len - sent,
                             MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        progressed = true;
      } else if (n == 0) {
        return Status::Internal("send wrote 0 bytes mid-exchange (" +
                                std::to_string(sent) + "/" +
                                std::to_string(send_len) +
                                " sent, peer closed?)");
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return Status::Internal(Errno("send (peer closed?)"));
      }
    }
    if (got < recv_len) {
      const ssize_t n = recv(recv_fd, rp + got, recv_len - got, 0);
      if (n > 0) {
        got += static_cast<size_t>(n);
        progressed = true;
      } else if (n == 0) {
        return Status::Internal("peer closed connection mid-exchange (" +
                                std::to_string(got) + "/" +
                                std::to_string(recv_len) + " bytes)");
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return Status::Internal(Errno("recv"));
      }
    }
    if (progressed) continue;

    // Both directions are blocked: poll for whichever can move.
    pollfd fds[3];
    nfds_t nfds = 0;
    if (send_fd == recv_fd) {
      short events = 0;
      if (sent < send_len) events |= POLLOUT;
      if (got < recv_len) events |= POLLIN;
      fds[nfds++] = {send_fd, events, 0};
    } else {
      if (sent < send_len) fds[nfds++] = {send_fd, POLLOUT, 0};
      if (got < recv_len) fds[nfds++] = {recv_fd, POLLIN, 0};
    }
    if (abort_fd >= 0) fds[nfds++] = {abort_fd, POLLIN, 0};
    const int timeout_ms = deadline.PollMillis();
    if (timeout_ms == 0) {
      return Status::TimedOut("socket exchange deadline elapsed");
    }
    const int n = poll(fds, nfds, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("poll"));
    }
    if (n == 0) {
      return Status::TimedOut("socket exchange deadline elapsed");
    }
    if (abort_fd >= 0 &&
        (fds[nfds - 1].revents & (POLLIN | POLLERR | POLLHUP))) {
      return Status::FailedPrecondition(
          "aborted: group woke the abort pipe during socket exchange");
    }
  }
  return Status::OK();
}

Status SendFrame(int fd, const void* payload, size_t len,
                 const Deadline& deadline, int abort_fd) {
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large: " + std::to_string(len) +
                                   " bytes");
  }
  uint32_t size = static_cast<uint32_t>(len);
  DDPKIT_RETURN_IF_ERROR(SendAll(fd, &size, sizeof(size), deadline, abort_fd));
  if (len == 0) return Status::OK();
  return SendAll(fd, payload, len, deadline, abort_fd);
}

Result<std::vector<uint8_t>> RecvFrame(int fd, const Deadline& deadline,
                                       int abort_fd) {
  uint32_t size = 0;
  DDPKIT_RETURN_IF_ERROR(RecvAll(fd, &size, sizeof(size), deadline, abort_fd));
  if (size > kMaxFrameBytes) {
    return Status::Internal("corrupt frame length: " + std::to_string(size));
  }
  std::vector<uint8_t> payload(size);
  if (size > 0) {
    DDPKIT_RETURN_IF_ERROR(
        RecvAll(fd, payload.data(), size, deadline, abort_fd));
  }
  return payload;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  // Never retry close on EINTR: on Linux the descriptor is released even
  // when close fails with EINTR, so a retry races any thread that just
  // received the recycled fd number and closes *its* descriptor.
  (void)!close(fd);
}

}  // namespace ddpkit::comm
