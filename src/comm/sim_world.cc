#include "comm/sim_world.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"

namespace ddpkit::comm {

namespace {
std::atomic<uint64_t> g_world_counter{0};
}  // namespace

void SimWorld::Run(int world, const SimWorldOptions& options, RankFn fn) {
  // ddplint: allow(check-in-comm) test-harness precondition before any rank
  // thread (or collective) exists.
  DDPKIT_CHECK_GT(world, 0);
  // ddplint: allow(check-in-comm) test-harness precondition (see above).
  DDPKIT_CHECK_GE(options.round_robin_groups, 1);

  const std::string base_name =
      "world_" + std::to_string(g_world_counter.fetch_add(1));

  Store store;
  std::vector<sim::VirtualClock> clocks(static_cast<size_t>(world));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world));

  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      ProcessGroupSim::Options pg_options;
      pg_options.flavor = options.backend;
      pg_options.algorithm = options.algorithm;
      pg_options.topology = options.topology;
      pg_options.concurrent_groups = options.round_robin_groups;
      pg_options.nccl_options = options.nccl_options;
      pg_options.gloo_options = options.gloo_options;
      pg_options.fault_plan = options.fault_plan;
      pg_options.collective_timeout_seconds =
          options.collective_timeout_seconds;
      pg_options.metrics = options.metrics;

      RankContext ctx;
      ctx.rank = r;
      ctx.world = world;
      ctx.clock = &clocks[static_cast<size_t>(r)];
      ctx.store = &store;
      ctx.rng = Rng(options.seed * 1000003ULL + static_cast<uint64_t>(r));
      ctx.group_name = base_name;

      // Factory for recovery-formed generations: same backend shape as the
      // original group, named per generation so each regroup is a fresh
      // Store/registry rendezvous among exactly the survivors.
      sim::VirtualClock* clock = ctx.clock;
      Store* store_ptr = &store;
      auto recovery_plan = options.recovery_fault_plan;
      const int rr_groups = options.round_robin_groups;
      ctx.make_group = [pg_options, clock, store_ptr, base_name,
                        recovery_plan, rr_groups](
                           uint64_t generation, int new_rank,
                           int new_world) -> std::shared_ptr<ProcessGroup> {
        ProcessGroupSim::Options regroup_options = pg_options;
        regroup_options.fault_plan = recovery_plan;
        regroup_options.generation = generation;
        const std::string gen_name =
            base_name + "/g" + std::to_string(generation);
        if (rr_groups == 1) {
          return ProcessGroupSim::Create(store_ptr, gen_name, new_rank,
                                         new_world, regroup_options, clock);
        }
        std::vector<std::shared_ptr<ProcessGroup>> regroup_children;
        for (int g = 0; g < rr_groups; ++g) {
          regroup_children.push_back(ProcessGroupSim::Create(
              store_ptr, gen_name + "_rr" + std::to_string(g), new_rank,
              new_world, regroup_options, clock));
        }
        return std::make_shared<RoundRobinProcessGroup>(
            std::move(regroup_children));
      };

      if (options.round_robin_groups == 1) {
        ctx.process_group = ProcessGroupSim::Create(
            &store, base_name, r, world, pg_options, ctx.clock);
      } else {
        std::vector<std::shared_ptr<ProcessGroup>> children;
        for (int g = 0; g < options.round_robin_groups; ++g) {
          children.push_back(ProcessGroupSim::Create(
              &store, base_name + "_rr" + std::to_string(g), r, world,
              pg_options, ctx.clock));
        }
        ctx.process_group =
            std::make_shared<RoundRobinProcessGroup>(std::move(children));
      }

      fn(ctx);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace ddpkit::comm
