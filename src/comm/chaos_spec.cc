#include "comm/chaos_spec.h"

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "comm/net_fault.h"

namespace ddpkit::comm {
namespace {

/// One parsed fault, held symbolically until the whole spec is read: a
/// trailing `heal@stepM` clause mutates the partition before it.
struct Segment {
  enum class Kind { kPartition, kReset, kTruncate, kSlow, kFlakyAccept };
  Kind kind = Kind::kPartition;
  bool random = false;    // partition:rand
  bool one_way = false;   // A>B instead of AxB
  int a = -1;
  int b = -1;
  uint64_t step = 0;      // @stepN (partition/reset/truncate)
  uint32_t heal_hits = 0; // 0 = persistent
  uint64_t bytes = 0;     // truncate: delivered bytes
  double latency_ms = 0;  // slow
  double bps = 0;         // slow (0 = unpaced)
  int count = 0;          // flaky-accept
};

Status Malformed(const std::string& segment, const std::string& why) {
  return Status::InvalidArgument("bad chaos segment \"" + segment + "\": " +
                                 why);
}

/// Parses "AxB" / "A>B" / "rand" into the segment's link fields.
bool ParseLink(const std::string& text, Segment* seg) {
  if (text == "rand") {
    seg->random = true;
    return true;
  }
  size_t sep = text.find('x');
  seg->one_way = false;
  if (sep == std::string::npos) {
    sep = text.find('>');
    seg->one_way = true;
  }
  if (sep == std::string::npos || sep == 0 || sep + 1 >= text.size()) {
    return false;
  }
  char* end = nullptr;
  seg->a = static_cast<int>(std::strtol(text.c_str(), &end, 10));
  if (end != text.c_str() + sep) return false;
  seg->b = static_cast<int>(std::strtol(text.c_str() + sep + 1, &end, 10));
  return *end == '\0';
}

bool ParseStep(const std::string& text, uint64_t* step) {
  if (text.rfind("step", 0) != 0) return false;
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(text.c_str() + 4, &end, 10);
  if (end == text.c_str() + 4 || *end != '\0') return false;
  *step = value;
  return true;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

Result<WireFaultPlan> ParseWireChaosSpec(const std::string& spec,
                                         uint64_t seed, int world,
                                         uint64_t op_base) {
  if (world <= 0) {
    return Status::InvalidArgument("chaos spec needs a positive world size");
  }
  std::vector<Segment> segments;
  for (const std::string& raw : SplitOn(spec, ',')) {
    if (raw.empty()) return Malformed(raw, "empty segment");

    // heal@stepM binds to the most recent partition.
    if (raw.rfind("heal@", 0) == 0) {
      if (segments.empty() ||
          segments.back().kind != Segment::Kind::kPartition) {
        return Malformed(raw, "heal@ must follow a partition segment");
      }
      uint64_t heal_step = 0;
      if (!ParseStep(raw.substr(5), &heal_step)) {
        return Malformed(raw, "expected heal@stepM");
      }
      Segment& partition = segments.back();
      if (heal_step <= partition.step) {
        return Malformed(raw, "heal step must come after the partition step");
      }
      partition.heal_hits =
          static_cast<uint32_t>(heal_step - partition.step);
      continue;
    }

    const size_t colon = raw.find(':');
    if (colon == std::string::npos) {
      return Malformed(raw, "expected kind:operands");
    }
    const std::string kind = raw.substr(0, colon);
    const std::vector<std::string> operands =
        SplitOn(raw.substr(colon + 1), ':');
    Segment seg;

    if (kind == "partition" || kind == "reset") {
      seg.kind = kind == "partition" ? Segment::Kind::kPartition
                                     : Segment::Kind::kReset;
      if (operands.size() != 1) return Malformed(raw, "expected link@stepN");
      const size_t at = operands[0].find('@');
      if (at == std::string::npos ||
          !ParseLink(operands[0].substr(0, at), &seg) ||
          !ParseStep(operands[0].substr(at + 1), &seg.step)) {
        return Malformed(raw, "expected AxB@stepN, A>B@stepN or rand@stepN");
      }
      if (seg.random && seg.kind != Segment::Kind::kPartition) {
        return Malformed(raw, "rand links are partition-only");
      }
    } else if (kind == "truncate") {
      seg.kind = Segment::Kind::kTruncate;
      if (operands.size() != 2) {
        return Malformed(raw, "expected link@stepN:BYTES");
      }
      const size_t at = operands[0].find('@');
      char* end = nullptr;
      seg.bytes = std::strtoull(operands[1].c_str(), &end, 10);
      if (at == std::string::npos ||
          !ParseLink(operands[0].substr(0, at), &seg) || seg.random ||
          !ParseStep(operands[0].substr(at + 1), &seg.step) ||
          end == operands[1].c_str() || *end != '\0') {
        return Malformed(raw, "expected AxB@stepN:BYTES");
      }
    } else if (kind == "slow") {
      seg.kind = Segment::Kind::kSlow;
      if (operands.size() != 2 && operands.size() != 3) {
        return Malformed(raw, "expected link:LATENCY_MS[:BYTES_PER_SEC]");
      }
      if (!ParseLink(operands[0], &seg) || seg.random) {
        return Malformed(raw, "expected AxB or A>B link");
      }
      seg.latency_ms = std::atof(operands[1].c_str());
      seg.bps = operands.size() == 3 ? std::atof(operands[2].c_str()) : 0.0;
      if (seg.latency_ms < 0 || seg.bps < 0) {
        return Malformed(raw, "negative latency or rate");
      }
    } else if (kind == "flaky-accept") {
      seg.kind = Segment::Kind::kFlakyAccept;
      if (operands.size() != 2) return Malformed(raw, "expected RANK:COUNT");
      char* end = nullptr;
      seg.a = static_cast<int>(std::strtol(operands[0].c_str(), &end, 10));
      if (end == operands[0].c_str() || *end != '\0') {
        return Malformed(raw, "bad rank");
      }
      seg.count = static_cast<int>(std::strtol(operands[1].c_str(), &end, 10));
      if (end == operands[1].c_str() || *end != '\0' || seg.count <= 0) {
        return Malformed(raw, "bad fail count");
      }
    } else {
      return Malformed(raw, "unknown fault kind \"" + kind + "\"");
    }

    // Rank-range validation (rand resolves inside [0, world) by design).
    if (!seg.random) {
      const bool pair_fault = seg.kind != Segment::Kind::kFlakyAccept;
      if (seg.a < 0 || seg.a >= world ||
          (pair_fault && (seg.b < 0 || seg.b >= world || seg.a == seg.b))) {
        return Malformed(raw, "rank out of range for world " +
                                  std::to_string(world));
      }
    }
    segments.push_back(seg);
  }
  if (segments.empty()) {
    return Status::InvalidArgument("empty chaos spec");
  }

  WireFaultPlan plan;
  for (const Segment& seg : segments) {
    const uint64_t op = op_base + seg.step;
    switch (seg.kind) {
      case Segment::Kind::kPartition:
        if (seg.random) {
          plan.AddRandomPartition(seed, world, op, seg.heal_hits);
        } else if (seg.one_way) {
          plan.PartitionOneWay(seg.a, seg.b, op, seg.heal_hits);
        } else {
          plan.PartitionTwoWay(seg.a, seg.b, op, seg.heal_hits);
        }
        break;
      case Segment::Kind::kReset:
        plan.ResetConnection(seg.a, seg.b, op);
        if (!seg.one_way) plan.ResetConnection(seg.b, seg.a, op);
        break;
      case Segment::Kind::kTruncate:
        plan.TruncateSend(seg.a, seg.b, op, seg.bytes);
        break;
      case Segment::Kind::kSlow:
        plan.SlowLink(seg.a, seg.b, seg.latency_ms / 1000.0, seg.bps);
        if (!seg.one_way) {
          plan.SlowLink(seg.b, seg.a, seg.latency_ms / 1000.0, seg.bps);
        }
        break;
      case Segment::Kind::kFlakyAccept:
        plan.FlakyAccept(seg.a, seg.count);
        break;
    }
  }
  return plan;
}

WireChaosEnv ReadWireChaosEnv() {
  WireChaosEnv env;
  // The seed is read unconditionally: the launcher consults it before it
  // has exported the spec to anyone.
  // ddplint: allow(banned-nondeterminism) reason: launcher env contract is
  // process-external and fixed for the process lifetime.
  const char* seed = std::getenv("DDPKIT_CHAOS_SEED");
  if (seed != nullptr && *seed != '\0') {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(seed, &end, 10);
    if (end != seed && *end == '\0' && value > 0) env.seed = value;
  }
  // ddplint: allow(banned-nondeterminism) reason: launcher env contract.
  const char* spec = std::getenv("DDPKIT_CHAOS_WIRE");
  if (spec == nullptr || *spec == '\0') return env;
  env.enabled = true;
  env.spec = spec;
  return env;
}

namespace {

/// Plan + injector pinned for the process lifetime: the injector is handed
/// to ProcessGroupTcp, whose I/O threads may still consult it during
/// teardown, so the state is deliberately never destroyed.
struct ProcessChaos {
  int rank = -1;
  int world = -1;
  Status status;
  WireFaultPlan plan;
  std::unique_ptr<WireFaultInjector> injector;
};

}  // namespace

Result<WireFaultInjector*> ProcessWireChaosInjector(int rank, int world) {
  // Magic static: the first caller's (rank, world) builds the state exactly
  // once, thread-safely; everyone after that only reads it.
  static ProcessChaos* chaos = [rank, world]() -> ProcessChaos* {
    auto* state = new ProcessChaos;
    state->rank = rank;
    state->world = world;
    const WireChaosEnv env = ReadWireChaosEnv();
    if (!env.enabled) return state;
    Result<WireFaultPlan> parsed =
        ParseWireChaosSpec(env.spec, env.seed, world);
    if (!parsed.ok()) {
      state->status = parsed.status();
      return state;
    }
    state->plan = std::move(parsed).value();
    // Short blackholes keep a chaos run's worst case well under the
    // launcher timeout (same budget ddp_worker picks for itself).
    state->plan.blackhole_cap_seconds = 0.1;
    state->injector =
        std::make_unique<WireFaultInjector>(&state->plan, rank);
    return state;
  }();
  if (!chaos->status.ok()) return chaos->status;
  if (chaos->injector == nullptr) {
    return static_cast<WireFaultInjector*>(nullptr);  // env disabled
  }
  if (rank != chaos->rank || world != chaos->world) {
    // A regrouped generation re-rendezvousing with new ids runs clean.
    return static_cast<WireFaultInjector*>(nullptr);
  }
  return chaos->injector.get();
}

}  // namespace ddpkit::comm
