#include "comm/round_robin_process_group.h"

#include "common/check.h"

namespace ddpkit::comm {

RoundRobinProcessGroup::RoundRobinProcessGroup(
    std::vector<std::shared_ptr<ProcessGroup>> groups)
    : ProcessGroup(groups.empty() ? 0 : groups[0]->rank(),
                   groups.empty() ? 1 : groups[0]->world()),
      groups_(std::move(groups)) {
  DDPKIT_CHECK(!groups_.empty());
  for (const auto& g : groups_) {
    DDPKIT_CHECK_EQ(g->rank(), rank());
    DDPKIT_CHECK_EQ(g->world(), world());
  }
}

ProcessGroup* RoundRobinProcessGroup::Next() {
  ProcessGroup* g = groups_[next_].get();
  next_ = (next_ + 1) % groups_.size();
  return g;
}

WorkHandle RoundRobinProcessGroup::AllReduce(Tensor tensor, ReduceOp op) {
  return Next()->AllReduce(std::move(tensor), op);
}

WorkHandle RoundRobinProcessGroup::Broadcast(Tensor tensor, int root) {
  return Next()->Broadcast(std::move(tensor), root);
}

WorkHandle RoundRobinProcessGroup::AllGather(const Tensor& input,
                                             Tensor output) {
  return Next()->AllGather(input, std::move(output));
}

WorkHandle RoundRobinProcessGroup::Reduce(Tensor tensor, int root,
                                          ReduceOp op) {
  return Next()->Reduce(std::move(tensor), root, op);
}

WorkHandle RoundRobinProcessGroup::ReduceScatter(const Tensor& input,
                                                 Tensor output,
                                                 ReduceOp op) {
  return Next()->ReduceScatter(input, std::move(output), op);
}

WorkHandle RoundRobinProcessGroup::Gather(const Tensor& input, Tensor output,
                                          int root) {
  return Next()->Gather(input, std::move(output), root);
}

void RoundRobinProcessGroup::Barrier() {
  // Barrier must synchronize all queues, not just the next one in rotation.
  for (auto& g : groups_) g->Barrier();
}

std::string RoundRobinProcessGroup::backend_name() const {
  return "round_robin[" + groups_[0]->backend_name() + " x " +
         std::to_string(groups_.size()) + "]";
}

}  // namespace ddpkit::comm
