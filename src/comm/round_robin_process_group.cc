#include "comm/round_robin_process_group.h"

#include <algorithm>

#include "common/check.h"

namespace ddpkit::comm {

RoundRobinProcessGroup::RoundRobinProcessGroup(
    std::vector<std::shared_ptr<ProcessGroup>> groups)
    : ProcessGroup(groups.empty() ? 0 : groups[0]->rank(),
                   groups.empty() ? 1 : groups[0]->world()) {
  // ddplint: allow(check-in-comm) composite-group construction precondition
  // at setup time; no collective is in flight yet.
  DDPKIT_CHECK(!groups.empty());
  children_.reserve(groups.size());
  for (auto& g : groups) {
    // ddplint: allow(check-in-comm) setup precondition (see above).
    DDPKIT_CHECK_EQ(g->rank(), rank());
    // ddplint: allow(check-in-comm) setup precondition (see above).
    DDPKIT_CHECK_EQ(g->world(), world());
    Child child;
    child.group = std::move(g);
    children_.push_back(std::move(child));
  }
}

ProcessGroup* RoundRobinProcessGroup::Next() {
  // Skip unhealthy children; rotation state advances identically on every
  // rank because health flags are derived from shared Work outcomes.
  for (size_t hops = 0; hops < children_.size(); ++hops) {
    Child& c = children_[next_];
    const size_t picked = next_;
    next_ = (next_ + 1) % children_.size();
    if (c.healthy) {
      last_dispatched_ = picked;
      return c.group.get();
    }
  }
  // ddplint: allow(check-in-comm) documented API contract: dispatching with
  // zero healthy children means failover already exhausted every replica
  // (DrainAndFailover surfaces the Status-typed errors first).
  DDPKIT_CHECK(false) << "RoundRobinProcessGroup: no healthy child group "
                         "left to dispatch to";
  return nullptr;
}

WorkHandle RoundRobinProcessGroup::Track(WorkHandle work) {
  Child& c = children_[last_dispatched_];
  // Opportunistic prune: drop works that already completed successfully so
  // the in-flight list tracks only live or failed handles.
  c.inflight.erase(
      std::remove_if(c.inflight.begin(), c.inflight.end(),
                     [](const WorkHandle& w) { return w->IsCompleted(); }),
      c.inflight.end());
  c.inflight.push_back(work);
  return work;
}

WorkHandle RoundRobinProcessGroup::AllReduce(Tensor tensor, ReduceOp op) {
  return Track(Next()->AllReduce(std::move(tensor), op));
}

WorkHandle RoundRobinProcessGroup::Broadcast(Tensor tensor, int root) {
  return Track(Next()->Broadcast(std::move(tensor), root));
}

WorkHandle RoundRobinProcessGroup::AllGather(const Tensor& input,
                                             Tensor output) {
  return Track(Next()->AllGather(input, std::move(output)));
}

WorkHandle RoundRobinProcessGroup::Reduce(Tensor tensor, int root,
                                          ReduceOp op) {
  return Track(Next()->Reduce(std::move(tensor), root, op));
}

WorkHandle RoundRobinProcessGroup::ReduceScatter(const Tensor& input,
                                                 Tensor output,
                                                 ReduceOp op) {
  return Track(Next()->ReduceScatter(input, std::move(output), op));
}

WorkHandle RoundRobinProcessGroup::Gather(const Tensor& input, Tensor output,
                                          int root) {
  return Track(Next()->Gather(input, std::move(output), root));
}

void RoundRobinProcessGroup::Barrier() {
  // Barrier must synchronize all (healthy) queues, not just the next one
  // in rotation.
  for (Child& c : children_) {
    if (c.healthy) c.group->Barrier();
  }
}

Status RoundRobinProcessGroup::DrainAndFailover(double timeout_seconds) {
  Status first_error = Status::OK();
  for (Child& c : children_) {
    for (WorkHandle& work : c.inflight) {
      const Status st = work->Wait(clock(), timeout_seconds);
      if (!st.ok()) {
        // A generation retirement is not a child fault: the child fails
        // fast and typed rather than hanging, so excluding it from the
        // rotation (and eventually CHECK-failing with zero healthy
        // children) would be wrong. Alignment happens below.
        if (work->error() != WorkError::kInvalidGeneration) {
          c.healthy = false;
        }
        if (first_error.ok()) first_error = st;
      }
    }
    c.inflight.clear();
  }

  // Generation alignment: if any child was retired (a recovery elsewhere
  // aborted it, possibly mid-round), retire every child to the same —
  // highest — superseding generation before anything else dispatches.
  // Without this, rotation would keep feeding buckets to the remaining
  // old-generation children while others reject, mixing generations
  // across one logical iteration's buckets.
  const uint64_t superseding = superseded_by();
  if (superseding != 0) {
    AbortGroup(superseding,
               "round-robin generation alignment after partial retirement");
    if (first_error.ok()) {
      first_error = Status::InvalidGeneration(
          "round-robin composite retired: a child group was superseded by "
          "generation " + std::to_string(superseding));
    }
    return first_error;
  }

  // ddplint: allow(check-in-comm) documented API contract: with every child
  // failed there is nothing left to fail over to (callers saw each typed
  // error via the drained Status first).
  DDPKIT_CHECK_GT(num_healthy_groups(), 0u)
      << "RoundRobinProcessGroup: every child group failed; last error: "
      << first_error.ToString();
  return first_error;
}

uint64_t RoundRobinProcessGroup::superseded_by() const {
  uint64_t highest = 0;
  for (const Child& c : children_) {
    highest = std::max(highest, c.group->superseded_by());
  }
  return highest;
}

void RoundRobinProcessGroup::AbortGroup(uint64_t new_generation,
                                        const std::string& reason) {
  // Uniform retirement: every child — healthy, unhealthy, or already
  // retired (idempotent) — moves to the same superseding generation, so no
  // dispatch order can observe a mixed-generation composite afterwards.
  for (Child& c : children_) {
    c.group->AbortGroup(new_generation, reason);
  }
}

size_t RoundRobinProcessGroup::num_healthy_groups() const {
  size_t n = 0;
  for (const Child& c : children_) n += c.healthy ? 1 : 0;
  return n;
}

std::string RoundRobinProcessGroup::backend_name() const {
  return "round_robin[" + children_[0].group->backend_name() + " x " +
         std::to_string(children_.size()) + "]";
}

}  // namespace ddpkit::comm
