#ifndef DDPKIT_COMM_ALGORITHMS_H_
#define DDPKIT_COMM_ALGORITHMS_H_

#include <vector>

#include "comm/process_group.h"
#include "tensor/tensor.h"

namespace ddpkit::comm {

/// Data-plane reduction algorithms. The paper (§2.3) notes that collective
/// libraries implement sophisticated algorithms — ring-based (NCCL) and
/// tree-based — rather than naive gather+reduce; all three are implemented
/// here and selectable per process group.
///
/// Each algorithm reproduces the *data movement pattern* (chunking and
/// combine order) of its real counterpart, so floating-point results are
/// bit-deterministic given the algorithm and world size.
enum class Algorithm { kNaive, kRing, kTree };
const char* AlgorithmName(Algorithm algorithm);

/// In-place all-reduce across per-rank contributions: on return every
/// tensor holds the elementwise reduction of all of them. Tensors must be
/// contiguous, same numel, same dtype (float32 or uint8).
void RunAllReduce(Algorithm algorithm, ReduceOp op,
                  const std::vector<Tensor>& tensors);

/// Copies tensors[root] into every other tensor.
void RunBroadcast(const std::vector<Tensor>& tensors, int root);

/// Concatenates inputs (rank order) into every output: outputs[q] must have
/// world * inputs[r].numel() elements.
void RunAllGather(const std::vector<Tensor>& inputs,
                  const std::vector<Tensor>& outputs);

/// Reduces all contributions into tensors[root] only (other tensors are
/// left untouched) — the first half of a tree all-reduce.
void RunReduce(Algorithm algorithm, ReduceOp op,
               const std::vector<Tensor>& tensors, int root);

/// Ring reduce-scatter: inputs[r] has world*n elements; outputs[r] (n
/// elements) receives the fully-reduced chunk r. This is literally the
/// first phase of the ring all-reduce (paper §2.3), exposed on its own.
void RunReduceScatter(ReduceOp op, const std::vector<Tensor>& inputs,
                      const std::vector<Tensor>& outputs);

/// Gathers every rank's input into output_root (world*n elements) in rank
/// order; only the root's output is written.
void RunGather(const std::vector<Tensor>& inputs, Tensor output_root,
               int root);

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_ALGORITHMS_H_
