#ifndef DDPKIT_COMM_ALGORITHMS_H_
#define DDPKIT_COMM_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "comm/process_group.h"
#include "sim/collective_algo.h"
#include "tensor/tensor.h"

namespace ddpkit::comm {

/// Data-plane reduction algorithms. The paper (§2.3) notes that collective
/// libraries implement sophisticated algorithms — ring-based (NCCL) and
/// tree-based — rather than naive gather+reduce; the full zoo (naive, ring,
/// tree, pipelined chunked ring, recursive halving-doubling, hierarchical
/// two-level) is implemented here and selectable per process group.
///
/// The enum itself lives in the sim layer (sim::CollectiveAlgorithm) so the
/// analytical cost models and this data plane key off the same type; see
/// that header for each variant's canonical combine order. Each algorithm
/// reproduces the *data movement pattern* (chunking and combine order) of
/// its real counterpart, so floating-point results are bit-deterministic
/// given the algorithm and world size.
using Algorithm = sim::CollectiveAlgorithm;
const char* AlgorithmName(Algorithm algorithm);

/// In-place all-reduce across per-rank contributions: on return every
/// tensor holds the elementwise reduction of all of them. Tensors must be
/// contiguous, same numel, same dtype (float32, uint8, int64 or float16).
///
/// `ranks_per_node` feeds kHierarchical's node boundaries (ranks are laid
/// out host-major, matching sim::Topology); 0 means the testbed default of
/// 8 GPUs per host. Algorithm::kAuto is resolved against the default
/// topology; callers with a configured topology (ProcessGroupSim) resolve
/// kAuto themselves before calling.
void RunAllReduce(Algorithm algorithm, ReduceOp op,
                  const std::vector<Tensor>& tensors, int ranks_per_node = 0);

/// Raw-buffer all-reduce: bufs[r] points at rank r's `n` elements, reduced
/// in place across all ranks. Same algorithms and combine orders as the
/// Tensor overload; exposed so tests and benches can sweep dtypes the
/// Tensor layer only partially supports (double). Instantiated for float,
/// double, int64_t and uint8_t.
template <typename T>
void RunAllReduceRaw(Algorithm algorithm, ReduceOp op,
                     const std::vector<T*>& bufs, int64_t n,
                     int ranks_per_node = 0);

/// Copies tensors[root] into every other tensor.
void RunBroadcast(const std::vector<Tensor>& tensors, int root);

/// Concatenates inputs (rank order) into every output: outputs[q] must have
/// world * inputs[r].numel() elements.
void RunAllGather(const std::vector<Tensor>& inputs,
                  const std::vector<Tensor>& outputs);

/// Reduces all contributions into tensors[root] only (other tensors are
/// left untouched) — the first half of a tree all-reduce.
void RunReduce(Algorithm algorithm, ReduceOp op,
               const std::vector<Tensor>& tensors, int root);

/// Ring reduce-scatter: inputs[r] has world*n elements; outputs[r] (n
/// elements) receives the fully-reduced chunk r. This is literally the
/// first phase of the ring all-reduce (paper §2.3), exposed on its own.
void RunReduceScatter(ReduceOp op, const std::vector<Tensor>& inputs,
                      const std::vector<Tensor>& outputs);

/// Gathers every rank's input into output_root (world*n elements) in rank
/// order; only the root's output is written.
void RunGather(const std::vector<Tensor>& inputs, Tensor output_root,
               int root);

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_ALGORITHMS_H_
