#include "comm/net_fault.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

// ddplint: allow-file(banned-nondeterminism) the shim sits in the wire
// layer: blackhole waits, slow-link pacing and flaky-accept delays are
// real-time effects on real sockets by definition (DESIGN.md §14). Fault
// *decisions* stay deterministic — they depend only on the plan, the op
// index and hit counts, never on the clock.
// ddplint: allow-file(raw-wire-io) this file IS the fault shim layer; it
// owns the ::shutdown that fabricates peer-visible resets.

namespace ddpkit::comm {

namespace {

/// Tears the connection down hard so the remote end observes EOF/RST
/// mid-message. The fd itself stays open (the owning group closes it on
/// re-mesh); shutdown is what makes the fault peer-visible.
void InjectReset(int fd) {
  if (fd >= 0) (void)shutdown(fd, SHUT_RDWR);
}

}  // namespace

WireFaultInjector::WireFaultInjector(const WireFaultPlan* plan, int self_rank)
    : plan_(plan), self_(self_rank) {}

uint64_t WireFaultInjector::link_hits(int peer) const {
  MutexLock lock(&mu_);
  auto it = link_hits_.find(peer);
  return it == link_hits_.end() ? 0 : it->second;
}

uint64_t WireFaultInjector::faults_injected() const {
  MutexLock lock(&mu_);
  return faults_injected_;
}

bool WireFaultInjector::PartitionActiveLocked(int src, int dst) {
  const WireFaultPlan::Partition* p = plan_->FindPartition(src, dst);
  if (p == nullptr) return false;
  DirState& state = dir_state_[{src, dst}];
  if (!state.partition_activated && op_index_.load() >= p->from_op) {
    state.partition_activated = true;  // sticky across generation resets
  }
  return state.partition_activated && !state.partition_healed;
}

void WireFaultInjector::CountHitLocked(int peer) {
  const uint64_t hits = ++link_hits_[peer];
  ++faults_injected_;
  auto heal = [&](int src, int dst) {
    const WireFaultPlan::Partition* p = plan_->FindPartition(src, dst);
    if (p != nullptr && p->heal_after_hits > 0 &&
        hits >= p->heal_after_hits) {
      dir_state_[{src, dst}].partition_healed = true;
    }
  };
  heal(self_, peer);
  heal(peer, self_);
}

bool WireFaultInjector::SendPartitioned(int peer) const {
  if (plan_ == nullptr) return false;
  MutexLock lock(&mu_);
  // PartitionActiveLocked mutates sticky state; const_cast keeps the query
  // honest (activation it performs is the same one any send would).
  return const_cast<WireFaultInjector*>(this)->PartitionActiveLocked(self_,
                                                                     peer);
}

Status WireFaultInjector::Blackhole(int peer, const char* what,
                                    const Deadline& deadline, int abort_fd) {
  // Park on the abort pipe for min(deadline, cap) — a blackholed link
  // never delivers, so the caller's wait ends in a timeout unless the
  // group aborts first.
  double cap = plan_->blackhole_cap_seconds;
  const int deadline_ms = deadline.PollMillis();
  int wait_ms = static_cast<int>(cap * 1000.0);
  if (deadline_ms >= 0) wait_ms = std::min(wait_ms, deadline_ms);
  if (wait_ms > 0) {
    pollfd fds[1];
    nfds_t nfds = 0;
    if (abort_fd >= 0) fds[nfds++] = {abort_fd, POLLIN, 0};
    const int n =
        poll(nfds > 0 ? fds : nullptr, nfds, wait_ms);
    if (n > 0 && abort_fd >= 0 &&
        (fds[0].revents & (POLLIN | POLLERR | POLLHUP))) {
      return Status::FailedPrecondition(
          "aborted: group woke the abort pipe during injected partition");
    }
  }
  return Status::TimedOut(std::string("injected partition: ") + what +
                          " rank " + std::to_string(self_) + " -> " +
                          std::to_string(peer) + " blackholed");
}

bool WireFaultInjector::ApplySendFaults(int peer, int fd, const void* data,
                                        size_t len, const Deadline& deadline,
                                        int abort_fd, Status* out) {
  const uint64_t op = op_index_.load();

  bool blackholed = false;
  bool reset = false;
  bool truncate = false;
  uint64_t keep_bytes = 0;
  {
    MutexLock lock(&mu_);
    if (PartitionActiveLocked(self_, peer)) {
      CountHitLocked(peer);
      blackholed = true;
    } else {
      const WireFaultPlan::Reset* r = plan_->FindReset(self_, peer);
      DirState& state = dir_state_[{self_, peer}];
      if (r != nullptr && !state.reset_done && op >= r->at_op) {
        state.reset_done = true;
        ++faults_injected_;
        reset = true;
      } else {
        const WireFaultPlan::Truncation* t =
            plan_->FindTruncation(self_, peer);
        if (t != nullptr && !state.truncation_done && op >= t->at_op &&
            len > t->after_bytes) {
          state.truncation_done = true;
          ++faults_injected_;
          truncate = true;
          keep_bytes = t->after_bytes;
        }
      }
    }
  }

  if (blackholed) {
    *out = Blackhole(peer, "send", deadline, abort_fd);
    return true;
  }
  if (reset) {
    InjectReset(fd);
    *out = Status::Internal("injected connection reset on link " +
                            std::to_string(self_) + " -> " +
                            std::to_string(peer));
    return true;
  }
  if (truncate) {
    if (keep_bytes > 0) {
      // Deliver the prefix for real, then cut the stream mid-message.
      (void)!comm::SendAll(fd, data, static_cast<size_t>(keep_bytes),
                           deadline, abort_fd)
                 .ok();
    }
    InjectReset(fd);
    *out = Status::Internal(
        "injected mid-frame truncation on link " + std::to_string(self_) +
        " -> " + std::to_string(peer) + " after " +
        std::to_string(keep_bytes) + "/" + std::to_string(len) + " bytes");
    return true;
  }

  // Slow link: latency once per operation, then paced delivery.
  const WireFaultPlan::Throttle* throttle = plan_->FindThrottle(self_, peer);
  if (throttle != nullptr) {
    if (throttle->latency_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(throttle->latency_seconds));
    }
    if (throttle->bytes_per_second > 0.0 && len > 0) {
      const char* p = static_cast<const char*>(data);
      const size_t chunk = std::max<size_t>(
          1, static_cast<size_t>(throttle->bytes_per_second / 100.0));
      size_t sent = 0;
      while (sent < len) {
        const size_t n = std::min(chunk, len - sent);
        const Status st = comm::SendAll(fd, p + sent, n, deadline, abort_fd);
        if (!st.ok()) {
          *out = st;
          return true;
        }
        sent += n;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            static_cast<double>(n) / throttle->bytes_per_second));
      }
      *out = Status::OK();
      return true;
    }
  }
  return false;
}

Status WireFaultInjector::SendAll(int peer, int fd, const void* data,
                                  size_t len, const Deadline& deadline,
                                  int abort_fd) {
  if (plan_ != nullptr) {
    Status st;
    if (ApplySendFaults(peer, fd, data, len, deadline, abort_fd, &st)) {
      return st;
    }
  }
  return comm::SendAll(fd, data, len, deadline, abort_fd);
}

Status WireFaultInjector::RecvAll(int peer, int fd, void* data, size_t len,
                                  const Deadline& deadline, int abort_fd) {
  // Receive-side faults manifest through the wire (the peer's shim did the
  // damage); injecting here would desynchronize delivered byte streams.
  (void)peer;
  return comm::RecvAll(fd, data, len, deadline, abort_fd);
}

Status WireFaultInjector::SendRecvAll(int send_peer, int send_fd,
                                      const void* send_buf, size_t send_len,
                                      int recv_peer, int recv_fd,
                                      void* recv_buf, size_t recv_len,
                                      const Deadline& deadline, int abort_fd) {
  (void)recv_peer;  // receive side never consults the plan; see RecvAll
  if (plan_ != nullptr) {
    // Send-side faults consume the whole exchange: once our half of the
    // duplex is dead the collective cannot complete, and the partial recv
    // is discarded with the op on retry.
    Status st;
    if (ApplySendFaults(send_peer, send_fd, send_buf, send_len, deadline,
                        abort_fd, &st)) {
      if (st.ok()) {
        // Throttled send completed; finish the receive half normally.
        return comm::RecvAll(recv_fd, recv_buf, recv_len, deadline, abort_fd);
      }
      return st;
    }
  }
  return comm::SendRecvAll(send_fd, send_buf, send_len, recv_fd, recv_buf,
                           recv_len, deadline, abort_fd);
}

Status WireFaultInjector::SendFrame(int peer, int fd, const void* payload,
                                    size_t len, const Deadline& deadline,
                                    int abort_fd) {
  if (plan_ == nullptr) {
    return comm::SendFrame(fd, payload, len, deadline, abort_fd);
  }
  // Composed from the shim's SendAll so a truncation fault lands
  // mid-frame: the length prefix escapes, the payload is cut short, and
  // the peer's RecvFrame observes "peer closed mid-message".
  if (len > 256u * 1024u * 1024u) {
    return Status::InvalidArgument("frame too large: " + std::to_string(len) +
                                   " bytes");
  }
  uint32_t size = static_cast<uint32_t>(len);
  DDPKIT_RETURN_IF_ERROR(
      SendAll(peer, fd, &size, sizeof(size), deadline, abort_fd));
  if (len == 0) return Status::OK();
  return SendAll(peer, fd, payload, len, deadline, abort_fd);
}

Result<std::vector<uint8_t>> WireFaultInjector::RecvFrame(
    int peer, int fd, const Deadline& deadline, int abort_fd) {
  (void)peer;
  return comm::RecvFrame(fd, deadline, abort_fd);
}

Result<int> WireFaultInjector::AcceptWithDeadline(int listen_fd,
                                                  const Deadline& deadline,
                                                  int abort_fd) {
  if (plan_ != nullptr) {
    bool flaky = false;
    {
      MutexLock lock(&mu_);
      if (accept_failures_served_ < plan_->AcceptFailures(self_)) {
        ++accept_failures_served_;
        ++faults_injected_;
        flaky = true;
      }
    }
    if (flaky) {
      // Brief pause so a retry loop does not spin through its whole fault
      // budget within one scheduler quantum.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return Status::Internal("injected flaky accept on rank " +
                              std::to_string(self_));
    }
  }
  return comm::AcceptWithDeadline(listen_fd, deadline, abort_fd);
}

Result<int> WireFaultInjector::ConnectWithDeadline(int peer,
                                                   const std::string& host,
                                                   int port,
                                                   const Deadline& deadline,
                                                   int abort_fd) {
  if (plan_ != nullptr) {
    bool blackholed = false;
    {
      MutexLock lock(&mu_);
      // The SYN rides self -> peer and the SYN-ACK peer -> self; a
      // partition in either direction kills the handshake.
      if (PartitionActiveLocked(self_, peer) ||
          PartitionActiveLocked(peer, self_)) {
        CountHitLocked(peer);
        blackholed = true;
      }
    }
    if (blackholed) return Blackhole(peer, "connect", deadline, abort_fd);
  }
  return comm::ConnectWithDeadline(host, port, deadline, abort_fd);
}

Status WireFaultInjector::Heartbeat(int peer, int fd, const void* data,
                                    size_t len, const Deadline& deadline) {
  if (plan_ != nullptr) {
    bool partitioned = false;
    {
      MutexLock lock(&mu_);
      partitioned = PartitionActiveLocked(self_, peer);
      // Deliberately no CountHitLocked: probe cadence is wall-clock-driven
      // and must not advance the deterministic heal schedule.
    }
    if (partitioned) {
      return Status::TimedOut("injected partition: heartbeat rank " +
                              std::to_string(self_) + " -> " +
                              std::to_string(peer) + " blackholed");
    }
  }
  return comm::SendAll(fd, data, len, deadline, /*abort_fd=*/-1);
}

}  // namespace ddpkit::comm
