#ifndef DDPKIT_COMM_PROCESS_GROUP_H_
#define DDPKIT_COMM_PROCESS_GROUP_H_

#include <memory>
#include <string>

#include "comm/work.h"
#include "sim/virtual_clock.h"
#include "tensor/tensor.h"

namespace ddpkit::comm {

class Store;

/// Reduction operators for AllReduce. kSum is the gradient path; kBor backs
/// the globally-unused-parameter bitmap (paper §3.2.3 — the bitmap cannot
/// be coalesced into gradient all-reduces because of the dtype mismatch).
enum class ReduceOp { kSum, kMax, kBor };
const char* ReduceOpName(ReduceOp op);

/// Uniform API over collective backends, mirroring c10d::ProcessGroup
/// (paper §3.3): "DDP takes the APIs from the three libraries and wraps
/// them into the same ProcessGroup API". All ranks must issue the same
/// sequence of collectives with matching sizes and dtypes; the simulated
/// backends CHECK this and abort on mismatch — the paper's "incorrect
/// reduction result or program crash".
class ProcessGroup {
 public:
  virtual ~ProcessGroup() = default;

  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  int rank() const { return rank_; }
  int world() const { return world_; }

  /// In-place all-reduce of a contiguous tensor (float32 or uint8).
  /// Asynchronous: returns a Work the caller must eventually Wait on.
  [[nodiscard]] virtual WorkHandle AllReduce(
      Tensor tensor, ReduceOp op = ReduceOp::kSum) = 0;

  /// In-place broadcast from `root`.
  [[nodiscard]] virtual WorkHandle Broadcast(Tensor tensor, int root) = 0;

  /// Gathers each rank's `input` (same numel everywhere) into `output`,
  /// which must have world()*input.numel() elements.
  [[nodiscard]] virtual WorkHandle AllGather(const Tensor& input,
                                             Tensor output) = 0;

  /// Reduces all contributions into `root`'s tensor only; other ranks'
  /// tensors are unchanged.
  [[nodiscard]] virtual WorkHandle Reduce(Tensor tensor, int root,
                                          ReduceOp op = ReduceOp::kSum) = 0;

  /// Ring reduce-scatter: `input` has world()*chunk elements on every
  /// rank; `output` (chunk elements) receives this rank's fully-reduced
  /// chunk. The building block of ring all-reduce (§2.3) and of sharded
  /// optimizers.
  [[nodiscard]] virtual WorkHandle ReduceScatter(
      const Tensor& input, Tensor output, ReduceOp op = ReduceOp::kSum) = 0;

  /// Gathers every rank's `input` into `output` on `root` only (`output`
  /// may be undefined on other ranks).
  [[nodiscard]] virtual WorkHandle Gather(const Tensor& input,
                                          Tensor output, int root) = 0;

  /// Synchronous barrier across all ranks.
  virtual void Barrier() = 0;

  /// This rank's virtual clock (advanced by collective completions).
  virtual sim::VirtualClock* clock() = 0;

  /// Rendezvous store this group was created through, or nullptr when the
  /// backend has none. DDP uses it for out-of-band desync detection
  /// (cross-rank bucket-layout validation) — the paper's Discussion notes
  /// a desynchronized rank otherwise surfaces only as a hang or crash.
  virtual Store* store() { return nullptr; }

  /// Human-readable backend tag ("nccl", "gloo", "round_robin[...]").
  virtual std::string backend_name() const = 0;

  /// Elastic-recovery generation this group was formed at. Groups formed by
  /// normal startup are generation 0; every completed rendezvous after a
  /// fault forms its replacement at the next generation. Backends without
  /// elastic support report 0.
  virtual uint64_t generation() const { return 0; }

  /// Non-zero once AbortGroup has retired this group: the generation that
  /// replaced it. Zero while the group is live.
  virtual uint64_t superseded_by() const { return 0; }

  /// Retires this group in favour of generation `new_generation`:
  /// in-flight collectives fail with kInvalidGeneration and every later
  /// collective fails fast the same way, so a straggler still holding this
  /// group can never corrupt (or hang on) a reduction that its surviving
  /// peers have abandoned. Idempotent; the first abort's verdict stands.
  /// Default is a no-op for backends without elastic support.
  virtual void AbortGroup(uint64_t new_generation, const std::string& reason) {
    (void)new_generation;
    (void)reason;
  }

 protected:
  ProcessGroup(int rank, int world) : rank_(rank), world_(world) {}

 private:
  int rank_;
  int world_;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_PROCESS_GROUP_H_
