#include "comm/backend_factory.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "comm/chaos_spec.h"
#include "comm/net_fault.h"

namespace ddpkit::comm {

Result<std::shared_ptr<ProcessGroup>> CreateProcessGroupBackend(
    const BackendConfig& config, Store* store, const std::string& name,
    int rank, int world, sim::VirtualClock* clock) {
  if (config.backend == "sim") {
    return std::shared_ptr<ProcessGroup>(
        ProcessGroupSim::Create(store, name, rank, world, config.sim, clock));
  }
  if (config.backend == "tcp") {
    ProcessGroupTcp::Options options = config.tcp;
    // Any --backend=tcp process honours the launcher's --chaos contract:
    // when the caller did not wire its own injector, pick up the
    // process-lifetime one from DDPKIT_CHAOS_WIRE (nullptr when unset).
    // Regroup paths call ProcessGroupTcp::Create directly and stay clean.
    if (options.fault_injector == nullptr) {
      Result<WireFaultInjector*> injector =
          ProcessWireChaosInjector(rank, world);
      if (!injector.ok()) return injector.status();
      if (injector.value() != nullptr) {
        options.fault_injector = injector.value();
        // Chaos implies a supervisor: give the group a reconnect budget
        // and a heartbeat prober when the caller left them at the
        // (disabled) defaults.
        if (options.max_reconnect_attempts == 0) {
          options.max_reconnect_attempts = 4;
        }
        if (options.heartbeat_interval_seconds <= 0.0) {
          options.heartbeat_interval_seconds = 0.25;
        }
        if (!options.event_sink) {
          // Same observability contract ddp_worker wires for itself: the
          // wire-chaos CI assertions grep for these lines per rank.
          options.event_sink = [rank](const std::string& event,
                                      const std::string& detail) {
            std::fprintf(stderr, "[wire-chaos] rank %d %s %s\n", rank,
                         event.c_str(), detail.c_str());
          };
        }
      }
    }
    Result<std::shared_ptr<ProcessGroupTcp>> group =
        ProcessGroupTcp::Create(store, name, rank, world, options, clock);
    if (!group.ok()) return group.status();
    return std::shared_ptr<ProcessGroup>(std::move(group).value());
  }
  return Status::InvalidArgument("unknown process-group backend \"" +
                                 config.backend +
                                 "\" (expected \"sim\" or \"tcp\")");
}

namespace {

Result<int> EnvInt(const char* name) {
  // ddplint: allow(banned-nondeterminism) reason: launcher env contract is
  // inherently process-external; values are fixed for the process lifetime.
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return Status::FailedPrecondition(
        std::string(name) + " is not set (run under tools/ddp_launch, or "
                            "export the launcher contract by hand)");
  }
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return Status::FailedPrecondition(std::string(name) +
                                      " is not an integer: " + raw);
  }
  return static_cast<int>(value);
}

}  // namespace

Result<LaunchEnv> ReadLaunchEnv() {
  LaunchEnv env;
  Result<int> rank = EnvInt("DDPKIT_RANK");
  if (!rank.ok()) return rank.status();
  env.rank = rank.value();
  Result<int> world = EnvInt("DDPKIT_WORLD");
  if (!world.ok()) return world.status();
  env.world = world.value();
  // ddplint: allow(banned-nondeterminism) reason: launcher env contract.
  const char* host = std::getenv("DDPKIT_STORE_HOST");
  env.store_host = (host != nullptr && *host != '\0') ? host : "127.0.0.1";
  Result<int> port = EnvInt("DDPKIT_STORE_PORT");
  if (!port.ok()) return port.status();
  env.store_port = port.value();
  if (env.rank < 0 || env.world <= 0 || env.rank >= env.world ||
      env.store_port <= 0 || env.store_port > 65535) {
    return Status::FailedPrecondition(
        "launch env out of range: rank=" + std::to_string(env.rank) +
        " world=" + std::to_string(env.world) +
        " store_port=" + std::to_string(env.store_port));
  }
  return env;
}

}  // namespace ddpkit::comm
