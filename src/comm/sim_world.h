#ifndef DDPKIT_COMM_SIM_WORLD_H_
#define DDPKIT_COMM_SIM_WORLD_H_

#include <functional>
#include <memory>
#include <optional>

#include "comm/process_group_sim.h"
#include "comm/round_robin_process_group.h"
#include "comm/store.h"
#include "common/rng.h"
#include "sim/virtual_clock.h"

namespace ddpkit::comm {

/// Launch options for a simulated multi-process world.
struct SimWorldOptions {
  sim::Backend backend = sim::Backend::kNccl;
  Algorithm algorithm = Algorithm::kRing;
  sim::Topology topology = sim::Topology();
  /// >1 wraps the rank's groups in a RoundRobinProcessGroup (§5.4).
  int round_robin_groups = 1;
  uint64_t seed = 1234;
  std::optional<sim::NcclCostModel::Options> nccl_options;
  std::optional<sim::GlooCostModel::Options> gloo_options;
  /// Deterministic fault schedule shared by every rank (and, with
  /// round-robin, by every child group). Null = fault-free.
  std::shared_ptr<const FaultPlan> fault_plan;
  /// Fault schedule for groups re-formed through RankContext::make_group
  /// after an elastic recovery. Defaults to null (the replacement
  /// generation runs fault-free): collective sequence numbers restart at 0
  /// in a new group, so reusing `fault_plan` would replay the same faults
  /// against the survivors. Set this to chain failures across generations.
  std::shared_ptr<const FaultPlan> recovery_fault_plan;
  /// Watchdog applied when the fault plan leaves a collective short of
  /// participants (see ProcessGroupSim::Options).
  double collective_timeout_seconds = 30.0;
  /// Optional metrics registry shared by every rank's process group (pg.*
  /// namespace; see ProcessGroupSim::Options::metrics).
  std::shared_ptr<MetricsRegistry> metrics;
};

/// Test/example harness standing in for `torchrun`: spawns one thread per
/// rank, rendezvous a process group (or a round-robin composite) through a
/// shared Store, runs the given body, and joins. Each rank gets its own
/// virtual clock and a deterministic per-rank RNG stream.
class SimWorld {
 public:
  struct RankContext {
    int rank = 0;
    int world = 1;
    std::shared_ptr<ProcessGroup> process_group;
    sim::VirtualClock* clock = nullptr;
    Store* store = nullptr;
    Rng rng{0};
    /// This world's unique base group name — the rendezvous namespace for
    /// elastic recovery (rendezvous/<group_name>/g<generation>/... keys).
    std::string group_name;
    /// Re-forms this rank's process group at `generation` over a shrunken
    /// world, mirroring the original construction (same backend options and
    /// round-robin shape; the fault plan comes from
    /// SimWorldOptions::recovery_fault_plan). Blocks until all `new_world`
    /// survivors call it — pass it as the group factory to DDP recovery. A
    /// rank whose body simply returns after a crash never calls it: a
    /// SimWorld "process" dies by leaving its rank function.
    std::function<std::shared_ptr<ProcessGroup>(
        uint64_t generation, int new_rank, int new_world)>
        make_group;
  };

  using RankFn = std::function<void(RankContext&)>;

  /// Blocks until every rank's body returns.
  static void Run(int world, const SimWorldOptions& options, RankFn fn);

  /// Convenience overload with default options.
  static void Run(int world, RankFn fn) { Run(world, SimWorldOptions(), fn); }
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_SIM_WORLD_H_
