#include "comm/rendezvous.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <sstream>

#include "comm/store_keys.h"

namespace ddpkit::comm {

namespace {

// ddplint: allow(banned-nondeterminism) rendezvous deadlines are real time
// by design, like the Store service they bound (DESIGN.md §6/§9): a dead
// peer advances no virtual clock, so only wall time can expire the wait.
using Clock = std::chrono::steady_clock;

double SecondsUntil(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// Strict integer parse of one ':'-separated field (untrusted Store bytes).
bool ParseField(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string JoinKey(const std::string& prefix, int rank) {
  return store_keys::RendezvousJoinKey(prefix, rank);
}

}  // namespace

std::string SerializeMembers(const std::vector<int>& members) {
  std::ostringstream out;
  out << members.size();
  for (int r : members) out << ':' << r;
  return out.str();
}

bool ParseMembers(const std::string& payload, int old_world,
                  std::vector<int>* members) {
  members->clear();
  std::istringstream in(payload);
  std::string field;
  bool first = true;
  int64_t declared = -1;
  int previous = -1;
  while (std::getline(in, field, ':')) {
    int64_t value = 0;
    if (!ParseField(field, &value)) return false;
    if (first) {
      first = false;
      declared = value;
      continue;
    }
    // Members must be strictly ascending old ranks within [0, old_world).
    if (value <= previous || value >= old_world) return false;
    previous = static_cast<int>(value);
    members->push_back(previous);
  }
  return !first && declared == static_cast<int64_t>(members->size()) &&
         !members->empty();
}

std::string RendezvousPrefix(const std::string& ns, uint64_t generation) {
  return store_keys::RendezvousPrefix(ns, generation);
}

Result<RendezvousResult> AbortAndRendezvous(Store* store,
                                            const std::string& ns,
                                            int old_rank, int old_world,
                                            uint64_t from_generation,
                                            const RendezvousOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument(
        "rendezvous needs a Store (backend exposes none)");
  }
  if (old_rank < 0 || old_rank >= old_world) {
    return Status::InvalidArgument(
        "rendezvous rank " + std::to_string(old_rank) +
        " outside [0, " + std::to_string(old_world) + ")");
  }
  if (options.min_world < 1) {
    return Status::InvalidArgument("rendezvous min_world must be >= 1");
  }

  const uint64_t generation = from_generation + 1;
  const std::string prefix = RendezvousPrefix(ns, generation);

  // 1. Publish liveness under the target generation's namespace.
  {
    Status st = store->SetWithRetry(JoinKey(prefix, old_rank), "1",
                                    options.retry);
    if (!st.ok()) {
      return Status(st.code(), "rendezvous for generation " +
                                   std::to_string(generation) +
                                   " could not publish rank " +
                                   std::to_string(old_rank) +
                                   "'s liveness: " + st.message());
    }
  }

  // 2. Bounded join barrier: wait for every old rank until the deadline,
  // then snapshot whoever made it. Dead ranks never publish, so the wait
  // on their key burns the remaining budget exactly once (the deadline is
  // shared across the loop, not per key).
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.timeout_seconds));
  std::vector<int> joined;
  for (int r = 0; r < old_world; ++r) {
    const double remaining = SecondsUntil(deadline);
    if (remaining > 0.0) {
      auto got = store->GetWithRetry(JoinKey(prefix, r), remaining,
                                     options.retry);
      if (got.ok()) {
        joined.push_back(r);
        continue;
      }
      if (got.status().code() != StatusCode::kTimedOut) {
        return Status(got.status().code(),
                      "rendezvous for generation " +
                          std::to_string(generation) +
                          " could not read the join barrier: " +
                          got.status().message());
      }
      // Deadline elapsed waiting on r; fall through to snapshot mode for
      // the remaining ranks.
    }
    std::string ignored;
    if (store->TryGet(JoinKey(prefix, r), &ignored)) joined.push_back(r);
  }

  // 3. Seal. The lowest joined rank races an atomic counter; the winner
  // publishes the one authoritative members list. Snapshots can disagree
  // about who is lowest (a slow joiner lands between two snapshots), so
  // the seal key — not the snapshot — arbitrates.
  if (!joined.empty() && joined.front() == old_rank) {
    int64_t seal_count = 0;
    Status st =
        store->AddWithRetry(store_keys::RendezvousSealKey(prefix), 1,
                            &seal_count, options.retry);
    if (!st.ok()) {
      return Status(st.code(), "rendezvous for generation " +
                                   std::to_string(generation) +
                                   " could not reach the seal key: " +
                                   st.message());
    }
    if (seal_count == 1) {
      st = store->SetWithRetry(store_keys::RendezvousMembersKey(prefix),
                               SerializeMembers(joined), options.retry);
      if (!st.ok()) {
        return Status(st.code(), "rendezvous for generation " +
                                     std::to_string(generation) +
                                     " could not publish the membership: " +
                                     st.message());
      }
    }
  }

  // 4. Everyone reads the sealed membership. A fresh full-timeout wait: the
  // sealer may have entered the rendezvous almost `timeout_seconds` after
  // this rank and spends its own barrier wait before publishing.
  auto got = store->GetWithRetry(store_keys::RendezvousMembersKey(prefix),
                                 options.timeout_seconds, options.retry);
  if (!got.ok()) {
    return Status(got.status().code(),
                  "rendezvous for generation " + std::to_string(generation) +
                      " never sealed a membership (every lower-ranked "
                      "survivor may be dead or slower than the timeout): " +
                      got.status().message());
  }
  std::vector<int> members;
  if (!ParseMembers(std::move(got).value(), old_world, &members)) {
    return Status::Internal("rendezvous for generation " +
                            std::to_string(generation) +
                            " sealed a malformed membership payload");
  }

  if (static_cast<int>(members.size()) < options.min_world) {
    return Status::TimedOut(
        "rendezvous for generation " + std::to_string(generation) +
        " sealed only " + std::to_string(members.size()) +
        " survivor(s) of " + std::to_string(old_world) +
        "; min_world is " + std::to_string(options.min_world) +
        " — nothing to re-form a group over");
  }
  const auto self = std::find(members.begin(), members.end(), old_rank);
  if (self == members.end()) {
    return Status::TimedOut(
        "rendezvous for generation " + std::to_string(generation) +
        " sealed without rank " + std::to_string(old_rank) +
        " (this rank joined after the membership was sealed); it must sit "
        "out this generation");
  }

  RendezvousResult result;
  result.generation = generation;
  result.new_rank = static_cast<int>(self - members.begin());
  result.new_world = static_cast<int>(members.size());
  result.survivors = std::move(members);
  result.source_old_rank = result.survivors.front();
  return result;
}

void CleanupRendezvous(Store* store, const std::string& ns,
                       uint64_t generation) {
  if (store == nullptr) return;
  store->DeletePrefix(RendezvousPrefix(ns, generation));
}

}  // namespace ddpkit::comm
