#include "comm/fault_plan.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

// ddplint: allow-file(check-in-comm) fault plans are built by test/bench
// harness code before the simulation starts; these are construction-time
// argument preconditions, never hit on a collective path.

namespace ddpkit::comm {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDelayedCompletion:
      return "delayed_completion";
    case FaultKind::kDropParticipation:
      return "drop_participation";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

void FaultPlan::StallRank(int rank, uint64_t seq, double seconds) {
  DDPKIT_CHECK_GE(rank, 0);
  DDPKIT_CHECK_GT(seconds, 0.0);
  stalls_[{rank, seq}] += seconds;
}

void FaultPlan::DelayCompletion(int rank, uint64_t seq, double seconds) {
  DDPKIT_CHECK_GE(rank, 0);
  DDPKIT_CHECK_GT(seconds, 0.0);
  double& delay = delays_[{rank, seq}];
  delay = std::max(delay, seconds);
}

void FaultPlan::DropRank(int rank, uint64_t from_seq) {
  DDPKIT_CHECK_GE(rank, 0);
  auto it = drop_from_.find(rank);
  if (it == drop_from_.end()) {
    drop_from_[rank] = from_seq;
  } else {
    it->second = std::min(it->second, from_seq);
  }
}

void FaultPlan::CrashRank(int rank, uint64_t at_seq) {
  DDPKIT_CHECK_GE(rank, 0);
  auto it = crash_at_.find(rank);
  if (it == crash_at_.end()) {
    crash_at_[rank] = at_seq;
  } else {
    it->second = std::min(it->second, at_seq);
  }
}

void FaultPlan::AddRandomStalls(uint64_t seed, int world, uint64_t num_seqs,
                                const sim::StragglerModel& model) {
  DDPKIT_CHECK_GT(world, 0);
  // One forked stream per rank so a rank's schedule does not depend on
  // world size ordering quirks — only on (seed, rank, seq).
  Rng root(seed);
  for (int r = 0; r < world; ++r) {
    Rng rank_rng = root.Fork();
    for (uint64_t s = 0; s < num_seqs; ++s) {
      const double stall = model.SampleStallSeconds(&rank_rng);
      if (stall > 0.0) StallRank(r, s, stall);
    }
  }
}

double FaultPlan::StallSeconds(int rank, uint64_t seq) const {
  auto it = stalls_.find({rank, seq});
  return it == stalls_.end() ? 0.0 : it->second;
}

double FaultPlan::CompletionDelaySeconds(uint64_t seq) const {
  double delay = 0.0;
  for (const auto& [key, seconds] : delays_) {
    if (key.second == seq) delay = std::max(delay, seconds);
  }
  return delay;
}

bool FaultPlan::IsAbsent(int rank, uint64_t seq) const {
  auto drop = drop_from_.find(rank);
  if (drop != drop_from_.end() && seq >= drop->second) return true;
  auto crash = crash_at_.find(rank);
  return crash != crash_at_.end() && seq >= crash->second;
}

bool FaultPlan::IsCrashed(int rank, uint64_t seq) const {
  auto crash = crash_at_.find(rank);
  return crash != crash_at_.end() && seq >= crash->second;
}

bool FaultPlan::HasCrash(int rank) const {
  return crash_at_.count(rank) > 0;
}

uint64_t FaultPlan::CrashSeq(int rank) const {
  auto it = crash_at_.find(rank);
  DDPKIT_CHECK(it != crash_at_.end());
  return it->second;
}

std::vector<int> FaultPlan::AbsentRanks(uint64_t seq, int world) const {
  std::vector<int> absent;
  for (int r = 0; r < world; ++r) {
    if (IsAbsent(r, seq)) absent.push_back(r);
  }
  return absent;
}

std::string FaultPlan::AbsenceReason(int rank, uint64_t seq) const {
  if (IsCrashed(rank, seq)) {
    return "crashed at collective " + std::to_string(CrashSeq(rank));
  }
  auto drop = drop_from_.find(rank);
  if (drop != drop_from_.end() && seq >= drop->second) {
    return "dropped participation from collective " +
           std::to_string(drop->second);
  }
  return "present";
}

}  // namespace ddpkit::comm
