#include "comm/fault_plan.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

// ddplint: allow-file(check-in-comm) fault plans are built by test/bench
// harness code before the simulation starts; these are construction-time
// argument preconditions, never hit on a collective path.

namespace ddpkit::comm {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDelayedCompletion:
      return "delayed_completion";
    case FaultKind::kDropParticipation:
      return "drop_participation";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

void FaultPlan::StallRank(int rank, uint64_t seq, double seconds) {
  DDPKIT_CHECK_GE(rank, 0);
  DDPKIT_CHECK_GT(seconds, 0.0);
  stalls_[{rank, seq}] += seconds;
}

void FaultPlan::DelayCompletion(int rank, uint64_t seq, double seconds) {
  DDPKIT_CHECK_GE(rank, 0);
  DDPKIT_CHECK_GT(seconds, 0.0);
  double& delay = delays_[{rank, seq}];
  delay = std::max(delay, seconds);
}

void FaultPlan::DropRank(int rank, uint64_t from_seq) {
  DDPKIT_CHECK_GE(rank, 0);
  auto it = drop_from_.find(rank);
  if (it == drop_from_.end()) {
    drop_from_[rank] = from_seq;
  } else {
    it->second = std::min(it->second, from_seq);
  }
}

void FaultPlan::CrashRank(int rank, uint64_t at_seq) {
  DDPKIT_CHECK_GE(rank, 0);
  auto it = crash_at_.find(rank);
  if (it == crash_at_.end()) {
    crash_at_[rank] = at_seq;
  } else {
    it->second = std::min(it->second, at_seq);
  }
}

void FaultPlan::AddRandomStalls(uint64_t seed, int world, uint64_t num_seqs,
                                const sim::StragglerModel& model) {
  DDPKIT_CHECK_GT(world, 0);
  // One forked stream per rank so a rank's schedule does not depend on
  // world size ordering quirks — only on (seed, rank, seq).
  Rng root(seed);
  for (int r = 0; r < world; ++r) {
    Rng rank_rng = root.Fork();
    for (uint64_t s = 0; s < num_seqs; ++s) {
      const double stall = model.SampleStallSeconds(&rank_rng);
      if (stall > 0.0) StallRank(r, s, stall);
    }
  }
}

double FaultPlan::StallSeconds(int rank, uint64_t seq) const {
  auto it = stalls_.find({rank, seq});
  return it == stalls_.end() ? 0.0 : it->second;
}

double FaultPlan::CompletionDelaySeconds(uint64_t seq) const {
  double delay = 0.0;
  for (const auto& [key, seconds] : delays_) {
    if (key.second == seq) delay = std::max(delay, seconds);
  }
  return delay;
}

bool FaultPlan::IsAbsent(int rank, uint64_t seq) const {
  auto drop = drop_from_.find(rank);
  if (drop != drop_from_.end() && seq >= drop->second) return true;
  auto crash = crash_at_.find(rank);
  return crash != crash_at_.end() && seq >= crash->second;
}

bool FaultPlan::IsCrashed(int rank, uint64_t seq) const {
  auto crash = crash_at_.find(rank);
  return crash != crash_at_.end() && seq >= crash->second;
}

bool FaultPlan::HasCrash(int rank) const {
  return crash_at_.count(rank) > 0;
}

uint64_t FaultPlan::CrashSeq(int rank) const {
  auto it = crash_at_.find(rank);
  DDPKIT_CHECK(it != crash_at_.end());
  return it->second;
}

std::vector<int> FaultPlan::AbsentRanks(uint64_t seq, int world) const {
  std::vector<int> absent;
  for (int r = 0; r < world; ++r) {
    if (IsAbsent(r, seq)) absent.push_back(r);
  }
  return absent;
}

std::string FaultPlan::AbsenceReason(int rank, uint64_t seq) const {
  if (IsCrashed(rank, seq)) {
    return "crashed at collective " + std::to_string(CrashSeq(rank));
  }
  auto drop = drop_from_.find(rank);
  if (drop != drop_from_.end() && seq >= drop->second) {
    return "dropped participation from collective " +
           std::to_string(drop->second);
  }
  return "present";
}

// ---------------------------------------------------------------------------
// WireFaultPlan.
// ---------------------------------------------------------------------------

const char* WireFaultKindName(WireFaultKind kind) {
  switch (kind) {
    case WireFaultKind::kPartition:
      return "partition";
    case WireFaultKind::kReset:
      return "reset";
    case WireFaultKind::kTruncation:
      return "truncation";
    case WireFaultKind::kSlowLink:
      return "slow_link";
    case WireFaultKind::kFlakyAccept:
      return "flaky_accept";
  }
  return "unknown";
}

void WireFaultPlan::PartitionOneWay(int src, int dst, uint64_t from_op,
                                    uint32_t heal_after_hits) {
  DDPKIT_CHECK_GE(src, 0);
  DDPKIT_CHECK_GE(dst, 0);
  DDPKIT_CHECK(src != dst);
  partitions_[{src, dst}] = Partition{from_op, heal_after_hits};
}

void WireFaultPlan::PartitionTwoWay(int a, int b, uint64_t from_op,
                                    uint32_t heal_after_hits) {
  PartitionOneWay(a, b, from_op, heal_after_hits);
  PartitionOneWay(b, a, from_op, heal_after_hits);
}

void WireFaultPlan::ResetConnection(int src, int dst, uint64_t at_op) {
  DDPKIT_CHECK_GE(src, 0);
  DDPKIT_CHECK_GE(dst, 0);
  DDPKIT_CHECK(src != dst);
  resets_[{src, dst}] = Reset{at_op};
}

void WireFaultPlan::TruncateSend(int src, int dst, uint64_t at_op,
                                 uint64_t after_bytes) {
  DDPKIT_CHECK_GE(src, 0);
  DDPKIT_CHECK_GE(dst, 0);
  DDPKIT_CHECK(src != dst);
  truncations_[{src, dst}] = Truncation{at_op, after_bytes};
}

void WireFaultPlan::SlowLink(int src, int dst, double latency_seconds,
                             double bytes_per_second) {
  DDPKIT_CHECK_GE(src, 0);
  DDPKIT_CHECK_GE(dst, 0);
  DDPKIT_CHECK(src != dst);
  DDPKIT_CHECK_GE(latency_seconds, 0.0);
  DDPKIT_CHECK_GE(bytes_per_second, 0.0);
  throttles_[{src, dst}] = Throttle{latency_seconds, bytes_per_second};
}

void WireFaultPlan::FlakyAccept(int rank, int fail_count) {
  DDPKIT_CHECK_GE(rank, 0);
  DDPKIT_CHECK_GE(fail_count, 0);
  flaky_accepts_[rank] = fail_count;
}

std::pair<int, int> WireFaultPlan::RandomPair(uint64_t seed, int world) {
  DDPKIT_CHECK_GE(world, 2);
  // Ring-adjacent on purpose: the default wire schedule is the ring, whose
  // data path only uses (r, r+1 mod world) links. A partition on a chord
  // of the full mesh would sit there unexercised and the chaos run would
  // silently degenerate into a fault-free one.
  Rng rng(seed);
  const int a = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(world)));
  const int b = (a + 1) % world;
  return {std::min(a, b), std::max(a, b)};
}

void WireFaultPlan::AddRandomPartition(uint64_t seed, int world,
                                       uint64_t from_op,
                                       uint32_t heal_after_hits) {
  const auto [a, b] = RandomPair(seed, world);
  PartitionTwoWay(a, b, from_op, heal_after_hits);
}

const WireFaultPlan::Partition* WireFaultPlan::FindPartition(int src,
                                                             int dst) const {
  auto it = partitions_.find({src, dst});
  return it == partitions_.end() ? nullptr : &it->second;
}

const WireFaultPlan::Reset* WireFaultPlan::FindReset(int src, int dst) const {
  auto it = resets_.find({src, dst});
  return it == resets_.end() ? nullptr : &it->second;
}

const WireFaultPlan::Truncation* WireFaultPlan::FindTruncation(
    int src, int dst) const {
  auto it = truncations_.find({src, dst});
  return it == truncations_.end() ? nullptr : &it->second;
}

const WireFaultPlan::Throttle* WireFaultPlan::FindThrottle(int src,
                                                           int dst) const {
  auto it = throttles_.find({src, dst});
  return it == throttles_.end() ? nullptr : &it->second;
}

int WireFaultPlan::AcceptFailures(int rank) const {
  auto it = flaky_accepts_.find(rank);
  return it == flaky_accepts_.end() ? 0 : it->second;
}

std::string WireFaultPlan::DebugString() const {
  std::string out;
  auto link = [](const std::pair<int, int>& l) {
    return std::to_string(l.first) + "->" + std::to_string(l.second);
  };
  for (const auto& [l, p] : partitions_) {
    out += "partition " + link(l) + " from_op=" + std::to_string(p.from_op) +
           (p.heal_after_hits == 0
                ? std::string(" persistent")
                : " heal_after_hits=" + std::to_string(p.heal_after_hits)) +
           "\n";
  }
  for (const auto& [l, r] : resets_) {
    out += "reset " + link(l) + " at_op=" + std::to_string(r.at_op) + "\n";
  }
  for (const auto& [l, t] : truncations_) {
    out += "truncation " + link(l) + " at_op=" + std::to_string(t.at_op) +
           " after_bytes=" + std::to_string(t.after_bytes) + "\n";
  }
  for (const auto& [l, t] : throttles_) {
    out += "slow_link " + link(l) +
           " latency_s=" + std::to_string(t.latency_seconds) +
           " bytes_per_s=" + std::to_string(t.bytes_per_second) + "\n";
  }
  for (const auto& [rank, n] : flaky_accepts_) {
    out += "flaky_accept rank=" + std::to_string(rank) +
           " fail_count=" + std::to_string(n) + "\n";
  }
  return out;
}

}  // namespace ddpkit::comm
