#ifndef DDPKIT_COMM_FAULT_PLAN_H_
#define DDPKIT_COMM_FAULT_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/jitter.h"

namespace ddpkit::comm {

/// The kinds of fault ProcessGroupSim can inject (paper §Discussion names
/// error handling as the unsolved operational pain; DistIR/Proteus-style
/// simulators are the one place failure timelines are reproducible).
enum class FaultKind {
  /// Rank arrives late at one collective: its preceding compute stalled.
  kStall,
  /// The collective's completion is pushed back (slow link / congestion).
  kDelayedCompletion,
  /// Rank silently stops participating from a sequence number on — the
  /// NCCL-desync shape: peers see the op never finish.
  kDropParticipation,
  /// Rank hard-crashes at its Nth collective and is dead afterwards.
  kCrash,
};
const char* FaultKindName(FaultKind kind);

/// Deterministic per-rank fault schedule consulted by ProcessGroupSim.
/// Faults are keyed by (rank, collective sequence number); all ranks of a
/// group share one plan, so every participant derives the same view of who
/// is stalled, absent, or dead at any sequence number — which is what lets
/// the simulated backend surface a typed timeout instead of deadlocking.
///
/// Build the schedule up front (explicitly or via AddRandomStalls), then
/// hand the plan to ProcessGroupSim::Options / SimWorldOptions. Queries are
/// const and lock-free; mutating a plan after groups started using it is a
/// race and unsupported.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Rank `rank` arrives `seconds` of virtual time late at collective `seq`.
  void StallRank(int rank, uint64_t seq, double seconds);

  /// Collective `seq` completes `seconds` later than modeled whenever
  /// `rank` participates (per-rank slow-link; the max over ranks applies).
  void DelayCompletion(int rank, uint64_t seq, double seconds);

  /// Rank `rank` never joins collectives with sequence >= `from_seq`.
  void DropRank(int rank, uint64_t from_seq);

  /// Rank `rank` crashes at collective `at_seq` (its own call fails with
  /// kRankFailure) and never joins any later collective.
  void CrashRank(int rank, uint64_t at_seq);

  /// Seeded random stalls: every (rank, seq) pair with rank < world and
  /// seq < num_seqs is stalled independently according to the straggler
  /// model's stall options. Same seed => same schedule, bit-for-bit.
  void AddRandomStalls(uint64_t seed, int world, uint64_t num_seqs,
                       const sim::StragglerModel& model);

  /// Virtual seconds rank `rank` is late to collective `seq` (0 = on time).
  double StallSeconds(int rank, uint64_t seq) const;

  /// Max completion delay any participant injects into collective `seq`.
  double CompletionDelaySeconds(uint64_t seq) const;

  /// True when `rank` does not participate in collective `seq` (dropped or
  /// already crashed).
  bool IsAbsent(int rank, uint64_t seq) const;

  /// True when `rank` has crashed at or before collective `seq`.
  bool IsCrashed(int rank, uint64_t seq) const;

  /// Sequence number at which `rank` crashes; valid when HasCrash(rank).
  bool HasCrash(int rank) const;
  uint64_t CrashSeq(int rank) const;

  /// Ranks in [0, world) absent from collective `seq`, ascending.
  std::vector<int> AbsentRanks(uint64_t seq, int world) const;

  /// One-line description of why `rank` is absent from `seq`, for
  /// diagnostics ("crashed at collective 3" / "dropped participation from
  /// collective 5").
  std::string AbsenceReason(int rank, uint64_t seq) const;

  bool empty() const {
    return stalls_.empty() && delays_.empty() && drop_from_.empty() &&
           crash_at_.empty();
  }

 private:
  using RankSeq = std::pair<int, uint64_t>;

  std::map<RankSeq, double> stalls_;
  std::map<RankSeq, double> delays_;
  std::map<int, uint64_t> drop_from_;
  std::map<int, uint64_t> crash_at_;
};

/// The kinds of wire fault the transport shim (comm/net_fault.h) can
/// inject between a pair of ranks on the real TCP mesh. Unlike FaultPlan
/// (whose faults are rank-level and virtual-time), these are link-level
/// and manifest through real socket behaviour: blackholed bytes, hard
/// resets, mid-frame truncation, throttled throughput, refused accepts.
enum class WireFaultKind {
  kPartition,
  kReset,
  kTruncation,
  kSlowLink,
  kFlakyAccept,
};
const char* WireFaultKindName(WireFaultKind kind);

/// Deterministic per-(link, direction, op-index) wire-fault schedule, the
/// wire-level sibling of FaultPlan. All ranks of a run share one plan
/// (built from the same seed / --chaos spec), so both endpoints of a link
/// derive the same view of when the link is partitioned, reset, or slow —
/// which is what makes a chaos run replayable from a single seed.
///
/// Directions are ordered rank pairs: a fault on (src, dst) affects bytes
/// flowing src -> dst only. A two-way partition is simply both directions.
/// Op indices are the collective sequence numbers the process group stamps
/// on the shim (WireFaultInjector::set_op_index); faults activate the
/// first time the shim sees op_index >= from_op and are sticky from then
/// on, so a regrouped generation (whose sequence numbers restart at 0)
/// stays partitioned until the fault heals.
///
/// Healing is hit-based, not time-based: a partition with
/// `heal_after_hits` = H lifts, per process, after that process has had H
/// link operations blackholed. Hit counting is deterministic given the
/// schedule of shim calls, which wall-clock healing would not be.
///
/// Build the plan up front, then hand it (const) to one WireFaultInjector
/// per process; queries are const and lock-free.
class WireFaultPlan {
 public:
  struct Partition {
    uint64_t from_op = 0;
    /// 0 = persistent; otherwise the partition heals (per process) after
    /// this many blackholed link operations.
    uint32_t heal_after_hits = 0;
  };
  struct Reset {
    uint64_t at_op = 0;
  };
  struct Truncation {
    uint64_t at_op = 0;
    /// Bytes of the faulted payload actually delivered before the reset.
    uint64_t after_bytes = 0;
  };
  struct Throttle {
    /// Added once per shim operation, before the first byte moves.
    double latency_seconds = 0.0;
    /// 0 = unlimited; otherwise sends are paced to this many bytes/sec.
    double bytes_per_second = 0.0;
  };

  WireFaultPlan() = default;

  /// Blackholes src -> dst traffic from op `from_op` on. `heal_after_hits`
  /// 0 = persistent.
  void PartitionOneWay(int src, int dst, uint64_t from_op,
                       uint32_t heal_after_hits = 0);

  /// Both directions of the (a, b) link.
  void PartitionTwoWay(int a, int b, uint64_t from_op,
                       uint32_t heal_after_hits = 0);

  /// The first src -> dst send at op index >= `at_op` injects a hard
  /// connection reset (shutdown of the socket; the peer observes EOF
  /// mid-message). One-shot.
  void ResetConnection(int src, int dst, uint64_t at_op);

  /// The first src -> dst send of more than `after_bytes` bytes at op
  /// index >= `at_op` delivers only the first `after_bytes` bytes, then
  /// resets the connection — the mid-frame truncation case. One-shot.
  void TruncateSend(int src, int dst, uint64_t at_op, uint64_t after_bytes);

  /// Every src -> dst operation pays `latency_seconds` up front and is
  /// paced to `bytes_per_second` (0 = unpaced).
  void SlowLink(int src, int dst, double latency_seconds,
                double bytes_per_second = 0.0);

  /// The first `fail_count` accepts on `rank` fail with a transient error
  /// (listen queue flakiness during [re]bootstrap).
  void FlakyAccept(int rank, int fail_count);

  /// Seeded chaos: partitions one random ring-adjacent rank pair
  /// (two-way) from `from_op` — adjacent so the fault is guaranteed to
  /// land on a link the default ring schedule actually exercises. Same
  /// seed => same pair, bit-for-bit.
  void AddRandomPartition(uint64_t seed, int world, uint64_t from_op,
                          uint32_t heal_after_hits = 0);

  /// The pair AddRandomPartition(seed, world, ...) would pick, exposed so
  /// test harnesses can predict the faulted link from the seed.
  static std::pair<int, int> RandomPair(uint64_t seed, int world);

  // Queries (used by WireFaultInjector; direction is src -> dst).
  const Partition* FindPartition(int src, int dst) const;
  const Reset* FindReset(int src, int dst) const;
  const Truncation* FindTruncation(int src, int dst) const;
  const Throttle* FindThrottle(int src, int dst) const;
  int AcceptFailures(int rank) const;

  /// Longest single blackhole wait the shim serves before reporting the
  /// injected timeout (keeps chaos tests fast; the caller's own deadline
  /// still applies when shorter).
  double blackhole_cap_seconds = 0.25;

  bool empty() const {
    return partitions_.empty() && resets_.empty() && truncations_.empty() &&
           throttles_.empty() && flaky_accepts_.empty();
  }

  /// Canonical one-line-per-fault rendering, for seed-determinism
  /// assertions and chaos-run logging.
  std::string DebugString() const;

 private:
  using Link = std::pair<int, int>;  // directed (src, dst)

  std::map<Link, Partition> partitions_;
  std::map<Link, Reset> resets_;
  std::map<Link, Truncation> truncations_;
  std::map<Link, Throttle> throttles_;
  std::map<int, int> flaky_accepts_;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_FAULT_PLAN_H_
