#ifndef DDPKIT_COMM_FAULT_PLAN_H_
#define DDPKIT_COMM_FAULT_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/jitter.h"

namespace ddpkit::comm {

/// The kinds of fault ProcessGroupSim can inject (paper §Discussion names
/// error handling as the unsolved operational pain; DistIR/Proteus-style
/// simulators are the one place failure timelines are reproducible).
enum class FaultKind {
  /// Rank arrives late at one collective: its preceding compute stalled.
  kStall,
  /// The collective's completion is pushed back (slow link / congestion).
  kDelayedCompletion,
  /// Rank silently stops participating from a sequence number on — the
  /// NCCL-desync shape: peers see the op never finish.
  kDropParticipation,
  /// Rank hard-crashes at its Nth collective and is dead afterwards.
  kCrash,
};
const char* FaultKindName(FaultKind kind);

/// Deterministic per-rank fault schedule consulted by ProcessGroupSim.
/// Faults are keyed by (rank, collective sequence number); all ranks of a
/// group share one plan, so every participant derives the same view of who
/// is stalled, absent, or dead at any sequence number — which is what lets
/// the simulated backend surface a typed timeout instead of deadlocking.
///
/// Build the schedule up front (explicitly or via AddRandomStalls), then
/// hand the plan to ProcessGroupSim::Options / SimWorldOptions. Queries are
/// const and lock-free; mutating a plan after groups started using it is a
/// race and unsupported.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Rank `rank` arrives `seconds` of virtual time late at collective `seq`.
  void StallRank(int rank, uint64_t seq, double seconds);

  /// Collective `seq` completes `seconds` later than modeled whenever
  /// `rank` participates (per-rank slow-link; the max over ranks applies).
  void DelayCompletion(int rank, uint64_t seq, double seconds);

  /// Rank `rank` never joins collectives with sequence >= `from_seq`.
  void DropRank(int rank, uint64_t from_seq);

  /// Rank `rank` crashes at collective `at_seq` (its own call fails with
  /// kRankFailure) and never joins any later collective.
  void CrashRank(int rank, uint64_t at_seq);

  /// Seeded random stalls: every (rank, seq) pair with rank < world and
  /// seq < num_seqs is stalled independently according to the straggler
  /// model's stall options. Same seed => same schedule, bit-for-bit.
  void AddRandomStalls(uint64_t seed, int world, uint64_t num_seqs,
                       const sim::StragglerModel& model);

  /// Virtual seconds rank `rank` is late to collective `seq` (0 = on time).
  double StallSeconds(int rank, uint64_t seq) const;

  /// Max completion delay any participant injects into collective `seq`.
  double CompletionDelaySeconds(uint64_t seq) const;

  /// True when `rank` does not participate in collective `seq` (dropped or
  /// already crashed).
  bool IsAbsent(int rank, uint64_t seq) const;

  /// True when `rank` has crashed at or before collective `seq`.
  bool IsCrashed(int rank, uint64_t seq) const;

  /// Sequence number at which `rank` crashes; valid when HasCrash(rank).
  bool HasCrash(int rank) const;
  uint64_t CrashSeq(int rank) const;

  /// Ranks in [0, world) absent from collective `seq`, ascending.
  std::vector<int> AbsentRanks(uint64_t seq, int world) const;

  /// One-line description of why `rank` is absent from `seq`, for
  /// diagnostics ("crashed at collective 3" / "dropped participation from
  /// collective 5").
  std::string AbsenceReason(int rank, uint64_t seq) const;

  bool empty() const {
    return stalls_.empty() && delays_.empty() && drop_from_.empty() &&
           crash_at_.empty();
  }

 private:
  using RankSeq = std::pair<int, uint64_t>;

  std::map<RankSeq, double> stalls_;
  std::map<RankSeq, double> delays_;
  std::map<int, uint64_t> drop_from_;
  std::map<int, uint64_t> crash_at_;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_FAULT_PLAN_H_
