#include "comm/store.h"

#include <chrono>
#include <thread>

#include "common/check.h"

namespace ddpkit::comm {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineAfter(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}

void SleepBackoff(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

}  // namespace

void Store::Set(const std::string& key, std::string value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    data_[key] = std::move(value);
  }
  cv_.notify_all();
}

std::string Store::Get(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return data_.count(key) > 0; });
  return data_[key];
}

bool Store::TryGet(const std::string& key, std::string* value) const {
  DDPKIT_CHECK(value != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = data_.find(key);
  if (it == data_.end()) return false;
  *value = it->second;
  return true;
}

int64_t Store::Add(const std::string& key, int64_t delta) {
  int64_t result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t current = 0;
    auto it = data_.find(key);
    if (it != data_.end()) current = std::stoll(it->second);
    result = current + delta;
    data_[key] = std::to_string(result);
  }
  cv_.notify_all();
  return result;
}

void Store::Wait(const std::vector<std::string>& keys) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    for (const auto& key : keys) {
      if (data_.count(key) == 0) return false;
    }
    return true;
  });
}

size_t Store::NumKeys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size();
}

bool Store::MaybeInjectFault() {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (fault_budget_ > 0) {
    --fault_budget_;
    ++transient_failures_;
    return true;
  }
  if (fault_probability_ > 0.0 && fault_rng_ != nullptr &&
      fault_rng_->Uniform() < fault_probability_) {
    ++transient_failures_;
    return true;
  }
  return false;
}

void Store::InjectTransientFaults(int failure_budget) {
  DDPKIT_CHECK_GE(failure_budget, 0);
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_budget_ = failure_budget;
}

void Store::InjectTransientFaults(uint64_t seed, double probability) {
  DDPKIT_CHECK(probability >= 0.0 && probability < 1.0);
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_probability_ = probability;
  fault_rng_ = std::make_unique<Rng>(seed);
}

uint64_t Store::transient_failures() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return transient_failures_;
}

Status Store::SetWithRetry(const std::string& key, std::string value,
                           const RetryPolicy& policy) {
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    if (!MaybeInjectFault()) {
      Set(key, std::move(value));
      return Status::OK();
    }
    if (attempt >= policy.max_attempts) {
      return Status::Internal("store Set('" + key +
                              "') failed transiently on all " +
                              std::to_string(policy.max_attempts) +
                              " attempts");
    }
    SleepBackoff(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

Status Store::AddWithRetry(const std::string& key, int64_t delta,
                           int64_t* result, const RetryPolicy& policy) {
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    if (!MaybeInjectFault()) {
      const int64_t value = Add(key, delta);
      if (result != nullptr) *result = value;
      return Status::OK();
    }
    if (attempt >= policy.max_attempts) {
      return Status::Internal("store Add('" + key +
                              "') failed transiently on all " +
                              std::to_string(policy.max_attempts) +
                              " attempts");
    }
    SleepBackoff(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

Result<std::string> Store::GetWithRetry(const std::string& key,
                                        double timeout_seconds,
                                        const RetryPolicy& policy) {
  const auto deadline = DeadlineAfter(timeout_seconds);
  double backoff = policy.initial_backoff_seconds;
  int failed_attempts = 0;
  while (true) {
    if (MaybeInjectFault()) {
      if (++failed_attempts >= policy.max_attempts) {
        return Status::Internal("store Get('" + key +
                                "') failed transiently on all " +
                                std::to_string(policy.max_attempts) +
                                " attempts");
      }
      if (Clock::now() >= deadline) {
        return Status::TimedOut("store Get('" + key + "') deadline (" +
                                std::to_string(timeout_seconds) +
                                "s real) elapsed during transient-failure "
                                "retries");
      }
      SleepBackoff(backoff);
      backoff *= policy.backoff_multiplier;
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (cv_.wait_until(lock, deadline,
                       [&] { return data_.count(key) > 0; })) {
      return data_[key];
    }
    return Status::TimedOut("store key '" + key + "' not set within " +
                            std::to_string(timeout_seconds) + "s (real)");
  }
}

}  // namespace ddpkit::comm
