#include "comm/store.h"

#include "common/check.h"

namespace ddpkit::comm {

void Store::Set(const std::string& key, std::string value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    data_[key] = std::move(value);
  }
  cv_.notify_all();
}

std::string Store::Get(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return data_.count(key) > 0; });
  return data_[key];
}

bool Store::TryGet(const std::string& key, std::string* value) const {
  DDPKIT_CHECK(value != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = data_.find(key);
  if (it == data_.end()) return false;
  *value = it->second;
  return true;
}

int64_t Store::Add(const std::string& key, int64_t delta) {
  int64_t result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t current = 0;
    auto it = data_.find(key);
    if (it != data_.end()) current = std::stoll(it->second);
    result = current + delta;
    data_[key] = std::to_string(result);
  }
  cv_.notify_all();
  return result;
}

void Store::Wait(const std::vector<std::string>& keys) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    for (const auto& key : keys) {
      if (data_.count(key) == 0) return false;
    }
    return true;
  });
}

size_t Store::NumKeys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size();
}

}  // namespace ddpkit::comm
