#include "comm/store.h"

#include <chrono>
#include <thread>

#include "common/check.h"

namespace ddpkit::comm {

namespace {

// ddplint: allow(banned-nondeterminism) the store models an out-of-band TCP
// service: retry backoff and deadlines are real time by design (DESIGN.md
// §6), not part of the deterministic virtual-time data plane.
using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineAfter(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}

void SleepBackoff(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

}  // namespace

void Store::Set(const std::string& key, std::string value) {
  {
    MutexLock lock(&mutex_);
    data_[key] = std::move(value);
  }
  cv_.NotifyAll();
}

std::string Store::Get(const std::string& key) {
  MutexLock lock(&mutex_);
  while (data_.count(key) == 0) cv_.Wait(mutex_);
  return data_[key];
}

bool Store::TryGet(const std::string& key, std::string* value) const {
  // ddplint: allow(check-in-comm) API precondition on the out-parameter,
  // not a runtime collective failure.
  DDPKIT_CHECK(value != nullptr);
  MutexLock lock(&mutex_);
  auto it = data_.find(key);
  if (it == data_.end()) return false;
  *value = it->second;
  return true;
}

int64_t Store::Add(const std::string& key, int64_t delta) {
  int64_t result;
  {
    MutexLock lock(&mutex_);
    int64_t current = 0;
    auto it = data_.find(key);
    if (it != data_.end()) current = std::stoll(it->second);
    result = current + delta;
    data_[key] = std::to_string(result);
  }
  cv_.NotifyAll();
  return result;
}

void Store::Wait(const std::vector<std::string>& keys) {
  MutexLock lock(&mutex_);
  for (;;) {
    bool all_present = true;
    for (const auto& key : keys) {
      if (data_.count(key) == 0) {
        all_present = false;
        break;
      }
    }
    if (all_present) return;
    cv_.Wait(mutex_);
  }
}

size_t Store::NumKeys() const {
  MutexLock lock(&mutex_);
  return data_.size();
}

bool Store::DeleteKey(const std::string& key) {
  MutexLock lock(&mutex_);
  return data_.erase(key) > 0;
}

size_t Store::DeletePrefix(const std::string& prefix) {
  MutexLock lock(&mutex_);
  auto it = data_.lower_bound(prefix);
  size_t deleted = 0;
  while (it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = data_.erase(it);
    ++deleted;
  }
  return deleted;
}

bool Store::MaybeInjectFault() {
  MutexLock lock(&fault_mutex_);
  if (fault_budget_ > 0) {
    --fault_budget_;
    ++transient_failures_;
    return true;
  }
  if (fault_probability_ > 0.0 && fault_rng_ != nullptr &&
      fault_rng_->Uniform() < fault_probability_) {
    ++transient_failures_;
    return true;
  }
  return false;
}

void Store::InjectTransientFaults(int failure_budget) {
  // ddplint: allow(check-in-comm) test-harness argument precondition, not a
  // runtime collective failure.
  DDPKIT_CHECK_GE(failure_budget, 0);
  MutexLock lock(&fault_mutex_);
  fault_budget_ = failure_budget;
}

void Store::InjectTransientFaults(uint64_t seed, double probability) {
  // ddplint: allow(check-in-comm) test-harness argument precondition, not a
  // runtime collective failure.
  DDPKIT_CHECK(probability >= 0.0 && probability < 1.0);
  MutexLock lock(&fault_mutex_);
  fault_probability_ = probability;
  fault_rng_ = std::make_unique<Rng>(seed);
}

uint64_t Store::transient_failures() const {
  MutexLock lock(&fault_mutex_);
  return transient_failures_;
}

Status Store::SetWithRetry(const std::string& key, std::string value,
                           const RetryPolicy& policy) {
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    if (!MaybeInjectFault()) {
      Set(key, std::move(value));
      return Status::OK();
    }
    if (attempt >= policy.max_attempts) {
      return Status::Internal("store Set('" + key +
                              "') failed transiently on all " +
                              std::to_string(policy.max_attempts) +
                              " attempts");
    }
    SleepBackoff(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

Status Store::AddWithRetry(const std::string& key, int64_t delta,
                           int64_t* result, const RetryPolicy& policy) {
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    if (!MaybeInjectFault()) {
      const int64_t value = Add(key, delta);
      if (result != nullptr) *result = value;
      return Status::OK();
    }
    if (attempt >= policy.max_attempts) {
      return Status::Internal("store Add('" + key +
                              "') failed transiently on all " +
                              std::to_string(policy.max_attempts) +
                              " attempts");
    }
    SleepBackoff(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

Result<std::string> Store::GetWithRetry(const std::string& key,
                                        double timeout_seconds,
                                        const RetryPolicy& policy) {
  const auto deadline = DeadlineAfter(timeout_seconds);
  double backoff = policy.initial_backoff_seconds;
  int failed_attempts = 0;
  while (true) {
    if (MaybeInjectFault()) {
      if (++failed_attempts >= policy.max_attempts) {
        return Status::Internal("store Get('" + key +
                                "') failed transiently on all " +
                                std::to_string(policy.max_attempts) +
                                " attempts");
      }
      if (Clock::now() >= deadline) {
        return Status::TimedOut("store Get('" + key + "') deadline (" +
                                std::to_string(timeout_seconds) +
                                "s real) elapsed during transient-failure "
                                "retries");
      }
      SleepBackoff(backoff);
      backoff *= policy.backoff_multiplier;
      continue;
    }
    MutexLock lock(&mutex_);
    for (;;) {
      if (data_.count(key) > 0) return data_[key];
      if (!cv_.WaitUntil(mutex_, deadline)) {
        // Deadline passed; one final predicate check under the lock, as
        // wait_until-with-predicate would have done.
        if (data_.count(key) > 0) return data_[key];
        return Status::TimedOut("store key '" + key + "' not set within " +
                                std::to_string(timeout_seconds) + "s (real)");
      }
    }
  }
}

}  // namespace ddpkit::comm
