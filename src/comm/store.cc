#include "comm/store.h"

#include <chrono>
#include <thread>

#include "common/check.h"

namespace ddpkit::comm {

namespace {

// ddplint: allow(banned-nondeterminism) the store models an out-of-band TCP
// service: retry backoff and deadlines are real time by design (DESIGN.md
// §6), not part of the deterministic virtual-time data plane.
using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineAfter(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}

void SleepReal(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

/// How long each bounded slice of a legacy (block-forever) op waits before
/// re-issuing. The in-memory primitives wake on notify regardless, so the
/// slice only bounds how long a wire client's RPC channel stays occupied by
/// one blocked waiter.
constexpr double kLegacySliceSeconds = 0.05;

/// Backoff between legacy-tier retries of a transport failure (a wire
/// client reconnecting to a restarted server).
constexpr double kLegacyRetryBackoffSeconds = 0.01;

/// Elapsed/backoff accounting for the retryable tier, on the clock the
/// policy selects. kVirtual never sleeps for real: backoff advances the
/// supplied VirtualClock so sim tests walk the retry/timeout decision tree
/// deterministically.
class RetryClock {
 public:
  explicit RetryClock(const RetryPolicy& policy)
      : virtual_clock_(policy.clock_mode == RetryPolicy::ClockMode::kVirtual
                           ? policy.virtual_clock
                           : nullptr) {
    if (virtual_clock_ != nullptr) {
      virtual_start_ = virtual_clock_->Now();
    } else {
      real_start_ = Clock::now();
    }
  }

  bool real() const { return virtual_clock_ == nullptr; }

  double Elapsed() const {
    if (virtual_clock_ != nullptr) {
      return virtual_clock_->Now() - virtual_start_;
    }
    return std::chrono::duration<double>(Clock::now() - real_start_).count();
  }

  void SleepBackoff(double seconds) {
    if (virtual_clock_ != nullptr) {
      virtual_clock_->Advance(seconds);
      // Let a concurrent setter run; costs no virtual time, decides nothing.
      std::this_thread::yield();
      return;
    }
    SleepReal(seconds);
  }

 private:
  sim::VirtualClock* virtual_clock_;
  double virtual_start_ = 0.0;
  Clock::time_point real_start_;
};

}  // namespace

// ---------------------------------------------------------------------------
// In-memory primitive layer (overridden by StoreClientTcp with framed RPCs).
// ---------------------------------------------------------------------------

Status Store::DoSet(const std::string& key, const std::string& value) {
  {
    MutexLock lock(&mutex_);
    data_[key] = value;
  }
  cv_.NotifyAll();
  return Status::OK();
}

Status Store::DoTryGet(const std::string& key, std::string* value,
                       bool* found) {
  MutexLock lock(&mutex_);
  auto it = data_.find(key);
  *found = it != data_.end();
  if (*found) *value = it->second;
  return Status::OK();
}

Result<int64_t> Store::DoAdd(const std::string& key, int64_t delta) {
  int64_t result;
  {
    MutexLock lock(&mutex_);
    int64_t current = 0;
    auto it = data_.find(key);
    if (it != data_.end()) current = std::stoll(it->second);
    result = current + delta;
    data_[key] = std::to_string(result);
  }
  cv_.NotifyAll();
  return result;
}

Result<std::string> Store::DoGetBounded(const std::string& key,
                                        double timeout_seconds) {
  const bool immediate = timeout_seconds <= 0.0;
  const auto deadline = DeadlineAfter(immediate ? 0.0 : timeout_seconds);
  MutexLock lock(&mutex_);
  for (;;) {
    auto it = data_.find(key);
    if (it != data_.end()) return it->second;
    if (immediate || !cv_.WaitUntil(mutex_, deadline)) {
      // Deadline passed; one final predicate check under the lock, as
      // wait_until-with-predicate would have done.
      it = data_.find(key);
      if (it != data_.end()) return it->second;
      return Status::TimedOut("store key '" + key + "' not set within " +
                              std::to_string(timeout_seconds) + "s");
    }
  }
}

Status Store::DoWaitBounded(const std::vector<std::string>& keys,
                            double timeout_seconds) {
  const bool immediate = timeout_seconds <= 0.0;
  const auto deadline = DeadlineAfter(immediate ? 0.0 : timeout_seconds);
  MutexLock lock(&mutex_);
  for (;;) {
    bool all_present = true;
    for (const auto& key : keys) {
      if (data_.count(key) == 0) {
        all_present = false;
        break;
      }
    }
    if (all_present) return Status::OK();
    if (immediate || !cv_.WaitUntil(mutex_, deadline)) {
      return Status::TimedOut("store keys not all set within " +
                              std::to_string(timeout_seconds) + "s");
    }
  }
}

Result<int64_t> Store::DoNumKeys() {
  MutexLock lock(&mutex_);
  return static_cast<int64_t>(data_.size());
}

Result<int64_t> Store::DoDeleteKey(const std::string& key) {
  MutexLock lock(&mutex_);
  return static_cast<int64_t>(data_.erase(key));
}

Result<int64_t> Store::DoDeletePrefix(const std::string& prefix) {
  MutexLock lock(&mutex_);
  auto it = data_.lower_bound(prefix);
  int64_t deleted = 0;
  while (it != data_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    it = data_.erase(it);
    ++deleted;
  }
  return deleted;
}

// ---------------------------------------------------------------------------
// Legacy blocking tier: assumes a healthy store, so primitive-layer
// transport failures (only possible from a wire subclass) retry forever
// with a small real backoff, and bounded-slice timeouts just re-issue.
// ---------------------------------------------------------------------------

void Store::Set(const std::string& key, std::string value) {
  for (;;) {
    const Status status = DoSet(key, value);
    if (status.ok()) return;
    RecordTransientFailure();
    SleepReal(kLegacyRetryBackoffSeconds);
  }
}

std::string Store::Get(const std::string& key) {
  for (;;) {
    Result<std::string> result = DoGetBounded(key, kLegacySliceSeconds);
    if (result.ok()) return std::move(result).value();
    if (result.status().code() != StatusCode::kTimedOut) {
      RecordTransientFailure();
      SleepReal(kLegacyRetryBackoffSeconds);
    }
  }
}

bool Store::TryGet(const std::string& key, std::string* value) {
  // ddplint: allow(check-in-comm) API precondition on the out-parameter,
  // not a runtime collective failure.
  DDPKIT_CHECK(value != nullptr);
  for (;;) {
    bool found = false;
    const Status status = DoTryGet(key, value, &found);
    if (status.ok()) return found;
    RecordTransientFailure();
    SleepReal(kLegacyRetryBackoffSeconds);
  }
}

int64_t Store::Add(const std::string& key, int64_t delta) {
  for (;;) {
    Result<int64_t> result = DoAdd(key, delta);
    if (result.ok()) return result.value();
    RecordTransientFailure();
    SleepReal(kLegacyRetryBackoffSeconds);
  }
}

void Store::Wait(const std::vector<std::string>& keys) {
  for (;;) {
    const Status status = DoWaitBounded(keys, kLegacySliceSeconds);
    if (status.ok()) return;
    if (status.code() != StatusCode::kTimedOut) {
      RecordTransientFailure();
      SleepReal(kLegacyRetryBackoffSeconds);
    }
  }
}

size_t Store::NumKeys() {
  for (;;) {
    Result<int64_t> result = DoNumKeys();
    if (result.ok()) return static_cast<size_t>(result.value());
    RecordTransientFailure();
    SleepReal(kLegacyRetryBackoffSeconds);
  }
}

bool Store::DeleteKey(const std::string& key) {
  for (;;) {
    Result<int64_t> result = DoDeleteKey(key);
    if (result.ok()) return result.value() > 0;
    RecordTransientFailure();
    SleepReal(kLegacyRetryBackoffSeconds);
  }
}

size_t Store::DeletePrefix(const std::string& prefix) {
  for (;;) {
    Result<int64_t> result = DoDeletePrefix(prefix);
    if (result.ok()) return static_cast<size_t>(result.value());
    RecordTransientFailure();
    SleepReal(kLegacyRetryBackoffSeconds);
  }
}

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

bool Store::MaybeInjectFault() {
  MutexLock lock(&fault_mutex_);
  if (fault_budget_ > 0) {
    --fault_budget_;
    ++transient_failures_;
    return true;
  }
  if (fault_probability_ > 0.0 && fault_rng_ != nullptr &&
      fault_rng_->Uniform() < fault_probability_) {
    ++transient_failures_;
    return true;
  }
  return false;
}

void Store::RecordTransientFailure() {
  MutexLock lock(&fault_mutex_);
  ++transient_failures_;
}

void Store::InjectTransientFaults(int failure_budget) {
  // ddplint: allow(check-in-comm) test-harness argument precondition, not a
  // runtime collective failure.
  DDPKIT_CHECK_GE(failure_budget, 0);
  MutexLock lock(&fault_mutex_);
  fault_budget_ = failure_budget;
}

void Store::InjectTransientFaults(uint64_t seed, double probability) {
  // ddplint: allow(check-in-comm) test-harness argument precondition, not a
  // runtime collective failure.
  DDPKIT_CHECK(probability >= 0.0 && probability < 1.0);
  MutexLock lock(&fault_mutex_);
  fault_probability_ = probability;
  fault_rng_ = std::make_unique<Rng>(seed);
}

uint64_t Store::transient_failures() const {
  MutexLock lock(&fault_mutex_);
  return transient_failures_;
}

// ---------------------------------------------------------------------------
// Retryable tier: bounded, typed, policy-clocked. Injected faults and real
// primitive-layer transport failures share one attempt budget.
// ---------------------------------------------------------------------------

Status Store::SetWithRetry(const std::string& key, std::string value,
                           const RetryPolicy& policy) {
  RetryClock clock(policy);
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    if (!MaybeInjectFault()) {
      const Status status = DoSet(key, value);
      if (status.ok()) return Status::OK();
      RecordTransientFailure();
    }
    if (attempt >= policy.max_attempts) {
      return Status::Internal("store Set('" + key +
                              "') failed transiently on all " +
                              std::to_string(policy.max_attempts) +
                              " attempts");
    }
    clock.SleepBackoff(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

Status Store::AddWithRetry(const std::string& key, int64_t delta,
                           int64_t* result, const RetryPolicy& policy) {
  RetryClock clock(policy);
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    if (!MaybeInjectFault()) {
      Result<int64_t> value = DoAdd(key, delta);
      if (value.ok()) {
        if (result != nullptr) *result = value.value();
        return Status::OK();
      }
      RecordTransientFailure();
    }
    if (attempt >= policy.max_attempts) {
      return Status::Internal("store Add('" + key +
                              "') failed transiently on all " +
                              std::to_string(policy.max_attempts) +
                              " attempts");
    }
    clock.SleepBackoff(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

Result<std::string> Store::GetWithRetry(const std::string& key,
                                        double timeout_seconds,
                                        const RetryPolicy& policy) {
  RetryClock clock(policy);
  double backoff = policy.initial_backoff_seconds;
  int failed_attempts = 0;
  // One iteration = one attempt against the store. On the real clock a
  // healthy attempt blocks server-side for the remaining budget, so a miss
  // is final; on the virtual clock attempts are immediate polls and the
  // deadline accrues through virtual backoff, so a miss costs backoff and
  // polls again.
  for (;;) {
    const bool faulted = MaybeInjectFault();
    if (!faulted) {
      const double remaining = timeout_seconds - clock.Elapsed();
      if (remaining <= 0.0) {
        return Status::TimedOut("store key '" + key + "' not set within " +
                                std::to_string(timeout_seconds) + "s");
      }
      Result<std::string> result =
          DoGetBounded(key, clock.real() ? remaining : 0.0);
      if (result.ok()) return result;
      if (result.status().code() == StatusCode::kTimedOut) {
        if (clock.real()) {
          return Status::TimedOut("store key '" + key + "' not set within " +
                                  std::to_string(timeout_seconds) + "s");
        }
        clock.SleepBackoff(backoff);
        backoff *= policy.backoff_multiplier;
        continue;
      }
      RecordTransientFailure();  // transport failure from a wire subclass
    }
    if (++failed_attempts >= policy.max_attempts) {
      return Status::Internal("store Get('" + key +
                              "') failed transiently on all " +
                              std::to_string(policy.max_attempts) +
                              " attempts");
    }
    if (clock.Elapsed() >= timeout_seconds) {
      return Status::TimedOut("store Get('" + key + "') deadline (" +
                              std::to_string(timeout_seconds) +
                              "s) elapsed during transient-failure retries");
    }
    clock.SleepBackoff(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

}  // namespace ddpkit::comm
