#ifndef DDPKIT_COMM_NET_SOCKET_H_
#define DDPKIT_COMM_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// ddplint: allow-file(banned-nondeterminism) wire I/O deadlines are real
// wall-clock time by definition: the peers live in other processes, which
// make progress only in real time (DESIGN.md §11).

namespace ddpkit::comm {

/// A wall-clock deadline for a socket operation. All the I/O helpers below
/// take one and convert overruns into Status::TimedOut, which the process
/// group maps to WorkError::kTimeout — the "peer never showed up" arm of
/// the failure taxonomy.
struct Deadline {
  /// Expires `seconds` from now; non-positive seconds is already expired.
  static Deadline After(double seconds);
  /// Never expires (bootstrap paths that carry their own retry budget).
  static Deadline Never();

  bool Expired() const;
  /// Remaining time as a poll(2) timeout: -1 for never, 0 when expired,
  /// else milliseconds (rounded up so a positive remainder never busy-spins
  /// as a zero-timeout poll).
  int PollMillis() const;

  bool never = false;
  std::chrono::steady_clock::time_point at{};
};

/// All helpers return typed Status:
///  - Status::TimedOut      — deadline elapsed (→ WorkError::kTimeout);
///  - Status::FailedPrecondition("aborted...") — `abort_fd` became readable
///    (→ WorkError::kInvalidGeneration: AbortGroup wrote the wake pipe);
///  - Status::Internal      — connection failure / peer closed the socket
///    (→ WorkError::kRankFailure).
/// `abort_fd` is the read end of the owner's wake pipe, or -1 for none.

/// Creates a nonblocking listening socket bound to `host:port` (port 0 asks
/// the kernel for a free port — the only collision-proof choice under CI;
/// recover the real port with ListenPort and publish it via the Store).
[[nodiscard]] Result<int> ListenTcp(const std::string& host, int port,
                                    int backlog = 128);

/// The port a listening socket actually bound (resolves port 0).
[[nodiscard]] Result<int> ListenPort(int listen_fd);

/// Accepts one connection; the returned fd is nonblocking with
/// TCP_NODELAY set.
[[nodiscard]] Result<int> AcceptWithDeadline(int listen_fd,
                                             const Deadline& deadline,
                                             int abort_fd = -1);

/// Connects to `host:port` (numeric address only). Retries refused
/// connections until the deadline — the listener may not have published
/// yet during bootstrap.
[[nodiscard]] Result<int> ConnectWithDeadline(const std::string& host,
                                              int port,
                                              const Deadline& deadline,
                                              int abort_fd = -1);

/// Writes exactly `len` bytes (SIGPIPE-safe).
[[nodiscard]] Status SendAll(int fd, const void* data, size_t len,
                             const Deadline& deadline, int abort_fd = -1);

/// Reads exactly `len` bytes; a clean peer close mid-message is Internal.
[[nodiscard]] Status RecvAll(int fd, void* data, size_t len,
                             const Deadline& deadline, int abort_fd = -1);

/// Full-duplex exchange: sends `send_len` bytes on `send_fd` while
/// receiving `recv_len` bytes on `recv_fd`, making progress on both as the
/// kernel allows. `send_fd == recv_fd` is valid (pairwise exchange with one
/// peer, as halving-doubling does); distinct fds serve ring steps
/// (send-to-successor while receiving-from-predecessor). The duplex
/// progress is what keeps the ring from deadlocking when messages exceed
/// the kernel socket buffers.
[[nodiscard]] Status SendRecvAll(int send_fd, const void* send_buf,
                                 size_t send_len, int recv_fd, void* recv_buf,
                                 size_t recv_len, const Deadline& deadline,
                                 int abort_fd = -1);

/// Length-prefixed frame: u32 little-endian payload size, then payload.
/// The store RPCs and the process-group HELLO handshake speak frames;
/// bulk collective payloads use the *All helpers directly (their sizes are
/// implied by the schedule, so framing would only add copies).
[[nodiscard]] Status SendFrame(int fd, const void* payload, size_t len,
                               const Deadline& deadline, int abort_fd = -1);
[[nodiscard]] Result<std::vector<uint8_t>> RecvFrame(int fd,
                                                     const Deadline& deadline,
                                                     int abort_fd = -1);

/// Best-effort close (EINTR-safe, ignores errors); fd may be -1.
void CloseFd(int fd);

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_NET_SOCKET_H_
