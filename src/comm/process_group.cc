#include "comm/process_group.h"

namespace ddpkit::comm {

const char* ReduceOpName(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return "sum";
    case ReduceOp::kMax:
      return "max";
    case ReduceOp::kBor:
      return "bor";
  }
  return "?";
}

}  // namespace ddpkit::comm
