#ifndef DDPKIT_COMM_NET_FAULT_H_
#define DDPKIT_COMM_NET_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "comm/fault_plan.h"
#include "comm/net_socket.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ddpkit::comm {

/// Fault-injecting transport shim over the comm/net_socket.h surface. One
/// injector per process (not per group): it carries the sticky activation
/// and heal state that must survive group regeneration, so a persistent
/// partition keeps biting across elastic-recovery generations. With a null
/// plan every call forwards straight to the underlying helper.
///
/// Faults are consulted on the *initiating* side only: a one-way partition
/// src -> dst manifests as src's sends blackholing (and its connects
/// timing out); dst simply starves, exactly as an iptables DROP would
/// behave. The receive path never consults the plan — injecting there
/// would desynchronize byte streams the sender actually delivered.
///
/// Determinism: fault decisions depend only on (plan, self rank, peer,
/// current op index, per-link hit counts) — never on wall time — so a run
/// with the same plan and schedule of shim calls replays bit-for-bit.
///
/// Thread safety: all entry points are safe to call concurrently (the
/// supervisor's heartbeat thread shares the injector with the collective
/// path).
class WireFaultInjector {
 public:
  /// `plan` may be null (transparent shim) and must outlive the injector.
  WireFaultInjector(const WireFaultPlan* plan, int self_rank);

  WireFaultInjector(const WireFaultInjector&) = delete;
  WireFaultInjector& operator=(const WireFaultInjector&) = delete;

  int self_rank() const { return self_; }
  const WireFaultPlan* plan() const { return plan_; }

  /// Stamps the op index (collective sequence number) fault windows are
  /// keyed on. The process group calls this at the start of every
  /// collective; bootstrap/re-mesh traffic runs under the last stamp.
  void set_op_index(uint64_t op) { op_index_.store(op); }
  uint64_t op_index() const { return op_index_.load(); }

  /// Blackholed operations counted against the (self, peer) link so far —
  /// the heal clock for partitions with heal_after_hits > 0.
  uint64_t link_hits(int peer) const;

  /// Total faults this injector has served (all kinds; for assertions).
  uint64_t faults_injected() const;

  /// True when a send self -> peer would currently be blackholed.
  bool SendPartitioned(int peer) const;

  // --- the net_socket surface, per-link ----------------------------------
  // `peer` names the remote rank the fd is connected to; it keys the fault
  // lookup, the fd still carries the bytes.

  [[nodiscard]] Status SendAll(int peer, int fd, const void* data, size_t len,
                               const Deadline& deadline, int abort_fd = -1);

  [[nodiscard]] Status RecvAll(int peer, int fd, void* data, size_t len,
                               const Deadline& deadline, int abort_fd = -1);

  [[nodiscard]] Status SendRecvAll(int send_peer, int send_fd,
                                   const void* send_buf, size_t send_len,
                                   int recv_peer, int recv_fd, void* recv_buf,
                                   size_t recv_len, const Deadline& deadline,
                                   int abort_fd = -1);

  [[nodiscard]] Status SendFrame(int peer, int fd, const void* payload,
                                 size_t len, const Deadline& deadline,
                                 int abort_fd = -1);

  [[nodiscard]] Result<std::vector<uint8_t>> RecvFrame(
      int peer, int fd, const Deadline& deadline, int abort_fd = -1);

  [[nodiscard]] Result<int> AcceptWithDeadline(int listen_fd,
                                               const Deadline& deadline,
                                               int abort_fd = -1);

  /// A connect consults both directions: the SYN rides self -> peer, the
  /// SYN-ACK peer -> self, so either partition kills the handshake.
  [[nodiscard]] Result<int> ConnectWithDeadline(int peer,
                                                const std::string& host,
                                                int port,
                                                const Deadline& deadline,
                                                int abort_fd = -1);

  /// Heartbeat probe: consults partitions (a dead link must starve the
  /// peer's detector) but never counts a heal hit and never consumes the
  /// one-shot reset/truncation faults — probes must not perturb the
  /// deterministic heal schedule of the data plane.
  [[nodiscard]] Status Heartbeat(int peer, int fd, const void* data,
                                 size_t len, const Deadline& deadline);

 private:
  /// Per-direction sticky fault state (keyed (src, dst); only pairs
  /// involving self_ ever appear).
  struct DirState {
    bool partition_activated = false;
    bool partition_healed = false;
    bool reset_done = false;
    bool truncation_done = false;
  };

  /// True when the (src, dst) partition is active at the current op index,
  /// updating sticky activation. Caller holds mu_.
  bool PartitionActiveLocked(int src, int dst) REQUIRES(mu_);

  /// Counts one blackholed op on the (self, peer) link and heals any
  /// hit-bounded partitions that reached their budget. Caller holds mu_.
  void CountHitLocked(int peer) REQUIRES(mu_);

  /// Parks until `deadline` or the plan's blackhole cap (whichever is
  /// sooner), honoring abort_fd; returns the injected-partition timeout or
  /// the abort status.
  [[nodiscard]] Status Blackhole(int peer, const char* what,
                                 const Deadline& deadline, int abort_fd);

  /// Applies reset/truncation/throttle faults for one send self -> peer.
  /// Returns true (with *out set) when a fault consumed the operation.
  bool ApplySendFaults(int peer, int fd, const void* data, size_t len,
                       const Deadline& deadline, int abort_fd, Status* out);

  const WireFaultPlan* plan_;
  const int self_;
  std::atomic<uint64_t> op_index_{0};

  mutable Mutex mu_;
  std::map<std::pair<int, int>, DirState> dir_state_ GUARDED_BY(mu_);
  std::map<int, uint64_t> link_hits_ GUARDED_BY(mu_);
  int accept_failures_served_ GUARDED_BY(mu_) = 0;
  uint64_t faults_injected_ GUARDED_BY(mu_) = 0;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_NET_FAULT_H_
