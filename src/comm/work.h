#ifndef DDPKIT_COMM_WORK_H_
#define DDPKIT_COMM_WORK_H_

#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/virtual_clock.h"

namespace ddpkit::comm {

/// Typed failure states for a collective, mirroring the error taxonomy the
/// paper's Discussion section leaves open: a peer that never shows up
/// (kTimeout), a peer known dead (kRankFailure), ranks issuing structurally
/// different collectives (kShapeMismatch), or a collective issued against a
/// process-group generation that elastic recovery has superseded
/// (kInvalidGeneration).
enum class WorkError {
  kNone = 0,
  kTimeout,
  kRankFailure,
  kShapeMismatch,
  kInvalidGeneration,
};
const char* WorkErrorName(WorkError error);

/// Handle to an asynchronously-launched collective, mirroring c10d's Work.
/// The launching rank keeps computing (overlap!); Wait() blocks the real
/// thread until every participant has contributed and then advances the
/// rank's virtual clock to the modeled completion time.
///
/// A Work terminates exactly once, either successfully (MarkCompleted) or
/// with a typed error (MarkFailed). The timeout-aware Wait overload turns a
/// late completion or a terminal error into a Status instead of blocking
/// forever — the NCCL-watchdog behaviour the paper's design lacks.
class Work {
 public:
  Work() = default;
  Work(const Work&) = delete;
  Work& operator=(const Work&) = delete;

  /// Legacy blocking wait: blocks until terminal; advances `clock` to
  /// max(now, completion). Aborts with a diagnostic if the work failed —
  /// callers that can recover use the timeout-aware overload.
  void Wait(sim::VirtualClock* clock);

  /// Timeout-aware wait. Blocks the real thread until the work is terminal,
  /// then:
  ///  - failed work: advances `clock` to the failure time and returns the
  ///    failure as a Status (kTimedOut / kInternal / kFailedPrecondition);
  ///  - completed later than `timeout_seconds` of virtual time after this
  ///    rank's arrival: advances `clock` by exactly the timeout and returns
  ///    TimedOut (per-rank watchdog semantics — the collective itself may
  ///    have finished for punctual peers);
  ///  - completed in time: advances `clock` to completion, returns OK.
  /// A non-positive timeout disables the watchdog (virtual-time-wise).
  [[nodiscard]] Status Wait(sim::VirtualClock* clock, double timeout_seconds);

  /// Non-throwing, non-blocking: true once the work is terminal (either
  /// completed or failed). Never aborts.
  bool Poll() const;

  /// True once the work completed successfully.
  bool IsCompleted() const;

  /// Error state; kNone while pending or after success.
  WorkError error() const;

  /// Diagnostic for a failed work (names the offending rank and sequence
  /// number when known). Empty while pending or after success.
  std::string error_message() const;

  /// The failure rendered as a Status; OK while pending or after success.
  [[nodiscard]] Status status() const;

  /// Virtual terminal time. Precondition: Poll().
  double completion_time() const;

  /// Marks the collective done at virtual time `completion_time` (called by
  /// the last-arriving participant after it has performed the reduction).
  /// `note` is appended to timeout diagnostics (e.g. the slowest
  /// participant's identity). The first terminal state wins: completing an
  /// already-terminal work (e.g. one a concurrent watchdog already failed)
  /// is a no-op, never an abort — the failure verdict stands.
  void MarkCompleted(double completion_time, std::string note = "");

  /// Marks the collective failed at virtual time `failure_time`. The first
  /// terminal state wins: failing an already-terminal work is a no-op, so
  /// concurrent detectors don't race.
  void MarkFailed(WorkError error, std::string message, double failure_time);

 private:
  [[nodiscard]] Status StatusLocked() const REQUIRES(mutex_);

  mutable Mutex mutex_;
  CondVar cv_;
  bool done_ GUARDED_BY(mutex_) = false;
  WorkError error_ GUARDED_BY(mutex_) = WorkError::kNone;
  std::string error_message_ GUARDED_BY(mutex_);
  std::string completion_note_ GUARDED_BY(mutex_);
  double completion_time_ GUARDED_BY(mutex_) = 0.0;
};

using WorkHandle = std::shared_ptr<Work>;

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_WORK_H_
