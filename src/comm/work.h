#ifndef DDPKIT_COMM_WORK_H_
#define DDPKIT_COMM_WORK_H_

#include <condition_variable>
#include <memory>
#include <mutex>

#include "sim/virtual_clock.h"

namespace ddpkit::comm {

/// Handle to an asynchronously-launched collective, mirroring c10d's Work.
/// The launching rank keeps computing (overlap!); Wait() blocks the real
/// thread until every participant has contributed and then advances the
/// rank's virtual clock to the modeled completion time.
class Work {
 public:
  Work() = default;
  Work(const Work&) = delete;
  Work& operator=(const Work&) = delete;

  /// Blocks until completed; advances `clock` to max(now, completion).
  void Wait(sim::VirtualClock* clock);

  bool IsCompleted() const;

  /// Virtual completion time. Precondition: IsCompleted().
  double completion_time() const;

  /// Marks the collective done at virtual time `completion_time` (called by
  /// the last-arriving participant after it has performed the reduction).
  void MarkCompleted(double completion_time);

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  double completion_time_ = 0.0;
};

using WorkHandle = std::shared_ptr<Work>;

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_WORK_H_
