#include "comm/algorithms.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/vec.h"

// ddplint: allow-file(check-in-comm) data-plane internal invariants: every
// Run* entry is reached only after ProcessGroupSim's Contribute validated
// cross-rank collective signatures and converted mismatches into typed
// kShapeMismatch failures, so these checks guard unreachable-by-contract
// states (memory-safety bounds), not recoverable runtime conditions.

namespace ddpkit::comm {

const char* AlgorithmName(Algorithm algorithm) {
  return sim::CollectiveAlgorithmName(algorithm);
}

namespace {

template <typename T>
T Combine(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMax:
      return a > b ? a : b;
    case ReduceOp::kBor:
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(a | b);
      } else {
        // Logical-or semantics for float bitmaps.
        return (a != 0 || b != 0) ? T{1} : T{0};
      }
  }
  return a;
}

/// dst[0..len) = Combine(dst, src) lanewise — the one combine loop every
/// algorithm below funnels through. Float/double sum and max dispatch into
/// the SIMD layer (bit-exact at every vector width, see common/vec.h); the
/// remaining (integer, kBor) combinations stay scalar.
template <typename T>
void CombineSpan(ReduceOp op, T* dst, const T* src, int64_t len) {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    if (op == ReduceOp::kSum) {
      vec::AccumulateAdd(dst, src, len);
      return;
    }
    if (op == ReduceOp::kMax) {
      vec::AccumulateMax(dst, src, len);
      return;
    }
  }
  // ddplint: allow(raw-elementwise-loop) integer / kBor fallback; the vec
  // layer covers the float and double sum/max hot paths above
  for (int64_t i = 0; i < len; ++i) dst[i] = Combine(op, dst[i], src[i]);
}

template <typename T>
void CopySpan(T* dst, const T* src, int64_t len) {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    vec::Copy(dst, src, len);
  } else {
    if (len > 0) std::memcpy(dst, src, static_cast<size_t>(len) * sizeof(T));
  }
}

/// Naive: combine contributions in ascending rank order into rank 0's
/// buffer, then copy everywhere (gather + local reduce + broadcast). The
/// reference combine order for the zoo property tests. Parallelized over
/// elements; each element still accumulates ranks in ascending order, so
/// the sum is bit-exact regardless of thread count.
template <typename T>
void NaiveAllReduce(ReduceOp op, const std::vector<T*>& bufs, int64_t n) {
  const int world = static_cast<int>(bufs.size());
  T* acc = bufs[0];
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 1; r < world; ++r) {
      CombineSpan(op, acc + b, bufs[static_cast<size_t>(r)] + b, e - b);
    }
  });
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 1; r < world; ++r) {
      CopySpan(bufs[static_cast<size_t>(r)] + b, acc + b, e - b);
    }
  });
}

/// Ring: split the array into world * chunks_per_rank chunks. Chunk c is
/// reduced by walking the ring starting at rank (c % world + 1) % world and
/// accumulating until it returns to its owner — exactly the combine order
/// of a reduce-scatter — then all-gathered to every rank.
///
/// chunks_per_rank == 1 is the classic two-phase ring (one chunk per rank
/// per step). chunks_per_rank > 1 is the pipelined variant after
/// fbcollective's allreduce_ring_chunked: with several in-flight chunks per
/// rank, the reduce of chunk k overlaps the transfer of chunk k-1 and the
/// bottleneck link stays busy through the whole collective. The data plane
/// models exactly that chunking, so the two variants have *different* (but
/// each individually deterministic) per-element summation orders.
template <typename T>
void RingAllReduce(ReduceOp op, const std::vector<T*>& bufs, int64_t n,
                   int chunks_per_rank) {
  const int world = static_cast<int>(bufs.size());
  const int num_chunks = world * chunks_per_rank;
  const int64_t base = n / num_chunks;
  const int64_t rem = n % num_chunks;
  auto chunk_begin = [&](int c) {
    return base * c + std::min<int64_t>(c, rem);
  };
  auto chunk_size = [&](int c) { return base + (c < rem ? 1 : 0); };

  std::vector<T> reduced(static_cast<size_t>(n));
  for (int c = 0; c < num_chunks; ++c) {
    const int64_t begin = chunk_begin(c);
    const int64_t len = chunk_size(c);
    if (len == 0) continue;
    // Start from the ring successor of the chunk owner. Elements within the
    // chunk are split across threads; each element is combined in the same
    // ring order as the serial loop, so the result is bit-exact.
    const int owner = c % world;
    const T* src0 = bufs[static_cast<size_t>((owner + 1) % world)] + begin;
    T* dst = reduced.data() + begin;
    ParallelFor(0, len, GrainFromCost(world), [&](int64_t b, int64_t e) {
      CopySpan(dst + b, src0 + b, e - b);
      for (int s = 2; s <= world; ++s) {
        const T* src = bufs[static_cast<size_t>((owner + s) % world)] + begin;
        CombineSpan(op, dst + b, src + b, e - b);
      }
    });
  }
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      CopySpan(bufs[static_cast<size_t>(r)] + b, reduced.data() + b, e - b);
    }
  });
}

/// Tree: recursive-doubling reduction to rank 0 followed by a broadcast
/// (NCCL 2.4's tree mode, cited by the paper [22]).
template <typename T>
void TreeAllReduce(ReduceOp op, const std::vector<T*>& bufs, int64_t n) {
  const int world = static_cast<int>(bufs.size());
  std::vector<std::vector<T>> acc(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    acc[static_cast<size_t>(r)].resize(static_cast<size_t>(n));
  }
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      CopySpan(acc[static_cast<size_t>(r)].data() + b,
               bufs[static_cast<size_t>(r)] + b, e - b);
    }
  });
  // Rounds stay sequential (each halving depends on the previous); within a
  // round the (dst, src) pairs write disjoint buffers and each element keeps
  // the recursive-doubling combine order.
  for (int span = 1; span < world; span *= 2) {
    std::vector<std::pair<T*, const T*>> pairs;
    for (int r = 0; r + span < world; r += 2 * span) {
      pairs.emplace_back(acc[static_cast<size_t>(r)].data(),
                         acc[static_cast<size_t>(r + span)].data());
    }
    if (pairs.empty()) continue;
    ParallelFor(0, n, GrainFromCost(static_cast<int64_t>(pairs.size())),
                [&](int64_t b, int64_t e) {
      for (auto& [dst, src] : pairs) {
        CombineSpan(op, dst + b, src + b, e - b);
      }
    });
  }
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      CopySpan(bufs[static_cast<size_t>(r)] + b, acc[0].data() + b, e - b);
    }
  });
}

/// Recursive halving-doubling (the MPICH/Rabenseifner pattern): fold any
/// ranks beyond the leading power of two into it, recursive-halving
/// reduce-scatter (partner distance and owned segment both halve each
/// round), recursive-doubling all-gather (the exact reverse), then fan the
/// result back out to the folded ranks. Every element is reduced along a
/// fixed binary tree over ranks, so the combine order depends only on
/// (world, n) and each element is finalized by exactly one owner — all
/// ranks end bit-identical by construction.
template <typename T>
void HalvingDoublingAllReduce(ReduceOp op, const std::vector<T*>& bufs,
                              int64_t n) {
  const int world = static_cast<int>(bufs.size());
  int pof2 = 1;
  while (pof2 * 2 <= world) pof2 *= 2;
  const int rem = world - pof2;

  // Fold: odd ranks below 2*rem combine into their even neighbor, which
  // then represents both in the power-of-two phase.
  for (int r = 0; r < rem; ++r) {
    T* dst = bufs[static_cast<size_t>(2 * r)];
    const T* src = bufs[static_cast<size_t>(2 * r + 1)];
    ParallelFor(0, n, GrainFromCost(2), [&](int64_t b, int64_t e) {
      CombineSpan(op, dst + b, src + b, e - b);
    });
  }
  // Participant p's global rank: even survivors first, then the tail.
  auto part_rank = [&](int p) { return p < rem ? 2 * p : p + rem; };

  std::vector<int64_t> beg(static_cast<size_t>(pof2), 0);
  std::vector<int64_t> end(static_cast<size_t>(pof2), n);

  // Recursive halving. Pair members share a segment by induction (their
  // higher mask bits match, so every earlier keep-low/keep-high decision
  // matched); the keeper combines its own value with the partner's.
  for (int mask = pof2 / 2; mask >= 1; mask /= 2) {
    for (int p = 0; p < pof2; ++p) {
      const int q = p ^ mask;
      if (q < p) continue;
      T* lo = bufs[static_cast<size_t>(part_rank(p))];
      T* hi = bufs[static_cast<size_t>(part_rank(q))];
      const int64_t b = beg[static_cast<size_t>(p)];
      const int64_t e = end[static_cast<size_t>(p)];
      const int64_t mid = b + (e - b) / 2;
      // Writes are confined to each keeper's half, so hi's read of
      // lo[mid, e) and lo's read of hi[b, mid) see pre-round values.
      ParallelFor(b, mid, GrainFromCost(2), [&](int64_t s, int64_t t) {
        CombineSpan(op, lo + s, hi + s, t - s);
      });
      ParallelFor(mid, e, GrainFromCost(2), [&](int64_t s, int64_t t) {
        CombineSpan(op, hi + s, lo + s, t - s);
      });
      end[static_cast<size_t>(p)] = mid;
      beg[static_cast<size_t>(q)] = mid;
    }
  }

  // Recursive doubling: reverse the splits, exchanging adjacent segments.
  for (int mask = 1; mask < pof2; mask *= 2) {
    for (int p = 0; p < pof2; ++p) {
      const int q = p ^ mask;
      if (q < p) continue;
      T* lo = bufs[static_cast<size_t>(part_rank(p))];
      T* hi = bufs[static_cast<size_t>(part_rank(q))];
      const int64_t pb = beg[static_cast<size_t>(p)];
      const int64_t pe = end[static_cast<size_t>(p)];
      const int64_t qb = beg[static_cast<size_t>(q)];
      const int64_t qe = end[static_cast<size_t>(q)];
      ParallelFor(pb, pe, kParallelGrain, [&](int64_t s, int64_t t) {
        CopySpan(hi + s, lo + s, t - s);
      });
      ParallelFor(qb, qe, kParallelGrain, [&](int64_t s, int64_t t) {
        CopySpan(lo + s, hi + s, t - s);
      });
      const int64_t nb = std::min(pb, qb);
      const int64_t ne = std::max(pe, qe);
      beg[static_cast<size_t>(p)] = beg[static_cast<size_t>(q)] = nb;
      end[static_cast<size_t>(p)] = end[static_cast<size_t>(q)] = ne;
    }
  }

  // Unfold: folded odd ranks copy the result from their even neighbor.
  for (int r = 0; r < rem; ++r) {
    T* dst = bufs[static_cast<size_t>(2 * r + 1)];
    const T* src = bufs[static_cast<size_t>(2 * r)];
    ParallelFor(0, n, kParallelGrain, [&](int64_t b, int64_t e) {
      CopySpan(dst + b, src + b, e - b);
    });
  }
}

/// Hierarchical two-level (keyed off the topology's host boundaries, ranks
/// host-major): each node reduces into its leader in ascending rank order
/// (NVLink-tier traffic), leaders run a classic ring across nodes (the only
/// NIC-tier traffic: 2*(nodes-1)/nodes of the bytes instead of
/// 2*(world-1)/world), then each leader broadcasts inside its node. A
/// single-node world degenerates to exactly the kNaive combine order.
template <typename T>
void HierarchicalAllReduce(ReduceOp op, const std::vector<T*>& bufs,
                           int64_t n, int ranks_per_node) {
  const int world = static_cast<int>(bufs.size());
  if (ranks_per_node <= 0) ranks_per_node = sim::Topology().gpus_per_host();
  const int nodes = (world + ranks_per_node - 1) / ranks_per_node;

  std::vector<T*> leaders;
  for (int node = 0; node < nodes; ++node) {
    const int lo = node * ranks_per_node;
    const int hi = std::min(world, lo + ranks_per_node);
    T* leader = bufs[static_cast<size_t>(lo)];
    for (int r = lo + 1; r < hi; ++r) {
      const T* src = bufs[static_cast<size_t>(r)];
      ParallelFor(0, n, GrainFromCost(2), [&](int64_t b, int64_t e) {
        CombineSpan(op, leader + b, src + b, e - b);
      });
    }
    leaders.push_back(leader);
  }
  if (leaders.size() > 1) {
    RingAllReduce(op, leaders, n, /*chunks_per_rank=*/1);
  }
  for (int node = 0; node < nodes; ++node) {
    const int lo = node * ranks_per_node;
    const int hi = std::min(world, lo + ranks_per_node);
    const T* leader = bufs[static_cast<size_t>(lo)];
    for (int r = lo + 1; r < hi; ++r) {
      T* dst = bufs[static_cast<size_t>(r)];
      ParallelFor(0, n, kParallelGrain, [&](int64_t b, int64_t e) {
        CopySpan(dst + b, leader + b, e - b);
      });
    }
  }
}

template <typename T>
void DispatchAllReduceRaw(Algorithm algorithm, ReduceOp op,
                          const std::vector<T*>& bufs, int64_t n,
                          int ranks_per_node) {
  if (algorithm == Algorithm::kAuto) {
    // Callers with a configured topology (ProcessGroupSim) resolve kAuto
    // themselves; this standalone path selects against the testbed default.
    algorithm = sim::SelectAllReduceAlgorithm(
        static_cast<size_t>(n) * sizeof(T), static_cast<int>(bufs.size()),
        sim::Topology());
  }
  switch (algorithm) {
    case Algorithm::kNaive:
      NaiveAllReduce<T>(op, bufs, n);
      return;
    case Algorithm::kRing:
      RingAllReduce<T>(op, bufs, n, /*chunks_per_rank=*/1);
      return;
    case Algorithm::kTree:
      TreeAllReduce<T>(op, bufs, n);
      return;
    case Algorithm::kRingChunked:
      RingAllReduce<T>(op, bufs, n, sim::kRingChunksPerRank);
      return;
    case Algorithm::kHalvingDoubling:
      HalvingDoublingAllReduce<T>(op, bufs, n);
      return;
    case Algorithm::kHierarchical:
      HierarchicalAllReduce<T>(op, bufs, n, ranks_per_node);
      return;
    case Algorithm::kAuto:
      break;  // resolved above
  }
  DDPKIT_CHECK(false) << "bad algorithm";
}

/// Half-precision all-reduce: accumulate in float (as GPU tensor cores do)
/// in deterministic rank order, store back as half. Used by the gradient
/// compression extension (paper §6.2.3). The half<->float conversion loops
/// dominate, so all algorithm variants share this one rank-order path.
void Fp16AllReduce(ReduceOp op, const std::vector<Tensor>& tensors) {
  DDPKIT_CHECK(op == ReduceOp::kSum) << "fp16 all-reduce supports sum only";
  const int world = static_cast<int>(tensors.size());
  const int64_t n = tensors[0].numel();
  std::vector<float> acc(static_cast<size_t>(n));
  std::vector<const uint16_t*> srcs;
  for (int r = 0; r < world; ++r) srcs.push_back(tensors[r].data<uint16_t>());
  // Per-element fp32 accumulation in ascending rank order, then the half
  // stores; both conversion loops are element-parallel.
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      float v = 0.0f;
      // ddplint: allow(raw-elementwise-loop) half bits convert through
      // fp32 per element; no packed fp16 arithmetic in the vec layer
      for (const uint16_t* src : srcs) v += HalfBitsToFloat32(src[i]);
      acc[i] = v;
    }
  });
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      uint16_t* dst = const_cast<Tensor&>(tensors[r]).data<uint16_t>();
      // ddplint: allow(raw-elementwise-loop) half bits convert through
      // fp32 per element; no packed fp16 arithmetic in the vec layer
      for (int64_t i = b; i < e; ++i) dst[i] = Float32ToHalfBits(acc[i]);
    }
  });
}

template <typename T>
std::vector<T*> GatherPointers(const std::vector<Tensor>& tensors) {
  std::vector<T*> bufs;
  bufs.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    bufs.push_back(const_cast<Tensor&>(t).data<T>());
  }
  return bufs;
}

}  // namespace

template <typename T>
void RunAllReduceRaw(Algorithm algorithm, ReduceOp op,
                     const std::vector<T*>& bufs, int64_t n,
                     int ranks_per_node) {
  DDPKIT_CHECK(!bufs.empty());
  DDPKIT_CHECK(n >= 0);
  if (bufs.size() == 1 || n == 0) return;
  DispatchAllReduceRaw<T>(algorithm, op, bufs, n, ranks_per_node);
}

template void RunAllReduceRaw<float>(Algorithm, ReduceOp,
                                     const std::vector<float*>&, int64_t,
                                     int);
template void RunAllReduceRaw<double>(Algorithm, ReduceOp,
                                      const std::vector<double*>&, int64_t,
                                      int);
template void RunAllReduceRaw<int64_t>(Algorithm, ReduceOp,
                                       const std::vector<int64_t*>&, int64_t,
                                       int);
template void RunAllReduceRaw<uint8_t>(Algorithm, ReduceOp,
                                       const std::vector<uint8_t*>&, int64_t,
                                       int);

void RunAllReduce(Algorithm algorithm, ReduceOp op,
                  const std::vector<Tensor>& tensors, int ranks_per_node) {
  DDPKIT_CHECK(!tensors.empty());
  const int64_t n = tensors[0].numel();
  const DType dtype = tensors[0].dtype();
  for (const Tensor& t : tensors) {
    DDPKIT_CHECK(t.is_contiguous());
    DDPKIT_CHECK_EQ(t.numel(), n);
    DDPKIT_CHECK(t.dtype() == dtype);
  }
  if (tensors.size() == 1 || n == 0) return;
  switch (dtype) {
    case DType::kFloat32:
      DispatchAllReduceRaw<float>(algorithm, op, GatherPointers<float>(tensors),
                                  n, ranks_per_node);
      return;
    case DType::kUInt8:
      DispatchAllReduceRaw<uint8_t>(
          algorithm, op, GatherPointers<uint8_t>(tensors), n, ranks_per_node);
      return;
    case DType::kInt64:
      DispatchAllReduceRaw<int64_t>(
          algorithm, op, GatherPointers<int64_t>(tensors), n, ranks_per_node);
      return;
    case DType::kFloat16:
      Fp16AllReduce(op, tensors);
      return;
    default:
      DDPKIT_CHECK(false) << "AllReduce unsupported dtype "
                          << DTypeName(dtype);
  }
}

void RunBroadcast(const std::vector<Tensor>& tensors, int root) {
  DDPKIT_CHECK(!tensors.empty());
  DDPKIT_CHECK(root >= 0 && root < static_cast<int>(tensors.size()));
  const Tensor& src = tensors[static_cast<size_t>(root)];
  for (size_t r = 0; r < tensors.size(); ++r) {
    if (static_cast<int>(r) == root) continue;
    const_cast<Tensor&>(tensors[r]).CopyFrom(src);
  }
}

namespace {

template <typename T>
void ReduceInto(ReduceOp op, const std::vector<Tensor>& tensors,
                Tensor* dest) {
  const int64_t n = dest->numel();
  T* acc = dest->data<T>();
  std::vector<const T*> srcs;
  for (const Tensor& t : tensors) {
    if (t.id() == dest->id()) continue;
    srcs.push_back(t.data<T>());
  }
  ParallelFor(0, n, GrainFromCost(static_cast<int64_t>(srcs.size()) + 1),
              [&](int64_t b, int64_t e) {
    for (const T* src : srcs) CombineSpan(op, acc + b, src + b, e - b);
  });
}

}  // namespace

void RunReduce(Algorithm /*algorithm*/, ReduceOp op,
               const std::vector<Tensor>& tensors, int root) {
  DDPKIT_CHECK(!tensors.empty());
  DDPKIT_CHECK(root >= 0 && root < static_cast<int>(tensors.size()));
  Tensor dest = tensors[static_cast<size_t>(root)];
  for (const Tensor& t : tensors) {
    DDPKIT_CHECK(t.is_contiguous());
    DDPKIT_CHECK_EQ(t.numel(), dest.numel());
    DDPKIT_CHECK(t.dtype() == dest.dtype());
  }
  switch (dest.dtype()) {
    case DType::kFloat32:
      ReduceInto<float>(op, tensors, &dest);
      return;
    case DType::kUInt8:
      ReduceInto<uint8_t>(op, tensors, &dest);
      return;
    case DType::kInt64:
      ReduceInto<int64_t>(op, tensors, &dest);
      return;
    default:
      DDPKIT_CHECK(false) << "Reduce unsupported dtype "
                          << DTypeName(dest.dtype());
  }
}

void RunReduceScatter(ReduceOp op, const std::vector<Tensor>& inputs,
                      const std::vector<Tensor>& outputs) {
  DDPKIT_CHECK(!inputs.empty());
  DDPKIT_CHECK_EQ(inputs.size(), outputs.size());
  const int world = static_cast<int>(inputs.size());
  const int64_t chunk = outputs[0].numel();
  for (int r = 0; r < world; ++r) {
    DDPKIT_CHECK_EQ(inputs[static_cast<size_t>(r)].numel(), chunk * world);
    DDPKIT_CHECK_EQ(outputs[static_cast<size_t>(r)].numel(), chunk);
    DDPKIT_CHECK(inputs[static_cast<size_t>(r)].dtype() == DType::kFloat32)
        << "ReduceScatter supports float32";
  }
  // Chunk c reduced in ring order starting at rank (c+1) % world, matching
  // RingAllReduce's combine order; elements within a chunk are
  // thread-partitioned without reordering any element's summation.
  for (int c = 0; c < world; ++c) {
    Tensor out = outputs[static_cast<size_t>(c)];
    float* acc = out.data<float>();
    const int first = (c + 1) % world;
    const float* src0 =
        inputs[static_cast<size_t>(first)].data<float>() + c * chunk;
    ParallelFor(0, chunk, GrainFromCost(world), [&](int64_t b, int64_t e) {
      CopySpan(acc + b, src0 + b, e - b);
      for (int s = 2; s <= world; ++s) {
        const float* src =
            inputs[static_cast<size_t>((c + s) % world)].data<float>() +
            c * chunk;
        CombineSpan(op, acc + b, src + b, e - b);
      }
    });
  }
}

void RunGather(const std::vector<Tensor>& inputs, Tensor output_root,
               int root) {
  DDPKIT_CHECK(!inputs.empty());
  DDPKIT_CHECK(root >= 0 && root < static_cast<int>(inputs.size()));
  const int world = static_cast<int>(inputs.size());
  const int64_t n = inputs[0].numel();
  DDPKIT_CHECK_EQ(output_root.numel(), n * world);
  for (int r = 0; r < world; ++r) {
    output_root.Narrow(0, r * n, n)
        .CopyFrom(inputs[static_cast<size_t>(r)].Flatten());
  }
}

void RunAllGather(const std::vector<Tensor>& inputs,
                  const std::vector<Tensor>& outputs) {
  DDPKIT_CHECK(!inputs.empty());
  DDPKIT_CHECK_EQ(inputs.size(), outputs.size());
  const int world = static_cast<int>(inputs.size());
  const int64_t n = inputs[0].numel();
  for (const Tensor& out : outputs) {
    DDPKIT_CHECK_EQ(out.numel(), n * world);
  }
  for (int q = 0; q < world; ++q) {
    Tensor out = outputs[static_cast<size_t>(q)];
    for (int r = 0; r < world; ++r) {
      out.Narrow(0, r * n, n)
          .CopyFrom(inputs[static_cast<size_t>(r)].Flatten());
    }
  }
}

}  // namespace ddpkit::comm
