#include "comm/algorithms.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/parallel.h"

// ddplint: allow-file(check-in-comm) data-plane internal invariants: every
// Run* entry is reached only after ProcessGroupSim's Contribute validated
// cross-rank collective signatures and converted mismatches into typed
// kShapeMismatch failures, so these checks guard unreachable-by-contract
// states (memory-safety bounds), not recoverable runtime conditions.

namespace ddpkit::comm {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNaive:
      return "naive";
    case Algorithm::kRing:
      return "ring";
    case Algorithm::kTree:
      return "tree";
  }
  return "?";
}

namespace {

template <typename T>
T Combine(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMax:
      return a > b ? a : b;
    case ReduceOp::kBor:
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(a | b);
      } else {
        // Logical-or semantics for float bitmaps.
        return (a != 0 || b != 0) ? T{1} : T{0};
      }
  }
  return a;
}

/// Naive: combine contributions in rank order into rank 0's buffer, then
/// copy everywhere (gather + local reduce + broadcast). Parallelized over
/// elements; each element still accumulates ranks in ascending order, so
/// the sum is bit-exact regardless of thread count.
template <typename T>
void NaiveAllReduce(ReduceOp op, const std::vector<Tensor>& tensors) {
  const int world = static_cast<int>(tensors.size());
  const int64_t n = tensors[0].numel();
  T* acc = const_cast<Tensor&>(tensors[0]).data<T>();
  std::vector<const T*> srcs;
  for (int r = 1; r < world; ++r) srcs.push_back(tensors[r].data<T>());
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      T v = acc[i];
      for (const T* src : srcs) v = Combine(op, v, src[i]);
      acc[i] = v;
    }
  });
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 1; r < world; ++r) {
      std::memcpy(const_cast<Tensor&>(tensors[r]).data<T>() + b, acc + b,
                  static_cast<size_t>(e - b) * sizeof(T));
    }
  });
}

/// Ring: split the array into `world` chunks. Chunk c is reduced by walking
/// the ring starting at rank (c+1) % world and accumulating until it
/// returns to its owner — exactly the combine order of a reduce-scatter —
/// then all-gathered to every rank. The chunked pattern keeps summation
/// order independent of which thread executes it.
template <typename T>
void RingAllReduce(ReduceOp op, const std::vector<Tensor>& tensors) {
  const int world = static_cast<int>(tensors.size());
  const int64_t n = tensors[0].numel();
  const int64_t base = n / world;
  const int64_t rem = n % world;
  auto chunk_begin = [&](int c) {
    return base * c + std::min<int64_t>(c, rem);
  };
  auto chunk_size = [&](int c) { return base + (c < rem ? 1 : 0); };

  std::vector<T> reduced(static_cast<size_t>(n));
  for (int c = 0; c < world; ++c) {
    const int64_t begin = chunk_begin(c);
    const int64_t len = chunk_size(c);
    if (len == 0) continue;
    // Start from the ring successor of the chunk owner. Elements within the
    // chunk are split across threads; each element is combined in the same
    // ring order as the serial loop, so the result is bit-exact.
    const int first = (c + 1) % world;
    const T* src0 = tensors[first].data<T>() + begin;
    T* dst = reduced.data() + begin;
    ParallelFor(0, len, GrainFromCost(world), [&](int64_t b, int64_t e) {
      std::memcpy(dst + b, src0 + b, static_cast<size_t>(e - b) * sizeof(T));
      for (int s = 2; s <= world; ++s) {
        const T* src = tensors[(c + s) % world].data<T>() + begin;
        for (int64_t i = b; i < e; ++i) dst[i] = Combine(op, dst[i], src[i]);
      }
    });
  }
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      std::memcpy(const_cast<Tensor&>(tensors[r]).data<T>() + b,
                  reduced.data() + b, static_cast<size_t>(e - b) * sizeof(T));
    }
  });
}

/// Tree: recursive-doubling reduction to rank 0 followed by a broadcast
/// (NCCL 2.4's tree mode, cited by the paper [22]).
template <typename T>
void TreeAllReduce(ReduceOp op, const std::vector<Tensor>& tensors) {
  const int world = static_cast<int>(tensors.size());
  const int64_t n = tensors[0].numel();
  std::vector<std::vector<T>> acc(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) acc[r].resize(static_cast<size_t>(n));
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      std::memcpy(acc[r].data() + b, tensors[r].data<T>() + b,
                  static_cast<size_t>(e - b) * sizeof(T));
    }
  });
  // Rounds stay sequential (each halving depends on the previous); within a
  // round the (dst, src) pairs write disjoint buffers and each element keeps
  // the recursive-doubling combine order.
  for (int span = 1; span < world; span *= 2) {
    std::vector<std::pair<T*, const T*>> pairs;
    for (int r = 0; r + span < world; r += 2 * span) {
      pairs.emplace_back(acc[r].data(), acc[r + span].data());
    }
    if (pairs.empty()) continue;
    ParallelFor(0, n, GrainFromCost(static_cast<int64_t>(pairs.size())),
                [&](int64_t b, int64_t e) {
      for (auto& [dst, src] : pairs) {
        for (int64_t i = b; i < e; ++i) dst[i] = Combine(op, dst[i], src[i]);
      }
    });
  }
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      std::memcpy(const_cast<Tensor&>(tensors[r]).data<T>() + b,
                  acc[0].data() + b, static_cast<size_t>(e - b) * sizeof(T));
    }
  });
}

/// Half-precision all-reduce: accumulate in float (as GPU tensor cores do)
/// in deterministic rank order, store back as half. Used by the gradient
/// compression extension (paper §6.2.3).
void Fp16AllReduce(ReduceOp op, const std::vector<Tensor>& tensors) {
  DDPKIT_CHECK(op == ReduceOp::kSum) << "fp16 all-reduce supports sum only";
  const int world = static_cast<int>(tensors.size());
  const int64_t n = tensors[0].numel();
  std::vector<float> acc(static_cast<size_t>(n));
  std::vector<const uint16_t*> srcs;
  for (int r = 0; r < world; ++r) srcs.push_back(tensors[r].data<uint16_t>());
  // Per-element fp32 accumulation in ascending rank order, then the half
  // stores; both conversion loops are element-parallel.
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      float v = 0.0f;
      for (const uint16_t* src : srcs) v += HalfBitsToFloat32(src[i]);
      acc[i] = v;
    }
  });
  ParallelFor(0, n, GrainFromCost(world), [&](int64_t b, int64_t e) {
    for (int r = 0; r < world; ++r) {
      uint16_t* dst = const_cast<Tensor&>(tensors[r]).data<uint16_t>();
      for (int64_t i = b; i < e; ++i) dst[i] = Float32ToHalfBits(acc[i]);
    }
  });
}

template <typename T>
void DispatchAllReduce(Algorithm algorithm, ReduceOp op,
                       const std::vector<Tensor>& tensors) {
  switch (algorithm) {
    case Algorithm::kNaive:
      NaiveAllReduce<T>(op, tensors);
      return;
    case Algorithm::kRing:
      RingAllReduce<T>(op, tensors);
      return;
    case Algorithm::kTree:
      TreeAllReduce<T>(op, tensors);
      return;
  }
  DDPKIT_CHECK(false) << "bad algorithm";
}

}  // namespace

void RunAllReduce(Algorithm algorithm, ReduceOp op,
                  const std::vector<Tensor>& tensors) {
  DDPKIT_CHECK(!tensors.empty());
  const int64_t n = tensors[0].numel();
  const DType dtype = tensors[0].dtype();
  for (const Tensor& t : tensors) {
    DDPKIT_CHECK(t.is_contiguous());
    DDPKIT_CHECK_EQ(t.numel(), n);
    DDPKIT_CHECK(t.dtype() == dtype);
  }
  if (tensors.size() == 1 || n == 0) return;
  switch (dtype) {
    case DType::kFloat32:
      DispatchAllReduce<float>(algorithm, op, tensors);
      return;
    case DType::kUInt8:
      DispatchAllReduce<uint8_t>(algorithm, op, tensors);
      return;
    case DType::kInt64:
      DispatchAllReduce<int64_t>(algorithm, op, tensors);
      return;
    case DType::kFloat16:
      Fp16AllReduce(op, tensors);
      return;
    default:
      DDPKIT_CHECK(false) << "AllReduce unsupported dtype "
                          << DTypeName(dtype);
  }
}

void RunBroadcast(const std::vector<Tensor>& tensors, int root) {
  DDPKIT_CHECK(!tensors.empty());
  DDPKIT_CHECK(root >= 0 && root < static_cast<int>(tensors.size()));
  const Tensor& src = tensors[static_cast<size_t>(root)];
  for (size_t r = 0; r < tensors.size(); ++r) {
    if (static_cast<int>(r) == root) continue;
    const_cast<Tensor&>(tensors[r]).CopyFrom(src);
  }
}

namespace {

template <typename T>
void ReduceInto(ReduceOp op, const std::vector<Tensor>& tensors,
                Tensor* dest) {
  const int64_t n = dest->numel();
  T* acc = dest->data<T>();
  std::vector<const T*> srcs;
  for (const Tensor& t : tensors) {
    if (t.id() == dest->id()) continue;
    srcs.push_back(t.data<T>());
  }
  ParallelFor(0, n, GrainFromCost(static_cast<int64_t>(srcs.size()) + 1),
              [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      T v = acc[i];
      for (const T* src : srcs) v = Combine(op, v, src[i]);
      acc[i] = v;
    }
  });
}

}  // namespace

void RunReduce(Algorithm /*algorithm*/, ReduceOp op,
               const std::vector<Tensor>& tensors, int root) {
  DDPKIT_CHECK(!tensors.empty());
  DDPKIT_CHECK(root >= 0 && root < static_cast<int>(tensors.size()));
  Tensor dest = tensors[static_cast<size_t>(root)];
  for (const Tensor& t : tensors) {
    DDPKIT_CHECK(t.is_contiguous());
    DDPKIT_CHECK_EQ(t.numel(), dest.numel());
    DDPKIT_CHECK(t.dtype() == dest.dtype());
  }
  switch (dest.dtype()) {
    case DType::kFloat32:
      ReduceInto<float>(op, tensors, &dest);
      return;
    case DType::kUInt8:
      ReduceInto<uint8_t>(op, tensors, &dest);
      return;
    case DType::kInt64:
      ReduceInto<int64_t>(op, tensors, &dest);
      return;
    default:
      DDPKIT_CHECK(false) << "Reduce unsupported dtype "
                          << DTypeName(dest.dtype());
  }
}

void RunReduceScatter(ReduceOp op, const std::vector<Tensor>& inputs,
                      const std::vector<Tensor>& outputs) {
  DDPKIT_CHECK(!inputs.empty());
  DDPKIT_CHECK_EQ(inputs.size(), outputs.size());
  const int world = static_cast<int>(inputs.size());
  const int64_t chunk = outputs[0].numel();
  for (int r = 0; r < world; ++r) {
    DDPKIT_CHECK_EQ(inputs[static_cast<size_t>(r)].numel(), chunk * world);
    DDPKIT_CHECK_EQ(outputs[static_cast<size_t>(r)].numel(), chunk);
    DDPKIT_CHECK(inputs[static_cast<size_t>(r)].dtype() == DType::kFloat32)
        << "ReduceScatter supports float32";
  }
  // Chunk c reduced in ring order starting at rank (c+1) % world, matching
  // RingAllReduce's combine order; elements within a chunk are
  // thread-partitioned without reordering any element's summation.
  for (int c = 0; c < world; ++c) {
    Tensor out = outputs[static_cast<size_t>(c)];
    float* acc = out.data<float>();
    const int first = (c + 1) % world;
    const float* src0 =
        inputs[static_cast<size_t>(first)].data<float>() + c * chunk;
    ParallelFor(0, chunk, GrainFromCost(world), [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) acc[i] = src0[i];
      for (int s = 2; s <= world; ++s) {
        const float* src =
            inputs[static_cast<size_t>((c + s) % world)].data<float>() +
            c * chunk;
        for (int64_t i = b; i < e; ++i) acc[i] = Combine(op, acc[i], src[i]);
      }
    });
  }
}

void RunGather(const std::vector<Tensor>& inputs, Tensor output_root,
               int root) {
  DDPKIT_CHECK(!inputs.empty());
  DDPKIT_CHECK(root >= 0 && root < static_cast<int>(inputs.size()));
  const int world = static_cast<int>(inputs.size());
  const int64_t n = inputs[0].numel();
  DDPKIT_CHECK_EQ(output_root.numel(), n * world);
  for (int r = 0; r < world; ++r) {
    output_root.Narrow(0, r * n, n)
        .CopyFrom(inputs[static_cast<size_t>(r)].Flatten());
  }
}

void RunAllGather(const std::vector<Tensor>& inputs,
                  const std::vector<Tensor>& outputs) {
  DDPKIT_CHECK(!inputs.empty());
  DDPKIT_CHECK_EQ(inputs.size(), outputs.size());
  const int world = static_cast<int>(inputs.size());
  const int64_t n = inputs[0].numel();
  for (const Tensor& out : outputs) {
    DDPKIT_CHECK_EQ(out.numel(), n * world);
  }
  for (int q = 0; q < world; ++q) {
    Tensor out = outputs[static_cast<size_t>(q)];
    for (int r = 0; r < world; ++r) {
      out.Narrow(0, r * n, n)
          .CopyFrom(inputs[static_cast<size_t>(r)].Flatten());
    }
  }
}

}  // namespace ddpkit::comm
