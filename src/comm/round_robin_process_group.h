#ifndef DDPKIT_COMM_ROUND_ROBIN_PROCESS_GROUP_H_
#define DDPKIT_COMM_ROUND_ROBIN_PROCESS_GROUP_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "comm/process_group.h"
#include "common/status.h"

namespace ddpkit::comm {

/// Composite process group dispatching successive collectives to child
/// groups in round-robin order (paper §3.3 / §5.4). With k children, up to
/// k collectives proceed on independent comm queues — working around the
/// concurrency limits of a single NCCL stream or Gloo thread, at the cost
/// of splitting link bandwidth among the active children.
///
/// Every rank must construct its composite with the same child list order,
/// so dispatch decisions line up across ranks.
///
/// Failover: each dispatched Work is recorded against its child.
/// DrainAndFailover() settles every outstanding Work; children that
/// surfaced a failure are marked unhealthy and skipped by subsequent
/// dispatch, so a transient child-group fault degrades bandwidth instead
/// of killing the job. Health transitions are driven purely by observed
/// Work outcomes (deterministic under a shared FaultPlan), so every rank
/// reaches the same healthy set and rotation stays aligned.
class RoundRobinProcessGroup : public ProcessGroup {
 public:
  explicit RoundRobinProcessGroup(
      std::vector<std::shared_ptr<ProcessGroup>> groups);

  [[nodiscard]] WorkHandle AllReduce(Tensor tensor, ReduceOp op) override;
  [[nodiscard]] WorkHandle Broadcast(Tensor tensor, int root) override;
  [[nodiscard]] WorkHandle AllGather(const Tensor& input,
                                     Tensor output) override;
  [[nodiscard]] WorkHandle Reduce(Tensor tensor, int root,
                                  ReduceOp op) override;
  [[nodiscard]] WorkHandle ReduceScatter(const Tensor& input, Tensor output,
                                         ReduceOp op) override;
  [[nodiscard]] WorkHandle Gather(const Tensor& input, Tensor output,
                                  int root) override;
  void Barrier() override;

  sim::VirtualClock* clock() override { return children_[0].group->clock(); }
  Store* store() override { return children_[0].group->store(); }
  std::string backend_name() const override;

  /// Settles every outstanding Work recorded since the last drain, waiting
  /// with `timeout_seconds` (virtual) per work. Children that produced a
  /// failed or timed-out Work are marked unhealthy and excluded from
  /// future dispatch. Returns OK when everything drained clean, else the
  /// first error observed (dispatch continues on the survivors). Aborts
  /// only if every child failed — there is nothing left to fail over to.
  ///
  /// Generation alignment: kInvalidGeneration failures are generation
  /// retirements, not child faults — the child stays "healthy" (it fails
  /// fast and typed, it does not hang) and is never failed over. Instead,
  /// the highest superseding generation observed across the children is
  /// propagated to ALL of them before returning, so a failover mid-round
  /// can never leave some buckets dispatching at the old generation while
  /// others reject at the new one.
  [[nodiscard]] Status DrainAndFailover(double timeout_seconds = 30.0);

  size_t num_groups() const { return children_.size(); }
  size_t num_healthy_groups() const;

  /// Generation the composite was formed at (the children all match).
  uint64_t generation() const override {
    return children_[0].group->generation();
  }

  /// Highest superseding generation across the children (0 = all live).
  /// Non-zero with some children still live is the transient mid-round
  /// state DrainAndFailover repairs.
  uint64_t superseded_by() const override;

  /// Retires every child uniformly (see ProcessGroup::AbortGroup).
  void AbortGroup(uint64_t new_generation, const std::string& reason) override;

 private:
  struct Child {
    std::shared_ptr<ProcessGroup> group;
    bool healthy = true;
    /// Works dispatched to this child and not yet drained. Pruned of
    /// successfully-completed entries on every dispatch, so it stays
    /// bounded by the collectives genuinely in flight.
    std::vector<WorkHandle> inflight;
  };

  /// Next healthy child in rotation; records `work` bookkeeping via Track.
  ProcessGroup* Next();
  [[nodiscard]] WorkHandle Track(WorkHandle work);

  std::vector<Child> children_;
  size_t next_ = 0;
  size_t last_dispatched_ = 0;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_ROUND_ROBIN_PROCESS_GROUP_H_
