#ifndef DDPKIT_COMM_ROUND_ROBIN_PROCESS_GROUP_H_
#define DDPKIT_COMM_ROUND_ROBIN_PROCESS_GROUP_H_

#include <memory>
#include <string>
#include <vector>

#include "comm/process_group.h"

namespace ddpkit::comm {

/// Composite process group dispatching successive collectives to child
/// groups in round-robin order (paper §3.3 / §5.4). With k children, up to
/// k collectives proceed on independent comm queues — working around the
/// concurrency limits of a single NCCL stream or Gloo thread, at the cost
/// of splitting link bandwidth among the active children.
///
/// Every rank must construct its composite with the same child list order,
/// so dispatch decisions line up across ranks.
class RoundRobinProcessGroup : public ProcessGroup {
 public:
  explicit RoundRobinProcessGroup(
      std::vector<std::shared_ptr<ProcessGroup>> groups);

  WorkHandle AllReduce(Tensor tensor, ReduceOp op) override;
  WorkHandle Broadcast(Tensor tensor, int root) override;
  WorkHandle AllGather(const Tensor& input, Tensor output) override;
  WorkHandle Reduce(Tensor tensor, int root, ReduceOp op) override;
  WorkHandle ReduceScatter(const Tensor& input, Tensor output,
                           ReduceOp op) override;
  WorkHandle Gather(const Tensor& input, Tensor output, int root) override;
  void Barrier() override;

  sim::VirtualClock* clock() override { return groups_[0]->clock(); }
  std::string backend_name() const override;

  size_t num_groups() const { return groups_.size(); }

 private:
  ProcessGroup* Next();

  std::vector<std::shared_ptr<ProcessGroup>> groups_;
  size_t next_ = 0;
};

}  // namespace ddpkit::comm

#endif  // DDPKIT_COMM_ROUND_ROBIN_PROCESS_GROUP_H_
