#include "comm/process_group_sim.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "comm/store_keys.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ddpkit::comm {

namespace internal {

enum class OpKind {
  kAllReduce,
  kBroadcast,
  kAllGather,
  kReduce,
  kReduceScatter,
  kGather,
  kBarrier,
};

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAllReduce:
      return "all_reduce";
    case OpKind::kBroadcast:
      return "broadcast";
    case OpKind::kAllGather:
      return "all_gather";
    case OpKind::kReduce:
      return "reduce";
    case OpKind::kReduceScatter:
      return "reduce_scatter";
    case OpKind::kGather:
      return "gather";
    case OpKind::kBarrier:
      return "barrier";
  }
  return "unknown";
}

/// One in-flight collective, matched across ranks by per-rank sequence
/// number (all ranks must issue collectives in the same order — §3.3).
struct CollectiveInstance {
  OpKind kind;
  ReduceOp op = ReduceOp::kSum;
  int root = 0;
  int64_t numel = 0;
  DType dtype = DType::kFloat32;

  std::vector<Tensor> tensors;       // per-rank contributions (in-place)
  std::vector<Tensor> gather_inputs;
  std::vector<Tensor> gather_outputs;
  std::vector<double> arrivals;
  int arrived = 0;
  WorkHandle work = std::make_shared<Work>();
};

/// State shared by all rank handles of one logical process group.
struct GroupState {
  explicit GroupState(int world_size)
      : world(world_size), ctor_barrier(static_cast<size_t>(world_size)) {}

  const int world;
  ddpkit::Barrier ctor_barrier;

  /// Protects the in-flight collective table and the comm-queue tail — the
  /// state rank threads race on during Contribute.
  Mutex mutex;
  std::unordered_map<uint64_t, std::shared_ptr<CollectiveInstance>> inflight
      GUARDED_BY(mutex);
  /// Virtual time at which the group's serialized comm queue frees up.
  double queue_tail GUARDED_BY(mutex) = 0.0;
  /// Elastic recovery: non-zero once AbortGroup retired this group in
  /// favour of a newer generation. Checked at the top of every Contribute
  /// so stragglers fail fast with kInvalidGeneration.
  uint64_t superseded_by GUARDED_BY(mutex) = 0;
  std::string abort_reason GUARDED_BY(mutex);

  // The configuration below is written only by the first-arriving rank
  // (under `mutex`, inside Create) and becomes immutable once every rank
  // passes ctor_barrier — the barrier's release/acquire pair publishes it,
  // so post-rendezvous readers (collective lambdas, Contribute) take no
  // lock. Deliberately not GUARDED_BY.
  std::unique_ptr<sim::CommCostModel> cost_model;
  Algorithm algorithm = Algorithm::kRing;
  int concurrent_groups = 1;
  /// Shared deterministic fault schedule (null = fault-free) and the
  /// virtual-time watchdog applied when scheduled faults leave a
  /// collective short of participants.
  std::shared_ptr<const FaultPlan> fault_plan;
  double collective_timeout = 30.0;
  /// Generation the group was formed at (0 = normal startup).
  uint64_t generation = 0;
  /// Optional pg.* metrics sink (first non-null registry offered at Create
  /// wins; typically one registry shared by every rank).
  std::shared_ptr<MetricsRegistry> metrics;
};

namespace {

/// Process-wide registry standing in for network transport setup: all
/// "processes" are threads in one address space, so rank handles find their
/// shared GroupState here after the Store-based membership rendezvous.
class GroupRegistry {
 public:
  static GroupRegistry& Instance() {
    static GroupRegistry* instance = new GroupRegistry;
    return *instance;
  }

  std::shared_ptr<GroupState> GetOrCreate(const std::string& name,
                                          int world) {
    MutexLock lock(&mutex_);
    auto it = groups_.find(name);
    if (it != groups_.end()) {
      if (auto existing = it->second.lock()) {
        // ddplint: allow(check-in-comm) rendezvous misconfiguration at group
        // setup, caught before any collective is in flight.
        DDPKIT_CHECK_EQ(existing->world, world)
            << "group '" << name << "' world-size mismatch";
        return existing;
      }
      groups_.erase(it);  // group fully torn down; drop the dead entry
    }
    auto state = std::make_shared<GroupState>(world);
    groups_[name] = state;
    return state;
  }

 private:
  Mutex mutex_;
  std::unordered_map<std::string, std::weak_ptr<GroupState>> groups_
      GUARDED_BY(mutex_);
};

}  // namespace
}  // namespace internal

using internal::CollectiveInstance;
using internal::GroupState;
using internal::OpKind;
using internal::OpKindName;

std::shared_ptr<ProcessGroupSim> ProcessGroupSim::Create(
    Store* store, const std::string& name, int rank, int world,
    const Options& options, sim::VirtualClock* clock) {
  // ddplint: allow(check-in-comm) rendezvous preconditions at group setup;
  // no collective is in flight yet, so aborting cannot strand a peer.
  DDPKIT_CHECK(store != nullptr);
  // ddplint: allow(check-in-comm) rendezvous precondition (see above).
  DDPKIT_CHECK(clock != nullptr);
  // ddplint: allow(check-in-comm) rendezvous precondition (see above).
  DDPKIT_CHECK(rank >= 0 && rank < world);

  // Membership rendezvous through the store (the TCPStore role).
  store->Add(store_keys::PgJoinedCounter(name), 1);

  auto state = internal::GroupRegistry::Instance().GetOrCreate(name, world);

  // First arrival configures the shared cost model; everyone then blocks
  // until the last instance joins (paper §3.3 rendezvous semantics).
  {
    MutexLock lock(&state->mutex);
    if (!state->cost_model) {
      switch (options.flavor) {
        case sim::Backend::kNccl:
          state->cost_model = std::make_unique<sim::NcclCostModel>(
              options.topology, options.nccl_options.value_or(
                                    sim::NcclCostModel::Options()));
          break;
        case sim::Backend::kGloo:
          state->cost_model = std::make_unique<sim::GlooCostModel>(
              options.topology, options.gloo_options.value_or(
                                    sim::GlooCostModel::Options()));
          break;
        case sim::Backend::kMpi:
          state->cost_model =
              std::make_unique<sim::MpiCostModel>(options.topology);
          break;
      }
      state->algorithm = options.algorithm;
      state->concurrent_groups = options.concurrent_groups;
      state->fault_plan = options.fault_plan;
      state->collective_timeout = options.collective_timeout_seconds;
      state->generation = options.generation;
    }
    if (!state->metrics && options.metrics) state->metrics = options.metrics;
  }
  state->ctor_barrier.ArriveAndWait();

  return std::shared_ptr<ProcessGroupSim>(new ProcessGroupSim(
      std::move(state), rank, world, options, clock, store));
}

ProcessGroupSim::ProcessGroupSim(std::shared_ptr<GroupState> state, int rank,
                                 int world, const Options& options,
                                 sim::VirtualClock* clock, Store* store)
    : ProcessGroup(rank, world),
      state_(std::move(state)),
      options_(options),
      clock_(clock),
      store_(store) {}

ProcessGroupSim::~ProcessGroupSim() = default;

const sim::CommCostModel& ProcessGroupSim::cost_model() const {
  return *state_->cost_model;
}

std::string ProcessGroupSim::backend_name() const {
  return sim::BackendName(options_.flavor);
}

uint64_t ProcessGroupSim::superseded_by() const {
  MutexLock lock(&state_->mutex);
  return state_->superseded_by;
}

void ProcessGroupSim::AbortGroup(uint64_t new_generation,
                                 const std::string& reason) {
  std::vector<std::shared_ptr<CollectiveInstance>> pending;
  {
    MutexLock lock(&state_->mutex);
    if (state_->superseded_by != 0) return;  // first abort's verdict stands
    state_->superseded_by = new_generation;
    state_->abort_reason = reason;
    pending.reserve(state_->inflight.size());
    for (auto& [seq, inst] : state_->inflight) pending.push_back(inst);
    state_->inflight.clear();
  }
  // Fail the partially-arrived collectives outside the lock (MarkFailed
  // takes Work::mutex_, strictly after GroupState::mutex in the hierarchy,
  // but there is no need to hold the group lock while notifying waiters).
  const double now = clock_->Now();
  for (auto& inst : pending) {
    inst->work->MarkFailed(
        WorkError::kInvalidGeneration,
        "group generation " + std::to_string(state_->generation) +
            " superseded by generation " + std::to_string(new_generation) +
            " (" + reason + ")",
        now);
  }
  if (state_->metrics != nullptr) {
    state_->metrics->counter("pg.group_aborts").Increment();
    if (!pending.empty()) {
      state_->metrics->counter("pg.collectives_failed")
          .Increment(pending.size());
    }
  }
}

namespace {

/// Pre-failed handle for a rank the fault plan keeps out of collective
/// `seq`: its own call must surface an error too, not hang.
WorkHandle AbsentRankWork(const FaultPlan& plan, GroupState* state,
                          uint64_t seq, int rank, OpKind kind,
                          sim::VirtualClock* clock) {
  auto work = std::make_shared<Work>();
  std::ostringstream msg;
  if (plan.IsCrashed(rank, seq)) {
    msg << OpKindName(kind) << " seq " << seq << ": rank " << rank
        << " crashed (fault plan, " << plan.AbsenceReason(rank, seq) << ")";
    work->MarkFailed(WorkError::kRankFailure, msg.str(), clock->Now());
  } else {
    msg << OpKindName(kind) << " seq " << seq << " timed out after "
        << state->collective_timeout << "s (virtual): rank " << rank
        << " " << plan.AbsenceReason(rank, seq);
    work->MarkFailed(WorkError::kTimeout, msg.str(),
                     clock->Now() + state->collective_timeout);
  }
  return work;
}

/// Pre-failed handle for a locally invalid collective call — the Status
/// path of PR 2's failure model, where the c10d analogue throws on the
/// calling rank before enqueueing anything. The call never joins the
/// group's sequence (no seq number is consumed), so a subsequent valid
/// collective on this rank pairs with peers as a signature mismatch rather
/// than silently corrupting the reduction.
WorkHandle InvalidArgumentWork(OpKind kind, int rank, const std::string& detail,
                               sim::VirtualClock* clock) {
  auto work = std::make_shared<Work>();
  std::ostringstream msg;
  msg << OpKindName(kind) << ": rank " << rank
      << " issued invalid collective arguments: " << detail;
  work->MarkFailed(WorkError::kShapeMismatch, msg.str(), clock->Now());
  return work;
}

/// Registers this rank's contribution under `seq`; the last live arrival
/// runs the data-plane operation, computes timing against the group's comm
/// queue, and completes the shared Work. Faults from the group's plan are
/// applied here: stalls delay this rank's arrival, absent peers turn the
/// collective into a typed timeout/rank-failure instead of a deadlock, and
/// cross-rank signature mismatches fail the work instead of aborting.
WorkHandle Contribute(
    GroupState* state, uint64_t seq, int rank, sim::VirtualClock* clock,
    OpKind kind, ReduceOp op, int root, int64_t numel, DType dtype,
    const Tensor* inplace, const Tensor* gather_in, const Tensor* gather_out,
    const std::function<double(const CollectiveInstance&, double start)>&
        duration_fn) {
  if (state->metrics != nullptr) {
    state->metrics->counter(std::string("pg.ops.") + OpKindName(kind))
        .Increment();
    state->metrics->counter("pg.bytes_contributed")
        .Increment(static_cast<uint64_t>(numel) *
                   static_cast<uint64_t>(ItemSize(dtype)));
  }
  const FaultPlan* plan = state->fault_plan.get();
  int live = state->world;
  if (plan != nullptr) {
    if (plan->IsAbsent(rank, seq)) {
      return AbsentRankWork(*plan, state, seq, rank, kind, clock);
    }
    // A stalled rank shows up late: its clock (and hence this collective's
    // start time) advances by the scheduled stall.
    clock->Advance(plan->StallSeconds(rank, seq));
    live -= static_cast<int>(plan->AbsentRanks(seq, state->world).size());
  }
  const double arrival_clock = clock->Now();

  std::shared_ptr<CollectiveInstance> inst;
  bool last = false;
  {
    MutexLock lock(&state->mutex);
    // Generation gate, checked in the same critical section that registers
    // contributions so an AbortGroup can never interleave between the check
    // and the registration: a retired group rejects every collective
    // outright. A straggler that missed a recovery rendezvous gets a typed
    // fast failure here instead of registering a contribution its peers
    // will never match.
    if (state->superseded_by != 0) {
      auto work = std::make_shared<Work>();
      std::ostringstream msg;
      msg << OpKindName(kind) << " seq " << seq << ": rank " << rank
          << " issued a collective on group generation " << state->generation
          << ", which was superseded by generation " << state->superseded_by
          << " (" << state->abort_reason << ")";
      work->MarkFailed(WorkError::kInvalidGeneration, msg.str(),
                       arrival_clock);
      if (state->metrics != nullptr) {
        state->metrics->counter("pg.collectives_failed").Increment();
      }
      return work;
    }
    auto it = state->inflight.find(seq);
    if (it == state->inflight.end()) {
      inst = std::make_shared<CollectiveInstance>();
      inst->kind = kind;
      inst->op = op;
      inst->root = root;
      inst->numel = numel;
      inst->dtype = dtype;
      inst->tensors.resize(static_cast<size_t>(state->world));
      inst->gather_inputs.resize(static_cast<size_t>(state->world));
      inst->gather_outputs.resize(static_cast<size_t>(state->world));
      inst->arrivals.assign(static_cast<size_t>(state->world), 0.0);
      state->inflight.emplace(seq, inst);
    } else {
      inst = it->second;
      // The paper's "incorrect reduction result or program crash" case:
      // collectives must line up in kind, size and dtype across ranks.
      // Surface the desync as a typed failure instead of aborting, so DDP
      // can report which rank diverged.
      if (inst->kind != kind || inst->op != op || inst->root != root ||
          inst->numel != numel || inst->dtype != dtype) {
        std::ostringstream msg;
        msg << "collective signatures diverged at seq " << seq << ": rank "
            << rank << " issued " << OpKindName(kind) << " (numel " << numel
            << ", root " << root << ", op " << ReduceOpName(op)
            << ") but an earlier participant issued "
            << OpKindName(inst->kind) << " (numel " << inst->numel
            << ", root " << inst->root << ", op " << ReduceOpName(inst->op)
            << ")";
        inst->work->MarkFailed(WorkError::kShapeMismatch, msg.str(),
                               arrival_clock);
        if (state->metrics != nullptr) {
          state->metrics->counter("pg.collectives_failed").Increment();
        }
      }
    }
    if (inplace != nullptr) inst->tensors[static_cast<size_t>(rank)] = *inplace;
    if (gather_in != nullptr) {
      inst->gather_inputs[static_cast<size_t>(rank)] = *gather_in;
    }
    if (gather_out != nullptr) {
      inst->gather_outputs[static_cast<size_t>(rank)] = *gather_out;
    }
    inst->arrivals[static_cast<size_t>(rank)] = arrival_clock;
    last = (++inst->arrived == live);
    if (last) state->inflight.erase(seq);
  }

  if (last && !inst->work->Poll()) {
    if (live < state->world) {
      // Scheduled faults left the collective short of participants: the op
      // can never complete. Fail it `collective_timeout` virtual seconds
      // after the last live arrival, naming every missing rank — peers see
      // a typed error, never a deadlock.
      const double max_arrival =
          *std::max_element(inst->arrivals.begin(), inst->arrivals.end());
      const std::vector<int> absent = plan->AbsentRanks(seq, state->world);
      bool any_crashed = false;
      std::ostringstream msg;
      msg << OpKindName(kind) << " seq " << seq << " timed out after "
          << state->collective_timeout << "s (virtual) waiting for";
      for (int r : absent) {
        msg << " rank " << r << " (" << plan->AbsenceReason(r, seq) << ")";
        any_crashed = any_crashed || plan->IsCrashed(r, seq);
      }
      const double fail_time = max_arrival + state->collective_timeout;
      {
        MutexLock lock(&state->mutex);
        state->queue_tail = std::max(state->queue_tail, fail_time);
      }
      inst->work->MarkFailed(
          any_crashed ? WorkError::kRankFailure : WorkError::kTimeout,
          msg.str(), fail_time);
      if (state->metrics != nullptr) {
        state->metrics->counter("pg.collectives_failed").Increment();
      }
      return inst->work;
    }

    // Data plane (real reduction), executed once by the last arrival.
    switch (inst->kind) {
      case OpKind::kAllReduce: {
        // Resolve kAuto against this group's actual topology (message size
        // x world size x host layout), and tell the data plane where the
        // node boundaries are so kHierarchical reduces intra-host first.
        // The same resolution happens inside the cost model's 4-arg
        // AllReduceSeconds, so modeled time and data movement agree.
        const size_t bytes = static_cast<size_t>(inst->numel) *
                             static_cast<size_t>(ItemSize(inst->dtype));
        const sim::Topology& topo = state->cost_model->topology();
        const Algorithm algo = sim::ResolveAllReduceAlgorithm(
            state->algorithm, bytes, state->world, topo);
        if (state->metrics != nullptr) {
          state->metrics
              ->counter(std::string("pg.allreduce_algo.") +
                        AlgorithmName(algo))
              .Increment();
        }
        RunAllReduce(algo, inst->op, inst->tensors, topo.gpus_per_host());
        break;
      }
      case OpKind::kBroadcast:
        RunBroadcast(inst->tensors, inst->root);
        break;
      case OpKind::kAllGather:
        RunAllGather(inst->gather_inputs, inst->gather_outputs);
        break;
      case OpKind::kReduce:
        RunReduce(state->algorithm, inst->op, inst->tensors, inst->root);
        break;
      case OpKind::kReduceScatter:
        RunReduceScatter(inst->op, inst->gather_inputs,
                         inst->gather_outputs);
        break;
      case OpKind::kGather:
        RunGather(inst->gather_inputs,
                  inst->gather_outputs[static_cast<size_t>(inst->root)],
                  inst->root);
        break;
      case OpKind::kBarrier:
        break;
    }
    // Time plane: start when the last participant arrived AND the comm
    // queue is free; serialize the queue.
    double completion;
    double queue_delay = 0.0;
    double duration = 0.0;
    int slowest = 0;
    {
      MutexLock lock(&state->mutex);
      slowest = static_cast<int>(std::distance(
          inst->arrivals.begin(),
          std::max_element(inst->arrivals.begin(), inst->arrivals.end())));
      const double max_arrival = inst->arrivals[static_cast<size_t>(slowest)];
      const double start = std::max(max_arrival, state->queue_tail);
      queue_delay = start - max_arrival;
      completion = start + duration_fn(*inst, start);
      if (plan != nullptr) completion += plan->CompletionDelaySeconds(seq);
      duration = completion - start;
      state->queue_tail = completion;
    }
    if (state->metrics != nullptr) {
      // Recorded once per collective (by the last-arriving rank): how long
      // the op sat behind the serialized comm queue, and its modeled
      // on-the-wire duration.
      state->metrics->counter("pg.collectives_completed").Increment();
      state->metrics->histogram("pg.queue_delay_seconds").Record(queue_delay);
      state->metrics->histogram("pg.collective_seconds").Record(duration);
    }
    inst->work->MarkCompleted(
        completion, "slowest participant: rank " + std::to_string(slowest) +
                        " (arrived at t=" +
                        std::to_string(
                            inst->arrivals[static_cast<size_t>(slowest)]) +
                        ")");
  }
  return inst->work;
}

}  // namespace

WorkHandle ProcessGroupSim::AllReduce(Tensor tensor, ReduceOp op) {
  if (!tensor.defined() || !tensor.is_contiguous()) {
    return InvalidArgumentWork(OpKind::kAllReduce, rank(),
                               "tensor must be defined and contiguous",
                               clock_);
  }
  GroupState* state = state_.get();
  const size_t bytes = tensor.nbytes();
  const int w = world();
  const int groups = options_.concurrent_groups;
  return Contribute(
      state, next_seq_++, rank(), clock_, OpKind::kAllReduce, op,
      /*root=*/0, tensor.numel(), tensor.dtype(), &tensor, nullptr, nullptr,
      [state, bytes, w, groups](const CollectiveInstance&, double) {
        return state->cost_model->AllReduceSeconds(bytes, w, groups,
                                                   state->algorithm);
      });
}

WorkHandle ProcessGroupSim::Broadcast(Tensor tensor, int root) {
  if (!tensor.defined() || !tensor.is_contiguous()) {
    return InvalidArgumentWork(OpKind::kBroadcast, rank(),
                               "tensor must be defined and contiguous",
                               clock_);
  }
  if (root < 0 || root >= world()) {
    return InvalidArgumentWork(
        OpKind::kBroadcast, rank(),
        "root " + std::to_string(root) + " outside [0, world)", clock_);
  }
  GroupState* state = state_.get();
  const size_t bytes = tensor.nbytes();
  const int w = world();
  return Contribute(
      state, next_seq_++, rank(), clock_, OpKind::kBroadcast,
      ReduceOp::kSum, root, tensor.numel(), tensor.dtype(), &tensor, nullptr,
      nullptr, [state, bytes, w](const CollectiveInstance&, double) {
        return state->cost_model->BroadcastSeconds(bytes, w);
      });
}

WorkHandle ProcessGroupSim::AllGather(const Tensor& input, Tensor output) {
  if (!input.defined() || !input.is_contiguous() || !output.defined() ||
      !output.is_contiguous()) {
    return InvalidArgumentWork(
        OpKind::kAllGather, rank(),
        "input and output must be defined and contiguous", clock_);
  }
  if (output.numel() != input.numel() * world()) {
    return InvalidArgumentWork(
        OpKind::kAllGather, rank(),
        "output numel " + std::to_string(output.numel()) +
            " != input numel * world (" +
            std::to_string(input.numel() * world()) + ")",
        clock_);
  }
  GroupState* state = state_.get();
  const size_t bytes = input.nbytes();
  const int w = world();
  return Contribute(
      state, next_seq_++, rank(), clock_, OpKind::kAllGather,
      ReduceOp::kSum, /*root=*/0, input.numel(), input.dtype(), nullptr,
      &input, &output, [state, bytes, w](const CollectiveInstance&, double) {
        return state->cost_model->AllGatherSeconds(bytes, w);
      });
}

WorkHandle ProcessGroupSim::Reduce(Tensor tensor, int root, ReduceOp op) {
  if (!tensor.defined() || !tensor.is_contiguous()) {
    return InvalidArgumentWork(OpKind::kReduce, rank(),
                               "tensor must be defined and contiguous",
                               clock_);
  }
  if (root < 0 || root >= world()) {
    return InvalidArgumentWork(
        OpKind::kReduce, rank(),
        "root " + std::to_string(root) + " outside [0, world)", clock_);
  }
  GroupState* state = state_.get();
  const size_t bytes = tensor.nbytes();
  const int w = world();
  return Contribute(
      state, next_seq_++, rank(), clock_, OpKind::kReduce, op, root,
      tensor.numel(), tensor.dtype(), &tensor, nullptr, nullptr,
      [state, bytes, w](const CollectiveInstance&, double) {
        // A tree reduce mirrors a pipelined broadcast's cost profile.
        return state->cost_model->BroadcastSeconds(bytes, w);
      });
}

WorkHandle ProcessGroupSim::ReduceScatter(const Tensor& input, Tensor output,
                                          ReduceOp op) {
  if (!input.defined() || !input.is_contiguous() || !output.defined() ||
      !output.is_contiguous()) {
    return InvalidArgumentWork(
        OpKind::kReduceScatter, rank(),
        "input and output must be defined and contiguous", clock_);
  }
  if (input.numel() != output.numel() * world()) {
    return InvalidArgumentWork(
        OpKind::kReduceScatter, rank(),
        "input numel " + std::to_string(input.numel()) +
            " != output numel * world (" +
            std::to_string(output.numel() * world()) + ")",
        clock_);
  }
  GroupState* state = state_.get();
  const size_t bytes = input.nbytes();
  const int w = world();
  const int groups = options_.concurrent_groups;
  return Contribute(
      state, next_seq_++, rank(), clock_, OpKind::kReduceScatter, op,
      /*root=*/0, input.numel(), input.dtype(), nullptr, &input, &output,
      [state, bytes, w, groups](const CollectiveInstance&, double) {
        // Reduce-scatter is the first half of ring all-reduce: same step
        // count structure, half the traffic.
        return 0.5 * state->cost_model->AllReduceSeconds(bytes, w, groups);
      });
}

WorkHandle ProcessGroupSim::Gather(const Tensor& input, Tensor output,
                                   int root) {
  if (!input.defined() || !input.is_contiguous()) {
    return InvalidArgumentWork(OpKind::kGather, rank(),
                               "input must be defined and contiguous", clock_);
  }
  if (root < 0 || root >= world()) {
    return InvalidArgumentWork(
        OpKind::kGather, rank(),
        "root " + std::to_string(root) + " outside [0, world)", clock_);
  }
  if (rank() == root) {
    if (!output.defined()) {
      return InvalidArgumentWork(OpKind::kGather, rank(),
                                 "root output must be defined", clock_);
    }
    if (output.numel() != input.numel() * world()) {
      return InvalidArgumentWork(
          OpKind::kGather, rank(),
          "root output numel " + std::to_string(output.numel()) +
              " != input numel * world (" +
              std::to_string(input.numel() * world()) + ")",
          clock_);
    }
  }
  GroupState* state = state_.get();
  const size_t bytes = input.nbytes();
  const int w = world();
  const Tensor* out_ptr = rank() == root ? &output : nullptr;
  return Contribute(
      state, next_seq_++, rank(), clock_, OpKind::kGather,
      ReduceOp::kSum, root, input.numel(), input.dtype(), nullptr, &input,
      out_ptr, [state, bytes, w](const CollectiveInstance&, double) {
        // Root receives (w-1) payloads; same volume as all-gather's
        // per-rank traffic.
        return state->cost_model->AllGatherSeconds(bytes, w);
      });
}

void ProcessGroupSim::Barrier() {
  GroupState* state = state_.get();
  const int w = world();
  WorkHandle work = Contribute(
      state, next_seq_++, rank(), clock_, OpKind::kBarrier,
      ReduceOp::kSum, /*root=*/0, 0, DType::kFloat32, nullptr, nullptr,
      nullptr, [state, w](const CollectiveInstance&, double) {
        return state->cost_model->BarrierSeconds(w);
      });
  work->Wait(clock_);
}

}  // namespace ddpkit::comm
