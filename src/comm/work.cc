#include "comm/work.h"

#include "common/check.h"

namespace ddpkit::comm {

void Work::Wait(sim::VirtualClock* clock) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  if (clock != nullptr) clock->AdvanceTo(completion_time_);
}

bool Work::IsCompleted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

double Work::completion_time() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DDPKIT_CHECK(done_);
  return completion_time_;
}

void Work::MarkCompleted(double completion_time) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DDPKIT_CHECK(!done_);
    done_ = true;
    completion_time_ = completion_time;
  }
  cv_.notify_all();
}

}  // namespace ddpkit::comm
