#include "comm/work.h"

#include <utility>

#include "common/check.h"

namespace ddpkit::comm {

const char* WorkErrorName(WorkError error) {
  switch (error) {
    case WorkError::kNone:
      return "none";
    case WorkError::kTimeout:
      return "timeout";
    case WorkError::kRankFailure:
      return "rank_failure";
    case WorkError::kShapeMismatch:
      return "shape_mismatch";
    case WorkError::kInvalidGeneration:
      return "invalid_generation";
  }
  return "unknown";
}

void Work::Wait(sim::VirtualClock* clock) {
  MutexLock lock(&mutex_);
  while (!done_) cv_.Wait(mutex_);
  // ddplint: allow(check-in-comm) documented legacy API contract: callers
  // that can recover must use the Status-returning Wait(clock, timeout).
  DDPKIT_CHECK(error_ == WorkError::kNone)
      << "Work::Wait on failed collective (" << WorkErrorName(error_)
      << "): " << error_message_
      << " — use Wait(clock, timeout) to handle failures";
  if (clock != nullptr) clock->AdvanceTo(completion_time_);
}

Status Work::Wait(sim::VirtualClock* clock, double timeout_seconds) {
  const double entry = clock != nullptr ? clock->Now() : 0.0;
  MutexLock lock(&mutex_);
  while (!done_) cv_.Wait(mutex_);
  if (error_ != WorkError::kNone) {
    if (clock != nullptr) clock->AdvanceTo(completion_time_);
    return StatusLocked();
  }
  if (clock != nullptr && timeout_seconds > 0.0 &&
      completion_time_ - entry > timeout_seconds) {
    clock->AdvanceTo(entry + timeout_seconds);
    std::string msg = "collective did not complete within " +
                      std::to_string(timeout_seconds) +
                      "s (virtual); it finished at t=" +
                      std::to_string(completion_time_) +
                      ", this rank arrived at t=" + std::to_string(entry);
    if (!completion_note_.empty()) msg += "; " + completion_note_;
    return Status::TimedOut(std::move(msg));
  }
  if (clock != nullptr) clock->AdvanceTo(completion_time_);
  return Status::OK();
}

bool Work::Poll() const {
  MutexLock lock(&mutex_);
  return done_;
}

bool Work::IsCompleted() const {
  MutexLock lock(&mutex_);
  return done_ && error_ == WorkError::kNone;
}

WorkError Work::error() const {
  MutexLock lock(&mutex_);
  return error_;
}

std::string Work::error_message() const {
  MutexLock lock(&mutex_);
  return error_message_;
}

Status Work::StatusLocked() const {
  switch (error_) {
    case WorkError::kNone:
      return Status::OK();
    case WorkError::kTimeout:
      return Status::TimedOut(error_message_);
    case WorkError::kRankFailure:
      return Status::Internal(error_message_);
    case WorkError::kShapeMismatch:
      return Status::FailedPrecondition(error_message_);
    case WorkError::kInvalidGeneration:
      return Status::InvalidGeneration(error_message_);
  }
  return Status::Internal(error_message_);
}

Status Work::status() const {
  MutexLock lock(&mutex_);
  return StatusLocked();
}

double Work::completion_time() const {
  MutexLock lock(&mutex_);
  // ddplint: allow(check-in-comm) API precondition (caller must Poll()
  // first), not a runtime collective failure.
  DDPKIT_CHECK(done_);
  return completion_time_;
}

void Work::MarkCompleted(double completion_time, std::string note) {
  {
    MutexLock lock(&mutex_);
    if (done_) return;  // first terminal state wins (a watchdog's MarkFailed
                        // may race the last arrival's completion)
    done_ = true;
    completion_time_ = completion_time;
    completion_note_ = std::move(note);
  }
  cv_.NotifyAll();
}

void Work::MarkFailed(WorkError error, std::string message,
                      double failure_time) {
  // ddplint: allow(check-in-comm) API precondition on the error taxonomy
  // (kNone is not a failure), not a runtime collective failure.
  DDPKIT_CHECK(error != WorkError::kNone);
  {
    MutexLock lock(&mutex_);
    if (done_) return;  // first terminal state wins
    done_ = true;
    error_ = error;
    error_message_ = std::move(message);
    completion_time_ = failure_time;
  }
  cv_.NotifyAll();
}

}  // namespace ddpkit::comm
