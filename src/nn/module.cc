#include "nn/module.h"

#include "common/check.h"

namespace ddpkit::nn {

Tensor Module::RegisterParameter(std::string name, Tensor tensor) {
  DDPKIT_CHECK(tensor.defined());
  tensor.set_requires_grad(true);
  params_.emplace_back(std::move(name), tensor);
  return tensor;
}

Tensor Module::RegisterBuffer(std::string name, Tensor tensor) {
  DDPKIT_CHECK(tensor.defined());
  buffers_.emplace_back(std::move(name), tensor);
  return tensor;
}

void Module::AddModuleEntry(std::string name, std::shared_ptr<Module> m) {
  DDPKIT_CHECK(m != nullptr);
  children_.emplace_back(std::move(name), std::move(m));
}

void Module::CollectParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : params_) {
    out->emplace_back(prefix + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectParameters(prefix + name + ".", out);
  }
}

void Module::CollectBuffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : buffers_) {
    out->emplace_back(prefix + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectBuffers(prefix + name + ".", out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectParameters("", &out);
  return out;
}

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, tensor] : named_parameters()) out.push_back(tensor);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::named_buffers() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectBuffers("", &out);
  return out;
}

std::vector<Tensor> Module::buffers() const {
  std::vector<Tensor> out;
  for (auto& [name, tensor] : named_buffers()) out.push_back(tensor);
  return out;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const Tensor& p : parameters()) n += p.numel();
  return n;
}

void Module::ZeroGrad() {
  for (Tensor& p : parameters()) p.ZeroGrad();
}

}  // namespace ddpkit::nn
