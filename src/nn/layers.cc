#include "nn/layers.h"

#include <cmath>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::nn {

namespace {

/// Kaiming-style scaled normal initialization.
Tensor InitWeight(std::vector<int64_t> shape, int64_t fan_in, Rng* rng) {
  Tensor w = Tensor::Randn(std::move(shape), rng);
  const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
  kernels::ScaleInPlace(&w, scale);
  return w;
}

}  // namespace

// ---- Linear ------------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias) {
  weight_ = RegisterParameter(
      "weight", InitWeight({out_features, in_features}, in_features, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& input) {
  return ops::Linear(input, weight_, bias_);
}

// ---- Conv2d ------------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               Rng* rng, int64_t stride, int64_t padding, bool bias)
    : stride_(stride), padding_(padding) {
  const int64_t fan_in = in_channels * kernel_size * kernel_size;
  weight_ = RegisterParameter(
      "weight",
      InitWeight({out_channels, in_channels, kernel_size, kernel_size},
                 fan_in, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_channels}));
  }
}

Tensor Conv2d::Forward(const Tensor& input) {
  return ops::Conv2d(input, weight_, bias_, stride_, padding_);
}

// ---- BatchNorm2d ----------------------------------------------------------------

BatchNorm2d::BatchNorm2d(int64_t num_features, double eps, double momentum)
    : eps_(eps), momentum_(momentum) {
  gamma_ = RegisterParameter("weight", Tensor::Ones({num_features}));
  beta_ = RegisterParameter("bias", Tensor::Zeros({num_features}));
  running_mean_ = RegisterBuffer("running_mean", Tensor::Zeros({num_features}));
  running_var_ = RegisterBuffer("running_var", Tensor::Ones({num_features}));
}

Tensor BatchNorm2d::Forward(const Tensor& input) {
  if (!training()) {
    return ops::BatchNorm2dInference(input, gamma_, beta_, running_mean_,
                                     running_var_, eps_);
  }
  ops::BatchNormResult result = ops::BatchNorm2d(input, gamma_, beta_, eps_);
  {
    // Update running statistics outside the autograd graph.
    autograd::NoGradGuard guard;
    kernels::ScaleInPlace(&running_mean_, 1.0 - momentum_);
    kernels::Axpy(momentum_, result.batch_mean, &running_mean_);
    kernels::ScaleInPlace(&running_var_, 1.0 - momentum_);
    kernels::Axpy(momentum_, result.batch_var, &running_var_);
  }
  return result.output;
}

// ---- LayerNorm ------------------------------------------------------------------

LayerNorm::LayerNorm(int64_t dim, double eps) : eps_(eps) {
  gamma_ = RegisterParameter("weight", Tensor::Ones({dim}));
  beta_ = RegisterParameter("bias", Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& input) {
  return ops::LayerNorm(input, gamma_, beta_, eps_);
}

// ---- Embedding -------------------------------------------------------------------

Embedding::Embedding(int64_t vocab_size, int64_t dim, Rng* rng) {
  Tensor table = Tensor::Randn({vocab_size, dim}, rng);
  kernels::ScaleInPlace(&table, 0.02);
  table_ = RegisterParameter("weight", table);
}

Tensor Embedding::Forward(const Tensor& input) {
  return ops::Embedding(input, table_);
}

// ---- Dropout ----------------------------------------------------------------------

Dropout::Dropout(double p, uint64_t seed) : p_(p), rng_(seed) {
  DDPKIT_CHECK(p >= 0.0 && p < 1.0);
}

Tensor Dropout::Forward(const Tensor& input) {
  if (!training() || p_ == 0.0) return input;
  return ops::Dropout(input, p_, &rng_);
}

// ---- Activations ------------------------------------------------------------------

Tensor ReLU::Forward(const Tensor& input) { return ops::Relu(input); }
Tensor GELU::Forward(const Tensor& input) { return ops::Gelu(input); }

// ---- Sequential -------------------------------------------------------------------

Sequential& Sequential::Append(std::shared_ptr<Module> m) {
  const std::string name = std::to_string(stages_.size());
  stages_.push_back(RegisterModule(name, std::move(m)));
  return *this;
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& stage : stages_) x = stage->Forward(x);
  return x;
}

}  // namespace ddpkit::nn
