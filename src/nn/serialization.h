#ifndef DDPKIT_NN_SERIALIZATION_H_
#define DDPKIT_NN_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace ddpkit::nn {

/// Checkpointing for modules: parameters and buffers are written as a
/// named, typed, shaped binary state dict (magic "DDPKITSD", version 1).
///
/// DDP usage convention (same as PyTorch): rank 0 saves; on restart every
/// rank loads the same file — or only rank 0 loads and the DDP constructor
/// broadcast distributes the state, which is exactly the paper's
/// "all replicas start from the same model state" requirement.
Status SaveStateDict(const Module& module, const std::string& path);

/// Loads a state dict saved by SaveStateDict into `module`. Every entry
/// must match an existing parameter/buffer in name, dtype and shape;
/// extra or missing entries are errors (strict mode, like PyTorch's
/// load_state_dict(strict=True)).
Status LoadStateDict(Module* module, const std::string& path);

/// Generic named-tensor checkpointing (same file format). Used for
/// optimizer state: `SaveTensorMap(optimizer.named_state(), path)` /
/// `LoadTensorMap(optimizer.named_state(), path)` round-trips momentum
/// buffers, Adam moments and step counters, enabling exact training
/// resume. Entries must match in name, dtype and shape (strict).
Status SaveTensorMap(
    const std::vector<std::pair<std::string, Tensor>>& entries,
    const std::string& path);
Status LoadTensorMap(
    const std::vector<std::pair<std::string, Tensor>>& targets,
    const std::string& path);

}  // namespace ddpkit::nn

#endif  // DDPKIT_NN_SERIALIZATION_H_
