#include "nn/zoo.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace ddpkit::nn {

// ---- Mlp ---------------------------------------------------------------------

Mlp::Mlp(const std::vector<int64_t>& sizes, Rng* rng) {
  DDPKIT_CHECK_GE(sizes.size(), 2u);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    auto layer = std::make_shared<Linear>(sizes[i], sizes[i + 1], rng);
    layers_.push_back(
        RegisterModule("fc" + std::to_string(i), std::move(layer)));
  }
}

Tensor Mlp::Forward(const Tensor& input) {
  Tensor x = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->Forward(x);
    if (i + 1 < layers_.size()) x = ops::Relu(x);
  }
  return x;
}

// ---- SmallConvNet ---------------------------------------------------------------

SmallConvNet::SmallConvNet(Rng* rng, int64_t width, int64_t num_classes) {
  conv1_ = RegisterModule(
      "conv1", std::make_shared<Conv2d>(1, width, 3, rng, /*stride=*/1,
                                        /*padding=*/1, /*bias=*/false));
  bn1_ = RegisterModule("bn1", std::make_shared<BatchNorm2d>(width));
  conv2_ = RegisterModule(
      "conv2", std::make_shared<Conv2d>(width, width * 2, 3, rng, 1, 1,
                                        /*bias=*/false));
  bn2_ = RegisterModule("bn2", std::make_shared<BatchNorm2d>(width * 2));
  fc_ = RegisterModule(
      "fc", std::make_shared<Linear>(width * 2 * 7 * 7, num_classes, rng));
}

Tensor SmallConvNet::Forward(const Tensor& input) {
  Tensor x = ops::Relu(bn1_->Forward(conv1_->Forward(input)));
  x = ops::AvgPool2x2(x);
  x = ops::Relu(bn2_->Forward(conv2_->Forward(x)));
  x = ops::AvgPool2x2(x);
  x = ops::Reshape(x, {x.size(0), x.numel() / x.size(0)});
  return fc_->Forward(x);
}

// ---- BasicBlock / ResNetTiny -------------------------------------------------------

BasicBlock::BasicBlock(int64_t in_channels, int64_t out_channels, Rng* rng,
                       bool downsample) {
  const int64_t stride = downsample ? 2 : 1;
  conv1_ = RegisterModule(
      "conv1", std::make_shared<Conv2d>(in_channels, out_channels, 3, rng,
                                        stride, 1, /*bias=*/false));
  bn1_ = RegisterModule("bn1", std::make_shared<BatchNorm2d>(out_channels));
  conv2_ = RegisterModule(
      "conv2", std::make_shared<Conv2d>(out_channels, out_channels, 3, rng, 1,
                                        1, /*bias=*/false));
  bn2_ = RegisterModule("bn2", std::make_shared<BatchNorm2d>(out_channels));
  if (downsample || in_channels != out_channels) {
    shortcut_ = RegisterModule(
        "shortcut", std::make_shared<Conv2d>(in_channels, out_channels, 1,
                                             rng, stride, 0, /*bias=*/false));
    shortcut_bn_ = RegisterModule("shortcut_bn",
                                  std::make_shared<BatchNorm2d>(out_channels));
  }
}

Tensor BasicBlock::Forward(const Tensor& input) {
  Tensor x = ops::Relu(bn1_->Forward(conv1_->Forward(input)));
  x = bn2_->Forward(conv2_->Forward(x));
  Tensor skip = input;
  if (shortcut_) skip = shortcut_bn_->Forward(shortcut_->Forward(input));
  return ops::Relu(ops::Add(x, skip));
}

ResNetTiny::ResNetTiny(Rng* rng, int64_t in_channels, int64_t width,
                       int64_t num_classes, int64_t blocks_per_stage) {
  stem_ = RegisterModule(
      "stem", std::make_shared<Conv2d>(in_channels, width, 3, rng, 1, 1,
                                       /*bias=*/false));
  stem_bn_ = RegisterModule("stem_bn", std::make_shared<BatchNorm2d>(width));
  for (int64_t i = 0; i < blocks_per_stage; ++i) {
    stage1_.push_back(RegisterModule(
        "stage1_" + std::to_string(i),
        std::make_shared<BasicBlock>(width, width, rng, /*downsample=*/false)));
  }
  for (int64_t i = 0; i < blocks_per_stage; ++i) {
    const bool down = (i == 0);
    const int64_t in_c = down ? width : width * 2;
    stage2_.push_back(RegisterModule(
        "stage2_" + std::to_string(i),
        std::make_shared<BasicBlock>(in_c, width * 2, rng, down)));
  }
  fc_ = RegisterModule("fc",
                       std::make_shared<Linear>(width * 2, num_classes, rng));
}

Tensor ResNetTiny::Forward(const Tensor& input) {
  Tensor x = ops::Relu(stem_bn_->Forward(stem_->Forward(input)));
  for (auto& block : stage1_) x = block->Forward(x);
  for (auto& block : stage2_) x = block->Forward(x);
  x = ops::GlobalAvgPool(x);
  return fc_->Forward(x);
}

// ---- TransformerLayer / TransformerTiny ----------------------------------------------

TransformerLayer::TransformerLayer(int64_t dim, int64_t ff_dim, Rng* rng,
                                   int64_t num_heads)
    : num_heads_(num_heads) {
  DDPKIT_CHECK_GT(num_heads, 0);
  DDPKIT_CHECK_EQ(dim % num_heads, 0)
      << "num_heads must divide the model dimension";
  ln1_ = RegisterModule("ln1", std::make_shared<LayerNorm>(dim));
  wq_ = RegisterModule("wq", std::make_shared<Linear>(dim, dim, rng));
  wk_ = RegisterModule("wk", std::make_shared<Linear>(dim, dim, rng));
  wv_ = RegisterModule("wv", std::make_shared<Linear>(dim, dim, rng));
  wo_ = RegisterModule("wo", std::make_shared<Linear>(dim, dim, rng));
  ln2_ = RegisterModule("ln2", std::make_shared<LayerNorm>(dim));
  ff1_ = RegisterModule("ff1", std::make_shared<Linear>(dim, ff_dim, rng));
  ff2_ = RegisterModule("ff2", std::make_shared<Linear>(ff_dim, dim, rng));
}

Tensor TransformerLayer::Forward(const Tensor& input) {
  const int64_t batch = input.size(0), seq = input.size(1),
                dim = input.size(2);
  // Attention sub-block (pre-norm).
  Tensor normed = ln1_->Forward(input);
  Tensor flat = ops::Reshape(normed, {batch * seq, dim});
  Tensor q = ops::Reshape(wq_->Forward(flat), {batch, seq, dim});
  Tensor k = ops::Reshape(wk_->Forward(flat), {batch, seq, dim});
  Tensor v = ops::Reshape(wv_->Forward(flat), {batch, seq, dim});
  Tensor attn;
  if (num_heads_ == 1) {
    attn = ops::Attention(q, k, v);
  } else {
    // Split the feature dimension into heads, attend per head, re-join.
    const int64_t head_dim = dim / num_heads_;
    std::vector<Tensor> heads;
    for (int64_t h = 0; h < num_heads_; ++h) {
      Tensor qh = ops::SliceLastDim(q, h * head_dim, head_dim);
      Tensor kh = ops::SliceLastDim(k, h * head_dim, head_dim);
      Tensor vh = ops::SliceLastDim(v, h * head_dim, head_dim);
      heads.push_back(ops::Attention(qh, kh, vh));
    }
    attn = ops::ConcatLastDim(heads);
  }
  Tensor proj = ops::Reshape(
      wo_->Forward(ops::Reshape(attn, {batch * seq, dim})),
      {batch, seq, dim});
  Tensor x = ops::Add(input, proj);

  // Feed-forward sub-block (pre-norm).
  Tensor normed2 = ln2_->Forward(x);
  Tensor flat2 = ops::Reshape(normed2, {batch * seq, dim});
  Tensor ff = ff2_->Forward(ops::Gelu(ff1_->Forward(flat2)));
  return ops::Add(x, ops::Reshape(ff, {batch, seq, dim}));
}

TransformerTiny::TransformerTiny(const Config& config, Rng* rng)
    : config_(config) {
  embedding_ = RegisterModule(
      "embedding",
      std::make_shared<Embedding>(config.vocab_size, config.dim, rng));
  Tensor pos = Tensor::Randn({config.seq_len, config.dim}, rng);
  kernels::ScaleInPlace(&pos, 0.02);
  positional_ = RegisterParameter("positional", pos);
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(RegisterModule(
        "layer" + std::to_string(i),
        std::make_shared<TransformerLayer>(config.dim, config.ff_dim, rng,
                                           config.num_heads)));
  }
  final_ln_ = RegisterModule("final_ln",
                             std::make_shared<LayerNorm>(config.dim));
  head_ = RegisterModule(
      "head", std::make_shared<Linear>(config.seq_len * config.dim,
                                       config.num_classes, rng));
}

Tensor TransformerTiny::Forward(const Tensor& token_ids) {
  DDPKIT_CHECK_EQ(token_ids.dim(), 2);
  const int64_t batch = token_ids.size(0), seq = token_ids.size(1);
  DDPKIT_CHECK_EQ(seq, config_.seq_len);

  Tensor x = embedding_->Forward(token_ids);  // [B*S, D]
  // Add positional embeddings, tiled across the batch.
  x = ops::Add(x, ops::TileRows(positional_, batch));
  x = ops::Reshape(x, {batch, seq, config_.dim});
  for (auto& layer : layers_) x = layer->Forward(x);
  x = final_ln_->Forward(x);
  x = ops::Reshape(x, {batch, seq * config_.dim});
  return head_->Forward(x);
}

// ---- BranchyNet -------------------------------------------------------------------

BranchyNet::BranchyNet(int64_t dim, Rng* rng) {
  trunk_ = RegisterModule("trunk", std::make_shared<Linear>(dim, dim, rng));
  branch_a_ =
      RegisterModule("branch_a", std::make_shared<Linear>(dim, dim, rng));
  branch_b_ =
      RegisterModule("branch_b", std::make_shared<Linear>(dim, dim, rng));
  head_ = RegisterModule("head", std::make_shared<Linear>(dim, dim, rng));
}

Tensor BranchyNet::Forward(const Tensor& input) {
  Tensor x = ops::Relu(trunk_->Forward(input));
  // Dynamic control flow: only one branch joins the autograd graph, so the
  // other branch's parameters never see a gradient this iteration.
  x = use_branch_a_ ? branch_a_->Forward(x) : branch_b_->Forward(x);
  x = ops::Relu(x);
  return head_->Forward(x);
}

}  // namespace ddpkit::nn
