#include "nn/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

namespace ddpkit::nn {

namespace {

constexpr char kMagic[8] = {'D', 'D', 'P', 'K', 'I', 'T', 'S', 'D'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

template <typename T>
bool WritePod(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

Status WriteEntry(std::FILE* f, const std::string& name, const Tensor& t) {
  const uint32_t name_len = static_cast<uint32_t>(name.size());
  if (!WritePod(f, name_len) || !WriteBytes(f, name.data(), name.size())) {
    return Status::Internal("short write (name)");
  }
  if (!WritePod(f, static_cast<uint8_t>(t.dtype()))) {
    return Status::Internal("short write (dtype)");
  }
  const uint32_t ndims = static_cast<uint32_t>(t.dim());
  if (!WritePod(f, ndims)) return Status::Internal("short write (ndims)");
  for (int64_t d = 0; d < t.dim(); ++d) {
    if (!WritePod(f, t.size(d))) return Status::Internal("short write (dim)");
  }
  Tensor contiguous = t.Contiguous();
  if (!WriteBytes(f, contiguous.data<uint8_t>(), contiguous.nbytes())) {
    return Status::Internal("short write (data)");
  }
  return Status::OK();
}

}  // namespace

Status SaveTensorMap(
    const std::vector<std::pair<std::string, Tensor>>& entries,
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::NotFound("cannot open for writing: " + path);
  const uint64_t count = entries.size();
  if (!WriteBytes(f.get(), kMagic, sizeof(kMagic)) ||
      !WritePod(f.get(), kVersion) || !WritePod(f.get(), count)) {
    return Status::Internal("short write (header)");
  }
  for (const auto& [name, tensor] : entries) {
    DDPKIT_RETURN_IF_ERROR(WriteEntry(f.get(), name, tensor));
  }
  if (std::fflush(f.get()) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Status SaveStateDict(const Module& module, const std::string& path) {
  std::vector<std::pair<std::string, Tensor>> entries =
      module.named_parameters();
  for (const auto& [name, tensor] : module.named_buffers()) {
    entries.emplace_back("buffer/" + name, tensor);
  }
  return SaveTensorMap(entries, path);
}

Status LoadTensorMap(
    const std::vector<std::pair<std::string, Tensor>>& target_entries,
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open for reading: " + path);

  char magic[8];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadBytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a ddpkit state dict: " + path);
  }
  if (!ReadPod(f.get(), &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported state-dict version");
  }
  if (!ReadPod(f.get(), &count)) {
    return Status::InvalidArgument("truncated header");
  }

  std::map<std::string, Tensor> targets;
  for (const auto& [name, tensor] : target_entries) {
    targets.emplace(name, tensor);
  }
  if (count != targets.size()) {
    return Status::InvalidArgument(
        "entry count mismatch: file has " + std::to_string(count) +
        ", module expects " + std::to_string(targets.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(f.get(), &name_len) || name_len > 4096) {
      return Status::InvalidArgument("corrupt entry name length");
    }
    std::string name(name_len, '\0');
    if (!ReadBytes(f.get(), name.data(), name_len)) {
      return Status::InvalidArgument("truncated entry name");
    }
    uint8_t dtype_raw = 0;
    uint32_t ndims = 0;
    if (!ReadPod(f.get(), &dtype_raw) || !ReadPod(f.get(), &ndims) ||
        ndims > 16) {
      return Status::InvalidArgument("corrupt entry header: " + name);
    }
    std::vector<int64_t> shape(ndims);
    for (uint32_t d = 0; d < ndims; ++d) {
      if (!ReadPod(f.get(), &shape[d]) || shape[d] < 0) {
        return Status::InvalidArgument("corrupt shape: " + name);
      }
    }

    auto it = targets.find(name);
    if (it == targets.end()) {
      return Status::NotFound("unexpected entry in state dict: " + name);
    }
    Tensor target = it->second;
    if (static_cast<DType>(dtype_raw) != target.dtype()) {
      return Status::InvalidArgument("dtype mismatch for " + name);
    }
    if (shape != target.shape()) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    Tensor staging = Tensor::Empty(shape, target.dtype());
    if (!ReadBytes(f.get(), staging.data<uint8_t>(), staging.nbytes())) {
      return Status::InvalidArgument("truncated tensor data: " + name);
    }
    target.CopyFrom(staging);
    targets.erase(it);
  }
  if (!targets.empty()) {
    return Status::InvalidArgument("missing entries in state dict, e.g. " +
                                   targets.begin()->first);
  }
  return Status::OK();
}

Status LoadStateDict(Module* module, const std::string& path) {
  if (module == nullptr) {
    return Status::InvalidArgument("module must not be null");
  }
  std::vector<std::pair<std::string, Tensor>> entries =
      module->named_parameters();
  for (const auto& [name, tensor] : module->named_buffers()) {
    entries.emplace_back("buffer/" + name, tensor);
  }
  return LoadTensorMap(entries, path);
}

}  // namespace ddpkit::nn
