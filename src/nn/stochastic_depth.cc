#include "nn/stochastic_depth.h"

#include "common/check.h"

namespace ddpkit::nn {

StochasticDepth::StochasticDepth(std::shared_ptr<Module> inner,
                                 double drop_prob, uint64_t seed)
    : inner_(RegisterModule("inner", std::move(inner))),
      drop_prob_(drop_prob),
      drop_rng_(seed) {
  DDPKIT_CHECK(drop_prob >= 0.0 && drop_prob < 1.0);
}

void StochasticDepth::ReseedDropDecisions(uint64_t seed) {
  drop_rng_ = Rng(seed);
}

Tensor StochasticDepth::Forward(const Tensor& input) {
  if (training() && drop_prob_ > 0.0) {
    // One deterministic draw per forward: with identical seeds, every rank
    // consumes the same stream and takes the same decision.
    const bool skip = drop_rng_.Uniform() < drop_prob_;
    last_skipped_ = skip;
    if (skip) return input;
  } else {
    last_skipped_ = false;
  }
  return inner_->Forward(input);
}

}  // namespace ddpkit::nn
