#ifndef DDPKIT_NN_MODULE_H_
#define DDPKIT_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace ddpkit::nn {

/// Base class for neural-network modules, mirroring torch.nn.Module.
///
/// Parameters and submodules are recorded in *registration order*, and
/// `parameters()` flattens depth-first in that order. This ordering is
/// load-bearing for the paper: DDP buckets gradients in the *reverse* of
/// `parameters()` order, on the assumption that registration order
/// approximates forward-invocation order (§3.2.3).
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Single-input forward. Modules with multiple inputs define their own
  /// overloads and may leave this unimplemented.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// All trainable parameters, depth-first in registration order.
  std::vector<Tensor> parameters() const;
  std::vector<std::pair<std::string, Tensor>> named_parameters() const;

  /// All non-trainable state (e.g. BatchNorm running statistics).
  std::vector<Tensor> buffers() const;
  std::vector<std::pair<std::string, Tensor>> named_buffers() const;

  /// Training vs evaluation mode (recursive).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Sum of parameter element counts.
  int64_t NumParameters() const;

  /// Sets every parameter gradient to zero (allocating none).
  void ZeroGrad();

 protected:
  Module() = default;

  /// Registers `tensor` as a trainable parameter; returns it with
  /// requires_grad set.
  Tensor RegisterParameter(std::string name, Tensor tensor);

  /// Registers persistent non-trainable state.
  Tensor RegisterBuffer(std::string name, Tensor tensor);

  /// Registers a submodule; returns the argument for member initialization.
  template <typename M>
  std::shared_ptr<M> RegisterModule(std::string name, std::shared_ptr<M> m) {
    AddModuleEntry(std::move(name), m);
    return m;
  }

 private:
  void AddModuleEntry(std::string name, std::shared_ptr<Module> m);
  void CollectParameters(const std::string& prefix,
                         std::vector<std::pair<std::string, Tensor>>* out) const;
  void CollectBuffers(const std::string& prefix,
                      std::vector<std::pair<std::string, Tensor>>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace ddpkit::nn

#endif  // DDPKIT_NN_MODULE_H_
