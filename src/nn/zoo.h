#ifndef DDPKIT_NN_ZOO_H_
#define DDPKIT_NN_ZOO_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace ddpkit::nn {

/// Multi-layer perceptron with ReLU between layers.
/// `sizes` = {in, hidden..., out}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& sizes, Rng* rng);
  Tensor Forward(const Tensor& input) override;

 private:
  std::vector<std::shared_ptr<Linear>> layers_;
};

/// Small CNN for 28x28 single-channel images (the synthetic-MNIST
/// convergence experiments, paper Fig 11): two conv+BN+ReLU+pool stages and
/// a linear classifier head.
class SmallConvNet : public Module {
 public:
  SmallConvNet(Rng* rng, int64_t width = 8, int64_t num_classes = 10);
  Tensor Forward(const Tensor& input) override;

 private:
  std::shared_ptr<Conv2d> conv1_;
  std::shared_ptr<BatchNorm2d> bn1_;
  std::shared_ptr<Conv2d> conv2_;
  std::shared_ptr<BatchNorm2d> bn2_;
  std::shared_ptr<Linear> fc_;
};

/// Pre-activation-free basic residual block: out = relu(f(x) + skip(x)).
class BasicBlock : public Module {
 public:
  BasicBlock(int64_t in_channels, int64_t out_channels, Rng* rng,
             bool downsample = false);
  Tensor Forward(const Tensor& input) override;

 private:
  std::shared_ptr<Conv2d> conv1_;
  std::shared_ptr<BatchNorm2d> bn1_;
  std::shared_ptr<Conv2d> conv2_;
  std::shared_ptr<BatchNorm2d> bn2_;
  std::shared_ptr<Conv2d> shortcut_;       // nullptr if identity
  std::shared_ptr<BatchNorm2d> shortcut_bn_;
};

/// Runnable scaled-down ResNet (vision stand-in for ResNet50 in
/// correctness tests and examples). Expects [N, in_channels, H, W] with
/// H, W divisible by 4.
class ResNetTiny : public Module {
 public:
  ResNetTiny(Rng* rng, int64_t in_channels = 3, int64_t width = 8,
             int64_t num_classes = 10, int64_t blocks_per_stage = 2);
  Tensor Forward(const Tensor& input) override;

 private:
  std::shared_ptr<Conv2d> stem_;
  std::shared_ptr<BatchNorm2d> stem_bn_;
  std::vector<std::shared_ptr<BasicBlock>> stage1_;
  std::vector<std::shared_ptr<BasicBlock>> stage2_;
  std::shared_ptr<Linear> fc_;
};

/// One pre-norm transformer encoder layer with multi-head scaled-dot
/// attention (heads split/joined along the feature dimension).
class TransformerLayer : public Module {
 public:
  TransformerLayer(int64_t dim, int64_t ff_dim, Rng* rng,
                   int64_t num_heads = 1);
  Tensor Forward(const Tensor& input) override;  // [B, S, D] -> [B, S, D]

 private:
  std::shared_ptr<LayerNorm> ln1_;
  std::shared_ptr<Linear> wq_;
  std::shared_ptr<Linear> wk_;
  std::shared_ptr<Linear> wv_;
  std::shared_ptr<Linear> wo_;
  std::shared_ptr<LayerNorm> ln2_;
  std::shared_ptr<Linear> ff1_;
  std::shared_ptr<Linear> ff2_;
  int64_t num_heads_;
};

/// Runnable scaled-down transformer classifier (NLP stand-in for BERT in
/// correctness tests and examples). Input int64 token ids [B, S]; output
/// class logits [B, num_classes].
class TransformerTiny : public Module {
 public:
  struct Config {
    int64_t vocab_size = 64;
    int64_t seq_len = 8;
    int64_t dim = 16;
    int64_t ff_dim = 32;
    int64_t num_layers = 2;
    int64_t num_heads = 1;  // must divide dim
    int64_t num_classes = 4;
  };

  TransformerTiny(const Config& config, Rng* rng);
  Tensor Forward(const Tensor& token_ids) override;

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::shared_ptr<Embedding> embedding_;
  Tensor positional_;
  std::vector<std::shared_ptr<TransformerLayer>> layers_;
  std::shared_ptr<LayerNorm> final_ln_;
  std::shared_ptr<Linear> head_;
};

/// Model with data-dependent control flow: each forward uses exactly one of
/// two expert branches, so the other branch's parameters receive no
/// gradient. This reproduces the paper's Fig 3(b) hazard and exercises
/// find_unused_parameters.
class BranchyNet : public Module {
 public:
  BranchyNet(int64_t dim, Rng* rng);
  Tensor Forward(const Tensor& input) override;

  /// Chooses the branch the next Forward will take.
  void set_use_branch_a(bool value) { use_branch_a_ = value; }
  bool use_branch_a() const { return use_branch_a_; }

  std::vector<Tensor> branch_a_parameters() const {
    return branch_a_->parameters();
  }
  std::vector<Tensor> branch_b_parameters() const {
    return branch_b_->parameters();
  }

 private:
  std::shared_ptr<Linear> trunk_;
  std::shared_ptr<Linear> branch_a_;
  std::shared_ptr<Linear> branch_b_;
  std::shared_ptr<Linear> head_;
  bool use_branch_a_ = true;
};

}  // namespace ddpkit::nn

#endif  // DDPKIT_NN_ZOO_H_
