#ifndef DDPKIT_NN_LAYERS_H_
#define DDPKIT_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace ddpkit::nn {

/// Fully-connected layer: y = x W^T + b, weight [out, in].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);
  Tensor Forward(const Tensor& input) override;

  Tensor weight() const { return weight_; }
  Tensor bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;
};

/// 2-D convolution (NCHW), weight [out, in, k, k].
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
         Rng* rng, int64_t stride = 1, int64_t padding = 0, bool bias = true);
  Tensor Forward(const Tensor& input) override;

 private:
  Tensor weight_;
  Tensor bias_;
  int64_t stride_;
  int64_t padding_;
};

/// Batch normalization with running-statistic buffers. The buffers are what
/// exercise DDP's rank-0 buffer broadcast (paper §4.1 "Model Buffers").
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t num_features, double eps = 1e-5,
                       double momentum = 0.1);
  Tensor Forward(const Tensor& input) override;

  Tensor running_mean() const { return running_mean_; }
  Tensor running_var() const { return running_var_; }

 private:
  Tensor gamma_;
  Tensor beta_;
  Tensor running_mean_;
  Tensor running_var_;
  double eps_;
  double momentum_;
};

/// Layer normalization over the last dimension.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, double eps = 1e-5);
  Tensor Forward(const Tensor& input) override;

 private:
  Tensor gamma_;
  Tensor beta_;
  double eps_;
};

/// Token embedding table.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, Rng* rng);
  /// `input` is int64 indices of any shape; output is [numel, dim].
  Tensor Forward(const Tensor& input) override;

 private:
  Tensor table_;
};

/// Inverted dropout. Active only in training mode. All ranks must
/// construct it with the same seed so masks stay aligned across replicas
/// (same coordination requirement as layer dropping, paper §6.2.2).
class Dropout : public Module {
 public:
  Dropout(double p, uint64_t seed);
  Tensor Forward(const Tensor& input) override;

  double p() const { return p_; }

 private:
  double p_;
  Rng rng_;
};

/// Stateless activations.
class ReLU : public Module {
 public:
  Tensor Forward(const Tensor& input) override;
};

class GELU : public Module {
 public:
  Tensor Forward(const Tensor& input) override;
};

/// Runs submodules in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module; returns *this for chaining at construction sites.
  Sequential& Append(std::shared_ptr<Module> m);
  Tensor Forward(const Tensor& input) override;

  size_t size() const { return stages_.size(); }

 private:
  std::vector<std::shared_ptr<Module>> stages_;
};

}  // namespace ddpkit::nn

#endif  // DDPKIT_NN_LAYERS_H_
