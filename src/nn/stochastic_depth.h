#ifndef DDPKIT_NN_STOCHASTIC_DEPTH_H_
#define DDPKIT_NN_STOCHASTIC_DEPTH_H_

#include <memory>

#include "common/rng.h"
#include "nn/module.h"

namespace ddpkit::nn {

/// Layer dropping (paper §6.2.2): during training, the wrapped block is
/// skipped entirely with probability `drop_prob`, and the input passes
/// through unchanged (the block must therefore be shape-preserving, e.g. a
/// residual block or transformer layer). Skipped blocks never enter the
/// autograd graph, so their parameters receive no gradients that iteration
/// — exactly the dynamic sub-graph scenario DDP's find_unused_parameters
/// machinery exists for.
///
/// Cross-rank coordination, as the paper prescribes ("can be implemented
/// by using the same random seed"): the drop decision comes from an
/// internal deterministic RNG; construct every rank's wrapper with the
/// same seed and all replicas skip the same layers in the same iterations,
/// keeping AllReduce contents aligned.
class StochasticDepth : public Module {
 public:
  StochasticDepth(std::shared_ptr<Module> inner, double drop_prob,
                  uint64_t seed);

  Tensor Forward(const Tensor& input) override;

  /// Whether the most recent Forward skipped the block.
  bool last_forward_skipped() const { return last_skipped_; }
  double drop_prob() const { return drop_prob_; }

  /// Re-seeds the drop decision stream (same value on all ranks!).
  void ReseedDropDecisions(uint64_t seed);

 private:
  std::shared_ptr<Module> inner_;
  double drop_prob_;
  Rng drop_rng_;
  bool last_skipped_ = false;
};

}  // namespace ddpkit::nn

#endif  // DDPKIT_NN_STOCHASTIC_DEPTH_H_
