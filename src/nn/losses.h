#ifndef DDPKIT_NN_LOSSES_H_
#define DDPKIT_NN_LOSSES_H_

#include "tensor/tensor.h"

namespace ddpkit::nn {

/// Mean-squared-error criterion (mean reduction). Returns a scalar tensor.
class MSELoss {
 public:
  Tensor operator()(const Tensor& prediction, const Tensor& target) const;
};

/// Softmax cross-entropy over logits [m, n] with int64 class labels [m]
/// (mean reduction). The paper's experiments use this criterion (§5).
class CrossEntropyLoss {
 public:
  Tensor operator()(const Tensor& logits, const Tensor& targets) const;
};

}  // namespace ddpkit::nn

#endif  // DDPKIT_NN_LOSSES_H_
