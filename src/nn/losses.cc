#include "nn/losses.h"

#include "autograd/ops.h"

namespace ddpkit::nn {

Tensor MSELoss::operator()(const Tensor& prediction,
                           const Tensor& target) const {
  return ops::MSELoss(prediction, target);
}

Tensor CrossEntropyLoss::operator()(const Tensor& logits,
                                    const Tensor& targets) const {
  return ops::CrossEntropyLoss(logits, targets);
}

}  // namespace ddpkit::nn
