// Distributed training on synthetic MNIST with a small CNN — the workload
// behind the paper's Fig 11 convergence experiments.
//
// Demonstrates the full production loop: DistributedSampler partitioning,
// BatchNorm buffer broadcast, gradient bucketing/overlap, and optional
// no_sync gradient accumulation (pass a sync interval as argv[1]).
//
// Run: ./mnist_ddp [sync_every=1] [world=4] [steps=60]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "data/distributed_sampler.h"
#include "data/synthetic.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

using namespace ddpkit;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const int sync_every = argc > 1 ? std::atoi(argv[1]) : 1;
  const int world = argc > 2 ? std::atoi(argv[2]) : 4;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 60;
  const int batch = 8;

  std::printf("mnist_ddp: world=%d steps=%d sync_every=%d batch=%d/rank\n",
              world, steps, sync_every, batch);

  data::SyntheticMnist dataset(2048, /*seed=*/7, /*noise_stddev=*/0.6);

  comm::SimWorld::Run(world, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(3);
    auto model = std::make_shared<nn::SmallConvNet>(&rng, /*width=*/4);
    core::DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = 0.02, .momentum = 0.9});
    nn::CrossEntropyLoss criterion;
    data::DistributedSampler sampler(dataset.size(), world, ctx.rank,
                                     /*seed=*/11);
    auto indices = sampler.EpochIndices(0);

    size_t cursor = 0;
    auto next_batch = [&] {
      std::vector<int64_t> ids;
      for (int i = 0; i < batch; ++i) {
        ids.push_back(indices[cursor++ % indices.size()]);
      }
      return dataset.Get(ids);
    };

    for (int step = 0; step < steps; ++step) {
      const bool sync = ((step + 1) % sync_every) == 0;
      auto data = next_batch();
      double loss_value;
      if (!sync) {
        // Accumulate gradients locally; skip communication (§3.2.4).
        auto guard = ddp.no_sync();
        Tensor loss = criterion(ddp.Forward(data.inputs), data.targets);
        loss_value = loss.Item();
        autograd::Backward(loss);
      } else {
        Tensor loss = criterion(ddp.Forward(data.inputs), data.targets);
        loss_value = loss.Item();
        autograd::Backward(loss);
        opt.Step();
        opt.ZeroGrad();
      }
      if (ctx.rank == 0 && (step % 10 == 0 || step == steps - 1)) {
        std::printf("step %3d  loss=%.4f  %s\n", step, loss_value,
                    sync ? "synced" : "no_sync");
      }
    }

    // Evaluate training accuracy on a held-out slice (rank 0 only).
    if (ctx.rank == 0) {
      model->SetTraining(false);
      std::vector<int64_t> eval_ids;
      for (int64_t i = 0; i < 256; ++i) eval_ids.push_back(i);
      auto eval = dataset.Get(eval_ids);
      Tensor logits = model->Forward(eval.inputs);
      Tensor predictions = kernels::ArgMaxRows(logits);
      int correct = 0;
      for (int64_t i = 0; i < 256; ++i) {
        if (predictions.data<int64_t>()[i] == eval.targets.data<int64_t>()[i]) {
          ++correct;
        }
      }
      std::printf("train-set accuracy: %.1f%%  (virtual time %.3f s)\n",
                  100.0 * correct / 256.0, ctx.clock->Now());
    }
  });
  return 0;
}
