// Dynamic control flow and unused parameters — the paper's Fig 3(b) hazard
// and the find_unused_parameters machinery (§3.2.3), end to end.
//
// A mixture-of-experts-style model routes each iteration through exactly
// one expert branch, chosen per rank per step, so:
//   - some parameters get no local gradient (proactively marked ready);
//   - a branch may be used on one rank but not another (peers contribute
//     zeros; the global bitmap marks it used);
//   - a branch may be unused on EVERY rank (its gradients stay intact and
//     masked SGD leaves its momentum frozen).
//
// Run: ./dynamic_graph [steps=8]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "nn/zoo.h"
#include "optim/sgd.h"

using namespace ddpkit;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  constexpr int kWorld = 2;

  comm::SimWorld::Run(kWorld, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(9);
    auto model = std::make_shared<nn::BranchyNet>(8, &rng);
    core::DdpOptions options;
    options.find_unused_parameters = true;
    core::DistributedDataParallel ddp(model, ctx.process_group, options);
    optim::Sgd opt(model->parameters(),
                   optim::Sgd::Options{.lr = 0.05, .momentum = 0.9});

    const auto named = model->named_parameters();
    for (int step = 0; step < steps; ++step) {
      opt.ZeroGrad();
      // Routing schedule: steps 0-1 both ranks take A; steps 2-3 ranks
      // disagree; steps 4+ both take B.
      bool use_a;
      if (step < 2) {
        use_a = true;
      } else if (step < 4) {
        use_a = (ctx.rank == 0);
      } else {
        use_a = false;
      }
      model->set_use_branch_a(use_a);

      Rng data_rng(step * 10 + ctx.rank);
      Tensor x = Tensor::Randn({4, 8}, &data_rng);
      autograd::Backward(ops::MeanAll(ddp.Forward(x)));

      // Masked step: momentum for globally-unused branches stays frozen,
      // exactly like local training would behave.
      opt.Step(ddp.globally_used_mask());

      if (ctx.rank == 0) {
        const auto& mask = ddp.globally_used_mask();
        int used = 0;
        for (uint8_t u : mask) used += u;
        std::printf("step %d  local branch=%c  globally used params: %d/%zu  [",
                    step, use_a ? 'A' : 'B', used, mask.size());
        for (size_t i = 0; i < mask.size(); ++i) {
          std::printf("%d", mask[i]);
        }
        std::printf("]\n");
      }
    }

    if (ctx.rank == 0) {
      std::printf("\nparameter names (mask positions):\n");
      for (size_t i = 0; i < named.size(); ++i) {
        std::printf("  [%zu] %s\n", i, named[i].first.c_str());
      }
      std::printf("\nbackward never hung despite skipped sub-graphs — the "
                  "forward-pass graph traversal marked absent parameters "
                  "ready (paper Fig 3b / Algorithm 1 line 10).\n");
    }
  });
  return 0;
}
