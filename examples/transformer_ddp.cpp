// Distributed training of a transformer classifier on synthetic token
// sequences — the NLP counterpart of mnist_ddp, exercising embeddings,
// fused attention, layer norm, Adam, cosine LR decay, gradient clipping
// and the ZeRO-style sharded optimizer.
//
// Run: ./transformer_ddp [world=2] [steps=80] [use_zero=0|1]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "core/zero_redundancy_optimizer.h"
#include "data/distributed_sampler.h"
#include "data/synthetic.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "optim/lr_scheduler.h"
#include "tensor/tensor_ops.h"

using namespace ddpkit;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const int world = argc > 1 ? std::atoi(argv[1]) : 2;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 80;
  const bool use_zero = argc > 3 && std::atoi(argv[3]) != 0;
  const int batch = 16;

  nn::TransformerTiny::Config config;
  config.vocab_size = 64;
  config.seq_len = 8;
  config.dim = 16;
  config.ff_dim = 32;
  config.num_layers = 2;
  config.num_classes = 4;

  std::printf("transformer_ddp: world=%d steps=%d batch=%d/rank "
              "optimizer=%s\n",
              world, steps, batch,
              use_zero ? "zero-sharded adam" : "adam");

  data::SyntheticTokens dataset(4096, config.seq_len, config.vocab_size,
                                config.num_classes, /*seed=*/3);

  comm::SimWorld::Run(world, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(17);
    auto model = std::make_shared<nn::TransformerTiny>(config, &rng);
    core::DistributedDataParallel ddp(model, ctx.process_group);

    std::unique_ptr<core::ZeroRedundancyOptimizer> zero;
    std::unique_ptr<optim::Adam> adam;
    std::unique_ptr<optim::CosineLr> scheduler;
    const optim::Adam::Options adam_options{.lr = 3e-3};
    if (use_zero) {
      zero = std::make_unique<core::ZeroRedundancyOptimizer>(
          model->parameters(), ctx.process_group,
          [&](std::vector<Tensor> shard) {
            return std::make_unique<optim::Adam>(std::move(shard),
                                                 adam_options);
          });
    } else {
      adam = std::make_unique<optim::Adam>(model->parameters(), adam_options);
      scheduler = std::make_unique<optim::CosineLr>(adam.get(), steps, 1e-4);
    }

    nn::CrossEntropyLoss criterion;
    data::DistributedSampler sampler(dataset.size(), world, ctx.rank, 29);
    auto indices = sampler.EpochIndices(0);

    size_t cursor = 0;
    int correct = 0, total = 0;
    for (int step = 0; step < steps; ++step) {
      std::vector<int64_t> ids;
      for (int b = 0; b < batch; ++b) {
        ids.push_back(indices[cursor++ % indices.size()]);
      }
      auto data = dataset.Get(ids);
      model->ZeroGrad();
      Tensor logits = ddp.Forward(data.inputs);
      Tensor loss = criterion(logits, data.targets);
      autograd::Backward(loss);
      optim::ClipGradNorm(model->parameters(), 5.0);
      if (use_zero) {
        zero->Step();
      } else {
        adam->Step();
        scheduler->Step();
      }

      // Track running accuracy on rank 0's shards.
      {
        autograd::NoGradGuard guard;
        Tensor pred = kernels::ArgMaxRows(logits);
        for (int64_t i = 0; i < pred.numel(); ++i) {
          if (pred.data<int64_t>()[i] == data.targets.data<int64_t>()[i]) {
            ++correct;
          }
          ++total;
        }
      }
      if (ctx.rank == 0 && (step % 10 == 0 || step == steps - 1)) {
        std::printf("step %3d  loss=%.4f  running-acc=%.1f%%\n", step,
                    loss.Item(), 100.0 * correct / total);
      }
    }
  });
  std::printf("transformer_ddp done (labels are the vocabulary band of each "
              "sequence's maximum token; accuracy well above the 25%% chance level "
              "shows distributed learning works end to end).\n");
  return 0;
}
