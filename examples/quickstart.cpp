// Quickstart: the paper's Section 3.1 toy example, translated to ddpkit.
//
// The Python original wraps an nn.Linear in DistributedDataParallel and
// runs forward / backward / optimizer step. Here, four simulated ranks
// (threads with virtual clocks) do the same; converting the local script to
// a distributed one is ONE line — wrapping the model — exactly the
// non-intrusive property the paper advertises.
//
// Run: ./quickstart

#include <cstdio>
#include <memory>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "optim/sgd.h"

using namespace ddpkit;  // NOLINT — example brevity

int main() {
  constexpr int kWorld = 4;

  comm::SimWorld::Run(kWorld, [](comm::SimWorld::RankContext& ctx) {
    // setup model and optimizer (paper lines 10-12)
    Rng rng(42);  // same seed everywhere = same initial weights
    auto net = std::make_shared<nn::Linear>(10, 10, &rng);
    core::DistributedDataParallel ddp(net, ctx.process_group);  // line 11
    optim::Sgd opt(net->parameters(), optim::Sgd::Options{.lr = 0.01});

    nn::MSELoss criterion;
    for (int step = 0; step < 5; ++step) {
      opt.ZeroGrad();

      // run forward pass (lines 15-17) — each rank on its own data
      Rng data_rng(1000 * step + ctx.rank);
      Tensor inp = Tensor::Randn({20, 10}, &data_rng);
      Tensor exp = Tensor::Randn({20, 10}, &data_rng);
      Tensor out = ddp.Forward(inp);

      // run backward pass (line 20) — gradients bucketed & all-reduced
      Tensor loss = criterion(out, exp);
      autograd::Backward(loss);

      // update parameters (line 23)
      opt.Step();

      if (ctx.rank == 0) {
        std::printf("step %d  loss=%.4f  allreduces=%llu  vclock=%.3f ms\n",
                    step, loss.Item(),
                    static_cast<unsigned long long>(
                        ddp.reducer().stats().allreduces_launched),
                    ctx.clock->Now() * 1e3);
      }
    }

    // Every replica ends bit-identical; print a checksum from rank 0.
    if (ctx.rank == 0) {
      double checksum = 0.0;
      for (const Tensor& p : net->parameters()) {
        for (int64_t i = 0; i < p.numel(); ++i) checksum += p.FlatAt(i);
      }
      std::printf("final parameter checksum: %.6f\n", checksum);
    }
  });
  std::printf("quickstart done\n");
  return 0;
}
