// Bucket-size tuning walkthrough — how an application developer would use
// the cluster simulator to pick bucket_cap_mb for their model and fabric,
// the empirical procedure the paper recommends (§5.2, §6.1).
//
// Sweeps bucket caps for a chosen paper model at a chosen scale and prints
// the per-iteration latency table, plus the extension features' effect
// (gradient-order rebuild and fp16 compression).
//
// Run: ./bucket_tuning [model=resnet50|resnet152|bert] [world=16]
//                      [backend=nccl|gloo]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/cluster_sim.h"
#include "core/memory.h"

using namespace ddpkit;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "resnet50";
  const int world = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::string backend_name = argc > 3 ? argv[3] : "nccl";

  cluster::ModelSpec spec;
  if (model_name == "resnet152") {
    spec = cluster::ResNet152Spec();
  } else if (model_name == "bert") {
    spec = cluster::BertBaseSpec();
  } else {
    spec = cluster::ResNet50Spec();
  }
  const sim::Backend backend =
      backend_name == "gloo" ? sim::Backend::kGloo : sim::Backend::kNccl;

  std::printf("bucket tuning for %s (%.1fM params, %.0f MB of gradients) "
              "on %d simulated GPUs, %s backend\n\n",
              spec.name.c_str(), spec.TotalNumel() / 1e6,
              spec.TotalBytes() / 1048576.0, world,
              sim::BackendName(backend));

  std::printf("%-12s %-8s %-14s %-14s %-14s\n", "bucket_cap", "buckets",
              "median (s)", "p25..p75", "exposed comm");
  const size_t caps_mb[] = {0, 1, 5, 10, 25, 50, 100, 200};
  double best = 1e30;
  size_t best_cap = 0;
  for (size_t cap_mb : caps_mb) {
    cluster::ClusterConfig config;
    config.world = world;
    config.backend = backend;
    config.bucket_cap_bytes = cap_mb << 20;
    config.straggler.sigma = 0.03;
    cluster::ClusterSim sim(spec, config);
    auto result = sim.Run(40);
    auto summary = result.LatencySummary();
    std::printf("%8zu MB  %-8zu %-14.4f %.4f..%.4f %14.4f\n", cap_mb,
                result.num_buckets, summary.median, summary.p25, summary.p75,
                result.mean_breakdown.backward_comm_exposed);
    if (summary.median < best) {
      best = summary.median;
      best_cap = cap_mb;
    }
  }
  std::printf("\n-> best cap: %zu MB (%.4f s/iter). Both tiny and giant "
              "buckets lose: tiny pays per-op latency, giant forfeits "
              "overlap (paper 5.2).\n\n",
              best_cap, best);

  // Extensions at the best cap.
  cluster::ClusterConfig config;
  config.world = world;
  config.backend = backend;
  config.bucket_cap_bytes = best_cap << 20;
  config.straggler.sigma = 0.03;
  auto baseline = cluster::ClusterSim(spec, config).Run(40);

  auto fp16 = config;
  fp16.comm_bytes_scale = 0.5;
  auto fp16_result = cluster::ClusterSim(spec, fp16).Run(40);

  auto rr3 = config;
  rr3.round_robin_groups = 3;
  auto rr3_result = cluster::ClusterSim(spec, rr3).Run(40);

  // Per-rank memory bill for the winning configuration.
  {
    core::ReducerOptions reducer_options;
    reducer_options.bucket_cap_bytes = best_cap << 20;
    auto plain = core::EstimateDdpMemory(spec.params, reducer_options);
    reducer_options.gradient_as_bucket_view = true;
    auto views = core::EstimateDdpMemory(spec.params, reducer_options);
    std::printf("per-rank memory at %zu MB buckets:\n", best_cap);
    std::printf("  default:                 %s\n", plain.ToString().c_str());
    std::printf("  gradient_as_bucket_view: %s\n\n",
                views.ToString().c_str());
  }

  std::printf("extensions at %zu MB:\n", best_cap);
  std::printf("  baseline:                %.4f s/iter\n",
              baseline.LatencySummary().median);
  std::printf("  fp16 compression (x0.5): %.4f s/iter\n",
              fp16_result.LatencySummary().median);
  std::printf("  round-robin x3 groups:   %.4f s/iter\n",
              rr3_result.LatencySummary().median);
  return 0;
}
