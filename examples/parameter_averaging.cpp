// Parameter averaging vs gradient synchronization — the paper's §2.2
// argument, made concrete.
//
// Three runs on identical data shards with SGD+momentum:
//   (1) local reference: one model sees the whole global batch;
//   (2) DDP: gradient averaging every step;
//   (3) parameter averaging every K local steps (the realistic "auxiliary
//       step" deployment the paper critiques).
//
// DDP tracks the local reference to float precision; parameter averaging
// drifts because each replica's momentum state integrates different local
// gradients.
//
// Run: ./parameter_averaging [avg_every=4] [steps=20]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "autograd/engine.h"
#include "comm/sim_world.h"
#include "core/distributed_data_parallel.h"
#include "nn/losses.h"
#include "nn/zoo.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

using namespace ddpkit;  // NOLINT — example brevity

namespace {

constexpr int kWorld = 4;
constexpr int64_t kPerRank = 4;
constexpr int64_t kInDim = 8;
constexpr int64_t kOutDim = 4;

std::vector<float> Flatten(const nn::Module& module) {
  std::vector<float> out;
  for (const Tensor& p : module.parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      out.push_back(static_cast<float>(p.FlatAt(i)));
    }
  }
  return out;
}

double MaxDiff(const std::vector<float>& a, const std::vector<float>& b) {
  double mx = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return mx;
}

}  // namespace

int main(int argc, char** argv) {
  const int avg_every = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const optim::Sgd::Options sgd{.lr = 0.05, .momentum = 0.9};

  // Shared step data (the global batch for every step).
  Rng data_rng(100);
  std::vector<Tensor> xs, ys;
  for (int s = 0; s < steps; ++s) {
    xs.push_back(Tensor::Randn({kPerRank * kWorld, kInDim}, &data_rng));
    ys.push_back(Tensor::Randn({kPerRank * kWorld, kOutDim}, &data_rng));
  }
  auto shard = [&](const Tensor& t, int rank) {
    return t.Narrow(0, rank * kPerRank, kPerRank).Clone();
  };

  // (1) Local reference.
  Rng model_rng(200);
  nn::Mlp reference({kInDim, 16, kOutDim}, &model_rng);
  optim::Sgd ref_opt(reference.parameters(), sgd);
  for (int s = 0; s < steps; ++s) {
    ref_opt.ZeroGrad();
    autograd::Backward(nn::MSELoss()(reference.Forward(xs[s]), ys[s]));
    ref_opt.Step();
  }
  std::vector<float> reference_params = Flatten(reference);

  // (2) DDP: gradient averaging.
  std::vector<float> ddp_params;
  comm::SimWorld::Run(kWorld, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(200);
    auto model = std::make_shared<nn::Mlp>(
        std::vector<int64_t>{kInDim, 16, kOutDim}, &rng);
    core::DistributedDataParallel ddp(model, ctx.process_group);
    optim::Sgd opt(model->parameters(), sgd);
    for (int s = 0; s < steps; ++s) {
      opt.ZeroGrad();
      autograd::Backward(nn::MSELoss()(
          ddp.Forward(shard(xs[s], ctx.rank)), shard(ys[s], ctx.rank)));
      opt.Step();
    }
    if (ctx.rank == 0) ddp_params = Flatten(*model);
  });

  // (3) Parameter averaging every `avg_every` local steps.
  std::vector<float> avg_params;
  comm::SimWorld::Run(kWorld, [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(200);
    nn::Mlp model({kInDim, 16, kOutDim}, &rng);
    optim::Sgd opt(model.parameters(), sgd);
    for (int s = 0; s < steps; ++s) {
      opt.ZeroGrad();
      autograd::Backward(nn::MSELoss()(
          model.Forward(shard(xs[s], ctx.rank)), shard(ys[s], ctx.rank)));
      opt.Step();
      if ((s + 1) % avg_every == 0) {
        autograd::NoGradGuard guard;
        for (Tensor& p : model.parameters()) {
          ctx.process_group->AllReduce(p.Flatten())->Wait(ctx.clock);
          kernels::ScaleInPlace(&p, 1.0 / kWorld);
        }
      }
    }
    if (ctx.rank == 0) avg_params = Flatten(model);
  });

  const double ddp_drift = MaxDiff(ddp_params, reference_params);
  const double avg_drift = MaxDiff(avg_params, reference_params);
  std::printf("parameter drift from local reference after %d steps "
              "(SGD momentum %.1f):\n",
              steps, sgd.momentum);
  std::printf("  gradient sync (DDP):                 %.3e\n", ddp_drift);
  std::printf("  parameter averaging (every %d steps): %.3e\n", avg_every,
              avg_drift);
  std::printf("  -> parameter averaging drifts %.0fx further; DDP is "
              "mathematically equivalent to local training (paper 2.2)\n",
              avg_drift / (ddp_drift > 0 ? ddp_drift : 1e-12));
  return 0;
}
