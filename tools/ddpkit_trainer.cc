// ddpkit_trainer — command-line driver for simulated distributed
// data-parallel training, combining every subsystem: model zoo, synthetic
// datasets, DistributedSampler, DDP with all knobs, optimizers, LR
// schedulers, gradient clipping, checkpointing, and per-iteration virtual
// latency reporting.
//
// Usage:
//   ddpkit_trainer [--model=mlp|convnet|resnet|transformer] [--world=N]
//                  [--backend=nccl|gloo|mpi|tcp] [--bucket-mb=N] [--steps=N]
//                  [--batch=N] [--lr=F] [--momentum=F] [--optimizer=sgd|adam]
//                  [--sync-every=N] [--find-unused] [--min-world=N]
//                  [--comm-hook=none|fp16|bf16|onebit|powersgd|topk]
//                  [--round-robin=N] [--clip-norm=F] [--warmup=N]
//                  [--checkpoint=PATH] [--trace=PATH] [--seed=N]
//
// --trace writes a Chrome trace-event JSON (open in chrome://tracing or
// Perfetto) showing forward/backward compute spans and the AllReduce spans
// overlapping them.
//
// --backend=tcp switches from the in-process simulated world to the real
// wire: the process trains ONE rank over ProcessGroupTcp, reading its
// coordinates from the tools/ddp_launch environment contract (DDPKIT_RANK,
// DDPKIT_WORLD, DDPKIT_STORE_HOST, DDPKIT_STORE_PORT). Quickstart:
//   ddp_launch --nproc=4 -- ddpkit_trainer --backend=tcp --steps=20

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "comm/backend_factory.h"
#include "comm/sim_world.h"
#include "comm/store_tcp.h"
#include "common/stats.h"
#include "core/distributed_data_parallel.h"
#include "data/distributed_sampler.h"
#include "data/synthetic.h"
#include "nn/losses.h"
#include "nn/serialization.h"
#include "nn/zoo.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "optim/lr_scheduler.h"
#include "optim/sgd.h"

using namespace ddpkit;  // NOLINT

namespace {

struct Args {
  std::string model = "convnet";
  int world = 4;
  std::string backend = "nccl";
  int bucket_mb = 25;
  int steps = 50;
  int batch = 8;
  double lr = 0.02;
  double momentum = 0.9;
  std::string optimizer = "sgd";
  int sync_every = 1;
  /// Smallest membership a wire-failure recovery may shrink to before the
  /// trainer gives up (--backend=tcp only; see the sync_status check in the
  /// step loop).
  int min_world = 2;
  bool find_unused = false;
  std::string compress = "none";
  int round_robin = 1;
  double clip_norm = 0.0;
  int warmup = 0;
  std::string checkpoint;
  std::string trace;
  uint64_t seed = 1;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlag(a, "model", &value)) args.model = value;
    else if (ParseFlag(a, "world", &value)) args.world = std::atoi(value.c_str());
    else if (ParseFlag(a, "backend", &value)) args.backend = value;
    else if (ParseFlag(a, "bucket-mb", &value)) args.bucket_mb = std::atoi(value.c_str());
    else if (ParseFlag(a, "steps", &value)) args.steps = std::atoi(value.c_str());
    else if (ParseFlag(a, "batch", &value)) args.batch = std::atoi(value.c_str());
    else if (ParseFlag(a, "lr", &value)) args.lr = std::atof(value.c_str());
    else if (ParseFlag(a, "momentum", &value)) args.momentum = std::atof(value.c_str());
    else if (ParseFlag(a, "optimizer", &value)) args.optimizer = value;
    else if (ParseFlag(a, "sync-every", &value)) args.sync_every = std::atoi(value.c_str());
    else if (ParseFlag(a, "min-world", &value)) args.min_world = std::atoi(value.c_str());
    else if (std::strcmp(a, "--find-unused") == 0) args.find_unused = true;
    else if (ParseFlag(a, "compress", &value)) args.compress = value;
    else if (ParseFlag(a, "comm-hook", &value)) args.compress = value;
    else if (ParseFlag(a, "round-robin", &value)) args.round_robin = std::atoi(value.c_str());
    else if (ParseFlag(a, "clip-norm", &value)) args.clip_norm = std::atof(value.c_str());
    else if (ParseFlag(a, "warmup", &value)) args.warmup = std::atoi(value.c_str());
    else if (ParseFlag(a, "checkpoint", &value)) args.checkpoint = value;
    else if (ParseFlag(a, "trace", &value)) args.trace = value;
    else if (ParseFlag(a, "seed", &value)) args.seed = std::strtoull(value.c_str(), nullptr, 10);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      std::exit(2);
    }
  }
  return args;
}

sim::Backend BackendFromName(const std::string& name) {
  if (name == "gloo") return sim::Backend::kGloo;
  if (name == "mpi") return sim::Backend::kMpi;
  return sim::Backend::kNccl;
}

std::shared_ptr<nn::Module> MakeModel(const std::string& name, Rng* rng) {
  if (name == "mlp") {
    return std::make_shared<nn::Mlp>(
        std::vector<int64_t>{28 * 28, 64, 10}, rng);
  }
  if (name == "resnet") {
    return std::make_shared<nn::ResNetTiny>(rng, 1, 4, 10, 1);
  }
  if (name == "transformer") {
    nn::TransformerTiny::Config config;
    config.vocab_size = 64;
    config.seq_len = 8;
    config.dim = 16;
    config.ff_dim = 32;
    config.num_layers = 2;
    config.num_classes = 4;
    return std::make_shared<nn::TransformerTiny>(config, rng);
  }
  return std::make_shared<nn::SmallConvNet>(rng, 4);
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  const bool wire = args.backend == "tcp";
  comm::LaunchEnv launch_env;
  if (wire) {
    // One rank per process: coordinates come from the launcher, not
    // --world (which only shapes the in-process simulated run).
    Result<comm::LaunchEnv> env = comm::ReadLaunchEnv();
    if (!env.ok()) {
      std::fprintf(stderr, "ddpkit_trainer: --backend=tcp needs the "
                   "ddp_launch environment: %s\n",
                   env.status().message().c_str());
      return 2;
    }
    launch_env = env.value();
    args.world = launch_env.world;
  }
  std::printf("ddpkit_trainer: model=%s world=%d backend=%s bucket=%dMB "
              "steps=%d batch=%d lr=%g sync_every=%d rr=%d compress=%s\n",
              args.model.c_str(), args.world, args.backend.c_str(),
              args.bucket_mb, args.steps, args.batch, args.lr,
              args.sync_every, args.round_robin, args.compress.c_str());

  if (!core::IsValidCommHookName(args.compress)) {
    std::fprintf(stderr,
                 "ddpkit_trainer: unknown comm hook '%s' (expected one of "
                 "none fp16 bf16 onebit powersgd topk)\n",
                 args.compress.c_str());
    return 2;
  }

  const bool transformer = args.model == "transformer";
  const bool image_2d = args.model == "convnet" || args.model == "resnet";
  data::SyntheticMnist images(2048, args.seed, 0.6);
  data::SyntheticTokens tokens(2048, 8, 64, 4, args.seed);

  std::vector<double> iteration_latencies;
  std::vector<double> losses(static_cast<size_t>(args.steps), 0.0);
  std::shared_ptr<core::TraceRecorder> trace_recorder;
  if (!args.trace.empty()) {
    trace_recorder = std::make_shared<core::TraceRecorder>();
  }

  // The training body is written against SimWorld's RankContext but is
  // backend-agnostic: the simulated harness calls it once per rank thread,
  // the wire path (--backend=tcp) builds one context for this process's
  // single rank and calls it directly.
  std::atomic<bool> train_failed{false};
  auto rank_body = [&](comm::SimWorld::RankContext& ctx) {
    Rng rng(args.seed + 100);
    auto model = MakeModel(args.model, &rng);

    core::DdpOptions ddp_options;
    ddp_options.bucket_cap_bytes = static_cast<size_t>(args.bucket_mb) << 20;
    ddp_options.find_unused_parameters = args.find_unused;
    ddp_options.comm_hook = core::MakeCommHookByName(args.compress);
    ddp_options.compute_model = std::make_shared<sim::ComputeCostModel>(
        sim::ComputeCostModel::V100Profile());
    ddp_options.trace = trace_recorder;
    core::DistributedDataParallel ddp(model, ctx.process_group, ddp_options);

    std::unique_ptr<optim::Optimizer> opt;
    if (args.optimizer == "adam") {
      opt = std::make_unique<optim::Adam>(model->parameters(),
                                          optim::Adam::Options{.lr = args.lr});
    } else {
      opt = std::make_unique<optim::Sgd>(
          model->parameters(),
          optim::Sgd::Options{.lr = args.lr, .momentum = args.momentum});
    }
    std::unique_ptr<optim::WarmupLr> scheduler;
    if (args.warmup > 0) {
      scheduler = std::make_unique<optim::WarmupLr>(opt.get(), args.warmup);
    }

    data::DistributedSampler sampler(
        transformer ? tokens.size() : images.size(), args.world, ctx.rank,
        args.seed + 7);
    auto indices = sampler.EpochIndices(0);
    nn::CrossEntropyLoss criterion;

    size_t cursor = 0;
    double last_clock = ctx.clock->Now();
    for (int step = 0; step < args.steps; ++step) {
      const size_t step_cursor = cursor;  // rewound if this step is retried
      std::vector<int64_t> ids;
      for (int b = 0; b < args.batch; ++b) {
        ids.push_back(indices[cursor++ % indices.size()]);
      }
      data::Batch batch = transformer ? tokens.Get(ids) : images.Get(ids);
      Tensor inputs = batch.inputs;
      if (!image_2d && !transformer) {
        inputs = inputs.Reshape({inputs.size(0), 28 * 28});  // mlp input
      }

      const bool sync = ((step + 1) % args.sync_every) == 0;
      double loss_value;
      if (!sync) {
        auto guard = ddp.no_sync();
        Tensor loss = criterion(ddp.Forward(inputs), batch.targets);
        loss_value = loss.Item();
        autograd::Backward(loss);
      } else {
        Tensor loss = criterion(ddp.Forward(inputs), batch.targets);
        loss_value = loss.Item();
        autograd::Backward(loss);
        if (!ddp.sync_status().ok()) {
          // Wire failure the backend could not heal transparently (e.g. a
          // partition that left peers at divergent sequence numbers, so
          // byte-level replay was impossible). The gradients of this step
          // are incomplete: drop them, re-form the group over whoever is
          // reachable, and retry the same step under the new membership —
          // never train on an unsynchronized step silently.
          std::fprintf(stderr,
                       "[rank %d] step %d gradient sync failed (%s); "
                       "attempting recovery\n",
                       ctx.rank, step, ddp.sync_status().ToString().c_str());
          core::RecoveryOptions recovery;
          recovery.rendezvous_namespace = ctx.group_name;
          recovery.min_world = args.min_world;
          recovery.group_factory = ctx.make_group;
          recovery.extra_state = opt->named_state();
          core::RecoveryReport rep;
          const Status recovered = ddp.Recover(recovery, &rep);
          if (!recovered.ok()) {
            std::fprintf(stderr, "[rank %d] recovery failed: %s\n", ctx.rank,
                         recovered.ToString().c_str());
            train_failed.store(true);
            return;
          }
          std::fprintf(stderr,
                       "[rank %d] recovered: rank %d of %d at generation "
                       "%llu\n",
                       ctx.rank, rep.new_rank, rep.new_world,
                       static_cast<unsigned long long>(rep.generation));
          opt->ZeroGrad();
          cursor = step_cursor;  // the retry must see the same batch
          --step;  // retry this step's forward/backward under the new group
          continue;
        }
        if (args.clip_norm > 0.0) {
          optim::ClipGradNorm(model->parameters(), args.clip_norm);
        }
        if (args.find_unused) {
          opt->Step(ddp.globally_used_mask());
        } else {
          opt->Step();
        }
        opt->ZeroGrad();
        if (scheduler) scheduler->Step();
      }

      if (ctx.rank == 0) {
        losses[static_cast<size_t>(step)] = loss_value;
        const double now = ctx.clock->Now();
        iteration_latencies.push_back(now - last_clock);
        last_clock = now;
      }
    }

    if (ctx.rank == 0 && !args.checkpoint.empty()) {
      Status status = nn::SaveStateDict(*model, args.checkpoint);
      std::printf("checkpoint -> %s: %s\n", args.checkpoint.c_str(),
                  status.ToString().c_str());
      // Optimizer state beside it, for exact resume (momentum/moments).
      Status opt_status =
          nn::SaveTensorMap(opt->named_state(), args.checkpoint + ".opt");
      std::printf("optimizer state -> %s.opt: %s\n",
                  args.checkpoint.c_str(), opt_status.ToString().c_str());
    }
  };

  bool report = true;
  if (wire) {
    sim::VirtualClock clock;
    comm::StoreClientTcp store(launch_env.store_host, launch_env.store_port);
    comm::BackendConfig config;
    config.backend = "tcp";
    Result<std::shared_ptr<comm::ProcessGroup>> group =
        comm::CreateProcessGroupBackend(config, &store, "trainer",
                                        launch_env.rank, launch_env.world,
                                        &clock);
    if (!group.ok()) {
      std::fprintf(stderr, "ddpkit_trainer: tcp rendezvous failed: %s\n",
                   group.status().message().c_str());
      return 1;
    }
    comm::SimWorld::RankContext ctx;
    ctx.rank = launch_env.rank;
    ctx.world = launch_env.world;
    ctx.process_group = group.value();
    ctx.clock = &clock;
    ctx.store = &store;
    ctx.group_name = "trainer";
    ctx.make_group = [&](uint64_t generation, int new_rank,
                         int new_world) -> std::shared_ptr<comm::ProcessGroup> {
      comm::ProcessGroupTcp::Options regroup_options = config.tcp;
      regroup_options.generation = generation;
      Result<std::shared_ptr<comm::ProcessGroupTcp>> regrouped =
          comm::ProcessGroupTcp::Create(&store, "trainer", new_rank,
                                        new_world, regroup_options, &clock);
      if (!regrouped.ok()) {
        std::fprintf(stderr, "ddpkit_trainer: regroup at g%llu failed: %s\n",
                     static_cast<unsigned long long>(generation),
                     regrouped.status().message().c_str());
        return nullptr;
      }
      return regrouped.value();
    };
    rank_body(ctx);
    // Only rank 0 collected per-step stats; peers are done.
    report = launch_env.rank == 0;
  } else {
    comm::SimWorldOptions world_options;
    world_options.backend = BackendFromName(args.backend);
    world_options.round_robin_groups = args.round_robin;
    world_options.seed = args.seed;
    comm::SimWorld::Run(args.world, world_options, rank_body);
  }

  if (train_failed.load()) {
    std::fprintf(stderr, "ddpkit_trainer: training aborted on an "
                         "unrecoverable gradient-sync failure\n");
    return 1;
  }
  if (!report) return 0;

  std::printf("\n%-8s %-10s %-14s\n", "step", "loss", "virt_latency_s");
  for (int step = 0; step < args.steps;
       step += std::max(1, args.steps / 10)) {
    std::printf("%-8d %-10.4f %-14.6f\n", step,
                losses[static_cast<size_t>(step)],
                iteration_latencies[static_cast<size_t>(step)]);
  }
  Summary latency = Summarize(iteration_latencies);
  std::printf("\nvirtual per-iteration latency: %s\n",
              latency.ToString().c_str());
  std::printf("final loss: %.4f\n", losses.back());
  if (trace_recorder) {
    Status status = trace_recorder->WriteJson(args.trace);
    std::printf("trace (%zu spans) -> %s: %s\n", trace_recorder->size(),
                args.trace.c_str(), status.ToString().c_str());
  }
  return 0;
}
