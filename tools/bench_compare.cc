// bench_compare: the CI regression gate over bench JSON reports.
//
//   bench_compare <baseline.json> <candidate.json>
//                 [--threshold=1.15] [--waivers=<file>]
//   bench_compare --selftest
//
// Compares the per-cell modeled latencies in the candidate's "zoo_sweep"
// section (written by bench_fig2_allreduce) against a committed baseline
// (bench/baselines/BENCH_fig2_allreduce.json). A cell is identified as
// <algorithm>/w<world>/b<bytes> and fails the gate when
//
//   candidate_ns > baseline_ns * threshold     (default threshold 1.15)
//
// or when a baseline cell is missing from the candidate (coverage loss is
// a regression too). New candidate cells are reported but never fail —
// growing the sweep must not require touching the baseline first.
//
// Waivers mirror ddplint's contract — explicit, with a reason, reviewed
// like any code. One per line in the --waivers file:
//
//   allow(<cell-id>) <reason>
//
// Blank lines and lines starting with '#' are ignored. A waiver without a
// reason is itself an error: the gate refuses to run rather than let an
// unexplained regression through. Waived cells are reported as waived so
// the regression stays visible in the CI log.
//
// The numbers gated here come from the analytical cost models, not wall
// clocks, so they are bit-deterministic across machines: any drift is a
// genuine model change, and the 15% headroom exists only so deliberate
// parameter retunes inside the noise band don't force a baseline refresh.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tool_util.h"

namespace ddpkit::tools {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for ddpkit's own bench reports
// (objects, arrays, strings without exotic escapes, numbers, literals).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    if (ok && pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return ok;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(&out->str) &&
                         (out->kind = JsonValue::Kind::kString, true);
    if (c == 't' || c == 'f') return ParseLiteral(out);
    if (c == 'n') return ParseLiteral(out);
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;  // \" \\ \/ and friends
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseLiteral(JsonValue* out) {
    static const struct {
      const char* word;
      JsonValue::Kind kind;
      bool boolean;
    } kLiterals[] = {{"true", JsonValue::Kind::kBool, true},
                     {"false", JsonValue::Kind::kBool, false},
                     {"null", JsonValue::Kind::kNull, false}};
    for (const auto& lit : kLiterals) {
      const size_t len = std::string(lit.word).size();
      if (text_.compare(pos_, len, lit.word) == 0) {
        pos_ += len;
        out->kind = lit.kind;
        out->boolean = lit.boolean;
        return true;
      }
    }
    return Fail("unrecognized literal");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    try {
      out->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Report model: cell-id -> modeled ns, extracted from "zoo_sweep".
// ---------------------------------------------------------------------------

bool ExtractCells(const std::string& json_text, const std::string& label,
                  std::map<std::string, double>* cells, std::string* error) {
  JsonValue root;
  JsonParser parser(json_text);
  if (!parser.Parse(&root)) {
    *error = label + ": JSON parse error: " + parser.error();
    return false;
  }
  const JsonValue* sweep = root.Find("zoo_sweep");
  if (sweep == nullptr || sweep->kind != JsonValue::Kind::kArray) {
    *error = label + ": no \"zoo_sweep\" array in report";
    return false;
  }
  for (const JsonValue& row : sweep->items) {
    const JsonValue* algo = row.Find("algorithm");
    const JsonValue* world = row.Find("world");
    const JsonValue* bytes = row.Find("bytes");
    const JsonValue* ns = row.Find("ns");
    if (algo == nullptr || world == nullptr || bytes == nullptr ||
        ns == nullptr || algo->kind != JsonValue::Kind::kString ||
        ns->kind != JsonValue::Kind::kNumber) {
      *error = label + ": zoo_sweep row missing algorithm/world/bytes/ns";
      return false;
    }
    const std::string id =
        algo->str + "/w" + std::to_string(static_cast<long long>(world->number)) +
        "/b" + std::to_string(static_cast<long long>(bytes->number));
    (*cells)[id] = ns->number;
  }
  if (cells->empty()) {
    *error = label + ": zoo_sweep is empty";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Waivers: allow(<cell-id>) <reason>, one per line, reason mandatory.
// ---------------------------------------------------------------------------

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseWaivers(const std::string& text,
                  std::map<std::string, std::string>* waivers,
                  std::string* error) {
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::string marker = "allow(";
    if (line.rfind(marker, 0) != 0) {
      *error = "waivers line " + std::to_string(lineno) +
               ": expected allow(<cell-id>) <reason>";
      return false;
    }
    const size_t close = line.find(')', marker.size());
    if (close == std::string::npos) {
      *error = "waivers line " + std::to_string(lineno) + ": missing ')'";
      return false;
    }
    const std::string id = line.substr(marker.size(), close - marker.size());
    const std::string reason = Trim(line.substr(close + 1));
    if (id.empty() || reason.empty()) {
      *error = "waivers line " + std::to_string(lineno) +
               ": a waiver needs both a cell id and a reason";
      return false;
    }
    (*waivers)[id] = reason;
  }
  return true;
}

// ---------------------------------------------------------------------------
// The comparison proper. Pure over strings so the selftest can drive it
// with embedded documents.
// ---------------------------------------------------------------------------

struct CompareResult {
  bool ok = false;          // gate verdict
  std::string error;        // non-empty => inputs were unusable
  int compared = 0;
  int regressions = 0;      // unwaived, over threshold
  int waived = 0;
  int missing = 0;          // baseline cells absent from candidate
  int added = 0;            // candidate cells absent from baseline
  std::vector<std::string> lines;  // human report
};

CompareResult CompareReports(const std::string& baseline_json,
                             const std::string& candidate_json,
                             double threshold,
                             const std::string& waivers_text) {
  CompareResult result;
  std::map<std::string, double> baseline;
  std::map<std::string, double> candidate;
  std::map<std::string, std::string> waivers;
  if (!ExtractCells(baseline_json, "baseline", &baseline, &result.error) ||
      !ExtractCells(candidate_json, "candidate", &candidate, &result.error) ||
      !ParseWaivers(waivers_text, &waivers, &result.error)) {
    return result;
  }

  for (const auto& [id, base_ns] : baseline) {
    const auto it = candidate.find(id);
    if (it == candidate.end()) {
      ++result.missing;
      result.lines.push_back("MISSING  " + id +
                             " (in baseline, absent from candidate)");
      continue;
    }
    ++result.compared;
    const double cand_ns = it->second;
    const double ratio = base_ns > 0.0 ? cand_ns / base_ns : 1.0;
    if (ratio <= threshold) continue;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3fx (limit %.2fx)", ratio, threshold);
    const auto waiver = waivers.find(id);
    if (waiver != waivers.end()) {
      ++result.waived;
      result.lines.push_back("WAIVED   " + id + " " + buf + " — " +
                             waiver->second);
    } else {
      ++result.regressions;
      result.lines.push_back("REGRESS  " + id + " " + buf);
    }
  }
  for (const auto& [id, ns] : candidate) {
    if (baseline.find(id) == baseline.end()) {
      ++result.added;
      result.lines.push_back("NEW      " + id + " (not gated yet)");
    }
  }
  result.ok = result.regressions == 0 && result.missing == 0;
  return result;
}

std::string ReadFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int RunCompare(const ToolArgs& args) {
  std::string error;
  const std::string baseline = ReadFile(args.positional[0], &error);
  if (!error.empty()) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 1;
  }
  const std::string candidate = ReadFile(args.positional[1], &error);
  if (!error.empty()) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 1;
  }
  std::string waivers_text;
  const std::string waivers_path = args.FlagValue("waivers");
  if (!waivers_path.empty()) {
    waivers_text = ReadFile(waivers_path, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
      return 1;
    }
  }
  const double threshold = std::stod(args.FlagValue("threshold", "1.15"));

  const CompareResult result =
      CompareReports(baseline, candidate, threshold, waivers_text);
  if (!result.error.empty()) {
    std::fprintf(stderr, "bench_compare: %s\n", result.error.c_str());
    return 1;
  }
  for (const std::string& line : result.lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf(
      "bench_compare: %d cells compared, %d regressions, %d waived, "
      "%d missing, %d new — %s\n",
      result.compared, result.regressions, result.waived, result.missing,
      result.added, result.ok ? "OK" : "FAIL");
  return result.ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Selftest: embedded documents through the same comparison path.
// ---------------------------------------------------------------------------

std::string Report(const std::string& rows) {
  return "{\"bench\":\"fig2_allreduce\",\"zoo_sweep\":[" + rows + "]}";
}

std::string Cell(const std::string& algo, int world, long bytes, double ns) {
  return "{\"algorithm\":\"" + algo + "\",\"resolved\":\"" + algo +
         "\",\"world\":" + std::to_string(world) +
         ",\"bytes\":" + std::to_string(bytes) +
         ",\"ns\":" + std::to_string(ns) + ",\"gbps\":1.0}";
}

int RunSelftest(const ToolArgs&) {
  const std::string base =
      Report(Cell("ring", 8, 1048576, 1000.0) + "," +
             Cell("auto", 8, 1048576, 600.0));
  int failed = 0;
  const auto check = [&failed](const char* name, bool ok) {
    std::printf("  %-44s %s\n", name, ok ? "ok" : "FAILED");
    if (!ok) ++failed;
  };

  {
    const CompareResult r = CompareReports(base, base, 1.15, "");
    check("identical reports pass", r.ok && r.compared == 2 &&
                                        r.regressions == 0 && r.error.empty());
  }
  {
    const std::string cand = Report(Cell("ring", 8, 1048576, 1300.0) + "," +
                                    Cell("auto", 8, 1048576, 600.0));
    const CompareResult r = CompareReports(base, cand, 1.15, "");
    check("30% regression fails", !r.ok && r.regressions == 1);
  }
  {
    const std::string cand = Report(Cell("ring", 8, 1048576, 1100.0) + "," +
                                    Cell("auto", 8, 1048576, 600.0));
    const CompareResult r = CompareReports(base, cand, 1.15, "");
    check("10% drift stays inside headroom", r.ok && r.regressions == 0);
    const CompareResult tight = CompareReports(base, cand, 1.05, "");
    check("--threshold tightens the gate", !tight.ok &&
                                               tight.regressions == 1);
  }
  {
    const std::string cand = Report(Cell("ring", 8, 1048576, 1300.0) + "," +
                                    Cell("auto", 8, 1048576, 600.0));
    const CompareResult r = CompareReports(
        base, cand, 1.15,
        "# retuned latency constants for the v2 NIC model\n"
        "allow(ring/w8/b1048576) deliberate retune, see DESIGN.md §10\n");
    check("waiver with reason passes", r.ok && r.waived == 1 &&
                                           r.regressions == 0);
  }
  {
    const std::string cand = Report(Cell("ring", 8, 1048576, 1300.0) + "," +
                                    Cell("auto", 8, 1048576, 600.0));
    const CompareResult r =
        CompareReports(base, cand, 1.15, "allow(ring/w8/b1048576)\n");
    check("waiver without reason is rejected", !r.ok && !r.error.empty());
  }
  {
    const std::string cand = Report(Cell("auto", 8, 1048576, 600.0));
    const CompareResult r = CompareReports(base, cand, 1.15, "");
    check("missing baseline cell fails", !r.ok && r.missing == 1);
  }
  {
    const std::string cand =
        Report(Cell("ring", 8, 1048576, 1000.0) + "," +
               Cell("auto", 8, 1048576, 600.0) + "," +
               Cell("hierarchical", 32, 1048576, 400.0));
    const CompareResult r = CompareReports(base, cand, 1.15, "");
    check("new candidate cells never fail", r.ok && r.added == 1);
  }
  {
    const std::string cand = Report(Cell("ring", 8, 1048576, 500.0) + "," +
                                    Cell("auto", 8, 1048576, 300.0));
    const CompareResult r = CompareReports(base, cand, 1.15, "");
    check("improvements pass without a baseline refresh", r.ok);
  }
  {
    const CompareResult r = CompareReports("{not json", base, 1.15, "");
    check("malformed baseline is an error", !r.ok && !r.error.empty());
  }
  {
    const CompareResult r =
        CompareReports("{\"zoo_sweep\":[]}", base, 1.15, "");
    check("empty sweep is an error", !r.ok && !r.error.empty());
  }

  std::printf("bench_compare selftest: %d failed\n", failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace ddpkit::tools

int main(int argc, char** argv) {
  using namespace ddpkit::tools;  // NOLINT
  ToolSpec spec;
  spec.usage = {
      "<baseline.json> <candidate.json> [--threshold=1.15] "
      "[--waivers=<file>]",
      "--selftest",
  };
  spec.min_positional = 2;
  spec.max_positional = 2;
  spec.run = RunCompare;
  spec.selftest = RunSelftest;
  return RunTool(argc, argv, spec);
}
