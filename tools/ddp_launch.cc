// ddp_launch: localhost multi-process launcher — the repo's torchrun.
//
// Spawns N copies of a worker binary, one OS process per rank (the paper's
// deployment unit, §3.3), hosts the TCP rendezvous store in the launcher
// process (so a kill -9'd worker can never take the store down with it),
// exports the launch contract to every child
//
//   DDPKIT_RANK, DDPKIT_WORLD, DDPKIT_STORE_HOST, DDPKIT_STORE_PORT
//
// forwards every child's stdout/stderr line-by-line with a "[rank N]"
// prefix (and into per-rank log files when --log-dir is set, which the CI
// multiprocess leg uploads as artifacts on failure), and reaps children
// into a typed exit report.
//
// Exit status: 0 iff every rank exited 0 — except ranks named by
// --allow-kill, which may die by signal (chaos tests kill -9 a rank on
// purpose; the launcher must not count the planned murder as a failure,
// while still failing on any *unplanned* death).
//
// Usage:
//   ddp_launch --nproc=N [--timeout-sec=T] [--log-dir=DIR]
//              [--allow-kill=R] -- worker [worker args...]
//
// ddplint: allow-file(banned-nondeterminism) reason: process supervision
// is wall-clock by nature (children progress in real time only).
// ddplint: allow-file(raw-wire-io) reason: read() here drains child
// stdout/stderr pipes, not peer wire traffic; the store the workers
// rendezvous through speaks comm/net_socket.h framing.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "comm/chaos_spec.h"
#include "comm/store_tcp.h"

namespace {

struct LaunchOptions {
  int nproc = 0;
  double timeout_sec = 300.0;
  std::string log_dir;
  int allow_kill = -1;  // rank allowed to die by signal, -1 = none
  /// Wire-fault spec (chaos_spec.h grammar), exported to every worker as
  /// DDPKIT_CHAOS_WIRE; DDPKIT_CHAOS_SEED (inherited) seeds `rand` faults.
  std::string chaos;
  std::vector<std::string> worker_argv;
};

void PrintUsage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --nproc=N [--timeout-sec=T] [--log-dir=DIR] "
               "[--allow-kill=R] [--chaos=SPEC] -- worker [worker args...]\n"
               "  SPEC example: partition:2x3@step5,heal@step8\n",
               prog);
}

bool ParseArgs(int argc, char** argv, LaunchOptions* options) {
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    }
    if (arg == "-n" && i + 1 < argc) {
      options->nproc = std::atoi(argv[++i]);
    } else if (arg.rfind("--nproc=", 0) == 0) {
      options->nproc = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--timeout-sec=", 0) == 0) {
      options->timeout_sec = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--log-dir=", 0) == 0) {
      options->log_dir = arg.substr(10);
    } else if (arg.rfind("--allow-kill=", 0) == 0) {
      options->allow_kill = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--chaos=", 0) == 0) {
      options->chaos = arg.substr(8);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  for (; i < argc; ++i) options->worker_argv.emplace_back(argv[i]);
  if (options->nproc <= 0 || options->worker_argv.empty()) return false;
  return true;
}

/// Drains one child's merged stdout/stderr pipe, forwarding complete lines
/// prefixed with the rank tag and mirroring them into the per-rank log
/// file (when open). Runs until the child closes its end (exit or kill).
void ForwardLogs(int fd, int rank, std::FILE* log_file) {
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      const size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = pending.substr(start, nl - start);
      std::fprintf(stdout, "[rank %d] %s\n", rank, line.c_str());
      if (log_file != nullptr) {
        std::fprintf(log_file, "%s\n", line.c_str());
      }
      start = nl + 1;
    }
    pending.erase(0, start);
    std::fflush(stdout);
    if (log_file != nullptr) std::fflush(log_file);
  }
  if (!pending.empty()) {
    std::fprintf(stdout, "[rank %d] %s\n", rank, pending.c_str());
    if (log_file != nullptr) std::fprintf(log_file, "%s\n", pending.c_str());
  }
  std::fflush(stdout);
  close(fd);
}

struct Child {
  pid_t pid = -1;
  int rank = -1;
  bool reaped = false;
  int wait_status = 0;
};

int RunLauncher(const LaunchOptions& options) {
  using ddpkit::comm::StoreServerTcp;
  auto server = StoreServerTcp::Start("127.0.0.1", 0);
  if (!server.ok()) {
    std::fprintf(stderr, "ddp_launch: store server failed to start: %s\n",
                 server.status().message().c_str());
    return 1;
  }
  std::fprintf(stdout, "ddp_launch: store on 127.0.0.1:%d, world %d\n",
               server.value()->port(), options.nproc);

  if (!options.chaos.empty()) {
    // Validate the spec up front (a typo must die here, not as N cryptic
    // worker failures) and log the canonical plan so any chaos run can be
    // replayed from its launcher output alone.
    const uint64_t seed = ddpkit::comm::ReadWireChaosEnv().seed;
    auto plan = ddpkit::comm::ParseWireChaosSpec(options.chaos, seed,
                                                 options.nproc);
    if (!plan.ok()) {
      std::fprintf(stderr, "ddp_launch: bad --chaos spec: %s\n",
                   plan.status().message().c_str());
      return 1;
    }
    std::fprintf(stdout, "ddp_launch: wire chaos (seed %llu):\n%s",
                 static_cast<unsigned long long>(seed),
                 plan.value().DebugString().c_str());
    setenv("DDPKIT_CHAOS_WIRE", options.chaos.c_str(), 1);
  }

  std::vector<Child> children(static_cast<size_t>(options.nproc));
  std::vector<std::thread> log_threads;
  std::vector<std::FILE*> log_files(static_cast<size_t>(options.nproc),
                                    nullptr);

  for (int rank = 0; rank < options.nproc; ++rank) {
    int pipe_fds[2];
    if (pipe(pipe_fds) != 0) {
      std::fprintf(stderr, "ddp_launch: pipe() failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "ddp_launch: fork() failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      // Child: merge stdout+stderr into the pipe, export the contract,
      // become the worker.
      close(pipe_fds[0]);
      dup2(pipe_fds[1], STDOUT_FILENO);
      dup2(pipe_fds[1], STDERR_FILENO);
      close(pipe_fds[1]);
      setenv("DDPKIT_RANK", std::to_string(rank).c_str(), 1);
      setenv("DDPKIT_WORLD", std::to_string(options.nproc).c_str(), 1);
      setenv("DDPKIT_STORE_HOST", "127.0.0.1", 1);
      setenv("DDPKIT_STORE_PORT",
             std::to_string(server.value()->port()).c_str(), 1);
      std::vector<char*> argv;
      argv.reserve(options.worker_argv.size() + 1);
      for (const std::string& arg : options.worker_argv) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      execvp(argv[0], argv.data());
      std::fprintf(stderr, "execvp(%s) failed: %s\n", argv[0],
                   std::strerror(errno));
      _exit(127);
    }
    close(pipe_fds[1]);
    children[static_cast<size_t>(rank)] = Child{pid, rank, false, 0};
    if (!options.log_dir.empty()) {
      const std::string path =
          options.log_dir + "/rank" + std::to_string(rank) + ".log";
      log_files[static_cast<size_t>(rank)] = std::fopen(path.c_str(), "w");
      if (log_files[static_cast<size_t>(rank)] == nullptr) {
        std::fprintf(stderr, "ddp_launch: cannot open %s: %s\n", path.c_str(),
                     std::strerror(errno));
      }
    }
    log_threads.emplace_back(ForwardLogs, pipe_fds[0], rank,
                             log_files[static_cast<size_t>(rank)]);
  }

  // Reap with a wall deadline; past it, kill the stragglers (a hung rank
  // must become a typed report, not a hung CI job).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options.timeout_sec);
  int unreaped = options.nproc;
  bool timed_out = false;
  while (unreaped > 0) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid > 0) {
      for (Child& child : children) {
        if (child.pid == pid && !child.reaped) {
          child.reaped = true;
          child.wait_status = status;
          --unreaped;
          break;
        }
      }
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      timed_out = true;
      for (const Child& child : children) {
        if (!child.reaped) kill(child.pid, SIGKILL);
      }
      for (Child& child : children) {
        if (child.reaped) continue;
        int st = 0;
        if (waitpid(child.pid, &st, 0) == child.pid) {
          child.reaped = true;
          child.wait_status = st;
          --unreaped;
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (std::thread& t : log_threads) t.join();
  for (std::FILE* f : log_files) {
    if (f != nullptr) std::fclose(f);
  }
  server.value()->Stop();

  // Typed exit report.
  int failures = 0;
  for (const Child& child : children) {
    const int status = child.wait_status;
    if (!child.reaped) {
      std::fprintf(stdout, "ddp_launch: rank %d UNREAPED\n", child.rank);
      ++failures;
    } else if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      std::fprintf(stdout, "ddp_launch: rank %d exited %d%s\n", child.rank,
                   code, code == 0 ? "" : " (FAILED)");
      if (code != 0) ++failures;
    } else if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      const bool planned = child.rank == options.allow_kill;
      std::fprintf(stdout, "ddp_launch: rank %d killed by signal %d%s\n",
                   child.rank, sig,
                   planned ? " (planned by --allow-kill)" : " (FAILED)");
      if (!planned) ++failures;
    } else {
      std::fprintf(stdout, "ddp_launch: rank %d unknown wait status %d\n",
                   child.rank, status);
      ++failures;
    }
  }
  if (timed_out) {
    std::fprintf(stdout,
                 "ddp_launch: TIMEOUT after %.0fs, stragglers killed\n",
                 options.timeout_sec);
  }
  std::fflush(stdout);
  if (failures > 0 || timed_out) {
    std::fprintf(stderr, "ddp_launch: %d rank(s) failed%s\n", failures,
                 timed_out ? " (launch timeout)" : "");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  LaunchOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage(argc > 0 ? argv[0] : "ddp_launch");
    return 1;
  }
  // A dying worker mid-write must not kill the launcher.
  signal(SIGPIPE, SIG_IGN);
  return RunLauncher(options);
}
