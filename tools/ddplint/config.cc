#include "ddplint/config.h"

#include <deque>
#include <sstream>

#include "ddplint/lexer.h"

namespace ddplint {
namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string w;
  while (in >> w) words.push_back(w);
  return words;
}

/// Kahn's algorithm: true when the edge set over `nodes` is acyclic.
bool IsDag(const std::set<std::string>& nodes,
           const std::map<std::string, std::set<std::string>>& edges) {
  std::map<std::string, int> indegree;
  for (const std::string& n : nodes) indegree[n] = 0;
  for (const auto& [from, tos] : edges) {
    (void)from;
    for (const std::string& to : tos) ++indegree[to];
  }
  std::deque<std::string> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.push_back(n);
  }
  size_t seen = 0;
  while (!ready.empty()) {
    const std::string n = ready.front();
    ready.pop_front();
    ++seen;
    const auto it = edges.find(n);
    if (it == edges.end()) continue;
    for (const std::string& to : it->second) {
      if (--indegree[to] == 0) ready.push_back(to);
    }
  }
  return seen == nodes.size();
}

}  // namespace

bool LockOrderConfig::Before(const std::string& a, const std::string& b) const {
  // BFS over the declared edges; hierarchies are tiny, no memoization
  // needed.
  std::deque<std::string> frontier{a};
  std::set<std::string> visited{a};
  while (!frontier.empty()) {
    const std::string n = frontier.front();
    frontier.pop_front();
    const auto it = after.find(n);
    if (it == after.end()) continue;
    for (const std::string& next : it->second) {
      if (next == b) return true;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

std::optional<std::string> LockOrderConfig::Resolve(
    const std::string& path, const std::string& expr) const {
  // The last identifier of the expression: "state_->mutex" -> "mutex",
  // "LogMutex()" -> "LogMutex", "mu_" -> "mu_".
  std::string last_ident;
  for (size_t i = expr.size(); i > 0;) {
    --i;
    if (IsIdentChar(expr[i])) {
      size_t begin = i;
      while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
      last_ident = expr.substr(begin, i - begin + 1);
      break;
    }
  }
  for (const MutexMap& m : this->mutexes) {
    if (m.path_substr != "*" && path.find(m.path_substr) == std::string::npos) {
      continue;
    }
    if (m.is_expr ? expr == m.pattern : last_ident == m.pattern) {
      return m.level;
    }
  }
  return std::nullopt;
}

bool ParseLockOrder(const std::string& text, LockOrderConfig* out,
                    std::string* error) {
  *out = LockOrderConfig();
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  std::vector<std::pair<size_t, std::vector<std::string>>> directives;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> words = SplitWords(line);
    if (!words.empty()) directives.emplace_back(lineno, words);
  }

  auto fail = [&](size_t ln, const std::string& what) {
    *error = "lock_order line " + std::to_string(ln) + ": " + what;
    return false;
  };

  // First pass: declarations, so `before`/`mutex` may reference forward.
  for (const auto& [ln, words] : directives) {
    if (words[0] == "level" || words[0] == "leaf") {
      if (words.size() != 2) return fail(ln, "expected: " + words[0] + " <name>");
      out->levels.insert(words[1]);
      if (words[0] == "leaf") out->leaves.insert(words[1]);
    }
  }
  for (const auto& [ln, words] : directives) {
    if (words[0] == "level" || words[0] == "leaf") continue;
    if (words[0] == "before") {
      if (words.size() != 3) return fail(ln, "expected: before <a> <b>");
      for (const std::string& level : {words[1], words[2]}) {
        if (out->levels.count(level) == 0) {
          return fail(ln, "undeclared level '" + level + "'");
        }
      }
      out->after[words[1]].insert(words[2]);
    } else if (words[0] == "mutex") {
      if (words.size() != 4) {
        return fail(ln, "expected: mutex <level> <path|*> <pattern>");
      }
      if (out->levels.count(words[1]) == 0) {
        return fail(ln, "undeclared level '" + words[1] + "'");
      }
      LockOrderConfig::MutexMap m;
      m.level = words[1];
      m.path_substr = words[2];
      m.pattern = words[3];
      m.is_expr = m.pattern.find_first_of("->.(") != std::string::npos;
      out->mutexes.push_back(std::move(m));
    } else if (words[0] == "blocking") {
      if (words.size() != 2) return fail(ln, "expected: blocking <name>");
      out->blocking_names.insert(words[1]);
    } else if (words[0] == "blocking-suffix") {
      if (words.size() != 2) {
        return fail(ln, "expected: blocking-suffix <suffix>");
      }
      out->blocking_suffixes.insert(words[1]);
    } else {
      return fail(ln, "unknown directive '" + words[0] + "'");
    }
  }
  if (!IsDag(out->levels, out->after)) {
    *error = "lock_order: the declared 'before' edges contain a cycle";
    return false;
  }
  return true;
}

bool ParseIncludeDag(const std::string& text, IncludeDagConfig* out,
                     std::string* error) {
  *out = IncludeDagConfig();
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  std::vector<std::pair<size_t, std::vector<std::string>>> directives;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> words = SplitWords(line);
    if (!words.empty()) directives.emplace_back(lineno, words);
  }

  auto fail = [&](size_t ln, const std::string& what) {
    *error = "include_dag line " + std::to_string(ln) + ": " + what;
    return false;
  };

  for (const auto& [ln, words] : directives) {
    if (words[0] != "module" || words.size() < 2) {
      return fail(ln, "expected: module <name> : <deps...>");
    }
    if (out->allowed.count(words[1]) > 0) {
      return fail(ln, "duplicate module '" + words[1] + "'");
    }
    std::set<std::string>& deps = out->allowed[words[1]];
    for (size_t i = 2; i < words.size(); ++i) {
      if (words[i] == ":") continue;
      deps.insert(words[i]);
    }
  }
  std::set<std::string> modules;
  for (const auto& [m, deps] : out->allowed) {
    modules.insert(m);
    for (const std::string& d : deps) {
      if (out->allowed.count(d) == 0) {
        *error = "include_dag: module '" + m + "' depends on undeclared '" +
                 d + "'";
        return false;
      }
    }
  }
  if (!IsDag(modules, out->allowed)) {
    *error = "include_dag: the declared module edges contain a cycle";
    return false;
  }
  return true;
}

const std::set<std::string>& DefaultBlockingNames() {
  static const std::set<std::string>* names = new std::set<std::string>{
      "Wait",        "WaitFor",     "WaitUntil", "WaitAndRethrow",
      "SendAll",     "RecvAll",     "SendRecvAll",
      "SendFrame",   "RecvFrame",   "ParallelFor", "ParallelReduce",
      "sleep_for",   "sleep_until", "Barrier",
  };
  return *names;
}

const std::set<std::string>& DefaultBlockingSuffixes() {
  static const std::set<std::string>* suffixes =
      new std::set<std::string>{"WithRetry"};
  return *suffixes;
}

}  // namespace ddplint
