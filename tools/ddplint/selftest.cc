// The embedded selftest: every invariant demonstrated on a snippet — each
// rule's violating shape, its clean shape, and its waiver, plus the lexer
// edge cases (raw strings, line continuations) and the config parsers'
// rejection paths. `--selftest=<group>` runs one group; groups are the
// pass names plus "lexer" and "config".

#include <cstdio>
#include <string>
#include <vector>

#include "ddplint/config.h"
#include "ddplint/lexer.h"
#include "ddplint/passes.h"
#include "ddplint/waivers.h"

namespace ddplint {
namespace {

/// The fixture hierarchy the lock-order/blocking cases run against. Kept
/// separate from the shipped tools/ddplint/lock_order.txt so selftests
/// keep passing when the production hierarchy evolves.
const char kFixtureLockOrder[] = R"(
# fixture: a three-level chain plus one unconnected level and one leaf
level reducer.mu
level group.mutex
level work.mutex
level store.mutex
level store.fault
leaf metrics.mutex
before reducer.mu group.mutex
before group.mutex work.mutex
before store.mutex store.fault
mutex reducer.mu core/reducer mu_
mutex group.mutex * state->mutex
mutex group.mutex * state_->mutex
mutex work.mutex * w->mutex_
mutex work.mutex comm/work mutex_
mutex store.mutex comm/store mutex_
mutex store.fault comm/store fault_mutex_
mutex metrics.mutex common/metrics mutex_
blocking BlockOp
blocking-suffix WithBackoff
)";

const char kFixtureIncludeDag[] = R"(
module common :
module tensor : common
module comm : common tensor
module core : common tensor comm
)";

struct SelfCase {
  std::string group;  // --selftest=<group> filter tag
  std::string pass;   // which pass runs the snippet
  std::string name;
  std::string path;  // decides which rules apply
  std::string content;
  size_t expect_violations;
  std::string expect_rule;  // checked when expect_violations > 0
};

std::vector<SelfCase> Cases() {
  std::vector<SelfCase> cases;
  const auto add = [&](const std::string& group, const std::string& name,
                       const std::string& path, const std::string& content,
                       size_t expect, const std::string& rule,
                       const std::string& pass = "") {
    cases.push_back(SelfCase{group, pass.empty() ? group : pass, name, path,
                             content, expect, rule});
  };
  const auto tok = [&](const std::string& name, const std::string& path,
                       const std::string& content, size_t expect,
                       const std::string& rule) {
    add("token-rules", name, path, content, expect, rule);
  };

  // --- token-rules: the v1 rule set --------------------------------------
  tok("raw mutex member flagged", "src/core/x.h",
      "class X {\n std::mutex mu_;\n};\n", 1, "unannotated-mutex");
  tok("raw condition_variable_any flagged (prefix match)", "src/core/x.h",
      "std::condition_variable_any cv_;\n", 1, "unannotated-mutex");
  tok("wrapper types are clean", "src/core/x.h",
      "ddpkit::Mutex mu_;\nddpkit::CondVar cv_;\n", 0, "");
  tok("trailing line waiver honored", "src/core/x.h",
      "std::mutex mu_;  // ddplint: allow(unannotated-mutex) interop\n", 0,
      "");
  tok("comment-block waiver covers next code line", "src/core/x.h",
      "// ddplint: allow(unannotated-mutex) wraps the raw primitive\n"
      "// over two comment lines of reason\n"
      "std::mutex mu_;\n",
      0, "");
  tok("file waiver covers whole file", "src/core/x.h",
      "// ddplint: allow-file(unannotated-mutex) wrapper layer\n"
      "std::mutex a_;\nstd::mutex b_;\n",
      0, "");
  tok("waiver for one rule does not cover another", "src/comm/x.cc",
      "// ddplint: allow(unannotated-mutex) wrong rule\n"
      "DDPKIT_CHECK(ok);\n",
      1, "check-in-comm");
  tok("CHECK in comm flagged (incl. _EQ suffix)", "src/comm/pg.cc",
      "DDPKIT_CHECK_EQ(a, b);\n", 1, "check-in-comm");
  tok("CHECK outside comm is fine", "src/core/reducer.cc",
      "DDPKIT_CHECK(ok);\n", 0, "");
  tok("comm never matches common", "src/common/util.cc",
      "DDPKIT_CHECK(ok);\n", 0, "");
  tok("throw at the status boundary flagged", "src/comm/pg.cc",
      "if (bad) throw std::runtime_error(\"x\");\n", 1, "throw-boundary");
  tok("throw in reducer flagged", "src/core/reducer.cc", "throw 1;\n", 1,
      "throw-boundary");
  tok("throw outside the boundary is fine", "src/tensor/tensor.cc",
      "throw std::bad_alloc();\n", 0, "");
  tok("rand() flagged", "src/core/x.cc", "int r = rand();\n", 1,
      "banned-nondeterminism");
  tok("identifier boundary: grand() is fine", "src/core/x.cc",
      "int r = grand();\n", 0, "");
  tok("wall clock outside the sim flagged", "src/core/x.cc",
      "auto t = std::chrono::steady_clock::now();\n", 1,
      "banned-nondeterminism");
  tok("virtual_clock.h may read clocks", "src/sim/virtual_clock.h",
      "auto t = std::chrono::steady_clock::now();\n", 0, "");
  tok("tokens in comments are ignored", "src/comm/pg.cc",
      "// std::mutex and DDPKIT_CHECK and throw, discussed in prose\n"
      "/* steady_clock too,\n   across lines */\n",
      0, "");
  tok("tokens in string literals are ignored", "src/comm/pg.cc",
      "const char* s = \"DDPKIT_CHECK(throw std::mutex)\";\n", 0, "");
  tok("two rules can fire in one file", "src/comm/pg.cc",
      "DDPKIT_CHECK(ok);\nthrow 1;\n", 2, "");
  tok("bare Status declaration in comm header flagged", "src/comm/x.h",
      "Status Connect(int rank);\n", 1, "nodiscard-status");
  tok("virtual Status declaration flagged", "src/comm/x.h",
      "virtual Status Drain(double timeout) = 0;\n", 1, "nodiscard-status");
  tok("Result<> declaration flagged", "src/comm/x.h",
      "Result<std::vector<int>> Members(const std::string& key);\n", 1,
      "nodiscard-status");
  tok("[[nodiscard]] on the same line is clean", "src/comm/x.h",
      "[[nodiscard]] Status Connect(int rank);\n", 0, "");
  tok("[[nodiscard]] on the previous line is clean", "src/comm/x.h",
      "[[nodiscard]] virtual\nStatus Drain(double timeout) = 0;\n", 0, "");
  tok("Status data members are not declarations", "src/core/reducer.h",
      "Status sync_status_ GUARDED_BY(mu_);\nStatus comm_status_;\n", 0, "");
  tok("const Status& observers are not must-check", "src/core/reducer.h",
      "const Status& sync_status() const;\nStatus& mutable_status();\n", 0,
      "");
  tok("nodiscard-status skips .cc definitions", "src/comm/x.cc",
      "Status Connect(int rank) { return Status::OK(); }\n", 0, "");
  tok("nodiscard-status skips headers outside the boundary",
      "src/optim/optimizer.h", "Status Load(const std::string& path);\n", 0,
      "");
  tok("nodiscard-status waiver honored", "src/comm/x.h",
      "Status Legacy();  // ddplint: allow(nodiscard-status) migration\n", 0,
      "");
  tok("bare WorkHandle declaration in comm header flagged", "src/comm/x.h",
      "WorkHandle AllReduce(Tensor tensor, ReduceOp op);\n", 1,
      "nodiscard-workhandle");
  tok("virtual comm::WorkHandle declaration flagged", "src/comm/x.h",
      "virtual comm::WorkHandle Broadcast(Tensor t, int root) = 0;\n", 1,
      "nodiscard-workhandle");
  tok("[[nodiscard]] WorkHandle on the same line is clean", "src/comm/x.h",
      "[[nodiscard]] WorkHandle AllReduce(Tensor t, ReduceOp op) override;\n",
      0, "");
  tok("[[nodiscard]] WorkHandle on the previous line is clean", "src/comm/x.h",
      "[[nodiscard]] virtual\nWorkHandle Gather(Tensor t, int root) = 0;\n",
      0, "");
  tok("WorkHandle members and references are not declarations", "src/comm/x.h",
      "WorkHandle work_;\nstd::vector<WorkHandle> works_;\n"
      "const WorkHandle& current() const;\n",
      0, "");
  tok("nodiscard-workhandle skips .cc definitions", "src/comm/x.cc",
      "WorkHandle AllReduce(Tensor t, ReduceOp op) { return Track(t); }\n", 0,
      "");
  tok("nodiscard-workhandle skips headers outside comm", "src/core/reducer.h",
      "WorkHandle Launch(Tensor bucket);\n", 0, "");
  tok("nodiscard-workhandle waiver honored", "src/comm/x.h",
      "WorkHandle Probe();  "
      "// ddplint: allow(nodiscard-workhandle) fire-and-forget probe\n",
      0, "");
  tok("raw elementwise loop in tensor flagged", "src/tensor/ops.cc",
      "for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];\n", 1,
      "raw-elementwise-loop");
  tok("raw accumulate loop in comm flagged", "src/comm/algorithms.cc",
      "for (int64_t i = 0; i < n; ++i) dst[i] += src[i];\n", 1,
      "raw-elementwise-loop");
  tok("vec.h batch call is clean", "src/tensor/ops.cc",
      "vec::Add(pa, pb, po, n);\n", 0, "");
  tok("scalar reduction is not elementwise", "src/tensor/ops.cc",
      "for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];\n", 0, "");
  tok("scatter through an index array is not elementwise", "src/tensor/ops.cc",
      "pi[idx[i]] += pg[i];\n", 0, "");
  tok("compound-index addressing is not elementwise", "src/tensor/ops.cc",
      "po[i * n + j] = pa[i * n + j] + pbias[j];\n", 0, "");
  tok("comparison is not a store", "src/tensor/ops.cc",
      "if (row[j] > row[best]) best = j;\n", 0, "");
  tok("member subscripts are not bare", "src/tensor/ops.cc",
      "r.lane[i] = a.lane[i] + b.lane[i];\n", 0, "");
  tok("raw loop outside kernel dirs is fine", "src/optim/sgd.cc",
      "for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];\n", 0, "");
  tok("raw-elementwise-loop waiver honored", "src/tensor/ops.cc",
      "// ddplint: allow(raw-elementwise-loop) transcendental stays scalar\n"
      "for (int64_t i = 0; i < n; ++i) po[i] = std::exp(pa[i]);\n",
      0, "");
  tok("raw send() outside the socket layer flagged", "src/core/x.cc",
      "send(fd, buf.data(), buf.size(), 0);\n", 1, "raw-wire-io");
  tok("global-qualified ::write is still POSIX", "src/comm/pg.cc",
      "::write(fd, p, n);\n", 1, "raw-wire-io");
  tok("recvfrom variant flagged", "tools/launcher.cc",
      "ssize_t got = recvfrom(fd, p, n, 0, nullptr, nullptr);\n", 1,
      "raw-wire-io");
  tok("member read/write calls are different functions", "src/core/x.cc",
      "file.read(p, n);\nstream->write(p, n);\n", 0, "");
  tok("scoped Foo::read is not the POSIX call", "src/core/x.cc",
      "Checkpoint::read(path);\n", 0, "");
  tok("identifier boundary: fread/pthread are fine", "src/core/x.cc",
      "fread(p, 1, n, f);\nunready(x);\n", 0, "");
  tok("read without an arg list is not a call", "src/core/x.cc",
      "int read;\nbool write = false;\n", 0, "");
  tok("socket layer itself may do raw I/O", "src/comm/net_socket.cc",
      "send(fd, p, n, MSG_NOSIGNAL);\n", 0, "");
  tok("store_tcp and process_group_tcp are the wire layer",
      "src/comm/process_group_tcp.cc", "recv(fd, p, n, 0);\n", 0, "");
  tok("raw-wire-io waiver with a reason honored", "tools/launcher.cc",
      "// ddplint: allow(raw-wire-io) reason: launcher log pipe, not wire\n"
      "ssize_t got = read(pipe_fd, buf, sizeof(buf));\n",
      0, "");
  tok("waiver without a reason is ignored", "tools/launcher.cc",
      "read(pipe_fd, buf, n);  // ddplint: allow(raw-wire-io)\n", 1,
      "raw-wire-io");
  tok("bare connect outside the wire layer flagged", "src/core/x.cc",
      "connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));\n", 1,
      "raw-wire-io");
  tok("global-qualified ::accept is the POSIX call", "src/cluster/y.cc",
      "int cfd = ::accept(listen_fd, nullptr, nullptr);\n", 1,
      "raw-wire-io");
  tok("bare close on an fd flagged outside the wire layer", "src/core/x.cc",
      "close(sock_fd);\n", 1, "raw-wire-io");
  tok("shutdown smuggled past the shim flagged", "src/core/x.cc",
      "shutdown(fd, SHUT_RDWR);\n", 1, "raw-wire-io");
  tok("member close is a different function", "src/core/x.cc",
      "file.close();\nserver->shutdown();\n", 0, "");
  tok("scoped Server::accept is not the POSIX call", "src/core/x.cc",
      "Server::accept(opts);\n", 0, "");
  tok("net_fault shim is wire layer for lifecycle calls",
      "src/comm/net_fault.cc", "shutdown(fd, SHUT_RDWR);\nclose(fd);\n", 0,
      "");

  // --- lexer: raw strings and line continuations (satellite a) -----------
  add("lexer", "token inside raw string ignored", "src/comm/pg.cc",
      "const char* s = R\"(std::mutex DDPKIT_CHECK throw)\";\n", 0, "",
      "token-rules");
  add("lexer", "raw string custom delimiter honored", "src/comm/pg.cc",
      "const char* s = R\"ddp(throw \"x\")ddp\";\n", 0, "", "token-rules");
  add("lexer", "multiline raw string stays blanked", "src/comm/pg.cc",
      "const char* kDoc = R\"(\nDDPKIT_CHECK(ok);\nstd::mutex mu;\n)\";\n", 0,
      "", "token-rules");
  add("lexer", "code after raw string close is linted", "src/core/x.h",
      "const char* s = R\"(x)\"; std::mutex mu_;\n", 1, "unannotated-mutex",
      "token-rules");
  add("lexer", "u8R prefix recognized", "src/comm/pg.cc",
      "const char* s = u8R\"(DDPKIT_CHECK(x))\";\n", 0, "", "token-rules");
  add("lexer", "plain identifier R does not open a raw string",
      "src/comm/pg.cc", "int R = 1;\nDDPKIT_CHECK(ok);\n", 1, "check-in-comm",
      "token-rules");
  add("lexer", "backslash continuation extends a // comment", "src/core/x.h",
      "// these tokens stay commentary \\\nstd::mutex still_in_comment;\n"
      "std::mutex real_;\n",
      1, "unannotated-mutex", "token-rules");
  add("lexer", "backslash continuation extends a string literal",
      "src/core/x.h",
      "const char* s = \"std::mutex \\\nDDPKIT_CHECK continues\";\n"
      "std::mutex real_;\n",
      1, "unannotated-mutex", "token-rules");
  add("lexer", "raw-string contents reach the literal view", "src/comm/x.cc",
      "const char* k = R\"(rendezvous/ns/)\";\n", 1, "store-key-schema",
      "store-key-schema");
  add("lexer", "unterminated string stops blanking at EOL", "src/comm/pg.cc",
      "const char* s = \"unterminated;\nDDPKIT_CHECK(ok);\n", 1,
      "check-in-comm", "token-rules");

  // --- lock-order ---------------------------------------------------------
  const auto lock = [&](const std::string& name, const std::string& path,
                        const std::string& content, size_t expect) {
    add("lock-order", name, path, content, expect,
        expect > 0 ? "lock-order" : "");
  };
  lock("seeded inversion: GroupState::mutex then Reducer::mu_ flagged",
       "src/core/reducer.cc",
       "void Poke(GroupState* state) {\n"
       "  MutexLock g(&state->mutex);\n"
       "  MutexLock r(&mu_);\n"
       "}\n",
       1);
  lock("declared order Reducer::mu_ then GroupState::mutex is clean",
       "src/core/reducer.cc",
       "void Poke(GroupState* state) {\n"
       "  MutexLock r(&mu_);\n"
       "  MutexLock g(&state->mutex);\n"
       "}\n",
       0);
  lock("transitive order reducer.mu before work.mutex is clean",
       "src/core/reducer.cc",
       "void Flush(Work* w) {\n"
       "  MutexLock r(&mu_);\n"
       "  MutexLock q(&w->mutex_);\n"
       "}\n",
       0);
  lock("transitive inversion flagged", "src/core/reducer.cc",
       "void Flush(Work* w) {\n"
       "  MutexLock q(&w->mutex_);\n"
       "  MutexLock r(&mu_);\n"
       "}\n",
       1);
  lock("undeclared nesting between mapped levels flagged",
       "src/comm/store.cc",
       "void Publish(Work* w) {\n"
       "  MutexLock s(&mutex_);\n"
       "  MutexLock q(&w->mutex_);\n"
       "}\n",
       1);
  lock("leaf lock held across an acquisition flagged",
       "src/common/metrics.cc",
       "void Export(GroupState* state) {\n"
       "  MutexLock m(&mutex_);\n"
       "  MutexLock g(&state->mutex);\n"
       "}\n",
       1);
  lock("unmapped locks stay silent", "src/core/reducer.cc",
       "void Helper() {\n"
       "  MutexLock a(&foo_);\n"
       "  MutexLock b(&bar_);\n"
       "}\n",
       0);
  lock("same-level nesting is not an order violation", "src/core/reducer.cc",
       "void Cross(GroupState* a, GroupState* b) {\n"
       "  MutexLock x(&state->mutex);\n"
       "  MutexLock y(&state_->mutex);\n"
       "}\n",
       0);
  lock("REQUIRES on a definition counts as held", "src/core/reducer.cc",
       "void Launch(GroupState* state) REQUIRES(state->mutex) {\n"
       "  MutexLock r(&mu_);\n"
       "}\n",
       1);
  lock("scope exit releases the outer lock", "src/core/reducer.cc",
       "void Two(GroupState* state) {\n"
       "  { MutexLock g(&state->mutex); }\n"
       "  MutexLock r(&mu_);\n"
       "}\n",
       0);
  lock("lock-order waiver with a reason honored", "src/core/reducer.cc",
       "void Poke(GroupState* state) {\n"
       "  MutexLock g(&state->mutex);\n"
       "  MutexLock r(&mu_);  "
       "// ddplint: allow(lock-order) startup path, single-threaded\n"
       "}\n",
       0);
  lock("lock-order waiver without a reason is ignored", "src/core/reducer.cc",
       "void Poke(GroupState* state) {\n"
       "  MutexLock g(&state->mutex);\n"
       "  MutexLock r(&mu_);  // ddplint: allow(lock-order)\n"
       "}\n",
       1);
  lock("MutexLock temporary guards nothing and is skipped",
       "src/core/reducer.cc",
       "void Poke(GroupState* state) {\n"
       "  MutexLock(&state->mutex);\n"
       "  MutexLock r(&mu_);\n"
       "}\n",
       0);
  lock("REQUIRES on a pure declaration binds nothing", "src/core/reducer.cc",
       "void Launch(GroupState* state) REQUIRES(state->mutex);\n"
       "void Poke() {\n"
       "  MutexLock r(&mu_);\n"
       "}\n",
       0);
  lock("ACQUIRED_BEFORE agreeing with the hierarchy is clean",
       "src/comm/store.h",
       "mutable Mutex mutex_ ACQUIRED_BEFORE(fault_mutex_);\n"
       "mutable Mutex fault_mutex_;\n",
       0);
  lock("ACQUIRED_AFTER agreeing with the hierarchy is clean",
       "src/comm/store.h",
       "mutable Mutex mutex_;\n"
       "mutable Mutex fault_mutex_ ACQUIRED_AFTER(mutex_);\n",
       0);
  lock("ACQUIRED_BEFORE contradicting the hierarchy flagged",
       "src/comm/store.h",
       "mutable Mutex fault_mutex_ ACQUIRED_BEFORE(mutex_);\n"
       "mutable Mutex mutex_;\n",
       1);

  // --- blocking-under-lock ------------------------------------------------
  const auto block = [&](const std::string& name, const std::string& path,
                         const std::string& content, size_t expect) {
    add("blocking-under-lock", name, path, content, expect,
        expect > 0 ? "blocking-under-lock" : "");
  };
  block("work Wait under a live lock flagged", "src/core/reducer.cc",
        "void Drain() {\n"
        "  MutexLock l(&mu_);\n"
        "  work->Wait();\n"
        "}\n",
        1);
  block("CondVar Wait on the held lock is exempt", "src/comm/work.cc",
        "void Block() {\n"
        "  MutexLock l(&mutex_);\n"
        "  while (!done_) cv_.Wait(&mutex_);\n"
        "}\n",
        0);
  block("CondVar WaitFor on the held lock is exempt", "src/comm/store.cc",
        "void Await() {\n"
        "  MutexLock l(&mutex_);\n"
        "  cv_.WaitFor(&mutex_, timeout);\n"
        "}\n",
        0);
  block("CondVar Wait on a DIFFERENT mutex flagged", "src/comm/work.cc",
        "void Block() {\n"
        "  MutexLock l(&mutex_);\n"
        "  cv_.Wait(&other_mutex_);\n"
        "}\n",
        1);
  block("SendFrame under a lock flagged", "src/comm/store_tcp.cc",
        "void Rpc() {\n"
        "  MutexLock l(&rpc_mutex_);\n"
        "  SendFrame(fd_, frame, deadline);\n"
        "}\n",
        1);
  block("WithRetry suffix family flagged", "src/core/reducer.cc",
        "void Init() {\n"
        "  MutexLock l(&mu_);\n"
        "  store->GetWithRetry(key, deadline);\n"
        "}\n",
        1);
  block("ParallelFor under a lock flagged", "src/core/reducer.cc",
        "void Reduce() {\n"
        "  MutexLock l(&mu_);\n"
        "  ParallelFor(pool, 0, n, fn);\n"
        "}\n",
        1);
  block("sleep_for under a lock flagged", "src/comm/pg.cc",
        "void Backoff() {\n"
        "  MutexLock l(&mu_);\n"
        "  std::this_thread::sleep_for(delay);\n"
        "}\n",
        1);
  block("blocking call with no lock held is clean", "src/core/reducer.cc",
        "void Drain() {\n  work->Wait();\n}\n", 0);
  block("lock released before the blocking call is clean",
        "src/core/reducer.cc",
        "void Drain() {\n"
        "  { MutexLock l(&mu_); state = s_; }\n"
        "  work->Wait();\n"
        "}\n",
        0);
  block("single Poll with a timeout is not blocking", "src/comm/net.cc",
        "void Check() {\n"
        "  MutexLock l(&mu_);\n"
        "  const int rc = Poll(&pfd, 1, 50);\n"
        "}\n",
        0);
  block("Poll spun in a loop header flagged", "src/comm/net.cc",
        "void Spin() {\n"
        "  MutexLock l(&mu_);\n"
        "  while (Poll(&pfd, 1, 50) == 0) {}\n"
        "}\n",
        1);
  block("blocking waiver with a reason honored", "src/comm/store_tcp.cc",
        "void Rpc() {\n"
        "  MutexLock l(&rpc_mutex_);\n"
        "  // ddplint: allow(blocking-under-lock) serialized RPC channel,\n"
        "  // deadline-bounded, no lock-holder on the peer side\n"
        "  SendFrame(fd_, frame, deadline);\n"
        "}\n",
        0);
  block("config-extended blocking name flagged", "src/core/reducer.cc",
        "void Go() {\n"
        "  MutexLock l(&mu_);\n"
        "  BlockOp(x);\n"
        "}\n",
        1);
  block("config-extended blocking suffix flagged", "src/core/reducer.cc",
        "void Go() {\n"
        "  MutexLock l(&mu_);\n"
        "  ReconnectWithBackoff(x);\n"
        "}\n",
        1);
  block("lock inherited via REQUIRES counts as held", "src/comm/work.cc",
        "void Finish() REQUIRES(mutex_) {\n"
        "  peer->Wait();\n"
        "}\n",
        1);

  // --- include-dag --------------------------------------------------------
  const auto dag = [&](const std::string& name, const std::string& path,
                       const std::string& content, size_t expect) {
    add("include-dag", name, path, content, expect,
        expect > 0 ? "include-dag" : "");
  };
  dag("back edge comm -> core flagged", "src/comm/pg.cc",
      "#include \"core/reducer.h\"\n", 1);
  dag("declared edge core -> comm is clean", "src/core/reducer.cc",
      "#include \"comm/store.h\"\n", 0);
  dag("same-module include is clean", "src/comm/pg.cc",
      "#include \"comm/work.h\"\n", 0);
  dag("undeclared edge common -> tensor flagged", "src/common/vec.cc",
      "#include \"tensor/tensor.h\"\n", 1);
  dag("angle-bracket system includes are ignored", "src/comm/pg.cc",
      "#include <vector>\n#include <core/reducer.h>\n", 0);
  dag("same-directory include is clean", "src/comm/pg.cc",
      "#include \"store.h\"\n", 0);
  dag("paths outside the declared modules are ignored", "src/comm/pg.cc",
      "#include \"third_party/zlib/zlib.h\"\n", 0);
  dag("module path in a non-include literal is ignored", "src/comm/pg.cc",
      "const char* hdr = \"core/reducer.h\";  "
      "// ddplint: allow(store-key-schema) names a header, not a Store key\n",
      0);
  dag("files outside src/ are not layered", "tools/launcher.cc",
      "#include \"core/reducer.h\"\n", 0);
  dag("files in undeclared module dirs are ignored", "src/experimental/x.cc",
      "#include \"core/reducer.h\"\n", 0);
  dag("include-dag waiver with a reason honored", "src/comm/pg.cc",
      "// ddplint: allow(include-dag) transitional, tracked in ROADMAP\n"
      "#include \"core/reducer.h\"\n",
      0);
  dag("every back edge is flagged separately", "src/tensor/ops.cc",
      "#include \"comm/work.h\"\n#include \"core/reducer.h\"\n", 2);

  // --- store-key-schema ---------------------------------------------------
  const auto key = [&](const std::string& name, const std::string& path,
                       const std::string& content, size_t expect) {
    add("store-key-schema", name, path, content, expect,
        expect > 0 ? "store-key-schema" : "");
  };
  key("reducer/ namespace minted in core flagged", "src/core/reducer.cc",
      "store->Add(\"reducer/instances/rank\" + r, 1);\n", 1);
  key("rendezvous/ namespace minted in comm flagged", "src/comm/rendezvous.cc",
      "return \"rendezvous/\" + ns + \"/g\";\n", 1);
  key("pgtcp/ namespace minted in comm flagged",
      "src/comm/process_group_tcp.cc",
      "const std::string prefix = \"pgtcp/\" + name_;\n", 1);
  key("pg/ counter key minted in comm flagged", "src/comm/process_group_sim.cc",
      "store->Add(\"pg/\" + name + \"/joined\", 1);\n", 1);
  key("relative key fragment flagged", "src/comm/rendezvous.cc",
      "return prefix + \"join/rank\" + std::to_string(rank);\n", 1);
  key("comm/store_keys.h itself is the mint", "src/comm/store_keys.h",
      "return \"reducer/instances/rank\" + std::to_string(rank);\n", 0);
  key("include lines share the shape and are skipped", "src/comm/store.cc",
      "#include \"comm/store.h\"\n", 0);
  key("slash-free literals are clean", "src/comm/store.cc",
      "const std::string k = \"rank\" + std::to_string(r);\n", 0);
  key("capitalized prose with a slash is clean", "src/core/reducer.cc",
      "LogLine(\"Reducer/bucket rebuild took too long\");\n", 0);
  key("uri schemes are not key namespaces", "src/comm/store_tcp.cc",
      "const std::string ep = \"tcp://\" + host;\n", 0);
  key("files outside comm/ and core/ are not restricted",
      "src/cluster/elastic.cc",
      "const std::string k = \"reducer/instances/rank0\";\n", 0);
  key("store-key waiver with a reason honored", "src/comm/store.cc",
      "// ddplint: allow(store-key-schema) test fixture key, never on the "
      "wire\n"
      "const std::string k = \"fixture/one\";\n",
      0);
  return cases;
}

void (*PassFn(const std::string& name))(const PassContext&,
                                        std::vector<Violation>*) {
  if (name == "token-rules") return RunTokenRules;
  if (name == "lock-order") return RunLockOrder;
  if (name == "blocking-under-lock") return RunBlockingUnderLock;
  if (name == "include-dag") return RunIncludeDag;
  if (name == "store-key-schema") return RunStoreKeySchema;
  return nullptr;
}

/// The config parsers' rejection paths, checked directly.
int ConfigCases(bool* any_run) {
  struct Reject {
    std::string name;
    bool lock;  // which parser
    std::string text;
  };
  const std::vector<Reject> rejects = {
      {"lock_order: cycle in before edges rejected", true,
       "level a\nlevel b\nbefore a b\nbefore b a\n"},
      {"lock_order: undeclared level rejected", true, "before a b\n"},
      {"lock_order: unknown directive rejected", true, "holds a b\n"},
      {"lock_order: malformed mutex mapping rejected", true,
       "level a\nmutex a too few\nmutex\n"},
      {"include_dag: cycle rejected", false,
       "module a : b\nmodule b : a\n"},
      {"include_dag: undeclared dep rejected", false, "module a : ghost\n"},
      {"include_dag: duplicate module rejected", false,
       "module a :\nmodule a :\n"},
  };
  int failures = 0;
  for (const Reject& r : rejects) {
    *any_run = true;
    std::string error;
    bool accepted;
    if (r.lock) {
      LockOrderConfig cfg;
      accepted = ParseLockOrder(r.text, &cfg, &error);
    } else {
      IncludeDagConfig cfg;
      accepted = ParseIncludeDag(r.text, &cfg, &error);
    }
    const bool ok = !accepted && !error.empty();
    std::printf("  %-58s %s\n", r.name.c_str(), ok ? "PASSED" : "FAILED");
    if (!ok) ++failures;
  }
  return failures;
}

}  // namespace

int RunSelfTest(const std::string& filter) {
  LockOrderConfig lock_order;
  IncludeDagConfig include_dag;
  std::string error;
  if (!ParseLockOrder(kFixtureLockOrder, &lock_order, &error) ||
      !ParseIncludeDag(kFixtureIncludeDag, &include_dag, &error)) {
    std::fprintf(stderr, "selftest: fixture config failed to parse: %s\n",
                 error.c_str());
    return 1;
  }

  int failures = 0;
  size_t ran = 0;
  for (const SelfCase& c : Cases()) {
    if (!filter.empty() && c.group != filter) continue;
    ++ran;
    const SourceFile file = Lex(c.path, c.content);
    const Waivers waivers = ExtractWaivers(file);
    const PassContext ctx{file, waivers, &lock_order, &include_dag};
    std::vector<Violation> got;
    PassFn(c.pass)(ctx, &got);

    bool ok = got.size() == c.expect_violations;
    if (ok && c.expect_violations > 0 && !c.expect_rule.empty()) {
      ok = got[0].rule == c.expect_rule;
    }
    std::printf("  %-58s %s\n", c.name.c_str(), ok ? "PASSED" : "FAILED");
    if (!ok) {
      ++failures;
      std::printf("    expected %zu violation(s)%s%s, got %zu:\n",
                  c.expect_violations, c.expect_rule.empty() ? "" : " of ",
                  c.expect_rule.c_str(), got.size());
      for (const Violation& v : got) {
        std::printf("    %s:%zu [%s] %s\n", v.path.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
      }
    }
  }
  if (filter.empty() || filter == "config") {
    bool any = false;
    failures += ConfigCases(&any);
    if (any) ++ran;
  }
  if (ran == 0) {
    std::fprintf(stderr,
                 "selftest: unknown group '%s' (groups: token-rules, lexer, "
                 "lock-order, blocking-under-lock, include-dag, "
                 "store-key-schema, config)\n",
                 filter.c_str());
    return 1;
  }
  std::printf("selftest %s (%d failed)\n", failures == 0 ? "PASSED" : "FAILED",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace ddplint
