// blocking-under-lock: flags calls that can block for a deadline (or
// forever) made while a MutexLock is textually live in the same scope.
// The watched set is DefaultBlockingNames()/Suffixes() plus any `blocking`
// / `blocking-suffix` directives from lock_order.txt.
//
// Exemptions:
//   - CondVar waits: Wait/WaitFor/WaitUntil whose FIRST argument names a
//     held lock release that lock while waiting — that is the whole point
//     of a condition variable, not a bug.
//   - Poll: only watched when spun in a loop header on the same line; a
//     single poll with a timeout is how the deadline helpers are built.
//   - Locks inherited via REQUIRES on the function being *defined* still
//     count — the caller holds them for real.

#include <string>
#include <vector>

#include "ddplint/passes.h"
#include "ddplint/scopes.h"

namespace ddplint {
namespace {

const char kRule[] = "blocking-under-lock";

const std::set<std::string>& CondVarWaitNames() {
  static const std::set<std::string>* names =
      new std::set<std::string>{"Wait", "WaitFor", "WaitUntil"};
  return *names;
}

std::string HeldList(const WatchedCall& call, const PassContext& ctx) {
  std::string held;
  for (const LockSite& lock : call.held) {
    if (!held.empty()) held += ", ";
    held += lock.expr + " (" + ctx.file.path + ":" +
            std::to_string(lock.line + 1) +
            (lock.from_requires ? ", via REQUIRES" : "") + ")";
  }
  return held;
}

}  // namespace

void RunBlockingUnderLock(const PassContext& ctx, std::vector<Violation>* out) {
  if (ctx.waivers.file_rules.count(kRule) > 0) return;

  WatchSet watched;
  watched.names = DefaultBlockingNames();
  watched.suffixes = DefaultBlockingSuffixes();
  if (ctx.lock_order != nullptr) {
    watched.names.insert(ctx.lock_order->blocking_names.begin(),
                         ctx.lock_order->blocking_names.end());
    watched.suffixes.insert(ctx.lock_order->blocking_suffixes.begin(),
                            ctx.lock_order->blocking_suffixes.end());
  }
  watched.names.insert("Poll");  // loop-header-only; filtered below

  const ScopeScan scan = ScanScopes(ctx.file, watched);
  for (const WatchedCall& call : scan.calls) {
    if (call.callee == "Poll" && !call.in_loop_header) continue;
    if (CondVarWaitNames().count(call.callee) > 0 && !call.first_arg.empty()) {
      bool releases_held = false;
      for (const LockSite& lock : call.held) {
        if (lock.expr == call.first_arg) {
          releases_held = true;
          break;
        }
      }
      if (releases_held) continue;  // CondVar wait: drops the lock by design
    }
    if (ctx.waivers.Covers(kRule, call.line)) continue;

    out->push_back(Violation{
        ctx.file.path, call.line + 1, kRule,
        "'" + call.callee + "' can block while holding " +
            HeldList(call, ctx) +
            " — every other thread that needs the lock stalls for the "
            "full blocking deadline",
        "hoist the call out of the locked region (snapshot the guarded "
        "state, unlock, then block), or waive a provably deadlock-free "
        "site with // ddplint: allow(blocking-under-lock) <reason> citing "
        "why no lock-holder can be on the other side of the wait"});
  }
}

}  // namespace ddplint
