// include-dag: enforces the module layering declared in
// tools/ddplint/include_dag.txt over src/. A file under src/<m>/ may
// #include "X/..." only for X == m or X listed among m's declared deps —
// transitivity is not implied, and back edges (comm/ including core/)
// can never be declared because the table must parse as a DAG.
//
// Only quoted includes whose path names a *declared* module are checked:
// system headers, same-directory includes, and third-party paths are not
// the layering table's business.

#include <string>
#include <vector>

#include "ddplint/lexer.h"
#include "ddplint/passes.h"

namespace ddplint {
namespace {

const char kRule[] = "include-dag";

/// The module of a file under src/: "src/comm/store.cc" -> "comm".
/// Empty when the file is not under a src/<module>/ path.
std::string ModuleOf(const std::string& path) {
  static const char kSrc[] = "src/";
  size_t pos = 0;
  if (path.compare(0, 4, kSrc) != 0) {
    const size_t embedded = path.find("/src/");
    if (embedded == std::string::npos) return "";
    pos = embedded + 5;
  } else {
    pos = 4;
  }
  const size_t slash = path.find('/', pos);
  if (slash == std::string::npos) return "";
  return path.substr(pos, slash - pos);
}

bool LineIsInclude(const std::string& code) {
  size_t i = code.find_first_not_of(" \t");
  if (i == std::string::npos || code[i] != '#') return false;
  i = code.find_first_not_of(" \t", i + 1);
  return i != std::string::npos && code.compare(i, 7, "include") == 0;
}

}  // namespace

void RunIncludeDag(const PassContext& ctx, std::vector<Violation>* out) {
  if (ctx.include_dag == nullptr) return;
  const IncludeDagConfig& dag = *ctx.include_dag;
  if (ctx.waivers.file_rules.count(kRule) > 0) return;

  const std::string module = ModuleOf(ctx.file.path);
  if (module.empty() || !dag.Declared(module)) return;
  const std::set<std::string>& deps = dag.allowed.at(module);

  for (const StringLiteral& lit : ctx.file.strings) {
    if (lit.line >= ctx.file.code.size()) continue;
    if (!LineIsInclude(ctx.file.code[lit.line])) continue;
    const size_t slash = lit.text.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target = lit.text.substr(0, slash);
    if (!dag.Declared(target)) continue;  // not a layered module path
    if (target == module || deps.count(target) > 0) continue;
    if (ctx.waivers.Covers(kRule, lit.line)) continue;

    out->push_back(Violation{
        ctx.file.path, lit.line + 1, kRule,
        "layering violation: module '" + module + "' includes \"" + lit.text +
            "\" but tools/ddplint/include_dag.txt declares no '" + module +
            " -> " + target + "' edge",
        "depend on a lower layer (or move the shared declaration down), or "
        "declare the edge in tools/ddplint/include_dag.txt — the table must "
        "stay a DAG, so a back edge cannot be declared at all"});
  }
}

}  // namespace ddplint
