#include "ddplint/scopes.h"

namespace ddplint {
namespace {

std::string NormalizeExpr(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '&' || c == ' ' || c == '\t') continue;
    out.push_back(c);
  }
  return out;
}

/// Captures a parenthesized argument list starting at `open` (which must
/// index a '(' in `line`). Returns the text between the parens and sets
/// *end one past the closing ')'; empty-and-*end==npos when the list does
/// not close on this line.
std::string CaptureParens(const std::string& line, size_t open, size_t* end) {
  int depth = 0;
  for (size_t i = open; i < line.size(); ++i) {
    if (line[i] == '(') ++depth;
    if (line[i] == ')') {
      --depth;
      if (depth == 0) {
        *end = i + 1;
        return line.substr(open + 1, i - open - 1);
      }
    }
  }
  *end = std::string::npos;
  return "";
}

/// Splits an argument list on top-level commas.
std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

size_t SkipSpaces(const std::string& line, size_t i) {
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return i;
}

}  // namespace

bool WatchSet::Matches(const std::string& ident) const {
  if (names.count(ident) > 0) return true;
  for (const std::string& suffix : suffixes) {
    if (ident.size() > suffix.size() &&
        ident.compare(ident.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

ScopeScan ScanScopes(const SourceFile& file, const WatchSet& watched) {
  ScopeScan scan;
  int depth = 0;
  std::vector<LockSite> held;
  std::vector<std::string> pending_requires;

  for (size_t ln = 0; ln < file.code.size(); ++ln) {
    const std::string& line = file.code[ln];
    const bool loop_header = LineHasToken(line, {"while", false}) ||
                             LineHasToken(line, {"for", false});
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (IsIdentChar(c)) {
        if (i > 0 && IsIdentChar(line[i - 1])) {
          ++i;
          continue;
        }
        size_t j = i;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        const std::string ident = line.substr(i, j - i);

        if (ident == "MutexLock") {
          // `MutexLock <var>(<expr>);` — a temporary (`MutexLock(&mu);`)
          // guards nothing and is skipped.
          size_t k = SkipSpaces(line, j);
          size_t var_end = k;
          while (var_end < line.size() && IsIdentChar(line[var_end])) {
            ++var_end;
          }
          if (var_end > k) {
            k = SkipSpaces(line, var_end);
            if (k < line.size() && line[k] == '(') {
              size_t end = 0;
              const std::string args = CaptureParens(line, k, &end);
              if (end != std::string::npos && !args.empty()) {
                LockSite site;
                site.expr = NormalizeExpr(args);
                site.line = ln;
                site.depth = depth;
                if (!held.empty()) {
                  scan.nested.push_back(NestedAcquisition{site, held});
                }
                held.push_back(site);
                i = end;
                continue;
              }
            }
          }
          i = j;
          continue;
        }

        if (ident == "REQUIRES" || ident == "REQUIRES_SHARED") {
          const size_t k = SkipSpaces(line, j);
          if (k < line.size() && line[k] == '(') {
            size_t end = 0;
            const std::string args = CaptureParens(line, k, &end);
            if (end != std::string::npos) {
              for (const std::string& arg : SplitArgs(args)) {
                const std::string expr = NormalizeExpr(arg);
                // REQUIRES(!mu) asserts the lock is NOT held.
                if (!expr.empty() && expr[0] != '!') {
                  pending_requires.push_back(expr);
                }
              }
              i = end;
              continue;
            }
          }
          i = j;
          continue;
        }

        if (watched.Matches(ident)) {
          const size_t k = SkipSpaces(line, j);
          if (k < line.size() && line[k] == '(' && !held.empty()) {
            size_t end = 0;
            const std::string args = CaptureParens(line, k, &end);
            WatchedCall call;
            call.callee = ident;
            call.line = ln;
            call.in_loop_header = loop_header;
            call.held = held;
            const std::vector<std::string> split = SplitArgs(args);
            if (!split.empty()) call.first_arg = NormalizeExpr(split[0]);
            scan.calls.push_back(std::move(call));
          }
          i = j;
          continue;
        }

        i = j;
        continue;
      }

      if (c == '{') {
        ++depth;
        for (const std::string& expr : pending_requires) {
          LockSite site;
          site.expr = expr;
          site.line = ln;
          site.depth = depth;
          site.from_requires = true;
          held.push_back(site);
        }
        pending_requires.clear();
        ++i;
        continue;
      }
      if (c == '}') {
        if (depth > 0) --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        ++i;
        continue;
      }
      if (c == ';') {
        // A REQUIRES on a pure declaration binds nothing.
        pending_requires.clear();
        ++i;
        continue;
      }
      ++i;
    }
  }
  return scan;
}

}  // namespace ddplint
